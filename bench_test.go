// Package iddqsyn's top-level benchmark harness: one benchmark per table
// and figure of the paper's evaluation, plus the micro-benchmarks behind
// the §3-§4 efficiency claims. Run with
//
//	go test -bench=. -benchmem
//
// The Table 1 benchmarks synthesize full ISCAS85-class circuits per
// iteration and print the regenerated table rows; expect seconds to
// minutes per circuit, matching the paper's "convergence within a few
// hours on a Sun Sparc workstation" at modern CPU speed.
package iddqsyn_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"iddqsyn/internal/atpg"
	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/diagnose"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/experiments"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/partition"
	"iddqsyn/internal/standard"
)

// benchEvolution keeps the per-iteration cost of the Table 1 benchmarks
// bounded; cmd/table1 runs the full 250-generation budget.
func benchEvolution() evolution.Params {
	p := experiments.Table1DefaultEvolution()
	p.MaxGenerations = 60
	p.StallGenerations = 20
	return p
}

// benchmarkTable1Row regenerates one row of Table 1 per iteration.
func benchmarkTable1Row(b *testing.B, circuit string) {
	b.ReportAllocs()
	prm := benchEvolution()
	var last experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(context.Background(), experiments.Table1Config{
			Circuits: []string{circuit}, Evolution: &prm,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.AreaOverhead, "areaOverhead%")
	b.ReportMetric(float64(last.Modules), "modules")
	b.Logf("\n%s", experiments.FormatTable1([]experiments.Table1Row{last}))
}

// Table 1: standard vs evolution partitioning, one benchmark per circuit.
func BenchmarkTable1_C1908(b *testing.B) { benchmarkTable1Row(b, "c1908") }
func BenchmarkTable1_C2670(b *testing.B) { benchmarkTable1Row(b, "c2670") }
func BenchmarkTable1_C3540(b *testing.B) { benchmarkTable1Row(b, "c3540") }
func BenchmarkTable1_C5315(b *testing.B) { benchmarkTable1Row(b, "c5315") }
func BenchmarkTable1_C6288(b *testing.B) { benchmarkTable1Row(b, "c6288") }
func BenchmarkTable1_C7552(b *testing.B) { benchmarkTable1Row(b, "c7552") }

// Figure 1: the BIC sensor measurement cycle (vector application, IDDQ
// sensing, PASS/FAIL decision) on the C17 chip model.
func BenchmarkFigure1SensorCycle(b *testing.B) {
	b.ReportAllocs()
	res, err := experiments.Figure1Demo()
	if err != nil {
		b.Fatal(err)
	}
	if res.DefectPass || !res.FaultFreePass {
		b.Fatal("sensor demo misbehaved")
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1Demo()
		if err != nil {
			b.Fatal(err)
		}
		_ = r
	}
}

// Figure 2: the group-shape experiment on the 2-D cell array. The
// reported metric is the per-sensor area ratio of the column partition
// over the row partition (paper: partition 1, the row grouping, wins).
func BenchmarkFigure2GroupShape(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(3, 6)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.AreaRatio
	}
	b.ReportMetric(ratio, "areaRatio")
}

// Figures 3-5: the C17 evolution trace to the published optimum
// {(1,3,5), (2,4,6)}.
func BenchmarkC17Evolution(b *testing.B) {
	b.ReportAllocs()
	reached := 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.C17Trace(context.Background(), int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.ReachedKnown {
			reached++
		}
	}
	b.ReportMetric(100*float64(reached)/float64(b.N), "optimum%")
}

// §5 convergence claim: generations and evaluations to a stable cost.
func benchmarkConvergence(b *testing.B, circuit string) {
	b.ReportAllocs()
	prm := benchEvolution()
	var gens, evals int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Convergence(context.Background(), circuit, prm)
		if err != nil {
			b.Fatal(err)
		}
		gens, evals = res.Generations, res.Evaluations
	}
	b.ReportMetric(float64(gens), "generations")
	b.ReportMetric(float64(evals), "evaluations")
}

// BenchmarkEvolve is the canonical optimizer figure for the committed
// perf trajectory (BENCH_<n>.json via scripts/bench.sh): one full c432
// evolution to convergence per iteration.
func BenchmarkEvolve(b *testing.B) { benchmarkConvergence(b, "c432") }

func BenchmarkEvolutionConvergence_C432(b *testing.B)  { benchmarkConvergence(b, "c432") }
func BenchmarkEvolutionConvergence_C880(b *testing.B)  { benchmarkConvergence(b, "c880") }
func BenchmarkEvolutionConvergence_C1908(b *testing.B) { benchmarkConvergence(b, "c1908") }

// §4 ablations: the design choices DESIGN.md calls out.
func BenchmarkAblationMonteCarlo(b *testing.B) {
	b.ReportAllocs()
	prm := benchEvolution()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblateMonteCarlo(context.Background(), "c880", prm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Variant/res.Baseline, "costRatioNoMC")
}

func BenchmarkAblationLifetime(b *testing.B) {
	b.ReportAllocs()
	prm := benchEvolution()
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblateLifetime(context.Background(), "c880", prm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Variant/res.Baseline, "costRatioImmortal")
}

// §4.2 incremental cost evaluation ablation: cost re-evaluation after one
// mutation, incremental (only touched modules recomputed) vs from-scratch
// partition construction.
func BenchmarkIncrementalCost(b *testing.B) {
	b.ReportAllocs()
	p := mutatedPartition(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := p.Clone()
		moveOneGate(b, q, rng)
		_ = q.Cost()
	}
}

func BenchmarkFullRecomputeCost(b *testing.B) {
	b.ReportAllocs()
	p := mutatedPartition(b)
	rng := rand.New(rand.NewSource(7))
	e, w, cons := p.E, p.W, p.Cons
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := p.Clone()
		moveOneGate(b, q, rng)
		fresh, err := partition.New(e, q.Groups(), w, cons)
		if err != nil {
			b.Fatal(err)
		}
		_ = fresh.Cost()
	}
}

func mutatedPartition(b *testing.B) *partition.Partition {
	b.Helper()
	c := circuits.MustISCAS85Like("c1908")
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		b.Fatal(err)
	}
	e := estimate.New(a, estimate.DefaultParams())
	groups := standard.StandardPartition(c, 220, e.P.Rho)
	p, err := partition.New(e, groups, partition.PaperWeights(), partition.DefaultConstraints())
	if err != nil {
		b.Fatal(err)
	}
	p.Cost() // warm the caches
	return p
}

func moveOneGate(b *testing.B, p *partition.Partition, rng *rand.Rand) {
	b.Helper()
	for attempt := 0; attempt < 16; attempt++ {
		from := rng.Intn(p.NumModules())
		boundary := p.BoundaryGates(from)
		if len(boundary) == 0 {
			continue
		}
		g := boundary[rng.Intn(len(boundary))]
		targets := p.ConnectedModules(g)
		if len(targets) == 0 {
			continue
		}
		if _, err := p.MoveGates([]int{g}, from, targets[rng.Intn(len(targets))]); err == nil {
			return
		}
	}
	b.Fatal("no legal move found")
}

// §3 estimator micro-benchmarks: the quantities recomputed inside the
// evolution loop.
func estimatorFixture(b *testing.B) (*estimate.Estimator, [][]int) {
	b.Helper()
	c := circuits.MustISCAS85Like("c1908")
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		b.Fatal(err)
	}
	e := estimate.New(a, estimate.DefaultParams())
	groups := standard.StandardPartition(c, 220, e.P.Rho)
	return e, groups
}

func BenchmarkEstimatorsModuleEval(b *testing.B) {
	b.ReportAllocs()
	e, groups := estimatorFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.EvalModule(groups[i%len(groups)])
	}
}

func BenchmarkEstimatorsMaxCurrent(b *testing.B) {
	b.ReportAllocs()
	e, groups := estimatorFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.TS.MaxCurrent(e.A, groups[i%len(groups)])
	}
}

func BenchmarkEstimatorsSeparation(b *testing.B) {
	b.ReportAllocs()
	e, groups := estimatorFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.SeparationModule(groups[i%len(groups)])
	}
}

func BenchmarkEstimatorsBICDelay(b *testing.B) {
	b.ReportAllocs()
	e, groups := estimatorFixture(b)
	mods := make([]*estimate.Module, len(groups))
	moduleOf := make([]int, e.A.Circuit.NumGates())
	for mi, grp := range groups {
		mods[mi] = e.EvalModule(grp)
		for _, g := range grp {
			moduleOf[g] = mi
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.BICDelay(moduleOf, mods)
	}
}

// §3.4 substrate: ATPG and fault simulation cost (the test-set generation
// the test-application-time estimator assumes precomputed).
func BenchmarkATPGC880(b *testing.B) {
	b.ReportAllocs()
	c := circuits.MustISCAS85Like("c880")
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 500
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(1)))
	opt := atpg.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atpg.Generate(c, list, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Sanity: the benchmark fixtures print the environment once.
func Example_fixtures() {
	c := circuits.C17()
	fmt.Println(c)
	// Output: c17: 5 inputs, 2 outputs, 6 gates, depth 3
}

// Extension studies (see DESIGN.md §5 and EXPERIMENTS.md).

// Optimizer comparison: evolution vs simulated annealing vs hill climbing
// at equal evaluation budgets from identical fine-grained starts.
func BenchmarkOptimizerComparison(b *testing.B) {
	b.ReportAllocs()
	prm := benchEvolution()
	var rows []experiments.OptimizerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.OptimizerComparison(context.Background(), "c880", 8, prm)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("%-12s cost %.6g (%d evals, K=%d)", r.Algorithm, r.FinalCost, r.Evaluations, r.Modules)
	}
}

// Sensor-technology table: the quantitative version of the paper's
// argument for the bypass-MOS sensor class.
func BenchmarkSensorVariants(b *testing.B) {
	b.ReportAllocs()
	prm := benchEvolution()
	var rows []experiments.VariantRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.SensorVariants(context.Background(), "c432", prm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", experiments.FormatVariants(rows))
}

// Readout scheduling: the area-vs-test-time trade-off behind cost c5.
func BenchmarkScheduleStudy(b *testing.B) {
	b.ReportAllocs()
	prm := benchEvolution()
	var rows []experiments.ScheduleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ScheduleStudy(context.Background(), "c880", prm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", experiments.FormatSchedules(rows))
}

// Cost-aware technology mapping (the paper's "next step").
func BenchmarkTechmapStudy(b *testing.B) {
	b.ReportAllocs()
	prm := benchEvolution()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.TechmapStudy(context.Background(), "c432", prm); err != nil {
			b.Fatal(err)
		}
	}
}

// Weight sweep: the Speed-Area-Testability design-space exploration of §2.
func BenchmarkWeightSweep(b *testing.B) {
	b.ReportAllocs()
	prm := benchEvolution()
	var points []experiments.WeightSweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.WeightSweep(context.Background(), "c432", prm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", experiments.FormatWeightSweep(points))
}

// Estimator pessimism: the §3.1 upper-bound guarantee, measured.
func BenchmarkEstimatorPessimism(b *testing.B) {
	b.ReportAllocs()
	prm := benchEvolution()
	var worst float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Pessimism(context.Background(), "c432", prm)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range points {
			if p.Ratio > worst {
				worst = p.Ratio
			}
		}
	}
	b.ReportMetric(worst, "worstPessimismX")
}

// Diagnostic resolution of on-chip per-module sensing vs one off-chip
// measurement — the fault-location payoff of the BIC architecture
// (paper reference [4]).
func BenchmarkDiagnosticResolution(b *testing.B) {
	b.ReportAllocs()
	c := circuits.MustISCAS85Like("c432")
	eprm := benchEvolution()
	res, err := core.Synthesize(c, core.Options{Evolution: &eprm, ModuleSize: 40})
	if err != nil {
		b.Fatal(err)
	}
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 300
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(1)))
	gen, err := atpg.Generate(c, list, atpg.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	moduleOf := make([]int, c.NumGates())
	for i := range moduleOf {
		moduleOf[i] = res.Chip.ModuleOf(i)
	}
	b.ResetTimer()
	var classes int
	for i := 0; i < b.N; i++ {
		dict, err := diagnose.Build(c, moduleOf, list, gen.Vectors)
		if err != nil {
			b.Fatal(err)
		}
		classes = dict.Resolve().DistinctClasses
	}
	b.ReportMetric(float64(classes), "syndromeClasses")
}

// Yield vs threshold: the Monte-Carlo population study behind the d = 10
// discriminability choice. The metric is the escape rate at the paper's
// 1 µA operating point (bounded below by the ATPG excitation coverage).
func BenchmarkYieldThresholdSweep(b *testing.B) {
	b.ReportAllocs()
	prm := benchEvolution()
	var at1uA float64
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.YieldStudy(context.Background(), "c432", prm)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Threshold >= 1e-6 {
				at1uA = p.Escape
				break
			}
		}
	}
	b.ReportMetric(100*at1uA, "escape%@1uA")
}

// Scan-chain ordering across the ISCAS89-like set: wiring saved by the
// nearest-neighbour order vs declaration order on the largest circuit.
func BenchmarkScanChainOrdering(b *testing.B) {
	b.ReportAllocs()
	var saved float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ScanStudy()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		saved = 100 * (1 - float64(last.OrderedLen)/float64(last.DeclaredLen))
	}
	b.ReportMetric(saved, "wireSaved%")
}

// Delta-IDDQ (current-signature) detection vs the paper's fixed 1 µA
// comparator under growing die-to-die leakage spread. The metric is the
// fixed threshold's overkill at σ = 2.0, which signature analysis avoids.
func BenchmarkDeltaIDDQComparison(b *testing.B) {
	b.ReportAllocs()
	prm := benchEvolution()
	var fixedOvk, deltaOvk float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DeltaStudy(context.Background(), "c432", prm, []float64{2.0})
		if err != nil {
			b.Fatal(err)
		}
		fixedOvk = rows[0].FixedOverkill
		deltaOvk = rows[0].DeltaOverkill
	}
	b.ReportMetric(100*fixedOvk, "fixedOverkill%")
	b.ReportMetric(100*deltaOvk, "deltaOverkill%")
}

// Deterministic top-up: PODEM justification over the random-resistant
// residue of the full c432 bridge universe. Metrics: new detections and
// proofs per run.
func BenchmarkATPGDeterministicTopUp(b *testing.B) {
	b.ReportAllocs()
	c := circuits.MustISCAS85Like("c432")
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 0
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(2)))
	opt := atpg.DefaultOptions()
	opt.MaxVectors = 256
	opt.TargetCoverage = 1.0
	base, err := atpg.Generate(c, list, opt)
	if err != nil {
		b.Fatal(err)
	}
	var newDet, unsat int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := &atpg.Result{
			Vectors:    append([][]bool(nil), base.Vectors...),
			Detections: append([]atpg.Detection(nil), base.Detections...),
			Total:      base.Total,
		}
		tu, err := atpg.TopUp(c, list, res, 2000)
		if err != nil {
			b.Fatal(err)
		}
		newDet, unsat = tu.NewDetected, tu.ProvenUnsat
	}
	b.ReportMetric(float64(newDet), "newDetected")
	b.ReportMetric(float64(unsat), "provenUnsat")
}
