package bic

import (
	"fmt"
	"math"

	"iddqsyn/internal/estimate"
)

// Technology enumerates the BIC sensing-device classes surveyed in the
// paper's introduction (references [7]-[12]). The paper's synthesis flow
// targets the bypass-MOS class of figure 1 because "some BIC sensors
// (i.e. pn junctions or bipolar devices) introduce a voltage drop during
// transient switching which can be unacceptable" — the variants here make
// that design decision quantitative.
type Technology int

// The modelled sensing-device classes.
const (
	// BypassMOS is the figure 1 architecture: a sensing device with a
	// parallel bypass switch sized so the transient rail perturbation
	// stays below r*. Area pays for the bypass width (A1/Rs).
	BypassMOS Technology = iota
	// PNJunction senses across a diode in the ground path. No bypass:
	// tiny area, but the full transient current develops the diode drop
	// (≈0.65 V) on the virtual rail during switching.
	PNJunction
	// Bipolar uses a bipolar transconductor (Maly/Nigh style): moderate
	// area, a V_BE-class drop (≈0.3 V) during transients.
	Bipolar
	// Proportional is the Rius/Figueras proportional BIC sensor: the
	// perturbation scales with the sensed current at a design ratio, at
	// the price of a larger detection circuit.
	Proportional
)

// String names the technology.
func (t Technology) String() string {
	switch t {
	case BypassMOS:
		return "bypass-mos"
	case PNJunction:
		return "pn-junction"
	case Bipolar:
		return "bipolar"
	case Proportional:
		return "proportional"
	}
	return fmt.Sprintf("Technology(%d)", int(t))
}

// Technologies lists all modelled classes.
func Technologies() []Technology {
	return []Technology{BypassMOS, PNJunction, Bipolar, Proportional}
}

// VariantSensor is a sensor of a specific technology sized for a module.
type VariantSensor struct {
	Technology   Technology
	Sensor               // the common electrical summary
	Perturbation float64 // worst-case transient rail excursion, V
	Suitable     bool    // Perturbation ≤ the rail limit r*
}

// Thermal voltage at room temperature, used for junction small-signal
// resistance.
const thermalVoltage = 0.026

// SizeVariant sizes a sensor of the given technology for a module
// estimate under the estimator parameters, reporting the transient rail
// perturbation the module would suffer and whether it respects r*.
func SizeVariant(tech Technology, moduleIdx int, m *estimate.Module, p estimate.Params) VariantSensor {
	v := VariantSensor{Technology: tech}
	v.Module = moduleIdx
	v.Threshold = p.IDDQth
	v.RailLimit = p.RailLimit
	v.IDDMax = m.IDDMax
	v.Cs = m.Cs

	switch tech {
	case BypassMOS:
		v.ROn = m.Rs
		v.Area = m.SensorArea
		v.Perturbation = m.Rs * m.IDDMax // = r* by construction
	case PNJunction:
		// The diode conducts the whole transient: the drop saturates
		// near the junction voltage. The effective small-signal
		// resistance at the quiescent operating point sets τ.
		v.ROn = thermalVoltage / p.IDDQth
		v.Area = p.AreaA0 // detection circuitry only
		v.Perturbation = 0.65
	case Bipolar:
		v.ROn = thermalVoltage / (2 * p.IDDQth)
		v.Area = 1.5 * p.AreaA0
		v.Perturbation = 0.3
	case Proportional:
		// The proportional sensor regulates the drop to half the limit
		// across the full current range: twice the bypass conductance
		// (twice the device width) plus a detection circuit roughly
		// twice the plain comparator.
		v.ROn = 0.5 * p.RailLimit / m.IDDMax
		v.Area = 2*p.AreaA0 + p.AreaA1/v.ROn
		v.Perturbation = 0.5 * p.RailLimit
	}
	v.Tau = v.ROn * v.Cs
	if v.IDDMax > v.Threshold {
		// Settling to the sensing threshold with the variant's own τ.
		v.Settle = v.Tau * math.Log(v.IDDMax/v.Threshold)
	}
	v.Suitable = v.Perturbation <= p.RailLimit+1e-12
	return v
}
