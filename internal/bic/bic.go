// Package bic models the Built-In Current sensor of the paper's figure 1
// — a sensing device in the module's ground path, a bypass MOS switch
// sized from the virtual-rail perturbation limit, and detection circuitry
// comparing the sensed quiescent current against IDDQ,th — together with a
// chip-level view that applies test vectors to a partitioned circuit,
// injects defects, and produces the per-module PASS/FAIL outcomes.
package bic

import (
	"fmt"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/logicsim"
)

// Sensor is one sized BIC sensor instance guarding a module.
type Sensor struct {
	Module    int     // module index
	ROn       float64 // bypass MOS ON resistance, Ω
	Area      float64 // layout area, abstract units (A0 + A1/ROn)
	Cs        float64 // parasitic capacitance at the virtual rail, F
	Tau       float64 // sensing time constant ROn·Cs, s
	Settle    float64 // transient decay + sensing time Δ(τ), s
	Threshold float64 // detection threshold IDDQ,th, A
	RailLimit float64 // guaranteed maximum rail perturbation r*, V
	IDDMax    float64 // module transient current the sizing assumed, A
}

// Size creates the sensor for a module estimate under the given estimator
// parameters.
func Size(moduleIdx int, m *estimate.Module, p estimate.Params) Sensor {
	return Sensor{
		Module:    moduleIdx,
		ROn:       m.Rs,
		Area:      m.SensorArea,
		Cs:        m.Cs,
		Tau:       m.Tau,
		Settle:    m.Settle,
		Threshold: p.IDDQth,
		RailLimit: p.RailLimit,
		IDDMax:    m.IDDMax,
	}
}

// Evaluate implements the detection circuitry: once the bypass switch
// opens (control C = 0 in figure 1), the sensing device converts the
// module's quiescent current to a voltage and the comparator raises FAIL
// when the current is at or above the threshold. It returns true for
// PASS.
func (s *Sensor) Evaluate(iddq float64) bool {
	return iddq < s.Threshold
}

// String renders the sensor for reports.
func (s *Sensor) String() string {
	return fmt.Sprintf("sensor[M%d]: Ron=%.2gΩ area=%.4g Cs=%.3gF τ=%.3gs Δ=%.3gs",
		s.Module, s.ROn, s.Area, s.Cs, s.Tau, s.Settle)
}

// Chip is a partitioned circuit with one sized BIC sensor per module: the
// complete IDDQ-testable design the synthesis flow produces.
type Chip struct {
	Circuit   *circuit.Circuit
	Annotated *celllib.Annotated
	Partition [][]int // module index -> gate IDs
	Sensors   []Sensor
	moduleOf  []int // gate ID -> module index (-1 for inputs)
	sim       *logicsim.Simulator
}

// NewChip builds the chip view for a partition, sizing one sensor per
// module with the estimator.
func NewChip(a *celllib.Annotated, partition [][]int, e *estimate.Estimator) (*Chip, error) {
	c := a.Circuit
	moduleOf := make([]int, c.NumGates())
	for i := range moduleOf {
		moduleOf[i] = -1
	}
	covered := 0
	for mi, gates := range partition {
		if len(gates) == 0 {
			return nil, fmt.Errorf("bic: module %d is empty", mi)
		}
		for _, g := range gates {
			if g < 0 || g >= c.NumGates() {
				return nil, fmt.Errorf("bic: module %d: gate %d out of range", mi, g)
			}
			if c.Gates[g].Type == circuit.Input {
				return nil, fmt.Errorf("bic: module %d contains primary input %q", mi, c.Gates[g].Name)
			}
			if moduleOf[g] != -1 {
				return nil, fmt.Errorf("bic: gate %q in two modules", c.Gates[g].Name)
			}
			moduleOf[g] = mi
			covered++
		}
	}
	if covered != c.NumLogicGates() {
		return nil, fmt.Errorf("bic: partition covers %d of %d gates", covered, c.NumLogicGates())
	}
	ch := &Chip{
		Circuit:   c,
		Annotated: a,
		Partition: partition,
		Sensors:   make([]Sensor, len(partition)),
		moduleOf:  moduleOf,
		sim:       logicsim.New(c),
	}
	for mi, gates := range partition {
		ch.Sensors[mi] = Size(mi, e.EvalModule(gates), e.P)
	}
	return ch, nil
}

// ModuleOf returns the module index of a logic gate (-1 for inputs).
func (ch *Chip) ModuleOf(gate int) int { return ch.moduleOf[gate] }

// Reading is the outcome of one module's IDDQ measurement for one vector.
type Reading struct {
	Module int
	IDDQ   float64 // sensed quiescent current, A
	Pass   bool
}

// ApplyVector runs one IDDQ test cycle (figure 1's sequencing): the vector
// is applied with the bypass closed, the transient decays for the slowest
// module's settling time, the bypass opens and every sensor measures its
// module's quiescent current — the fault-free state-dependent leakage plus
// the current of any injected defect excited by this vector.
func (ch *Chip) ApplyVector(vec []bool, injected []faults.Fault) ([]Reading, error) {
	if err := ch.sim.ApplyBits(vec); err != nil {
		return nil, err
	}
	readings := make([]Reading, len(ch.Partition))
	for mi, gates := range ch.Partition {
		readings[mi] = Reading{
			Module: mi,
			IDDQ:   ch.sim.FaultFreeIDDQ(ch.Annotated, gates),
		}
	}
	for fi := range injected {
		f := &injected[fi]
		if obs, excited := f.Excited(ch.Circuit, ch.sim.Values()); excited {
			mi := ch.moduleOf[obs]
			if mi >= 0 {
				readings[mi].IDDQ += f.Current
			}
		}
	}
	for mi := range readings {
		readings[mi].Pass = ch.Sensors[mi].Evaluate(readings[mi].IDDQ)
	}
	return readings, nil
}

// RunTest applies a vector set against an injected defect and reports
// whether any sensor ever fails (defect detected), plus the first failing
// (vector, module) pair.
func (ch *Chip) RunTest(vectors [][]bool, injected []faults.Fault) (detected bool, vector, module int, err error) {
	for vi, v := range vectors {
		readings, err := ch.ApplyVector(v, injected)
		if err != nil {
			return false, 0, 0, err
		}
		for _, r := range readings {
			if !r.Pass {
				return true, vi, r.Module, nil
			}
		}
	}
	return false, 0, 0, nil
}

// TotalSensorArea sums the sensor areas — the quantity Table 1 compares
// between partitioning methods.
func (ch *Chip) TotalSensorArea() float64 {
	var sum float64
	for i := range ch.Sensors {
		sum += ch.Sensors[i].Area
	}
	return sum
}
