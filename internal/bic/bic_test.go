package bic

import (
	"math/rand"
	"strings"
	"testing"

	"iddqsyn/internal/atpg"
	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/faults"
)

func c17Fixture(t *testing.T) (*celllib.Annotated, *estimate.Estimator) {
	t.Helper()
	a, err := celllib.Annotate(circuits.C17(), celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	return a, estimate.New(a, estimate.DefaultParams())
}

// twoModules returns the paper's optimum C17 partition {(1,3,5),(2,4,6)}.
func twoModules(t *testing.T, a *celllib.Annotated) [][]int {
	t.Helper()
	var m1, m2 []int
	for _, name := range []string{"g1", "g3", "g5"} {
		g, _ := a.Circuit.GateByName(name)
		m1 = append(m1, g.ID)
	}
	for _, name := range []string{"g2", "g4", "g6"} {
		g, _ := a.Circuit.GateByName(name)
		m2 = append(m2, g.ID)
	}
	return [][]int{m1, m2}
}

func TestSizeAndEvaluate(t *testing.T) {
	a, e := c17Fixture(t)
	m := e.EvalModule(a.Circuit.LogicGates())
	s := Size(0, m, e.P)
	if s.ROn != m.Rs || s.Area != m.SensorArea || s.Tau != m.Tau {
		t.Error("Size must copy the module estimates")
	}
	if !s.Evaluate(s.Threshold / 2) {
		t.Error("half-threshold current must PASS")
	}
	if s.Evaluate(s.Threshold * 2) {
		t.Error("double-threshold current must FAIL")
	}
	if s.Evaluate(s.Threshold) {
		t.Error("at-threshold current must FAIL (detect at IDDQ >= th)")
	}
	if !strings.Contains(s.String(), "sensor[M0]") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestNewChipValidation(t *testing.T) {
	a, e := c17Fixture(t)
	gates := a.Circuit.LogicGates()

	if _, err := NewChip(a, [][]int{gates[:3]}, e); err == nil {
		t.Error("want error for partition not covering all gates")
	}
	if _, err := NewChip(a, [][]int{gates, gates[:1]}, e); err == nil {
		t.Error("want error for overlapping modules")
	}
	if _, err := NewChip(a, [][]int{gates, {}}, e); err == nil {
		t.Error("want error for empty module")
	}
	if _, err := NewChip(a, [][]int{append([]int{a.Circuit.Inputs[0]}, gates...)}, e); err == nil {
		t.Error("want error for module containing a primary input")
	}
	if _, err := NewChip(a, [][]int{append([]int{999}, gates...)}, e); err == nil {
		t.Error("want error for out-of-range gate")
	}
	ch, err := NewChip(a, twoModules(t, a), e)
	if err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	if got := len(ch.Sensors); got != 2 {
		t.Errorf("sensors = %d, want 2", got)
	}
	g1, _ := a.Circuit.GateByName("g1")
	g2, _ := a.Circuit.GateByName("g2")
	if ch.ModuleOf(g1.ID) != 0 || ch.ModuleOf(g2.ID) != 1 {
		t.Error("ModuleOf mismatch")
	}
	if ch.ModuleOf(a.Circuit.Inputs[0]) != -1 {
		t.Error("inputs have no module")
	}
}

func TestFaultFreeVectorsPass(t *testing.T) {
	a, e := c17Fixture(t)
	ch, err := NewChip(a, twoModules(t, a), e)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 32; trial++ {
		vec := make([]bool, len(a.Circuit.Inputs))
		for i := range vec {
			vec[i] = rng.Intn(2) == 1
		}
		readings, err := ch.ApplyVector(vec, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range readings {
			if !r.Pass {
				t.Fatalf("fault-free module %d FAILs with IDDQ %g (threshold %g)",
					r.Module, r.IDDQ, ch.Sensors[r.Module].Threshold)
			}
			if r.IDDQ <= 0 {
				t.Fatal("fault-free IDDQ must still be positive leakage")
			}
		}
	}
}

func TestInjectedBridgeDetected(t *testing.T) {
	a, e := c17Fixture(t)
	ch, err := NewChip(a, twoModules(t, a), e)
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := a.Circuit.GateByName("g1")
	g2, _ := a.Circuit.GateByName("g2")
	bridge := faults.Fault{Kind: faults.Bridge, A: g1.ID, B: g2.ID, Current: 1e-3}

	// I1=1,I3=1,I4=0: g1=0, g2=1 -> excited, observed at g1 (module 0).
	readings, err := ch.ApplyVector([]bool{true, false, true, false, false}, []faults.Fault{bridge})
	if err != nil {
		t.Fatal(err)
	}
	if readings[0].Pass {
		t.Error("module 0 must FAIL with the bridge excited")
	}
	if !readings[1].Pass {
		t.Error("module 1 must still PASS — the defect current flows in module 0's ground path")
	}

	// Same values on both nets: not excited, all PASS.
	readings, err = ch.ApplyVector([]bool{true, false, false, false, false}, []faults.Fault{bridge})
	if err != nil {
		t.Fatal(err)
	}
	if !readings[0].Pass || !readings[1].Pass {
		t.Error("unexcited bridge must not fail any module")
	}
}

func TestRunTestEndToEnd(t *testing.T) {
	// Full flow: ATPG test set detects an injected defect through the
	// sized sensors; the fault-free chip passes the whole set.
	a, e := c17Fixture(t)
	ch, err := NewChip(a, twoModules(t, a), e)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.DefaultConfig()
	list := faults.Universe(a.Circuit, cfg, rand.New(rand.NewSource(1)))
	opt := atpg.DefaultOptions()
	opt.TargetCoverage = 1.0
	gen, err := atpg.Generate(a.Circuit, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	detected, _, _, err := ch.RunTest(gen.Vectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if detected {
		t.Fatal("fault-free chip failed the test set")
	}
	// Every fault the ATPG claims detected must fail on silicon too.
	misses := 0
	for _, d := range gen.Detections {
		hit, _, module, err := ch.RunTest(gen.Vectors, []faults.Fault{list[d.Fault]})
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			misses++
			continue
		}
		if want := ch.ModuleOf(d.Observer); module != want {
			t.Errorf("fault %v detected in module %d, expected %d", &list[d.Fault], module, want)
		}
	}
	if misses > 0 {
		t.Errorf("%d of %d detected faults missed on the chip model", misses, len(gen.Detections))
	}
}

func TestTotalSensorArea(t *testing.T) {
	a, e := c17Fixture(t)
	ch, err := NewChip(a, twoModules(t, a), e)
	if err != nil {
		t.Fatal(err)
	}
	want := ch.Sensors[0].Area + ch.Sensors[1].Area
	if got := ch.TotalSensorArea(); got != want {
		t.Errorf("TotalSensorArea = %g, want %g", got, want)
	}
	if want <= 0 {
		t.Error("sensor area must be positive")
	}
}

func TestApplyVectorBadWidth(t *testing.T) {
	a, e := c17Fixture(t)
	ch, err := NewChip(a, twoModules(t, a), e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.ApplyVector(make([]bool, 9), nil); err == nil {
		t.Error("want error for wrong vector width")
	}
}
