package bic

import (
	"testing"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/standard"
)

// sensorsFixture sizes sensors for a 6-module partition of c432.
func sensorsFixture(t *testing.T) ([]Sensor, float64, float64) {
	t.Helper()
	c := circuits.MustISCAS85Like("c432")
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	e := estimate.New(a, estimate.DefaultParams())
	groups := standard.StandardPartitionK(c, 6, e.P.Rho)
	sensors := make([]Sensor, len(groups))
	for i, g := range groups {
		sensors[i] = Size(i, e.EvalModule(g), e.P)
	}
	return sensors, e.NominalDelay() * 1.05, e.P.AreaA0
}

func TestStrategyString(t *testing.T) {
	if ReadParallel.String() != "parallel" || ReadSerial.String() != "serial" || ReadGrouped.String() != "grouped" {
		t.Error("Strategy.String mismatch")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("out-of-range Strategy.String")
	}
}

func TestScheduleTradeoffs(t *testing.T) {
	sensors, dBIC, a0 := sensorsFixture(t)
	const vectors = 100
	par, err := PlanSchedule(ReadParallel, sensors, vectors, dBIC, a0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := PlanSchedule(ReadSerial, sensors, vectors, dBIC, a0, 0)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := PlanSchedule(ReadGrouped, sensors, vectors, dBIC, a0, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Area: serial < grouped < parallel (detection circuits 1 < 3 < K).
	if !(ser.SensorArea < grp.SensorArea && grp.SensorArea < par.SensorArea) {
		t.Errorf("area ordering: serial %g, grouped %g, parallel %g",
			ser.SensorArea, grp.SensorArea, par.SensorArea)
	}
	// Time: parallel <= grouped <= serial.
	if !(par.TotalTime <= grp.TotalTime && grp.TotalTime <= ser.TotalTime) {
		t.Errorf("time ordering: parallel %g, grouped %g, serial %g",
			par.TotalTime, grp.TotalTime, ser.TotalTime)
	}
	// Structure checks.
	if par.Groups != len(sensors) || ser.Groups != 1 || grp.Groups != 3 {
		t.Errorf("groups: %d/%d/%d", par.Groups, ser.Groups, grp.Groups)
	}
	if par.VectorPeriod <= dBIC {
		t.Error("vector period must include sensing time")
	}
}

func TestScheduleGroupClamping(t *testing.T) {
	sensors, dBIC, a0 := sensorsFixture(t)
	over, err := PlanSchedule(ReadGrouped, sensors, 10, dBIC, a0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if over.Groups != len(sensors) {
		t.Errorf("groups = %d, want clamped to %d", over.Groups, len(sensors))
	}
	under, err := PlanSchedule(ReadGrouped, sensors, 10, dBIC, a0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if under.Groups != 1 {
		t.Errorf("groups = %d, want clamped to 1", under.Groups)
	}
}

func TestScheduleErrors(t *testing.T) {
	sensors, dBIC, a0 := sensorsFixture(t)
	if _, err := PlanSchedule(ReadParallel, nil, 10, dBIC, a0, 0); err == nil {
		t.Error("want error for no sensors")
	}
	if _, err := PlanSchedule(ReadParallel, sensors, 0, dBIC, a0, 0); err == nil {
		t.Error("want error for zero vectors")
	}
	if _, err := PlanSchedule(ReadParallel, sensors, 10, 0, a0, 0); err == nil {
		t.Error("want error for zero delay")
	}
	if _, err := PlanSchedule(Strategy(9), sensors, 10, dBIC, a0, 0); err == nil {
		t.Error("want error for unknown strategy")
	}
}

func TestBestSchedulePicksMinimumADP(t *testing.T) {
	sensors, dBIC, a0 := sensorsFixture(t)
	best, err := BestSchedule(sensors, 100, dBIC, a0)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{ReadParallel, ReadSerial, ReadGrouped} {
		s, err := PlanSchedule(strat, sensors, 100, dBIC, a0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if s.SensorArea*s.TotalTime < best.SensorArea*best.TotalTime*(1-1e-12) &&
			s.Groups == 2 && strat == ReadGrouped {
			// BestSchedule uses √K groups, not 2; only flag a real miss
			// among the strategies it actually evaluates.
			continue
		}
	}
	if best.SensorArea <= 0 || best.TotalTime <= 0 {
		t.Error("degenerate best schedule")
	}
}

func TestScheduleSingleSensor(t *testing.T) {
	sensors, dBIC, a0 := sensorsFixture(t)
	one := sensors[:1]
	par, err := PlanSchedule(ReadParallel, one, 10, dBIC, a0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := PlanSchedule(ReadSerial, one, 10, dBIC, a0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalTime != ser.TotalTime || par.SensorArea != ser.SensorArea {
		t.Error("with one sensor all strategies coincide")
	}
}
