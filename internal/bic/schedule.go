package bic

import (
	"fmt"
	"math"
)

// Strategy selects how the per-module sensors are read out after each
// test vector. The paper's cost c₅ charges every module for the test
// clock and test output routing; sharing detection circuitry between
// sensors trades that area against test application time (§3.4).
type Strategy int

// The modelled readout strategies.
const (
	// ReadParallel gives every sensor its own detection circuit: all
	// modules are sensed simultaneously, so a vector costs the slowest
	// module's settling time once.
	ReadParallel Strategy = iota
	// ReadSerial scan-chains all sensing devices through one shared
	// detection circuit: cheapest area, but the settling+sensing times
	// add up module by module.
	ReadSerial
	// ReadGrouped shares one detection circuit among each group of
	// sensors: the middle ground.
	ReadGrouped
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case ReadParallel:
		return "parallel"
	case ReadSerial:
		return "serial"
	case ReadGrouped:
		return "grouped"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Schedule evaluates a readout strategy over a set of sized sensors.
type Schedule struct {
	Strategy Strategy
	Groups   int // detection circuits (ReadGrouped: the group count)

	VectorPeriod float64 // time per test vector, s (D_BIC + sensing)
	TotalTime    float64 // VectorPeriod × vector count, s
	SensorArea   float64 // total sensor area incl. shared detection
}

// PlanSchedule computes the schedule for nVectors test vectors with
// circuit delay dBIC (the settled-logic time per vector). detectionArea
// is the per-detection-circuit area (the A₀ of the §3.1 area model);
// the per-sensor bypass/sensing area is taken from each sensor's sizing.
// groups is used only by ReadGrouped and is clamped to [1, len(sensors)].
func PlanSchedule(strategy Strategy, sensors []Sensor, nVectors int,
	dBIC, detectionArea float64, groups int) (*Schedule, error) {
	if len(sensors) == 0 {
		return nil, fmt.Errorf("bic: schedule needs at least one sensor")
	}
	if nVectors < 1 {
		return nil, fmt.Errorf("bic: schedule needs at least one vector")
	}
	if dBIC <= 0 || detectionArea <= 0 {
		return nil, fmt.Errorf("bic: schedule needs positive delay and detection area")
	}
	s := &Schedule{Strategy: strategy}

	// Sensing-element + bypass area (everything beyond the detection
	// circuit) per sensor.
	var deviceArea float64
	var maxSettle, sumSettle float64
	for i := range sensors {
		da := sensors[i].Area - detectionArea
		if da < 0 {
			da = 0
		}
		deviceArea += da
		if sensors[i].Settle > maxSettle {
			maxSettle = sensors[i].Settle
		}
		sumSettle += sensors[i].Settle
	}

	switch strategy {
	case ReadParallel:
		s.Groups = len(sensors)
		s.VectorPeriod = dBIC + maxSettle
	case ReadSerial:
		s.Groups = 1
		s.VectorPeriod = dBIC + sumSettle
	case ReadGrouped:
		if groups < 1 {
			groups = 1
		}
		if groups > len(sensors) {
			groups = len(sensors)
		}
		s.Groups = groups
		// Each detection circuit serves ceil(K/groups) sensors in turn;
		// rounds run in parallel across groups, so the per-vector sensing
		// time is the round count times the slowest settle.
		rounds := int(math.Ceil(float64(len(sensors)) / float64(groups)))
		s.VectorPeriod = dBIC + float64(rounds)*maxSettle
	default:
		return nil, fmt.Errorf("bic: unknown strategy %v", strategy)
	}
	s.SensorArea = deviceArea + float64(s.Groups)*detectionArea
	s.TotalTime = s.VectorPeriod * float64(nVectors)
	return s, nil
}

// BestSchedule evaluates all strategies (grouped at √K detection
// circuits) and returns the one minimising area·time — a simple
// area-delay-product figure of merit for the readout trade-off.
func BestSchedule(sensors []Sensor, nVectors int, dBIC, detectionArea float64) (*Schedule, error) {
	groups := int(math.Round(math.Sqrt(float64(len(sensors)))))
	var best *Schedule
	for _, strat := range []Strategy{ReadParallel, ReadSerial, ReadGrouped} {
		s, err := PlanSchedule(strat, sensors, nVectors, dBIC, detectionArea, groups)
		if err != nil {
			return nil, err
		}
		if best == nil || s.SensorArea*s.TotalTime < best.SensorArea*best.TotalTime {
			best = s
		}
	}
	return best, nil
}
