package bic

import (
	"testing"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
)

func moduleFixture(t *testing.T) (*estimate.Module, estimate.Params) {
	t.Helper()
	c := circuits.MustISCAS85Like("c432")
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	e := estimate.New(a, estimate.DefaultParams())
	return e.EvalModule(c.LogicGates()), e.P
}

func TestTechnologyString(t *testing.T) {
	want := map[Technology]string{
		BypassMOS: "bypass-mos", PNJunction: "pn-junction",
		Bipolar: "bipolar", Proportional: "proportional",
	}
	for tech, name := range want {
		if got := tech.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", int(tech), got, name)
		}
	}
	if Technology(9).String() != "Technology(9)" {
		t.Error("out-of-range Technology.String")
	}
	if len(Technologies()) != 4 {
		t.Error("Technologies() should list all four classes")
	}
}

func TestBypassMOSMeetsRailLimit(t *testing.T) {
	m, p := moduleFixture(t)
	v := SizeVariant(BypassMOS, 0, m, p)
	if !v.Suitable {
		t.Error("the paper's bypass-MOS sensor is sized to meet r* by construction")
	}
	if !approxRel(v.Perturbation, p.RailLimit, 1e-9) {
		t.Errorf("perturbation = %g, want exactly r* = %g", v.Perturbation, p.RailLimit)
	}
	if v.ROn != m.Rs || v.Area != m.SensorArea {
		t.Error("bypass-MOS variant must agree with the §3.1 sizing")
	}
}

func TestJunctionSensorsViolateStringentLimit(t *testing.T) {
	// The paper's motivation for the bypass device: diode and bipolar
	// drops (0.65 V / 0.3 V) are far above the 100-300 mV limits.
	m, p := moduleFixture(t)
	for _, tech := range []Technology{PNJunction, Bipolar} {
		v := SizeVariant(tech, 0, m, p)
		if v.Suitable {
			t.Errorf("%v should violate a %g V rail limit", tech, p.RailLimit)
		}
		if v.Perturbation <= p.RailLimit {
			t.Errorf("%v perturbation %g should exceed r*", tech, v.Perturbation)
		}
	}
}

func TestJunctionSensorsSuitableWithRelaxedLimit(t *testing.T) {
	m, p := moduleFixture(t)
	p.RailLimit = 0.7 // noise-tolerant application
	if v := SizeVariant(PNJunction, 0, m, p); !v.Suitable {
		t.Error("pn-junction should be suitable at a 0.7 V limit")
	}
	if v := SizeVariant(Bipolar, 0, m, p); !v.Suitable {
		t.Error("bipolar should be suitable at a 0.7 V limit")
	}
}

func TestPNJunctionAreaAdvantage(t *testing.T) {
	// The trade-off: the diode needs no bypass device, so it is far
	// smaller than the r*-sized bypass MOS.
	m, p := moduleFixture(t)
	mos := SizeVariant(BypassMOS, 0, m, p)
	pn := SizeVariant(PNJunction, 0, m, p)
	if pn.Area >= mos.Area {
		t.Errorf("pn-junction area %g should undercut bypass-MOS %g", pn.Area, mos.Area)
	}
}

func TestProportionalHalvesPerturbation(t *testing.T) {
	m, p := moduleFixture(t)
	v := SizeVariant(Proportional, 0, m, p)
	if !v.Suitable {
		t.Error("proportional sensor regulates below r*")
	}
	if !approxRel(v.Perturbation, p.RailLimit/2, 1e-9) {
		t.Errorf("perturbation = %g, want r*/2", v.Perturbation)
	}
	mos := SizeVariant(BypassMOS, 0, m, p)
	if v.Area <= mos.Area {
		t.Error("the proportional sensor pays area for its regulation")
	}
}

func TestVariantSettleTimes(t *testing.T) {
	m, p := moduleFixture(t)
	for _, tech := range Technologies() {
		v := SizeVariant(tech, 0, m, p)
		if v.Settle <= 0 {
			t.Errorf("%v: settle time must be positive for a real module", tech)
		}
		if v.Tau <= 0 {
			t.Errorf("%v: time constant must be positive", tech)
		}
	}
}

func approxRel(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	s := b
	if s < 0 {
		s = -s
	}
	return d <= eps*(1+s)
}
