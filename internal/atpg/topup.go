package atpg

import (
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/logicsim"
	"iddqsyn/internal/podem"
)

// TopUpResult extends a pseudo-random test set with deterministic vectors
// for the random-resistant faults.
type TopUpResult struct {
	Added        int // deterministic vectors appended
	NewDetected  int // previously undetected faults now detected
	ProvenUnsat  int // faults proven unexcitable by any vector
	Aborted      int // faults whose search hit the backtrack budget
	FinalMissing int // faults still undetected (unsat + aborted)
}

// excitationObjectives returns the candidate objective sets whose
// satisfaction excites the fault (any one suffices).
func excitationObjectives(c *circuit.Circuit, f *faults.Fault) [][]podem.Objective {
	switch f.Kind {
	case faults.Bridge:
		return [][]podem.Objective{
			{{Gate: f.A, Value: true}, {Gate: f.B, Value: false}},
			{{Gate: f.A, Value: false}, {Gate: f.B, Value: true}},
		}
	case faults.GateOxideShort:
		pin := c.Gates[f.Gate].Fanin[f.Pin]
		return [][]podem.Objective{{{Gate: pin, Value: true}}}
	case faults.StuckOn:
		return [][]podem.Objective{{{Gate: f.Gate, Value: !f.PMOS}}}
	}
	return nil
}

// TopUp runs the PODEM justification engine on every fault the random
// set left undetected, appending the found vectors to res (and recording
// their detections). Faults whose every excitation objective is proven
// unsatisfiable are genuinely untestable by IDDQ (redundant under the
// fault model); aborted searches count towards the remaining misses.
func TopUp(c *circuit.Circuit, list []faults.Fault, res *Result, maxBacktracks int) (*TopUpResult, error) {
	detected := make([]bool, len(list))
	for _, d := range res.Detections {
		detected[d.Fault] = true
	}
	out := &TopUpResult{}
	sim := logicsim.New(c)
	for fi := range list {
		if detected[fi] {
			continue
		}
		f := &list[fi]
		status := podem.Unsat
		var vec []bool
		for _, objs := range excitationObjectives(c, f) {
			v, st, err := podem.Justify(c, objs, maxBacktracks)
			if err != nil {
				return nil, err
			}
			if st == podem.Found {
				vec, status = v, podem.Found
				break
			}
			if st == podem.Aborted {
				status = podem.Aborted
			}
		}
		switch status {
		case podem.Found:
			if err := sim.ApplyBits(vec); err != nil {
				return nil, err
			}
			obs, excited := f.Excited(c, sim.Values())
			if !excited {
				// The justification engine guarantees the objectives, so
				// this indicates an objective/excitation mismatch.
				out.Aborted++
				continue
			}
			vi := len(res.Vectors)
			res.Vectors = append(res.Vectors, vec)
			res.Detections = append(res.Detections, Detection{
				Fault: fi, Vector: vi, Observer: obs,
			})
			detected[fi] = true
			out.Added++
			out.NewDetected++
			// The new vector may detect other stragglers too.
			for fj := fi + 1; fj < len(list); fj++ {
				if detected[fj] {
					continue
				}
				if obs2, ok := list[fj].Excited(c, sim.Values()); ok {
					detected[fj] = true
					out.NewDetected++
					res.Detections = append(res.Detections, Detection{
						Fault: fj, Vector: vi, Observer: obs2,
					})
				}
			}
		case podem.Unsat:
			out.ProvenUnsat++
		case podem.Aborted:
			out.Aborted++
		}
	}
	out.FinalMissing = out.ProvenUnsat + out.Aborted
	return out, nil
}
