package atpg

import (
	"math/rand"
	"testing"

	"iddqsyn/internal/circuits"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/logicsim"
)

func TestGenerateC17FullCoverage(t *testing.T) {
	c := circuits.C17()
	cfg := faults.DefaultConfig()
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(1)))
	opt := DefaultOptions()
	opt.TargetCoverage = 1.0
	res, err := Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() < 0.99 {
		t.Errorf("coverage = %.3f, want ~1.0 on C17 (all faults excitable)", res.Coverage())
	}
	if len(res.Vectors) == 0 {
		t.Fatal("no vectors kept")
	}
	if len(res.Vectors) > 32 {
		t.Errorf("kept %d vectors for C17; compaction should keep the set tiny", len(res.Vectors))
	}
	t.Logf("C17: %d faults, %d vectors, coverage %.3f", res.Total, len(res.Vectors), res.Coverage())
}

func TestGenerateDeterministic(t *testing.T) {
	c := circuits.C17()
	list := faults.Universe(c, faults.DefaultConfig(), rand.New(rand.NewSource(1)))
	opt := DefaultOptions()
	r1, err := Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Vectors) != len(r2.Vectors) || r1.Detected() != r2.Detected() {
		t.Error("generation must be deterministic for a fixed seed")
	}
}

// An injected stream seeded like opt.Seed must reproduce the Seed-driven
// run bit for bit — the contract callers rely on when threading one
// counted source through a whole study.
func TestGenerateInjectedRandMatchesSeed(t *testing.T) {
	c := circuits.C17()
	list := faults.Universe(c, faults.DefaultConfig(), rand.New(rand.NewSource(1)))
	opt := DefaultOptions()
	bySeed, err := Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Rand = rand.New(rand.NewSource(opt.Seed))
	byRand, err := Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(bySeed.Vectors) != len(byRand.Vectors) || bySeed.Detected() != byRand.Detected() {
		t.Errorf("injected rand diverged: %d/%d vectors, %d/%d detections",
			len(bySeed.Vectors), len(byRand.Vectors), bySeed.Detected(), byRand.Detected())
	}
	for i := range bySeed.Vectors {
		for j := range bySeed.Vectors[i] {
			if bySeed.Vectors[i][j] != byRand.Vectors[i][j] {
				t.Fatalf("vector %d bit %d differs", i, j)
			}
		}
	}
}

// Every detection claimed by Generate must hold under independent scalar
// re-simulation.
func TestDetectionsVerifyScalar(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 100
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(3)))
	opt := DefaultOptions()
	opt.Seed = 7
	res, err := Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() == 0 {
		t.Fatal("nothing detected")
	}
	s := logicsim.New(c)
	for _, d := range res.Detections {
		if err := s.ApplyBits(res.Vectors[d.Vector]); err != nil {
			t.Fatal(err)
		}
		obs, ex := list[d.Fault].Excited(c, s.Values())
		if !ex {
			t.Fatalf("fault %v claimed detected by vector %d but not excited", &list[d.Fault], d.Vector)
		}
		if obs != d.Observer {
			t.Fatalf("fault %v: observer %d, scalar says %d", &list[d.Fault], d.Observer, obs)
		}
	}
}

func TestEveryKeptVectorDetects(t *testing.T) {
	c := circuits.C17()
	list := faults.Universe(c, faults.DefaultConfig(), rand.New(rand.NewSource(1)))
	res, err := Generate(c, list, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	used := make([]bool, len(res.Vectors))
	for _, d := range res.Detections {
		used[d.Vector] = true
	}
	for i, u := range used {
		if !u {
			t.Errorf("vector %d detects nothing; compaction should have dropped it", i)
		}
	}
}

func TestGenerateRespectsBudget(t *testing.T) {
	c := circuits.MustISCAS85Like("c880")
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 200
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(1)))
	opt := Options{TargetCoverage: 1.0, MaxVectors: 100, Seed: 1}
	res, err := Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated > 100 {
		t.Errorf("generated %d vectors, budget 100", res.Generated)
	}
}

func TestGenerateEmptyFaultList(t *testing.T) {
	c := circuits.C17()
	res, err := Generate(c, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 || len(res.Vectors) != 0 {
		t.Errorf("empty list: coverage=%g vectors=%d", res.Coverage(), len(res.Vectors))
	}
}

func TestGenerateBadOptions(t *testing.T) {
	c := circuits.C17()
	if _, err := Generate(c, nil, Options{TargetCoverage: 0, MaxVectors: 10}); err == nil {
		t.Error("want error for zero coverage target")
	}
	if _, err := Generate(c, nil, Options{TargetCoverage: 1.5, MaxVectors: 10}); err == nil {
		t.Error("want error for coverage > 1")
	}
	if _, err := Generate(c, nil, Options{TargetCoverage: 0.9, MaxVectors: 0}); err == nil {
		t.Error("want error for zero budget")
	}
}

func TestFaultSimMatchesGenerate(t *testing.T) {
	c := circuits.C17()
	list := faults.Universe(c, faults.DefaultConfig(), rand.New(rand.NewSource(1)))
	opt := DefaultOptions()
	opt.TargetCoverage = 1.0
	gen, err := Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := FaultSim(c, list, gen.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Detected() != gen.Detected() {
		t.Errorf("FaultSim detects %d, Generate claimed %d", sim.Detected(), gen.Detected())
	}
}

func TestFaultSimManyVectors(t *testing.T) {
	// More than one 64-pattern batch.
	c := circuits.C17()
	list := faults.Universe(c, faults.DefaultConfig(), rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(9))
	vectors := make([][]bool, 150)
	for i := range vectors {
		vectors[i] = make([]bool, len(c.Inputs))
		for j := range vectors[i] {
			vectors[i][j] = rng.Intn(2) == 1
		}
	}
	res, err := FaultSim(c, list, vectors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() < 0.99 {
		t.Errorf("150 random vectors on C17 should cover ~everything, got %.3f", res.Coverage())
	}
	// First-detection vector indices must be ascending per fault order of
	// detection batches; at minimum, every index is within range.
	for _, d := range res.Detections {
		if d.Vector < 0 || d.Vector >= len(vectors) {
			t.Fatalf("detection vector %d out of range", d.Vector)
		}
	}
}

func TestFaultSimEmpty(t *testing.T) {
	c := circuits.C17()
	res, err := FaultSim(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Error("empty fault list should report full coverage")
	}
}

func BenchmarkGenerateC880(b *testing.B) {
	b.ReportAllocs()
	c := circuits.MustISCAS85Like("c880")
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 500
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(1)))
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(c, list, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// TopUp must close most of the random set's coverage gap, proving the
// rest unexcitable.
func TestTopUpClosesCoverageGap(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 0 // the full bridge universe, including hard pairs
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(2)))
	opt := DefaultOptions()
	opt.MaxVectors = 256 // deliberately starve the random phase
	opt.TargetCoverage = 1.0
	res, err := Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	before := res.Detected()
	if before == len(list) {
		t.Skip("random phase already complete; nothing to top up")
	}
	tu, err := TopUp(c, list, res, 2000)
	if err != nil {
		t.Fatal(err)
	}
	after := res.Detected()
	if after != before+tu.NewDetected {
		t.Errorf("bookkeeping: %d + %d != %d", before, tu.NewDetected, after)
	}
	if after+tu.ProvenUnsat+tu.Aborted != len(list) {
		t.Errorf("accounting: %d detected + %d unsat + %d aborted != %d faults",
			after, tu.ProvenUnsat, tu.Aborted, len(list))
	}
	if tu.NewDetected == 0 && tu.ProvenUnsat == 0 {
		t.Error("top-up neither detected nor proved anything")
	}
	// Every appended detection must verify under scalar re-simulation.
	s := logicsim.New(c)
	for _, d := range res.Detections[before:] {
		if err := s.ApplyBits(res.Vectors[d.Vector]); err != nil {
			t.Fatal(err)
		}
		if _, ok := list[d.Fault].Excited(c, s.Values()); !ok {
			t.Fatalf("top-up detection of %v does not verify", &list[d.Fault])
		}
	}
	t.Logf("c432 full universe: random %d/%d -> +%d deterministic vectors, +%d detected, %d proven unexcitable, %d aborted",
		before, len(list), tu.Added, tu.NewDetected, tu.ProvenUnsat, tu.Aborted)
}

// A fault the random phase detects is never touched by TopUp.
func TestTopUpIdempotentOnFullCoverage(t *testing.T) {
	c := circuits.C17()
	list := faults.Universe(c, faults.DefaultConfig(), rand.New(rand.NewSource(1)))
	opt := DefaultOptions()
	opt.TargetCoverage = 1.0
	res, err := Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() != len(list) {
		t.Skip("C17 random coverage unexpectedly incomplete")
	}
	nVec := len(res.Vectors)
	tu, err := TopUp(c, list, res, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tu.Added != 0 || len(res.Vectors) != nVec {
		t.Error("top-up modified a complete test set")
	}
}
