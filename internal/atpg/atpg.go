// Package atpg generates the "precomputed test vector set" the paper's
// test-application-time estimator (§3.4) assumes: pseudo-random vectors
// fault-simulated against the IDDQ defect universe, compacted so that
// every kept vector detects at least one new fault, up to a coverage goal.
//
// IDDQ detection requires only defect excitation — not propagation to an
// output — so pseudo-random generation saturates coverage quickly, which
// matches industrial experience with IDDQ test sets being very short.
package atpg

import (
	"fmt"
	"math/bits"
	"math/rand"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/logicsim"
)

// Options configures test generation.
type Options struct {
	TargetCoverage float64 // stop when detected/total reaches this (0..1]
	MaxVectors     int     // random-vector budget (generated, not kept)
	Seed           int64
	// Rand, when non-nil, supplies the vector stream and takes precedence
	// over Seed. Callers embedded in a larger reproducible run (the
	// evolution engine's counted stream, the yield studies) inject their
	// own source here so every random draw in the run is accounted for.
	Rand *rand.Rand
}

// DefaultOptions returns the settings used by the experiments: 99.5 %
// coverage within a 4096-vector budget.
func DefaultOptions() Options {
	return Options{TargetCoverage: 0.995, MaxVectors: 4096, Seed: 1}
}

// Detection records which kept vector first detects a fault and which
// gate's module observes the defect current.
type Detection struct {
	Fault    int // index into the fault list
	Vector   int // index into Result.Vectors
	Observer int // gate ID whose ground path carries the defect current
}

// Result is a generated and compacted IDDQ test set.
type Result struct {
	Vectors    [][]bool    // kept vectors, in application order
	Detections []Detection // one entry per detected fault
	Total      int         // fault-list size
	Generated  int         // random vectors simulated before stopping
}

// Detected returns the number of detected faults.
func (r *Result) Detected() int { return len(r.Detections) }

// Coverage returns detected/total.
func (r *Result) Coverage() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(len(r.Detections)) / float64(r.Total)
}

// Generate builds an IDDQ test set for the fault list.
func Generate(c *circuit.Circuit, list []faults.Fault, opt Options) (*Result, error) {
	if opt.TargetCoverage <= 0 || opt.TargetCoverage > 1 {
		return nil, fmt.Errorf("atpg: target coverage %g out of (0,1]", opt.TargetCoverage)
	}
	if opt.MaxVectors <= 0 {
		return nil, fmt.Errorf("atpg: non-positive vector budget")
	}
	rng := opt.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	res := &Result{Total: len(list)}
	if len(list) == 0 {
		return res, nil
	}
	p := logicsim.NewParallel(c)
	detected := make([]bool, len(list))
	remaining := len(list)
	target := int(opt.TargetCoverage * float64(len(list)))
	if target == 0 {
		target = 1
	}

	batch := make([][]bool, 0, 64)
	for res.Generated < opt.MaxVectors && len(list)-remaining < target {
		batch = batch[:0]
		n := 64
		if left := opt.MaxVectors - res.Generated; left < n {
			n = left
		}
		for k := 0; k < n; k++ {
			v := make([]bool, len(c.Inputs))
			for i := range v {
				v[i] = rng.Intn(2) == 1
			}
			batch = append(batch, v)
		}
		res.Generated += n
		if err := p.ApplyBatch(batch); err != nil {
			return nil, err
		}

		// newHits[k] lists faults first detected by pattern k.
		var keepMask uint64
		type hit struct{ fault, pattern int }
		var hitList []hit
		for fi := range list {
			if detected[fi] {
				continue
			}
			w := list[fi].ExcitedWord(c, p)
			if n < 64 {
				w &= (1 << uint(n)) - 1
			}
			if w == 0 {
				continue
			}
			k := bits.TrailingZeros64(w)
			detected[fi] = true
			remaining--
			keepMask |= 1 << uint(k)
			hitList = append(hitList, hit{fi, k})
		}
		if keepMask == 0 {
			continue
		}
		// Map kept pattern slots to vector indices and record detections.
		slot := make(map[int]int)
		for k := 0; k < n; k++ {
			if keepMask&(1<<uint(k)) != 0 {
				slot[k] = len(res.Vectors)
				res.Vectors = append(res.Vectors, batch[k])
			}
		}
		for _, h := range hitList {
			res.Detections = append(res.Detections, Detection{
				Fault:    h.fault,
				Vector:   slot[h.pattern],
				Observer: list[h.fault].Observer(c, p, h.pattern),
			})
		}
	}
	return res, nil
}

// FaultSim evaluates an existing vector set against a fault list,
// returning the detections (first-detection per fault, in vector order).
func FaultSim(c *circuit.Circuit, list []faults.Fault, vectors [][]bool) (*Result, error) {
	res := &Result{Total: len(list), Vectors: vectors, Generated: len(vectors)}
	if len(list) == 0 || len(vectors) == 0 {
		return res, nil
	}
	p := logicsim.NewParallel(c)
	detected := make([]bool, len(list))
	for base := 0; base < len(vectors); base += 64 {
		end := base + 64
		if end > len(vectors) {
			end = len(vectors)
		}
		if err := p.ApplyBatch(vectors[base:end]); err != nil {
			return nil, err
		}
		n := end - base
		for fi := range list {
			if detected[fi] {
				continue
			}
			w := list[fi].ExcitedWord(c, p)
			if n < 64 {
				w &= (1 << uint(n)) - 1
			}
			if w == 0 {
				continue
			}
			k := bits.TrailingZeros64(w)
			detected[fi] = true
			res.Detections = append(res.Detections, Detection{
				Fault:    fi,
				Vector:   base + k,
				Observer: list[fi].Observer(c, p, k),
			})
		}
	}
	return res, nil
}
