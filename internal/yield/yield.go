// Package yield quantifies the paper's discriminability requirement
// (§2: "for the feasibility of an IDDQ test, d > 1 is required, and a
// typical value is 10") with a Monte-Carlo die-population model: fault-
// free dies whose leakage varies die-to-die and module-to-module, and
// defective dies whose defect current varies with bridge resistance. A
// threshold sweep yields the test-escape and yield-loss (overkill) rates
// as a function of IDDQ,th — the curve on which d = 10 sits comfortably
// and d → 1 collapses.
package yield

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"iddqsyn/internal/bic"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/logicsim"
)

// Config parameterises the die population.
type Config struct {
	GoodDies    int     // fault-free dies to simulate
	BadDies     int     // defective dies to simulate
	SigmaDie    float64 // lognormal σ of the die-wide leakage factor
	SigmaModule float64 // lognormal σ of per-module leakage mismatch
	SigmaDefect float64 // lognormal σ of the defect current
	Seed        int64
	// Rand, when non-nil, supplies the population's random draws and
	// takes precedence over Seed, letting callers thread one counted
	// stream through a whole reproducible study.
	Rand *rand.Rand
}

// DefaultConfig returns a population typical of production IDDQ studies:
// ±3σ die leakage spread of ≈2.5×, mild module mismatch, one decade of
// defect-current spread.
func DefaultConfig() Config {
	return Config{
		GoodDies:    2000,
		BadDies:     2000,
		SigmaDie:    0.3,
		SigmaModule: 0.1,
		SigmaDefect: 0.5,
		Seed:        1,
	}
}

// Point is one threshold's outcome over the simulated population.
type Point struct {
	Threshold float64 // IDDQ,th in amperes
	Escape    float64 // fraction of defective dies passing the whole test
	Overkill  float64 // fraction of fault-free dies failing any measurement
}

// Study holds the simulated measurement populations and answers threshold
// queries.
type Study struct {
	// goodMax[i] is the largest IDDQ measurement of fault-free die i
	// over all vectors and modules.
	goodMax []float64
	// badBest[i] is the largest measurement among defective die i's
	// defect-excited (vector, module) pairs — the easiest chance to
	// catch it. Dies whose sampled defect is never excited by the vector
	// set are recorded as math.Inf(-1) and always escape.
	badBest []float64
}

// Hit is one defect-excited measurement: vector index and observing
// module.
type Hit struct{ Vector, Module int }

// Matrix is the nominal measurement substrate both the threshold study
// here and the current-signature comparison (package deltaiddq via the
// experiments harness) build their die populations on: the fault-free
// measurement Base[vector][module] and, per fault, the measurements its
// excitation raises.
type Matrix struct {
	Base    [][]float64
	Excited [][]Hit // indexed like the fault list
	Modules int
}

// BuildMatrix simulates the vector set once against the chip and fault
// list.
func BuildMatrix(chip *bic.Chip, vecs [][]bool, list []faults.Fault) (*Matrix, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("yield: empty vector set")
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("yield: empty fault list")
	}
	sim := logicsim.New(chip.Circuit)
	m := &Matrix{
		Base:    make([][]float64, len(vecs)),
		Excited: make([][]Hit, len(list)),
		Modules: len(chip.Partition),
	}
	for vi, vec := range vecs {
		if err := sim.ApplyBits(vec); err != nil {
			return nil, err
		}
		m.Base[vi] = make([]float64, len(chip.Partition))
		for mi, gates := range chip.Partition {
			m.Base[vi][mi] = sim.FaultFreeIDDQ(chip.Annotated, gates)
		}
		for fi := range list {
			if obs, ok := list[fi].Excited(chip.Circuit, sim.Values()); ok {
				if mi := chip.ModuleOf(obs); mi >= 0 {
					m.Excited[fi] = append(m.Excited[fi], Hit{vi, mi})
				}
			}
		}
	}
	return m, nil
}

// Build simulates the die populations for a synthesized chip, a vector
// set and a defect universe sample.
func Build(chip *bic.Chip, vecs [][]bool, list []faults.Fault, cfg Config) (*Study, error) {
	if cfg.GoodDies < 1 || cfg.BadDies < 1 {
		return nil, fmt.Errorf("yield: need positive die counts")
	}
	mx, err := BuildMatrix(chip, vecs, list)
	if err != nil {
		return nil, err
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	base := mx.Base
	excited := mx.Excited

	st := &Study{
		goodMax: make([]float64, cfg.GoodDies),
		badBest: make([]float64, cfg.BadDies),
	}
	lognormal := func(sigma float64) float64 {
		if sigma <= 0 {
			return 1
		}
		return math.Exp(rng.NormFloat64() * sigma)
	}
	nModules := len(chip.Partition)
	modFactor := make([]float64, nModules)
	for d := 0; d < cfg.GoodDies; d++ {
		die := lognormal(cfg.SigmaDie)
		for m := range modFactor {
			modFactor[m] = die * lognormal(cfg.SigmaModule)
		}
		worst := 0.0
		for vi := range base {
			for mi, b := range base[vi] {
				if v := b * modFactor[mi]; v > worst {
					worst = v
				}
			}
		}
		st.goodMax[d] = worst
	}
	for d := 0; d < cfg.BadDies; d++ {
		die := lognormal(cfg.SigmaDie)
		for m := range modFactor {
			modFactor[m] = die * lognormal(cfg.SigmaModule)
		}
		fi := rng.Intn(len(list))
		defect := list[fi].Current * lognormal(cfg.SigmaDefect)
		best := math.Inf(-1)
		for _, h := range excited[fi] {
			if v := base[h.Vector][h.Module]*modFactor[h.Module] + defect; v > best {
				best = v
			}
		}
		st.badBest[d] = best
	}
	sort.Float64s(st.goodMax)
	return st, nil
}

// At evaluates the escape and overkill rates at one threshold: a die
// fails a measurement when its IDDQ reaches the threshold.
func (s *Study) At(threshold float64) Point {
	// Overkill: fault-free dies whose largest measurement >= threshold.
	idx := sort.SearchFloat64s(s.goodMax, threshold)
	overkill := float64(len(s.goodMax)-idx) / float64(len(s.goodMax))
	escapes := 0
	for _, b := range s.badBest {
		if b < threshold {
			escapes++
		}
	}
	return Point{
		Threshold: threshold,
		Escape:    float64(escapes) / float64(len(s.badBest)),
		Overkill:  overkill,
	}
}

// Sweep evaluates a geometric threshold ladder from lo to hi (inclusive)
// with the given number of points.
func (s *Study) Sweep(lo, hi float64, points int) ([]Point, error) {
	if lo <= 0 || hi <= lo || points < 2 {
		return nil, fmt.Errorf("yield: bad sweep range")
	}
	out := make([]Point, points)
	ratio := math.Pow(hi/lo, 1/float64(points-1))
	th := lo
	for i := 0; i < points; i++ {
		out[i] = s.At(th)
		th *= ratio
	}
	return out, nil
}

// ZeroOverkillThreshold returns the smallest threshold with zero overkill
// over the simulated fault-free population (just above the largest good-
// die measurement).
func (s *Study) ZeroOverkillThreshold() float64 {
	return s.goodMax[len(s.goodMax)-1] * (1 + 1e-9)
}
