package yield

import (
	"math/rand"
	"testing"

	"iddqsyn/internal/atpg"
	"iddqsyn/internal/bic"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/faults"
)

func fixture(t *testing.T) (*bic.Chip, [][]bool, []faults.Fault) {
	t.Helper()
	c := circuits.MustISCAS85Like("c432")
	eprm := evolution.DefaultParams()
	eprm.MaxGenerations = 20
	res, err := core.Synthesize(c, core.Options{Evolution: &eprm, ModuleSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 100
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(1)))
	gen, err := atpg.Generate(c, list, atpg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Chip, gen.Vectors, list
}

func TestBuildValidation(t *testing.T) {
	chip, vecs, list := fixture(t)
	if _, err := Build(chip, nil, list, DefaultConfig()); err == nil {
		t.Error("want error for empty vectors")
	}
	if _, err := Build(chip, vecs, nil, DefaultConfig()); err == nil {
		t.Error("want error for empty fault list")
	}
	bad := DefaultConfig()
	bad.GoodDies = 0
	if _, err := Build(chip, vecs, list, bad); err == nil {
		t.Error("want error for zero dies")
	}
}

func TestThresholdTradeoffShape(t *testing.T) {
	chip, vecs, list := fixture(t)
	cfg := DefaultConfig()
	cfg.GoodDies = 500
	cfg.BadDies = 500
	st, err := Build(chip, vecs, list, cfg)
	if err != nil {
		t.Fatal(err)
	}
	points, err := st.Sweep(1e-9, 1e-2, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Monotonicity: escape grows with threshold, overkill shrinks.
	for i := 1; i < len(points); i++ {
		if points[i].Escape < points[i-1].Escape-1e-12 {
			t.Errorf("escape not monotone at %g", points[i].Threshold)
		}
		if points[i].Overkill > points[i-1].Overkill+1e-12 {
			t.Errorf("overkill not monotone at %g", points[i].Threshold)
		}
	}
	// A tiny threshold rejects every good die; a huge one passes every
	// defective die.
	if points[0].Overkill < 0.99 {
		t.Errorf("1 nA threshold should fail ~all good dies, overkill %.2f", points[0].Overkill)
	}
	if points[len(points)-1].Escape < 0.99 {
		t.Errorf("10 mA threshold should pass ~all bad dies, escape %.2f",
			points[len(points)-1].Escape)
	}
}

func TestPaperOperatingPointIsComfortable(t *testing.T) {
	// At the paper's IDDQ,th = 1 µA with modules sized for d >= 10, the
	// window between leakage and defect currents is wide: both escape and
	// overkill must be (near) zero at 1 µA despite the die-to-die spread.
	chip, vecs, list := fixture(t)
	st, err := Build(chip, vecs, list, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := st.At(1e-6)
	if p.Overkill > 0.001 {
		t.Errorf("overkill at 1 µA = %.4f, want ~0", p.Overkill)
	}
	if p.Escape > 0.02 {
		// A sampled defect that the vector set never excites escapes no
		// matter the threshold; the excitation coverage bounds this.
		t.Errorf("escape at 1 µA = %.4f, want near the ATPG escape floor", p.Escape)
	}
}

func TestZeroOverkillThreshold(t *testing.T) {
	chip, vecs, list := fixture(t)
	st, err := Build(chip, vecs, list, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	th := st.ZeroOverkillThreshold()
	if p := st.At(th); p.Overkill != 0 {
		t.Errorf("overkill at the zero-overkill threshold = %g", p.Overkill)
	}
	// Threshold must sit above the nominal worst leakage but far below
	// the defect currents.
	if th > 1e-4 {
		t.Errorf("zero-overkill threshold %g suspiciously high", th)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	chip, vecs, list := fixture(t)
	cfg := DefaultConfig()
	cfg.GoodDies, cfg.BadDies = 300, 300
	a, err := Build(chip, vecs, list, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(chip, vecs, list, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.At(1e-6), b.At(1e-6)
	if pa != pb {
		t.Errorf("nondeterministic study: %+v vs %+v", pa, pb)
	}
}

func TestInjectedRandMatchesSeed(t *testing.T) {
	chip, vecs, list := fixture(t)
	cfg := DefaultConfig()
	cfg.GoodDies, cfg.BadDies = 200, 200
	bySeed, err := Build(chip, vecs, list, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rand = rand.New(rand.NewSource(cfg.Seed))
	byRand, err := Build(chip, vecs, list, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := bySeed.At(1e-6), byRand.At(1e-6)
	if pa != pb {
		t.Errorf("injected rand diverged from seed-driven run: %+v vs %+v", pa, pb)
	}
}

func TestSweepValidation(t *testing.T) {
	chip, vecs, list := fixture(t)
	st, err := Build(chip, vecs, list, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][3]float64{{0, 1, 5}, {1e-6, 1e-6, 5}, {1e-6, 1e-3, 1}} {
		if _, err := st.Sweep(bad[0], bad[1], int(bad[2])); err == nil {
			t.Errorf("Sweep(%v): want error", bad)
		}
	}
}

// Wider die-to-die spread must not reduce overkill at a fixed threshold
// near the leakage population.
func TestSpreadWidensTails(t *testing.T) {
	chip, vecs, list := fixture(t)
	tight := DefaultConfig()
	tight.SigmaDie = 0.05
	tight.GoodDies, tight.BadDies = 800, 100
	wide := tight
	wide.SigmaDie = 0.6
	stTight, err := Build(chip, vecs, list, tight)
	if err != nil {
		t.Fatal(err)
	}
	stWide, err := Build(chip, vecs, list, wide)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold at 2x the tight population's max: the wide population
	// must overkill at least as much there.
	th := stTight.ZeroOverkillThreshold() * 2
	if stWide.At(th).Overkill < stTight.At(th).Overkill {
		t.Error("wider spread should not shrink the overkill tail")
	}
}
