package vectors

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"iddqsyn/internal/circuits"
)

func TestRoundTrip(t *testing.T) {
	c := circuits.C17()
	vecs := [][]bool{
		{true, false, true, true, false},
		{false, false, false, false, false},
		{true, true, true, true, true},
	}
	var sb strings.Builder
	if err := Write(&sb, c, vecs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()), len(c.Inputs))
	if err != nil {
		t.Fatalf("Read: %v\n%s", err, sb.String())
	}
	if len(got) != len(vecs) {
		t.Fatalf("vectors = %d, want %d", len(got), len(vecs))
	}
	for i := range vecs {
		for j := range vecs[i] {
			if got[i][j] != vecs[i][j] {
				t.Fatalf("vector %d bit %d differs", i, j)
			}
		}
	}
	if !strings.Contains(sb.String(), "# inputs: I1 I2 I3 I4 I5") {
		t.Errorf("header missing input names:\n%s", sb.String())
	}
}

func TestWriteRejectsWrongWidth(t *testing.T) {
	c := circuits.C17()
	var sb strings.Builder
	if err := Write(&sb, c, [][]bool{{true}}); err == nil {
		t.Error("want error for wrong vector width")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad bit":        "01x01\n",
		"ragged widths":  "01010\n0101\n",
		"width mismatch": "0101\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src), 5); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadAutoWidth(t *testing.T) {
	got, err := Read(strings.NewReader("# comment\n010\n111\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 3 {
		t.Errorf("got %v", got)
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader("# nothing\n"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d vectors from empty file", len(got))
	}
}

// Property: any random vector set survives a round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	c := circuits.C17()
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vecs := make([][]bool, int(n%20)+1)
		for i := range vecs {
			vecs[i] = make([]bool, len(c.Inputs))
			for j := range vecs[i] {
				vecs[i][j] = rng.Intn(2) == 1
			}
		}
		var sb strings.Builder
		if err := Write(&sb, c, vecs); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(sb.String()), len(c.Inputs))
		if err != nil || len(got) != len(vecs) {
			return false
		}
		for i := range vecs {
			for j := range vecs[i] {
				if got[i][j] != vecs[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
