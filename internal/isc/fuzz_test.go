package isc

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iddqsyn/internal/bench"
)

// FuzzRead feeds arbitrary bytes to the ISCAS85 parser: no input, however
// malformed, may panic — bad netlists must come back as descriptive
// errors. Inputs that do parse must survive a Write/Read round trip with
// the circuit structure intact.
//
// The seed corpus is the historical C17 file, every Table 1 benchmark
// (converted from .bench via the isc writer), and a handful of
// deliberately broken netlists covering the parser's error paths.
func FuzzRead(f *testing.F) {
	f.Add(c17ISC)
	for _, seed := range []string{
		"",
		"* comment only\n",
		"1 a inpt 1\n",                        // input without counts
		"1 a nand 1 2\n1 x\n",                 // bad fanin continuation
		"1 a from\n",                          // branch without parent
		"1 a from b\n",                        // branch to unknown net
		"1 a nand 0 1\n2\n",                   // fanin references unknown address
		"1 a inpt 1 0\n1 b inpt 1 0\n",        // duplicate address
		"9999999999999999999999 a inpt 1 0\n", // address overflow
		"1 a frob 1 1\n",                      // unknown primitive
		"1 a nand 0 2\n",                      // missing fanin lines
		"1 a from a\n2 b nand 0 1\n1\n",       // self-referential branch
	} {
		f.Add(seed)
	}
	// Real benchmarks, converted to the ISC format through the writer.
	files, err := filepath.Glob(filepath.Join("..", "..", "benchmarks", "*.bench"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		c, err := bench.Read(bytes.NewReader(data), filepath.Base(path))
		if err != nil {
			f.Fatalf("%s: %v", path, err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			f.Fatalf("%s: %v", path, err)
		}
		f.Add(buf.String())
	}

	f.Fuzz(func(t *testing.T, input string) {
		c, err := Read(strings.NewReader(input), "fuzz")
		if err != nil {
			return // rejected inputs only need to not panic
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("accepted netlist failed to write: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()), "fuzz")
		if err != nil {
			t.Fatalf("written netlist failed to re-read: %v\n%s", err, buf.String())
		}
		if bench.Fingerprint(c) != bench.Fingerprint(back) {
			t.Fatal("round trip changed the circuit structure")
		}
	})
}
