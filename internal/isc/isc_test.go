package isc

import (
	"strings"
	"testing"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
)

// c17ISC is the ISCAS85 C17 netlist in its original distribution format
// (addresses and fault annotations as in the historical file).
const c17ISC = `*  c17 iscas example
*---------------------------------------------------
    1  1gat inpt   1  0    >sa1
    2  2gat inpt   1  0    >sa1
    3  3gat inpt   2  0    >sa0 >sa1
    8  8fan from   3gat    >sa1
    9  9fan from   3gat    >sa0
    6  6gat inpt   1  0    >sa1
    7  7gat inpt   1  0    >sa1
   10 10gat nand   1  2    >sa1
     1     8
   11 11gat nand   2  2    >sa0 >sa1
     9     6
   14 14fan from   11gat   >sa1
   15 15fan from   11gat   >sa0 >sa1
   16 16gat nand   2  2    >sa0 >sa1
     2    14
   20 20fan from   16gat   >sa1
   21 21fan from   16gat   >sa0
   19 19gat nand   1  2    >sa1
    15     7
   22 22gat nand   0  2    >sa0 >sa1
    10    20
   23 23gat nand   0  2    >sa1
    21    19
`

func TestReadC17ISC(t *testing.T) {
	c, err := Read(strings.NewReader(c17ISC), "x")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c17" {
		t.Errorf("name = %q, want c17 (from header)", c.Name)
	}
	s := c.ComputeStats()
	if s.Inputs != 5 || s.Outputs != 2 || s.LogicGates != 6 || s.Depth != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByType[circuit.Nand] != 6 {
		t.Errorf("gate mix = %v, want six NANDs", s.ByType)
	}
	// Branch resolution: 10gat's fanins must be 1gat and 3gat (through
	// branch 8fan).
	g10, ok := c.GateByName("10gat")
	if !ok {
		t.Fatal("10gat missing")
	}
	names := map[string]bool{}
	for _, f := range g10.Fanin {
		names[c.Gates[f].Name] = true
	}
	if !names["1gat"] || !names["3gat"] {
		t.Errorf("10gat fanins resolved to %v", names)
	}
	// Outputs are the zero-fanout gates 22gat and 23gat.
	outNames := map[string]bool{}
	for _, o := range c.Outputs {
		outNames[c.Gates[o].Name] = true
	}
	if !outNames["22gat"] || !outNames["23gat"] {
		t.Errorf("outputs = %v", outNames)
	}
}

// The parsed C17 must be structurally identical to the built-in C17 up to
// renaming: same function on all 32 input vectors.
func TestC17ISCMatchesBuiltin(t *testing.T) {
	fromISC, err := Read(strings.NewReader(c17ISC), "x")
	if err != nil {
		t.Fatal(err)
	}
	builtin := circuits.C17()
	// Input order: 1gat 2gat 3gat 6gat 7gat vs I1 I2 I3 I4 I5 — the
	// historical numbering maps 1,2,3,6,7 to I1,I2,I3,I4,I5 and outputs
	// 22,23 to g5(02),g6(03).
	eval := func(c *circuit.Circuit, bits []bool) []bool {
		vals := make([]bool, c.NumGates())
		for i, id := range c.Inputs {
			vals[id] = bits[i]
		}
		for _, id := range c.TopoOrder() {
			g := &c.Gates[id]
			if g.Type == circuit.Input {
				continue
			}
			in := make([]bool, len(g.Fanin))
			for i, f := range g.Fanin {
				in[i] = vals[f]
			}
			vals[id] = g.Type.Eval(in)
		}
		out := make([]bool, len(c.Outputs))
		for i, o := range c.Outputs {
			out[i] = vals[o]
		}
		return out
	}
	for mask := 0; mask < 32; mask++ {
		bits := make([]bool, 5)
		for i := range bits {
			bits[i] = mask&(1<<i) != 0
		}
		a := eval(fromISC, bits)
		b := eval(builtin, bits)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("vector %05b: isc %v vs builtin %v", mask, a, b)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, name := range []string{"c432", "c880"} {
		orig := circuits.MustISCAS85Like(name)
		var sb strings.Builder
		if err := Write(&sb, orig); err != nil {
			t.Fatalf("%s: Write: %v", name, err)
		}
		back, err := Read(strings.NewReader(sb.String()), "x")
		if err != nil {
			t.Fatalf("%s: re-Read: %v", name, err)
		}
		if bench.Fingerprint(orig) != bench.Fingerprint(back) {
			t.Errorf("%s: round trip changed the structure", name)
		}
		if back.Name != name {
			t.Errorf("%s: round trip lost the name: %q", name, back.Name)
		}
	}
}

func TestRoundTripC17ISC(t *testing.T) {
	c, err := Read(strings.NewReader(c17ISC), "x")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()), "x")
	if err != nil {
		t.Fatalf("re-Read:\n%s\n%v", sb.String(), err)
	}
	if bench.Fingerprint(c) != bench.Fingerprint(back) {
		t.Error("C17 round trip changed the structure")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad address":     "x 1gat inpt 1 0\n",
		"truncated":       "1 1gat\n",
		"unknown prim":    "1 1gat mux 1 2\n 1 1\n",
		"dup address":     "1 a inpt 1 0\n1 b inpt 1 0\n",
		"dup name":        "1 a inpt 1 0\n2 a inpt 1 0\n",
		"from no parent":  "1 a from\n",
		"from unknown":    "1 a inpt 1 0\n2 f from zz\n3 g not 0 1\n 2\n",
		"missing fanin":   "1 a inpt 1 0\n2 g nand 0 2\n 1\n",
		"bad fanin addr":  "1 a inpt 1 0\n2 g not 0 1\n z\n",
		"unknown fanin":   "1 a inpt 1 0\n2 g not 0 1\n 9\n",
		"input no counts": "1 a inpt\n",
		"gate no counts":  "1 a inpt 1 0\n2 g nand 0\n",
		"too many fanins": "1 a inpt 1 0\n2 g not 0 1\n 1 1\n",
		"branch cycle":    "1 a from b\n2 b from a\n3 i inpt 1 0\n4 g not 0 1\n 1\n",
		"no outputs":      "1 a inpt 1 0\n2 g not 1 1\n 1\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src), "x"); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestWriteBranchCounts(t *testing.T) {
	// A net with two loads must get two branch nodes in the output.
	c := circuits.C17()
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, " from "); got != 6 {
		// I3, g2, g3 each drive two loads -> 3 nets x 2 branches.
		t.Errorf("branch lines = %d, want 6\n%s", got, out)
	}
}

// Property: random circuits round-trip through the historical format.
func TestRoundTripRandomCircuits(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c1, err := circuits.RandomLogic(circuits.Spec{
			Name: "rt", Inputs: 6, Outputs: 3,
			Gates: 30 + 15*int(seed), Depth: 5 + int(seed)%6, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := Write(&sb, c1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c2, err := Read(strings.NewReader(sb.String()), "x")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bench.Fingerprint(c1) != bench.Fingerprint(c2) {
			t.Fatalf("seed %d: structure changed", seed)
		}
	}
}
