// Package isc reads and writes the original ISCAS85 netlist format of
// Brglez et al. [16] — the format the benchmark circuits of Table 1 were
// distributed in before the simpler .bench format existed. Each line
// carries an address, a net name, a primitive type, fanout/fanin counts
// and optional stuck-at fault annotations; gates with fanout > 1 are
// followed by explicit fanout-branch ("from") lines, and gates with a
// fanout count of zero are the primary outputs:
//
//   - c17 iscas example
//     1   1gat  inpt  1 0    >sa1
//     ...
//     11  11gat nand  2 2    >sa0 >sa1
//     9  6
//     14  14fan from  11gat  >sa1
//
// The reader collapses fanout branches onto their driving net and ignores
// fault annotations; the writer regenerates branches so files round-trip
// through the historical tools.
package isc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"iddqsyn/internal/circuit"
)

// Read parses an ISCAS85-format netlist.
func Read(r io.Reader, defaultName string) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	type node struct {
		addr    int
		name    string
		typ     string // primitive keyword
		gate    circuit.GateType
		nOut    int
		nIn     int
		fanin   []int  // addresses
		fromRef string // "from" lines: parent net name
	}
	var nodes []*node
	byAddr := make(map[int]*node)
	name := defaultName
	named := false

	var pending *node // gate awaiting fanin-address lines
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "*") {
			if !named {
				if c := strings.TrimSpace(strings.TrimPrefix(line, "*")); c != "" {
					name = strings.Fields(c)[0]
					named = true
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if pending != nil {
			// Fanin-address continuation line(s).
			for _, f := range fields {
				a, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("isc: line %d: bad fanin address %q", lineno, f)
				}
				pending.fanin = append(pending.fanin, a)
			}
			if len(pending.fanin) > pending.nIn {
				return nil, fmt.Errorf("isc: line %d: gate %s has %d fanins, declared %d",
					lineno, pending.name, len(pending.fanin), pending.nIn)
			}
			if len(pending.fanin) == pending.nIn {
				pending = nil
			}
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("isc: line %d: truncated node line %q", lineno, line)
		}
		addr, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("isc: line %d: bad address %q", lineno, fields[0])
		}
		n := &node{addr: addr, name: fields[1], typ: strings.ToLower(fields[2])}
		if _, dup := byAddr[addr]; dup {
			return nil, fmt.Errorf("isc: line %d: duplicate address %d", lineno, addr)
		}
		switch n.typ {
		case "from":
			if len(fields) < 4 {
				return nil, fmt.Errorf("isc: line %d: from-node without parent", lineno)
			}
			n.fromRef = fields[3]
		case "inpt":
			if len(fields) < 5 {
				return nil, fmt.Errorf("isc: line %d: input without counts", lineno)
			}
			n.nOut, err = strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("isc: line %d: bad fanout count", lineno)
			}
		default:
			gt, ok := parsePrimitive(n.typ)
			if !ok {
				return nil, fmt.Errorf("isc: line %d: unknown primitive %q", lineno, n.typ)
			}
			n.gate = gt
			if len(fields) < 5 {
				return nil, fmt.Errorf("isc: line %d: gate without counts", lineno)
			}
			n.nOut, err = strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("isc: line %d: bad fanout count", lineno)
			}
			n.nIn, err = strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("isc: line %d: bad fanin count", lineno)
			}
			if n.nIn > 0 {
				pending = n
			}
		}
		nodes = append(nodes, n)
		byAddr[addr] = n
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("isc: %w", err)
	}
	if pending != nil {
		return nil, fmt.Errorf("isc: gate %s missing fanin lines", pending.name)
	}

	// Resolve "from" branches to their root driving net.
	byName := make(map[string]*node, len(nodes))
	for _, n := range nodes {
		if prev, dup := byName[n.name]; dup {
			return nil, fmt.Errorf("isc: duplicate net name %q (addresses %d, %d)",
				n.name, prev.addr, n.addr)
		}
		byName[n.name] = n
	}
	var rootOf func(n *node, depth int) (*node, error)
	rootOf = func(n *node, depth int) (*node, error) {
		if n.typ != "from" {
			return n, nil
		}
		if depth > len(nodes) {
			return nil, fmt.Errorf("isc: fanout-branch cycle at %q", n.name)
		}
		parent, ok := byName[n.fromRef]
		if !ok {
			return nil, fmt.Errorf("isc: branch %q references unknown net %q", n.name, n.fromRef)
		}
		return rootOf(parent, depth+1)
	}

	b := circuit.NewBuilder(name)
	for _, n := range nodes {
		switch n.typ {
		case "from":
			continue
		case "inpt":
			b.AddInput(n.name)
		default:
			fanin := make([]string, 0, len(n.fanin))
			for _, a := range n.fanin {
				src, ok := byAddr[a]
				if !ok {
					return nil, fmt.Errorf("isc: gate %q references unknown address %d", n.name, a)
				}
				root, err := rootOf(src, 0)
				if err != nil {
					return nil, err
				}
				fanin = append(fanin, root.name)
			}
			b.AddGate(n.name, n.gate, fanin...)
		}
	}
	// Primary outputs: non-branch nodes with a declared fanout of zero.
	for _, n := range nodes {
		if n.typ != "from" && n.nOut == 0 {
			b.MarkOutput(n.name)
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("isc: %w", err)
	}
	if named {
		c.Name = name
	}
	return c, nil
}

func parsePrimitive(s string) (circuit.GateType, bool) {
	switch s {
	case "and":
		return circuit.And, true
	case "nand":
		return circuit.Nand, true
	case "or":
		return circuit.Or, true
	case "nor":
		return circuit.Nor, true
	case "xor":
		return circuit.Xor, true
	case "xnor":
		return circuit.Xnor, true
	case "not", "inv":
		return circuit.Not, true
	case "buff", "buf":
		return circuit.Buf, true
	}
	return 0, false
}

func primitiveName(t circuit.GateType) string {
	switch t {
	case circuit.And:
		return "and"
	case circuit.Nand:
		return "nand"
	case circuit.Or:
		return "or"
	case circuit.Nor:
		return "nor"
	case circuit.Xor:
		return "xor"
	case circuit.Xnor:
		return "xnor"
	case circuit.Not:
		return "not"
	case circuit.Buf:
		return "buff"
	}
	return "?"
}

// Write emits the circuit in the ISCAS85 format, regenerating explicit
// fanout-branch nodes for every net driving more than one load (plus one
// branch per load when the driver is also a primary output, matching the
// historical files).
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "* %s\n", c.Name)
	fmt.Fprintf(bw, "* generated by iddqsyn\n")

	isOut := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		isOut[o] = true
	}
	// Address plan: gates in topological order, then branch nodes
	// interleaved right after their driver.
	addrOf := make(map[int]int, c.NumGates()) // gate ID -> address
	branchAddr := make(map[[2]int]int)        // (driver, load) -> branch address
	next := 1
	order := c.TopoOrder()
	for _, id := range order {
		addrOf[id] = next
		next++
		if needsBranches(c, id) {
			for _, f := range c.Gates[id].Fanout {
				branchAddr[[2]int{id, f}] = next
				next++
			}
		}
	}

	// faninRef returns the address a gate's fanin pin should reference:
	// the driver itself, or its dedicated branch node.
	faninRef := func(driver, load int) int {
		if a, ok := branchAddr[[2]int{driver, load}]; ok {
			return a
		}
		return addrOf[driver]
	}

	for _, id := range order {
		g := &c.Gates[id]
		nOut := len(g.Fanout)
		if isOut[id] {
			// Primary outputs carry a declared fanout of zero — that is
			// how the format marks them. Loads, if any, still reference
			// the net by address (or through its branch nodes).
			nOut = 0
		}
		switch g.Type {
		case circuit.Input:
			fmt.Fprintf(bw, "%5d %s inpt %d 0\n", addrOf[id], g.Name, nOut)
		default:
			fmt.Fprintf(bw, "%5d %s %s %d %d\n",
				addrOf[id], g.Name, primitiveName(g.Type), nOut, len(g.Fanin))
			var refs []string
			for _, f := range g.Fanin {
				refs = append(refs, strconv.Itoa(faninRef(f, id)))
			}
			fmt.Fprintf(bw, "      %s\n", strings.Join(refs, " "))
		}
		if needsBranches(c, id) {
			for i, f := range g.Fanout {
				fmt.Fprintf(bw, "%5d %s_b%d from %s\n",
					branchAddr[[2]int{id, f}], g.Name, i+1, g.Name)
			}
		}
	}
	return bw.Flush()
}

// needsBranches reports whether a net gets explicit fanout-branch nodes:
// more than one load in the historical convention.
func needsBranches(c *circuit.Circuit, id int) bool {
	return len(c.Gates[id].Fanout) > 1
}
