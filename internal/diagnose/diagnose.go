// Package diagnose locates IDDQ defects from the per-module PASS/FAIL
// syndrome the BIC sensors produce — the fault-location application of
// Aitken's IDDQ diagnosis work that the paper cites [4]. On-chip sensors
// make IDDQ diagnosis unusually sharp: each measurement localises the
// defect current to one module, so a handful of vectors narrows the
// candidate list to a few electrically equivalent faults.
//
// The flow is dictionary-based: fault-simulate the vector set once to
// record every fault's full syndrome (the set of (vector, module) pairs
// whose measurement it fails), then rank candidates by the similarity of
// their dictionary syndrome to the observed one.
package diagnose

import (
	"fmt"
	"sort"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/logicsim"
)

// Observation is one failing IDDQ measurement: vector index and the
// module whose sensor raised FAIL.
type Observation struct {
	Vector int
	Module int
}

// Syndrome is the full set of failing measurements, sorted by (vector,
// module).
type Syndrome []Observation

func (s Syndrome) sorted() {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Vector != s[j].Vector {
			return s[i].Vector < s[j].Vector
		}
		return s[i].Module < s[j].Module
	})
}

// key renders an observation for set arithmetic.
func (o Observation) key() int64 { return int64(o.Vector)<<32 | int64(uint32(o.Module)) }

// Dictionary holds the precomputed syndrome of every fault in a list
// under a fixed vector set and partition.
type Dictionary struct {
	Faults    []faults.Fault
	Vectors   [][]bool
	syndromes []Syndrome
}

// Build fault-simulates the vector set and records every fault's complete
// syndrome. moduleOf maps gate IDs to module indices (as in a synthesized
// chip); defect currents are assumed far above threshold, so a fault fails
// a measurement exactly when the vector excites it.
func Build(c *circuit.Circuit, moduleOf []int, list []faults.Fault, vecs [][]bool) (*Dictionary, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("diagnose: empty vector set")
	}
	d := &Dictionary{
		Faults:    list,
		Vectors:   vecs,
		syndromes: make([]Syndrome, len(list)),
	}
	p := logicsim.NewParallel(c)
	for base := 0; base < len(vecs); base += 64 {
		end := base + 64
		if end > len(vecs) {
			end = len(vecs)
		}
		if err := p.ApplyBatch(vecs[base:end]); err != nil {
			return nil, err
		}
		n := end - base
		for fi := range list {
			w := list[fi].ExcitedWord(c, p)
			if n < 64 {
				w &= (1 << uint(n)) - 1
			}
			for w != 0 {
				k := trailingZeros(w)
				w &^= 1 << uint(k)
				obs := list[fi].Observer(c, p, k)
				mi := moduleOf[obs]
				if mi < 0 {
					continue
				}
				d.syndromes[fi] = append(d.syndromes[fi], Observation{
					Vector: base + k, Module: mi,
				})
			}
		}
	}
	for fi := range d.syndromes {
		d.syndromes[fi].sorted()
	}
	return d, nil
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// FaultSyndrome returns the dictionary syndrome of fault fi.
func (d *Dictionary) FaultSyndrome(fi int) Syndrome { return d.syndromes[fi] }

// Candidate is one ranked diagnosis: a fault index and its match score.
type Candidate struct {
	Fault int
	Score float64 // Jaccard similarity of syndromes, 1.0 = exact match
}

// Diagnose ranks the dictionary faults against an observed syndrome by
// Jaccard similarity (|intersection| / |union| of the failing-measurement
// sets). Faults with score 0 are omitted; ties break towards lower fault
// indices for determinism. An empty observation diagnoses a fault-free
// device and returns no candidates.
func (d *Dictionary) Diagnose(observed Syndrome) []Candidate {
	if len(observed) == 0 {
		return nil
	}
	obs := make(map[int64]bool, len(observed))
	for _, o := range observed {
		obs[o.key()] = true
	}
	var out []Candidate
	for fi, syn := range d.syndromes {
		if len(syn) == 0 {
			continue
		}
		inter := 0
		for _, o := range syn {
			if obs[o.key()] {
				inter++
			}
		}
		if inter == 0 {
			continue
		}
		union := len(syn) + len(obs) - inter
		out = append(out, Candidate{Fault: fi, Score: float64(inter) / float64(union)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Fault < out[j].Fault
	})
	return out
}

// ExactMatches returns the faults whose dictionary syndrome equals the
// observation exactly — the defect's equivalence class under this vector
// set and partition.
func (d *Dictionary) ExactMatches(observed Syndrome) []int {
	var out []int
	for _, cand := range d.Diagnose(observed) {
		if cand.Score == 1.0 {
			out = append(out, cand.Fault)
		}
	}
	return out
}

// Resolution summarises how sharply the dictionary separates its faults:
// the number of distinct syndromes, and the size of the largest
// equivalence class (faults indistinguishable under the vector set).
type Resolution struct {
	Faults          int
	Detected        int // faults with non-empty syndromes
	DistinctClasses int
	LargestClass    int
}

// Resolve computes the diagnostic resolution of the dictionary.
func (d *Dictionary) Resolve() Resolution {
	classes := make(map[string]int)
	res := Resolution{Faults: len(d.Faults)}
	for _, syn := range d.syndromes {
		if len(syn) == 0 {
			continue
		}
		res.Detected++
		key := make([]byte, 0, len(syn)*8)
		for _, o := range syn {
			key = append(key, byte(o.Vector), byte(o.Vector>>8), byte(o.Vector>>16),
				byte(o.Module), byte(o.Module>>8))
		}
		classes[string(key)]++
	}
	res.DistinctClasses = len(classes)
	for _, n := range classes {
		if n > res.LargestClass {
			res.LargestClass = n
		}
	}
	return res
}
