package diagnose

import (
	"math/rand"
	"testing"

	"iddqsyn/internal/atpg"
	"iddqsyn/internal/bic"
	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/faults"
)

// fixture synthesizes c432, extracts faults and generates vectors.
func fixture(t *testing.T) (*core.Result, []faults.Fault, [][]bool) {
	t.Helper()
	c := circuits.MustISCAS85Like("c432")
	eprm := evolution.DefaultParams()
	eprm.MaxGenerations = 30
	res, err := core.Synthesize(c, core.Options{Evolution: &eprm, ModuleSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 150
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(1)))
	opt := atpg.DefaultOptions()
	gen, err := atpg.Generate(c, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res, list, gen.Vectors
}

func moduleOf(res *core.Result) []int {
	c := res.Circuit
	m := make([]int, c.NumGates())
	for i := range m {
		m[i] = res.Chip.ModuleOf(i)
	}
	return m
}

func TestBuildAndSelfDiagnose(t *testing.T) {
	res, list, vecs := fixture(t)
	d, err := Build(res.Circuit, moduleOf(res), list, vecs)
	if err != nil {
		t.Fatal(err)
	}
	// Every detected fault must diagnose itself with score 1 at rank
	// among the exact matches.
	checked := 0
	for fi := range list {
		syn := d.FaultSyndrome(fi)
		if len(syn) == 0 {
			continue
		}
		checked++
		if checked > 60 {
			break
		}
		cands := d.Diagnose(syn)
		if len(cands) == 0 {
			t.Fatalf("fault %v: no candidates for own syndrome", &list[fi])
		}
		if cands[0].Score != 1.0 {
			t.Fatalf("fault %v: top score %g, want 1.0", &list[fi], cands[0].Score)
		}
		found := false
		for _, m := range d.ExactMatches(syn) {
			if m == fi {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("fault %v not among its own exact matches", &list[fi])
		}
	}
	if checked == 0 {
		t.Fatal("no detected faults to check")
	}
}

// End-to-end: inject a defect, collect the chip's real syndrome through
// the sized sensors, and verify the dictionary diagnosis pinpoints the
// defect (or an equivalent).
func TestDiagnoseFromChipSyndrome(t *testing.T) {
	res, list, vecs := fixture(t)
	d, err := Build(res.Circuit, moduleOf(res), list, vecs)
	if err != nil {
		t.Fatal(err)
	}
	tested := 0
	for fi := range list {
		if len(d.FaultSyndrome(fi)) == 0 {
			continue
		}
		tested++
		if tested > 12 {
			break
		}
		observed := chipSyndrome(t, res.Chip, vecs, list[fi])
		if len(observed) == 0 {
			t.Fatalf("fault %v: chip shows no syndrome but dictionary predicts one", &list[fi])
		}
		exact := d.ExactMatches(observed)
		found := false
		for _, m := range exact {
			if m == fi {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fault %v: not in the exact-match class %v", &list[fi], exact)
		}
	}
}

// chipSyndrome collects every failing (vector, module) measurement.
func chipSyndrome(t *testing.T, chip *bic.Chip, vecs [][]bool, f faults.Fault) Syndrome {
	t.Helper()
	var syn Syndrome
	for vi, v := range vecs {
		readings, err := chip.ApplyVector(v, []faults.Fault{f})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range readings {
			if !r.Pass {
				syn = append(syn, Observation{Vector: vi, Module: r.Module})
			}
		}
	}
	syn.sorted()
	return syn
}

func TestDiagnoseEmptySyndrome(t *testing.T) {
	res, list, vecs := fixture(t)
	d, err := Build(res.Circuit, moduleOf(res), list, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if cands := d.Diagnose(nil); cands != nil {
		t.Error("fault-free syndrome must return no candidates")
	}
}

func TestBuildEmptyVectors(t *testing.T) {
	res, list, _ := fixture(t)
	if _, err := Build(res.Circuit, moduleOf(res), list, nil); err == nil {
		t.Error("want error for empty vector set")
	}
}

func TestResolution(t *testing.T) {
	res, list, vecs := fixture(t)
	d, err := Build(res.Circuit, moduleOf(res), list, vecs)
	if err != nil {
		t.Fatal(err)
	}
	r := d.Resolve()
	if r.Faults != len(list) {
		t.Errorf("Faults = %d, want %d", r.Faults, len(list))
	}
	if r.Detected == 0 || r.DistinctClasses == 0 {
		t.Fatalf("degenerate resolution %+v", r)
	}
	if r.DistinctClasses > r.Detected {
		t.Errorf("more classes than detected faults: %+v", r)
	}
	if r.LargestClass < 1 {
		t.Errorf("largest class %d", r.LargestClass)
	}
	// On-chip per-module sensing should resolve most faults into small
	// classes: the average class size stays in the single digits.
	if avg := float64(r.Detected) / float64(r.DistinctClasses); avg > 8 {
		t.Errorf("average equivalence class %.1f too coarse: %+v", avg, r)
	}
	t.Logf("resolution: %+v (avg class %.2f)", r, float64(r.Detected)/float64(r.DistinctClasses))
}

// Module attribution must sharpen diagnosis: merging all modules into one
// (as off-chip IDDQ testing would) cannot yield more distinct classes.
func TestPerModuleSensingSharpensDiagnosis(t *testing.T) {
	res, list, vecs := fixture(t)
	perModule, err := Build(res.Circuit, moduleOf(res), list, vecs)
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]int, res.Circuit.NumGates())
	for i := range flat {
		if res.Chip.ModuleOf(i) >= 0 {
			flat[i] = 0
		} else {
			flat[i] = -1
		}
	}
	offChip, err := Build(res.Circuit, flat, list, vecs)
	if err != nil {
		t.Fatal(err)
	}
	pm := perModule.Resolve()
	oc := offChip.Resolve()
	if pm.DistinctClasses < oc.DistinctClasses {
		t.Errorf("per-module sensing resolves %d classes, off-chip %d — should not be worse",
			pm.DistinctClasses, oc.DistinctClasses)
	}
	t.Logf("classes: per-module %d vs off-chip %d", pm.DistinctClasses, oc.DistinctClasses)
}

func TestEstimateUnused(t *testing.T) {
	// Guard that the fixture's estimator parameters stay the defaults the
	// dictionary assumptions (defect current >> threshold) rely on.
	p := estimate.DefaultParams()
	cfg := faults.DefaultConfig()
	if cfg.VDD/cfg.BridgeRes < 100*p.IDDQth {
		t.Error("bridge defect current no longer dominates the threshold")
	}
	_ = celllib.Default()
}
