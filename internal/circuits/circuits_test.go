package circuits

import (
	"testing"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
)

func TestC17Structure(t *testing.T) {
	c := C17()
	s := c.ComputeStats()
	if s.Inputs != 5 || s.Outputs != 2 || s.LogicGates != 6 || s.Depth != 3 {
		t.Errorf("C17 stats = %+v", s)
	}
	if s.ByType[circuit.Nand] != 6 {
		t.Errorf("C17 should be six NANDs, got %v", s.ByType)
	}
}

func TestC17Function(t *testing.T) {
	// Spot-check the logic against hand evaluation.
	c := C17()
	eval := func(in map[string]bool) map[string]bool {
		vals := make([]bool, c.NumGates())
		for _, id := range c.TopoOrder() {
			g := &c.Gates[id]
			if g.Type == circuit.Input {
				vals[id] = in[g.Name]
				continue
			}
			args := make([]bool, len(g.Fanin))
			for i, f := range g.Fanin {
				args[i] = vals[f]
			}
			vals[id] = g.Type.Eval(args)
		}
		out := map[string]bool{}
		for _, o := range c.Outputs {
			out[c.Gates[o].Name] = vals[o]
		}
		return out
	}
	// All inputs 0: g1=g2=1, g3=NAND(0,1)=1, g4=NAND(1,0)=1, g5=NAND(1,1)=0, g6=0.
	out := eval(map[string]bool{})
	if out["g5"] || out["g6"] {
		t.Errorf("all-zero inputs: got g5=%v g6=%v, want false,false", out["g5"], out["g6"])
	}
	// I1..I5 = 1: g1=NAND(1,1)=0, g2=0, g3=NAND(1,0)=1, g4=NAND(0,1)=1, g5=NAND(0,1)=1, g6=NAND(1,1)=0.
	out = eval(map[string]bool{"I1": true, "I2": true, "I3": true, "I4": true, "I5": true})
	if !out["g5"] || out["g6"] {
		t.Errorf("all-one inputs: got g5=%v g6=%v, want true,false", out["g5"], out["g6"])
	}
}

func mult(t *testing.T, n int) *circuit.Circuit {
	t.Helper()
	m, err := ArrayMultiplier(n)
	if err != nil {
		t.Fatalf("ArrayMultiplier(%d): %v", n, err)
	}
	return m
}

func TestArrayMultiplierStructure(t *testing.T) {
	m := mult(t, 4)
	s := m.ComputeStats()
	if s.Inputs != 8 {
		t.Errorf("inputs = %d, want 8", s.Inputs)
	}
	if s.Outputs != 8 {
		t.Errorf("outputs = %d, want 8", s.Outputs)
	}
	if s.LogicGates < 16 {
		t.Errorf("gates = %d, want at least 16 partial products", s.LogicGates)
	}
}

// TestArrayMultiplierFunction verifies the generated netlist actually
// multiplies, exhaustively for 4x4.
func TestArrayMultiplierFunction(t *testing.T) {
	n := 4
	m := mult(t, n)
	vals := make([]bool, m.NumGates())
	order := m.TopoOrder()
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			for i := 0; i < n; i++ {
				ga, _ := m.GateByName(gateName("a", i))
				gb, _ := m.GateByName(gateName("b", i))
				vals[ga.ID] = a&(1<<i) != 0
				vals[gb.ID] = b&(1<<i) != 0
			}
			for _, id := range order {
				g := &m.Gates[id]
				if g.Type == circuit.Input {
					continue
				}
				args := make([]bool, len(g.Fanin))
				for i, f := range g.Fanin {
					args[i] = vals[f]
				}
				vals[id] = g.Type.Eval(args)
			}
			got := 0
			for i, o := range m.Outputs {
				if vals[o] {
					got |= 1 << i
				}
			}
			if got != a*b {
				t.Fatalf("%d * %d = %d, circuit says %d", a, b, a*b, got)
			}
		}
	}
}

func gateName(prefix string, i int) string {
	return prefix + string(rune('0'+i%10))
}

func TestArrayMultiplier16InC6288Class(t *testing.T) {
	m := mult(t, 16)
	s := m.ComputeStats()
	if s.Inputs != 32 || s.Outputs != 32 {
		t.Errorf("I/O = %d/%d, want 32/32", s.Inputs, s.Outputs)
	}
	if s.LogicGates < 1200 || s.LogicGates > 3000 {
		t.Errorf("gates = %d, want C6288 order of magnitude (1200..3000)", s.LogicGates)
	}
	if s.Depth < 40 {
		t.Errorf("depth = %d, want the deep carry chains of an array multiplier (>=40)", s.Depth)
	}
	t.Logf("mult16x16: %d gates, depth %d", s.LogicGates, s.Depth)
}

func TestArrayMultiplierRejectsTiny(t *testing.T) {
	if _, err := ArrayMultiplier(1); err == nil {
		t.Error("want error for n=1")
	}
}

func TestRandomLogicMatchesSpec(t *testing.T) {
	spec := Spec{Name: "t1", Inputs: 20, Outputs: 8, Gates: 200, Depth: 15, Seed: 7}
	c, err := RandomLogic(spec)
	if err != nil {
		t.Fatalf("RandomLogic: %v", err)
	}
	s := c.ComputeStats()
	if s.Inputs != spec.Inputs {
		t.Errorf("inputs = %d, want %d", s.Inputs, spec.Inputs)
	}
	if s.LogicGates != spec.Gates {
		t.Errorf("gates = %d, want %d", s.LogicGates, spec.Gates)
	}
	if s.Depth != spec.Depth {
		t.Errorf("depth = %d, want exactly %d", s.Depth, spec.Depth)
	}
	if s.Outputs < spec.Outputs {
		t.Errorf("outputs = %d, want >= %d", s.Outputs, spec.Outputs)
	}
}

func TestRandomLogicDeterministic(t *testing.T) {
	spec := Spec{Name: "t2", Inputs: 10, Outputs: 4, Gates: 80, Depth: 9, Seed: 42}
	c1, err := RandomLogic(spec)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := RandomLogic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Fingerprint(c1) != bench.Fingerprint(c2) {
		t.Error("same spec must generate identical circuits")
	}
	spec.Seed = 43
	c3, err := RandomLogic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Fingerprint(c1) == bench.Fingerprint(c3) {
		t.Error("different seeds should generate different circuits")
	}
}

func TestRandomLogicNoDeadLogic(t *testing.T) {
	c, err := RandomLogic(Spec{Name: "t3", Inputs: 15, Outputs: 5, Gates: 150, Depth: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	isOut := map[int]bool{}
	for _, o := range c.Outputs {
		isOut[o] = true
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if len(g.Fanout) == 0 && !isOut[g.ID] {
			t.Errorf("gate %s drives nothing and is not an output", g.Name)
		}
	}
	// Every primary input must be used.
	for _, id := range c.Inputs {
		if len(c.Gates[id].Fanout) == 0 {
			t.Errorf("input %s unused", c.Gates[id].Name)
		}
	}
}

func TestRandomLogicErrors(t *testing.T) {
	cases := []Spec{
		{Name: "bad1", Inputs: 1, Outputs: 1, Gates: 10, Depth: 3},
		{Name: "bad2", Inputs: 5, Outputs: 1, Gates: 2, Depth: 5},
		{Name: "bad3", Inputs: 5, Outputs: 0, Gates: 10, Depth: 3},
		{Name: "bad4", Inputs: 5, Outputs: 1, Gates: 10, Depth: 0},
	}
	for _, spec := range cases {
		if _, err := RandomLogic(spec); err == nil {
			t.Errorf("%s: want error", spec.Name)
		}
	}
}

func TestISCAS85LikeProfiles(t *testing.T) {
	for _, name := range []string{"c432", "c1908", "c2670"} {
		p, ok := ProfileFor(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		c, err := ISCAS85Like(name)
		if err != nil {
			t.Fatalf("ISCAS85Like(%s): %v", name, err)
		}
		s := c.ComputeStats()
		if s.Inputs != p.Inputs {
			t.Errorf("%s inputs = %d, want %d", name, s.Inputs, p.Inputs)
		}
		if s.LogicGates != p.Gates {
			t.Errorf("%s gates = %d, want %d", name, s.LogicGates, p.Gates)
		}
		if s.Depth != p.Depth {
			t.Errorf("%s depth = %d, want %d", name, s.Depth, p.Depth)
		}
	}
}

func TestISCAS85LikeC6288IsMultiplier(t *testing.T) {
	c, err := ISCAS85Like("c6288")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c6288" {
		t.Errorf("name = %q", c.Name)
	}
	s := c.ComputeStats()
	if s.Inputs != 32 || s.Outputs != 32 {
		t.Errorf("c6288 I/O = %d/%d", s.Inputs, s.Outputs)
	}
	if s.Depth < 40 {
		t.Errorf("c6288 depth = %d, want deep carry chains", s.Depth)
	}
}

func TestISCAS85LikeUnknown(t *testing.T) {
	if _, err := ISCAS85Like("c9999"); err == nil {
		t.Error("want error for unknown circuit")
	}
}

func TestISCAS85LikeAllMappable(t *testing.T) {
	// Every generated circuit must map onto the default cell library.
	lib := celllib.Default()
	for _, name := range Names() {
		c, err := ISCAS85Like(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := celllib.Annotate(c, lib); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("got %d profiles, want 10", len(names))
	}
	if names[0] != "c432" || names[len(names)-1] != "c7552" {
		t.Errorf("Names() = %v, want size-ascending with c432 first, c7552 last", names)
	}
}

func TestGrid2DStructure(t *testing.T) {
	types := []circuit.GateType{circuit.Nand, circuit.Nor, circuit.And}
	g, err := Grid2D(3, 6, types)
	if err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.LogicGates != 18 {
		t.Errorf("gates = %d, want 18", s.LogicGates)
	}
	if s.Inputs != 3 {
		t.Errorf("inputs = %d, want 3 (one per row)", s.Inputs)
	}
	if s.Outputs != 3 {
		t.Errorf("outputs = %d, want 3", s.Outputs)
	}
	if s.Depth != 6 {
		t.Errorf("depth = %d, want 6 (pipeline length)", s.Depth)
	}
	// Column index == level - 1 for every cell.
	lv := g.Levels()
	for r := 0; r < 3; r++ {
		for c := 0; c < 6; c++ {
			cell, ok := g.GateByName(gridName(r, c))
			if !ok {
				t.Fatalf("cell r%dc%d missing", r, c)
			}
			if lv[cell.ID] != c+1 {
				t.Errorf("cell r%dc%d at level %d, want %d", r, c, lv[cell.ID], c+1)
			}
		}
	}
}

func gridName(r, c int) string {
	return "r" + string(rune('0'+r)) + "c" + string(rune('0'+c))
}

func TestGridPartitions(t *testing.T) {
	g, err := Grid2D(3, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsP, err := GridRowPartition(g, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	colsP, err := GridColumnPartition(g, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsP) != 3 || len(colsP) != 6 {
		t.Fatalf("partition sizes: rows=%d cols=%d", len(rowsP), len(colsP))
	}
	count := func(p [][]int) int {
		n := 0
		seen := map[int]bool{}
		for _, grp := range p {
			for _, id := range grp {
				if seen[id] {
					t.Fatal("duplicate gate in partition")
				}
				seen[id] = true
				n++
			}
		}
		return n
	}
	if count(rowsP) != 18 || count(colsP) != 18 {
		t.Error("partitions must cover all 18 cells exactly once")
	}
}

func TestGrid2DDefaults(t *testing.T) {
	g, err := Grid2D(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLogicGates() != 6 {
		t.Errorf("gates = %d, want 6", g.NumLogicGates())
	}
}

func TestGrid2DRejectsBadDimensions(t *testing.T) {
	if _, err := Grid2D(1, 6, nil); err == nil {
		t.Error("want error for rows < 2")
	}
	if _, err := Grid2D(3, 1, nil); err == nil {
		t.Error("want error for cols < 2")
	}
}

func TestGridPartitionsRejectNonGrid(t *testing.T) {
	c := C17()
	if _, err := GridRowPartition(c, 3, 6); err == nil {
		t.Error("row partition of a non-grid circuit must error")
	}
	if _, err := GridColumnPartition(c, 3, 6); err == nil {
		t.Error("column partition of a non-grid circuit must error")
	}
}
