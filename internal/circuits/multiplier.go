package circuits

import (
	"fmt"

	"iddqsyn/internal/circuit"
)

// ArrayMultiplier returns an n×n-bit parallel array multiplier, the
// architecture of the ISCAS85 benchmark C6288 (a 16×16 multiplier built
// from an array of half and full adders). The partial-product matrix is
// n² AND2 gates; each adder row accumulates one partial-product row with
// ripple carries, giving the long carry chains responsible for C6288's
// extreme logic depth.
//
// ArrayMultiplier(16) yields a circuit in the same class as C6288:
// 32 inputs, 32 outputs, 1408 gates, depth 88 (C6288: 2406 gates, depth
// 124 — the real circuit expands each adder into NOR cells).
func ArrayMultiplier(n int) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("circuits: ArrayMultiplier needs n >= 2 (got %d)", n)
	}
	b := circuit.NewBuilder(fmt.Sprintf("mult%dx%d", n, n))
	a := make([]string, n)
	q := make([]string, n)
	for i := 0; i < n; i++ {
		a[i] = fmt.Sprintf("a%d", i)
		q[i] = fmt.Sprintf("b%d", i)
		b.AddInput(a[i])
		b.AddInput(q[i])
	}

	// Partial products pp[i][j] = a[j] AND b[i].
	pp := make([][]string, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]string, n)
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("pp_%d_%d", i, j)
			b.AddGate(name, circuit.And, a[j], q[i])
			pp[i][j] = name
		}
	}

	gid := 0
	fresh := func(prefix string) string {
		gid++
		return fmt.Sprintf("%s_%d", prefix, gid)
	}
	// halfAdder emits sum and carry nets for x+y.
	halfAdder := func(x, y string) (sum, carry string) {
		sum = fresh("has")
		carry = fresh("hac")
		b.AddGate(sum, circuit.Xor, x, y)
		b.AddGate(carry, circuit.And, x, y)
		return
	}
	// fullAdder emits sum and carry nets for x+y+z using the standard
	// 2-XOR, 2-AND, 1-OR decomposition (5 cells per FA, matching the
	// NOR-cell adders of C6288 in gate-count order of magnitude).
	fullAdder := func(x, y, z string) (sum, carry string) {
		t := fresh("fat")
		b.AddGate(t, circuit.Xor, x, y)
		sum = fresh("fas")
		b.AddGate(sum, circuit.Xor, t, z)
		c1 := fresh("fac1")
		b.AddGate(c1, circuit.And, x, y)
		c2 := fresh("fac2")
		b.AddGate(c2, circuit.And, t, z)
		carry = fresh("fac")
		b.AddGate(carry, circuit.Or, c1, c2)
		return
	}

	// Row-by-row carry-save accumulation. rowSum holds the running sums
	// for bit positions i..i+n-1 after adding partial-product row i.
	rowSum := make([]string, n) // current row sums, index = column within row
	copy(rowSum, pp[0])
	outputs := make([]string, 0, 2*n)
	outputs = append(outputs, rowSum[0]) // product bit 0
	carryIn := ""                        // ripple carry between rows (none initially)

	for i := 1; i < n; i++ {
		next := make([]string, n)
		var carry string
		for j := 0; j < n; j++ {
			// Add pp[i][j] to rowSum[j+1] (shifted) plus carry chain.
			var above string
			if j+1 < n {
				above = rowSum[j+1]
			} else {
				above = carryIn // carry-out of the previous row enters the top bit
			}
			switch {
			case above == "" && carry == "":
				next[j] = pp[i][j]
			case above == "":
				next[j], carry = halfAdder(pp[i][j], carry)
			case carry == "":
				next[j], carry = halfAdder(pp[i][j], above)
			default:
				next[j], carry = fullAdder(pp[i][j], above, carry)
			}
		}
		carryIn = carry
		rowSum = next
		outputs = append(outputs, rowSum[0]) // product bit i
	}
	// Remaining high-order product bits: rowSum[1..n-1] and the final carry.
	for j := 1; j < n; j++ {
		outputs = append(outputs, rowSum[j])
	}
	if carryIn != "" {
		outputs = append(outputs, carryIn)
	}
	for _, o := range outputs {
		b.MarkOutput(o)
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("circuits: multiplier: %w", err)
	}
	return c, nil
}
