package circuits

import (
	"fmt"
	"math/rand"

	"iddqsyn/internal/circuit"
)

// Spec describes the structural statistics a generated random-logic
// circuit must match. Gate count, input count and depth are hit exactly;
// the output count is a lower bound (dangling gates are promoted to
// outputs so the netlist has no dead logic).
type Spec struct {
	Name    string
	Inputs  int
	Outputs int
	Gates   int // logic gates (excluding primary inputs); must be >= Depth
	Depth   int // exact longest input→output path in gate stages
	Seed    int64
}

// RandomLogic generates a reconvergent random-logic circuit matching the
// Spec. The construction is deterministic for a given Spec (including
// Seed).
//
// Construction: gates are assigned to levels 1..Depth with a guaranteed
// spine chain fixing the exact depth. Every other gate takes its first
// fanin from the previous level (pinning its level exactly) and remaining
// fanins preferentially from nearby levels and from still-unused gates,
// which produces the reconvergent fanout structure of real control logic
// and leaves no dangling gates. Unused primary inputs are appended to
// low-level gates.
func RandomLogic(spec Spec) (*circuit.Circuit, error) {
	if spec.Inputs < 2 {
		return nil, fmt.Errorf("circuits: RandomLogic %q: need at least 2 inputs", spec.Name)
	}
	if spec.Depth < 1 {
		return nil, fmt.Errorf("circuits: RandomLogic %q: need depth >= 1", spec.Name)
	}
	if spec.Gates < spec.Depth {
		return nil, fmt.Errorf("circuits: RandomLogic %q: %d gates cannot reach depth %d",
			spec.Name, spec.Gates, spec.Depth)
	}
	if spec.Outputs < 1 {
		return nil, fmt.Errorf("circuits: RandomLogic %q: need at least 1 output", spec.Name)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	type node struct {
		name  string
		typ   circuit.GateType
		level int
		fanin []int // indices into nodes
	}
	// nodes[0..Inputs-1] are primary inputs at level 0.
	nodes := make([]node, 0, spec.Inputs+spec.Gates)
	for i := 0; i < spec.Inputs; i++ {
		nodes = append(nodes, node{name: fmt.Sprintf("i%d", i), typ: circuit.Input})
	}

	// Distribute gate counts over levels: one spine gate per level, the
	// rest proportional to a flat profile with random jitter.
	perLevel := make([]int, spec.Depth+1)
	for l := 1; l <= spec.Depth; l++ {
		perLevel[l] = 1 // spine
	}
	extra := spec.Gates - spec.Depth
	for i := 0; i < extra; i++ {
		perLevel[1+rng.Intn(spec.Depth)]++
	}

	byLevel := make([][]int, spec.Depth+1) // node indices per level
	for i := 0; i < spec.Inputs; i++ {
		byLevel[0] = append(byLevel[0], i)
	}
	fanoutCount := make([]int, 0, spec.Inputs+spec.Gates)
	fanoutCount = append(fanoutCount, make([]int, spec.Inputs)...)

	types := []circuit.GateType{circuit.Nand, circuit.Nor, circuit.And, circuit.Or, circuit.Not, circuit.Xor, circuit.Buf}
	typeWeights := []int{30, 20, 15, 15, 10, 6, 4}
	pickType := func() circuit.GateType {
		total := 0
		for _, w := range typeWeights {
			total += w
		}
		r := rng.Intn(total)
		for i, w := range typeWeights {
			if r < w {
				return types[i]
			}
		}
		return circuit.Nand
	}

	// pickFrom selects a random node index at a level <= maxLevel,
	// biased towards levels close to maxLevel (locality) and towards
	// nodes that do not yet drive anything (no dead logic).
	pickFrom := func(maxLevel int, exclude map[int]bool) int {
		for attempt := 0; attempt < 64; attempt++ {
			// Geometric locality: mostly maxLevel, sometimes further back.
			l := maxLevel
			for l > 0 && rng.Intn(3) == 0 {
				l--
			}
			cands := byLevel[l]
			if len(cands) == 0 {
				continue
			}
			idx := cands[rng.Intn(len(cands))]
			if exclude[idx] {
				continue
			}
			// Prefer unused nodes: accept a used node with lower odds.
			if fanoutCount[idx] > 0 && attempt < 32 && rng.Intn(3) != 0 {
				continue
			}
			return idx
		}
		// Fallback: linear scan for anything legal.
		for l := maxLevel; l >= 0; l-- {
			for _, idx := range byLevel[l] {
				if !exclude[idx] {
					return idx
				}
			}
		}
		return -1
	}

	gateNum := 0
	for l := 1; l <= spec.Depth; l++ {
		for k := 0; k < perLevel[l]; k++ {
			typ := pickType()
			nFanin := 1
			switch typ {
			case circuit.Not, circuit.Buf:
				nFanin = 1
			case circuit.Xor:
				nFanin = 2 + rng.Intn(2)
			default:
				nFanin = 2 + rng.Intn(3)
			}
			exclude := make(map[int]bool, nFanin)
			fanin := make([]int, 0, nFanin)
			// First fanin comes from level l-1, pinning the gate's level.
			var first int
			if k == 0 && l > 1 {
				// Spine gate: chain through the previous spine gate so
				// the depth is exact by construction.
				first = byLevel[l-1][0]
			} else {
				cands := byLevel[l-1]
				first = cands[rng.Intn(len(cands))]
			}
			fanin = append(fanin, first)
			exclude[first] = true
			for len(fanin) < nFanin {
				idx := pickFrom(l-1, exclude)
				if idx < 0 {
					break
				}
				fanin = append(fanin, idx)
				exclude[idx] = true
			}
			if len(fanin) == 1 && typ != circuit.Not && typ != circuit.Buf {
				typ = circuit.Not
			}
			gateNum++
			ni := len(nodes)
			nodes = append(nodes, node{
				name:  fmt.Sprintf("g%d", gateNum),
				typ:   typ,
				level: l,
				fanin: fanin,
			})
			fanoutCount = append(fanoutCount, 0)
			for _, f := range fanin {
				fanoutCount[f]++
			}
			byLevel[l] = append(byLevel[l], ni)
		}
	}

	// Wire unused primary inputs into gates that can still take a pin.
	for i := 0; i < spec.Inputs; i++ {
		if fanoutCount[i] > 0 {
			continue
		}
		hooked := false
		for tries := 0; tries < 4*len(nodes) && !hooked; tries++ {
			gi := spec.Inputs + rng.Intn(len(nodes)-spec.Inputs)
			g := &nodes[gi]
			if g.typ == circuit.Not || g.typ == circuit.Buf || len(g.fanin) >= 5 {
				continue
			}
			if g.typ == circuit.Xor && len(g.fanin) >= 3 {
				continue
			}
			dup := false
			for _, f := range g.fanin {
				if f == i {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			g.fanin = append(g.fanin, i)
			fanoutCount[i]++
			hooked = true
		}
		if !hooked {
			return nil, fmt.Errorf("circuits: RandomLogic %q: could not connect input i%d", spec.Name, i)
		}
	}

	// Primary outputs: every dangling gate, then the deepest gates until
	// the requested output count is reached.
	var outputs []int
	for i := spec.Inputs; i < len(nodes); i++ {
		if fanoutCount[i] == 0 {
			outputs = append(outputs, i)
		}
	}
	if len(outputs) < spec.Outputs {
		isOut := make(map[int]bool, len(outputs))
		for _, o := range outputs {
			isOut[o] = true
		}
		for l := spec.Depth; l >= 1 && len(outputs) < spec.Outputs; l-- {
			for _, idx := range byLevel[l] {
				if !isOut[idx] {
					isOut[idx] = true
					outputs = append(outputs, idx)
					if len(outputs) == spec.Outputs {
						break
					}
				}
			}
		}
	}

	b := circuit.NewBuilder(spec.Name)
	for i := 0; i < spec.Inputs; i++ {
		b.AddInput(nodes[i].name)
	}
	for i := spec.Inputs; i < len(nodes); i++ {
		names := make([]string, len(nodes[i].fanin))
		for j, f := range nodes[i].fanin {
			names[j] = nodes[f].name
		}
		b.AddGate(nodes[i].name, nodes[i].typ, names...)
	}
	for _, o := range outputs {
		b.MarkOutput(nodes[o].name)
	}
	return b.Build()
}
