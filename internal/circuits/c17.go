// Package circuits provides the benchmark circuits the experiments run on:
// the exact ISCAS85 C17 netlist used in the paper's running example
// (figures 3-5), a genuine n×n array multiplier standing in for C6288, a
// reconvergent random-logic generator matched to the published structural
// statistics of the remaining ISCAS85 circuits, and the two-dimensional
// cell array of figure 2.
//
// The original ISCAS85 netlists are not redistributable inside this
// offline module; DESIGN.md documents why structurally matched synthetic
// circuits preserve the paper's experiments (all estimators consume only
// graph structure plus cell-library data).
package circuits

import "iddqsyn/internal/circuit"

// C17 returns the ISCAS85 benchmark C17 exactly as drawn in the paper's
// figures 3-5: six 2-input NAND gates g1..g6 over inputs I1..I5 with
// outputs g5 (named 02 in the figures) and g6 (03).
func C17() *circuit.Circuit {
	b := circuit.NewBuilder("c17")
	for _, in := range []string{"I1", "I2", "I3", "I4", "I5"} {
		b.AddInput(in)
	}
	b.AddGate("g1", circuit.Nand, "I1", "I3")
	b.AddGate("g2", circuit.Nand, "I3", "I4")
	b.AddGate("g3", circuit.Nand, "I2", "g2")
	b.AddGate("g4", circuit.Nand, "g2", "I5")
	b.AddGate("g5", circuit.Nand, "g1", "g3")
	b.AddGate("g6", circuit.Nand, "g3", "g4")
	b.MarkOutput("g5")
	b.MarkOutput("g6")
	return mustBuild(b.Build())
}

// mustBuild unwraps a Builder result for the static generators (C17 and
// friends) whose netlist is compile-time data: a build failure there is a
// programming error, not an input condition, so it panics per the
// project's panic policy.
func mustBuild(c *circuit.Circuit, err error) *circuit.Circuit {
	if err != nil {
		panic("circuits: static netlist must build: " + err.Error())
	}
	return c
}
