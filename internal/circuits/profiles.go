package circuits

import (
	"fmt"
	"sort"

	"iddqsyn/internal/circuit"
)

// Profile records the published structural statistics of an ISCAS85
// benchmark circuit [Brglez et al., ISCAS 1985], which the synthetic
// stand-in must match.
type Profile struct {
	Name    string
	Inputs  int
	Outputs int
	Gates   int
	Depth   int
}

// iscas85Profiles lists the circuits of the paper's Table 1 plus the
// smaller benchmarks useful for fast tests. C7552 appears as "c7522" in
// the paper's Table 1 header — a typo for the standard C7552.
var iscas85Profiles = map[string]Profile{
	"c432":  {Name: "c432", Inputs: 36, Outputs: 7, Gates: 160, Depth: 17},
	"c499":  {Name: "c499", Inputs: 41, Outputs: 32, Gates: 202, Depth: 11},
	"c880":  {Name: "c880", Inputs: 60, Outputs: 26, Gates: 383, Depth: 24},
	"c1355": {Name: "c1355", Inputs: 41, Outputs: 32, Gates: 546, Depth: 24},
	"c1908": {Name: "c1908", Inputs: 33, Outputs: 25, Gates: 880, Depth: 40},
	"c2670": {Name: "c2670", Inputs: 233, Outputs: 140, Gates: 1193, Depth: 32},
	"c3540": {Name: "c3540", Inputs: 50, Outputs: 22, Gates: 1669, Depth: 47},
	"c5315": {Name: "c5315", Inputs: 178, Outputs: 123, Gates: 2307, Depth: 49},
	"c6288": {Name: "c6288", Inputs: 32, Outputs: 32, Gates: 2406, Depth: 124},
	"c7552": {Name: "c7552", Inputs: 207, Outputs: 108, Gates: 3512, Depth: 43},
}

// ProfileFor returns the published structural profile of a named ISCAS85
// circuit.
func ProfileFor(name string) (Profile, bool) {
	p, ok := iscas85Profiles[name]
	return p, ok
}

// Names returns the known ISCAS85 profile names in ascending size order.
func Names() []string {
	out := make([]string, 0, len(iscas85Profiles))
	for n := range iscas85Profiles {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		return iscas85Profiles[out[i]].Gates < iscas85Profiles[out[j]].Gates
	})
	return out
}

// ISCAS85Like returns a deterministic synthetic circuit with the same
// input count, gate count and logic depth as the named ISCAS85 benchmark
// (and at least its output count). C6288 is generated as a genuine 16×16
// array multiplier, its real architecture; the rest are reconvergent
// random logic seeded by the circuit name.
func ISCAS85Like(name string) (*circuit.Circuit, error) {
	p, ok := iscas85Profiles[name]
	if !ok {
		return nil, fmt.Errorf("circuits: unknown ISCAS85 profile %q (have %v)", name, Names())
	}
	if name == "c6288" {
		m, err := ArrayMultiplier(16)
		if err != nil {
			return nil, err
		}
		m.Name = "c6288"
		return m, nil
	}
	var seed int64
	for _, r := range name {
		seed = seed*131 + int64(r)
	}
	return RandomLogic(Spec{
		Name:    p.Name,
		Inputs:  p.Inputs,
		Outputs: p.Outputs,
		Gates:   p.Gates,
		Depth:   p.Depth,
		Seed:    seed,
	})
}

// MustISCAS85Like is ISCAS85Like for static, known-good names; it panics
// on error and is intended for tests and benchmarks.
func MustISCAS85Like(name string) *circuit.Circuit {
	c, err := ISCAS85Like(name)
	if err != nil {
		panic(err)
	}
	return c
}
