package circuits

import (
	"fmt"

	"iddqsyn/internal/circuit"
)

// Grid2D builds the two-dimensional cell-array CUT of the paper's
// figure 2: rows × cols cells, where each row is a pipeline chain
// cell(r,0) → cell(r,1) → ... → cell(r,cols-1) and the cell type cycles
// through cellTypes along the columns (the figure uses three types
// C1, C2, C3).
//
// The array is a systolic pipeline: cell (r, c) takes both fanins from
// column c−1 (its own row and the next row, wrapping), so every cell in
// column c has the single transition time c+1. Cells in the same column
// switch simultaneously while cells in the same row never do — exactly
// the property that makes the per-row partition ("partition 1") need
// smaller BIC sensors than the per-column partition ("partition 2"):
// the same-type, same-column cells of partition 2 switch in parallel and
// their peak currents add.
//
// Cell r,c is named "r<r>c<c>".
func Grid2D(rows, cols int, cellTypes []circuit.GateType) (*circuit.Circuit, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("circuits: Grid2D needs rows >= 2, cols >= 2 (got %d×%d)", rows, cols)
	}
	if len(cellTypes) == 0 {
		cellTypes = []circuit.GateType{circuit.Nand, circuit.Nor, circuit.And}
	}
	b := circuit.NewBuilder(fmt.Sprintf("grid%dx%d", rows, cols))
	for r := 0; r < rows; r++ {
		b.AddInput(fmt.Sprintf("x%d", r))
	}
	prevName := func(r, c int) string {
		if c < 0 {
			return fmt.Sprintf("x%d", r)
		}
		return fmt.Sprintf("r%dc%d", r, c)
	}
	for c := 0; c < cols; c++ {
		typ := cellTypes[c%len(cellTypes)]
		for r := 0; r < rows; r++ {
			b.AddGate(fmt.Sprintf("r%dc%d", r, c), typ,
				prevName(r, c-1), prevName((r+1)%rows, c-1))
		}
	}
	for r := 0; r < rows; r++ {
		b.MarkOutput(fmt.Sprintf("r%dc%d", r, cols-1))
	}
	c, err := b.Build()
	if err != nil {
		// The builder only fails on malformed netlists, which the loops
		// above cannot produce — but the signature already carries an
		// error, so propagate instead of panicking.
		return nil, fmt.Errorf("circuits: Grid2D: %w", err)
	}
	return c, nil
}

// GridRowPartition returns the per-row grouping of a Grid2D circuit
// (figure 2's "partition 1": each group holds one cell of every type, and
// the cells never switch in parallel).
func GridRowPartition(c *circuit.Circuit, rows, cols int) ([][]int, error) {
	groups := make([][]int, rows)
	for r := 0; r < rows; r++ {
		for col := 0; col < cols; col++ {
			g, ok := c.GateByName(fmt.Sprintf("r%dc%d", r, col))
			if !ok {
				return nil, fmt.Errorf("circuits: %s is not a %d×%d Grid2D circuit (no cell r%dc%d)",
					c.Name, rows, cols, r, col)
			}
			groups[r] = append(groups[r], g.ID)
		}
	}
	return groups, nil
}

// GridColumnPartition returns the per-column-band grouping of a Grid2D
// circuit (figure 2's "partition 2": each group holds cells of the same
// type, all switching simultaneously). Bands of width len(cellTypes)
// columns are cut so both partitions have comparable group sizes when
// rows == len(cellTypes): group k holds column k of every row band.
func GridColumnPartition(c *circuit.Circuit, rows, cols int) ([][]int, error) {
	groups := make([][]int, cols)
	for col := 0; col < cols; col++ {
		for r := 0; r < rows; r++ {
			g, ok := c.GateByName(fmt.Sprintf("r%dc%d", r, col))
			if !ok {
				return nil, fmt.Errorf("circuits: %s is not a %d×%d Grid2D circuit (no cell r%dc%d)",
					c.Name, rows, cols, r, col)
			}
			groups[col] = append(groups[col], g.ID)
		}
	}
	return groups, nil
}
