package techmap

import (
	"math/rand"
	"testing"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/partition"
)

func build(t *testing.T, f func(b *circuit.Builder)) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("t")
	f(b)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDecomposeWideAnd(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		for _, n := range []string{"a", "b", "c", "d", "e"} {
			b.AddInput(n)
		}
		b.AddGate("y", circuit.And, "a", "b", "c", "d", "e")
		b.MarkOutput("y")
	})
	d, err := Decompose(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range d.LogicGates() {
		if n := len(d.Gates[g].Fanin); n > 2 {
			t.Errorf("gate %s has fanin %d after Decompose(2)", d.Gates[g].Name, n)
		}
	}
	if err := VerifyEquivalent(c, d, 64, 1); err != nil {
		t.Errorf("decomposed AND5 not equivalent: %v", err)
	}
	// The injected-stream variant must agree with the seed-driven one.
	if err := VerifyEquivalentRand(c, d, 64, rand.New(rand.NewSource(1))); err != nil {
		t.Errorf("VerifyEquivalentRand disagrees: %v", err)
	}
	// The output gate keeps its name.
	if _, ok := d.GateByName("y"); !ok {
		t.Error("output gate renamed")
	}
}

func TestDecomposeInvertingHeads(t *testing.T) {
	// NAND5, NOR5, XNOR3: the inversion must stay at the head only.
	c := build(t, func(b *circuit.Builder) {
		for _, n := range []string{"a", "b", "c", "d", "e"} {
			b.AddInput(n)
		}
		b.AddGate("y1", circuit.Nand, "a", "b", "c", "d", "e")
		b.AddGate("y2", circuit.Nor, "a", "b", "c", "d", "e")
		b.AddGate("y3", circuit.Xnor, "a", "b", "c")
		b.MarkOutput("y1").MarkOutput("y2").MarkOutput("y3")
	})
	d, err := Decompose(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalent(c, d, 64, 2); err != nil {
		t.Errorf("not equivalent: %v", err)
	}
}

func TestDecomposeNoopWhenNarrow(t *testing.T) {
	c := circuits.C17() // all NAND2
	d, err := Decompose(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLogicGates() != c.NumLogicGates() {
		t.Errorf("gate count changed: %d -> %d", c.NumLogicGates(), d.NumLogicGates())
	}
	if err := VerifyEquivalent(c, d, 32, 3); err != nil {
		t.Error(err)
	}
}

func TestDecomposeBadFanin(t *testing.T) {
	if _, err := Decompose(circuits.C17(), 1); err == nil {
		t.Error("want error for maxFanin < 2")
	}
}

func TestRecomposeAndChain(t *testing.T) {
	// AND(AND(a,b), c) with fanout-free inner gate -> AND3.
	c := build(t, func(b *circuit.Builder) {
		b.AddInput("a").AddInput("b").AddInput("c")
		b.AddGate("t1", circuit.And, "a", "b")
		b.AddGate("y", circuit.And, "t1", "c")
		b.MarkOutput("y")
	})
	r, err := Recompose(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLogicGates() != 1 {
		t.Errorf("gates = %d, want 1 (merged AND3)", r.NumLogicGates())
	}
	y, _ := r.GateByName("y")
	if y == nil || len(y.Fanin) != 3 || y.Type != circuit.And {
		t.Errorf("merged gate = %+v", y)
	}
	if err := VerifyEquivalent(c, r, 16, 4); err != nil {
		t.Error(err)
	}
}

func TestRecomposeNandHead(t *testing.T) {
	// NAND(AND(a,b), c) -> NAND3(a,b,c).
	c := build(t, func(b *circuit.Builder) {
		b.AddInput("a").AddInput("b").AddInput("c")
		b.AddGate("t1", circuit.And, "a", "b")
		b.AddGate("y", circuit.Nand, "t1", "c")
		b.MarkOutput("y")
	})
	r, err := Recompose(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLogicGates() != 1 {
		t.Errorf("gates = %d, want 1", r.NumLogicGates())
	}
	if err := VerifyEquivalent(c, r, 16, 5); err != nil {
		t.Error(err)
	}
}

func TestRecomposeRespectsFanout(t *testing.T) {
	// The inner AND drives two gates: it must NOT be absorbed.
	c := build(t, func(b *circuit.Builder) {
		b.AddInput("a").AddInput("b").AddInput("c")
		b.AddGate("t1", circuit.And, "a", "b")
		b.AddGate("y1", circuit.And, "t1", "c")
		b.AddGate("y2", circuit.Or, "t1", "c")
		b.MarkOutput("y1").MarkOutput("y2")
	})
	r, err := Recompose(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLogicGates() != 3 {
		t.Errorf("gates = %d, want 3 (shared gate kept)", r.NumLogicGates())
	}
	if err := VerifyEquivalent(c, r, 16, 6); err != nil {
		t.Error(err)
	}
}

func TestRecomposeRespectsOutputs(t *testing.T) {
	// The inner AND is itself a primary output: keep it.
	c := build(t, func(b *circuit.Builder) {
		b.AddInput("a").AddInput("b").AddInput("c")
		b.AddGate("t1", circuit.And, "a", "b")
		b.AddGate("y", circuit.And, "t1", "c")
		b.MarkOutput("y").MarkOutput("t1")
	})
	r, err := Recompose(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLogicGates() != 2 {
		t.Errorf("gates = %d, want 2", r.NumLogicGates())
	}
	if err := VerifyEquivalent(c, r, 16, 7); err != nil {
		t.Error(err)
	}
}

func TestRecomposeRespectsLibraryWidth(t *testing.T) {
	// A chain that would need a 10-input AND must stop at the library's
	// widest cell (AND9 in the default library).
	c := build(t, func(b *circuit.Builder) {
		names := make([]string, 12)
		for i := range names {
			names[i] = string(rune('a' + i))
			b.AddInput(names[i])
		}
		prev := names[0]
		for i := 1; i < len(names); i++ {
			n := "t" + string(rune('0'+i%10)) + string(rune('a'+i/10))
			b.AddGate(n, circuit.And, prev, names[i])
			prev = n
		}
		b.MarkOutput(prev)
	})
	r, err := Recompose(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	lib := celllib.Default()
	for _, g := range r.LogicGates() {
		if _, err := lib.CellFor(r.Gates[g].Type, len(r.Gates[g].Fanin)); err != nil {
			t.Errorf("gate %s unmappable after Recompose: %v", r.Gates[g].Name, err)
		}
	}
	if err := VerifyEquivalent(c, r, 64, 8); err != nil {
		t.Error(err)
	}
}

func TestRecomposeXorPlaneKeepsDuplicates(t *testing.T) {
	// Reconvergent XOR absorption: XOR(XOR(a,b), XOR(b,c)) = a ⊕ c.
	// Dropping the duplicate b would give a⊕b⊕c — wrong.
	c := build(t, func(b *circuit.Builder) {
		b.AddInput("a").AddInput("b").AddInput("c")
		b.AddGate("t1", circuit.Xor, "a", "b")
		b.AddGate("t2", circuit.Xor, "b", "c")
		b.AddGate("y", circuit.Xor, "t1", "t2")
		b.MarkOutput("y")
	})
	r, err := Recompose(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalent(c, r, 16, 9); err != nil {
		t.Errorf("XOR-plane recompose broke the function: %v", err)
	}
}

func TestRecomposeAndPlaneDedup(t *testing.T) {
	// Reconvergent AND absorption: NAND(AND(a,b), AND(b,c)) — duplicate b
	// is idempotent, dedup is safe and saves a pin.
	c := build(t, func(b *circuit.Builder) {
		b.AddInput("a").AddInput("b").AddInput("c")
		b.AddGate("t1", circuit.And, "a", "b")
		b.AddGate("t2", circuit.And, "b", "c")
		b.AddGate("y", circuit.Nand, "t1", "t2")
		b.MarkOutput("y")
	})
	r, err := Recompose(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEquivalent(c, r, 16, 10); err != nil {
		t.Error(err)
	}
	if y, _ := r.GateByName("y"); y != nil && len(y.Fanin) > 3 {
		t.Errorf("duplicate operand not deduped: fanin %d", len(y.Fanin))
	}
}

func TestRecomposeCollapsesBuffers(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.AddInput("a").AddInput("b")
		b.AddGate("t1", circuit.Buf, "a")
		b.AddGate("y", circuit.And, "t1", "b")
		b.MarkOutput("y")
	})
	r, err := Recompose(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLogicGates() != 1 {
		t.Errorf("gates = %d, want 1 (buffer collapsed)", r.NumLogicGates())
	}
	if err := VerifyEquivalent(c, r, 8, 11); err != nil {
		t.Error(err)
	}
}

func TestDecomposeRecomposeRoundTripOnBenchmarks(t *testing.T) {
	for _, name := range []string{"c432", "c880"} {
		c := circuits.MustISCAS85Like(name)
		narrow, err := Decompose(c, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyEquivalent(c, narrow, 128, 12); err != nil {
			t.Errorf("%s narrow: %v", name, err)
		}
		wide, err := Recompose(c, celllib.Default())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyEquivalent(c, wide, 128, 13); err != nil {
			t.Errorf("%s wide: %v", name, err)
		}
		if wide.NumLogicGates() > c.NumLogicGates() {
			t.Errorf("%s: Recompose grew the netlist %d -> %d",
				name, c.NumLogicGates(), wide.NumLogicGates())
		}
		t.Logf("%s: %d gates | narrow %d | wide %d",
			name, c.NumLogicGates(), narrow.NumLogicGates(), wide.NumLogicGates())
	}
}

func TestMapForIDDQ(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	res, err := MapForIDDQ(c, celllib.Default(), estimate.DefaultParams(),
		partition.PaperWeights(), partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 3 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	for _, cand := range res.Candidates {
		if cand.Cost <= 0 || cand.Gates <= 0 {
			t.Errorf("%v: degenerate candidate %+v", cand.Style, cand)
		}
		if cand.Cost < res.Chosen.Cost {
			t.Errorf("chose %v (%.6g) but %v is cheaper (%.6g)",
				res.Chosen.Style, res.Chosen.Cost, cand.Style, cand.Cost)
		}
		if err := VerifyEquivalent(c, cand.Circuit, 64, 14); err != nil {
			t.Errorf("%v candidate not equivalent: %v", cand.Style, err)
		}
	}
	t.Logf("mapper on c432: chose %v; candidates: %v=%0.6g %v=%0.6g %v=%0.6g",
		res.Chosen.Style,
		res.Candidates[0].Style, res.Candidates[0].Cost,
		res.Candidates[1].Style, res.Candidates[1].Cost,
		res.Candidates[2].Style, res.Candidates[2].Cost)
}

func TestVerifyEquivalentCatchesDifference(t *testing.T) {
	a := build(t, func(b *circuit.Builder) {
		b.AddInput("x").AddInput("y")
		b.AddGate("z", circuit.And, "x", "y")
		b.MarkOutput("z")
	})
	bad := build(t, func(b *circuit.Builder) {
		b.AddInput("x").AddInput("y")
		b.AddGate("z", circuit.Or, "x", "y")
		b.MarkOutput("z")
	})
	if err := VerifyEquivalent(a, bad, 16, 15); err == nil {
		t.Error("AND vs OR must be caught")
	}
	missing := build(t, func(b *circuit.Builder) {
		b.AddInput("x").AddInput("w")
		b.AddGate("z", circuit.And, "x", "w")
		b.MarkOutput("z")
	})
	if err := VerifyEquivalent(a, missing, 4, 16); err == nil {
		t.Error("renamed input must be caught")
	}
}

func TestStyleString(t *testing.T) {
	if StyleAsIs.String() != "as-is" || StyleNarrow.String() != "narrow" || StyleWide.String() != "wide" {
		t.Error("Style.String mismatch")
	}
	if Style(9).String() != "Style(9)" {
		t.Error("out-of-range Style.String")
	}
}
