// Package techmap implements the paper's concluding "next step":
// "controlling the logic synthesis procedure such that the presented cost
// function is considered at the early beginning". It provides
// function-preserving netlist transformations — decomposing wide cells
// into trees of narrow ones and the inverse recomposition of fanout-free
// chains into wide library cells — and a mapper that picks, per circuit,
// the style minimising the PART-IDDQ cost function rather than gate count
// or delay alone.
//
// Narrow cells draw smaller peak currents (smaller simultaneous-switching
// worst case per module) but multiply the gate count and leakage; wide
// cells are the opposite trade. Which side wins depends on the same
// weights α₁..α₅ that drive the partitioner, so the mapper evaluates the
// true cost on a trial partition of every candidate.
package techmap

import (
	"fmt"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
)

// Decompose rewrites every gate with more than maxFanin inputs into a
// balanced tree of gates with at most maxFanin inputs, preserving the
// Boolean function:
//
//	AND/OR/XOR(k)   → balanced tree of the same function
//	NAND(k)         → NAND(maxFanin) over AND subtrees (De Morgan head)
//	NOR(k)          → NOR(maxFanin) over OR subtrees
//	XNOR(k)         → XNOR head over XOR subtrees
//
// Primary output gates keep their names; helper gates get fresh "_dN"
// names.
func Decompose(c *circuit.Circuit, maxFanin int) (*circuit.Circuit, error) {
	if maxFanin < 2 {
		return nil, fmt.Errorf("techmap: maxFanin must be >= 2")
	}
	b := circuit.NewBuilder(c.Name)
	fresh := newNamer(c, "_d")
	for _, id := range c.TopoOrder() {
		g := &c.Gates[id]
		if g.Type == circuit.Input {
			b.AddInput(g.Name)
			continue
		}
		fanin := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = c.Gates[f].Name
		}
		if len(fanin) <= maxFanin {
			b.AddGate(g.Name, g.Type, fanin...)
			continue
		}
		emitWide(b, fresh, g.Name, g.Type, fanin, maxFanin)
	}
	for _, o := range c.Outputs {
		b.MarkOutput(c.Gates[o].Name)
	}
	return b.Build()
}

// emitWide builds the tree for one wide gate.
func emitWide(b *circuit.Builder, fresh *namer, name string, typ circuit.GateType, fanin []string, maxFanin int) {
	var inner circuit.GateType // function of the subtree nodes
	switch typ {
	case circuit.And, circuit.Nand:
		inner = circuit.And
	case circuit.Or, circuit.Nor:
		inner = circuit.Or
	case circuit.Xor, circuit.Xnor:
		inner = circuit.Xor
	default:
		// Buf/Not are never wide; defensive fallthrough.
		b.AddGate(name, typ, fanin...)
		return
	}
	// Reduce the operand list until one head gate suffices.
	ops := fanin
	for len(ops) > maxFanin {
		var next []string
		for i := 0; i < len(ops); i += maxFanin {
			end := i + maxFanin
			if end > len(ops) {
				end = len(ops)
			}
			if end-i == 1 {
				next = append(next, ops[i])
				continue
			}
			n := fresh.next()
			b.AddGate(n, inner, ops[i:end]...)
			next = append(next, n)
		}
		ops = next
	}
	b.AddGate(name, typ, ops...)
}

// Recompose absorbs fanout-free same-plane chains into wider cells, the
// inverse of Decompose, limited to widths the library can map:
//
//	AND(AND(a,b), c)  → AND(a,b,c)      OR(OR(a,b), c)   → OR(a,b,c)
//	NAND(AND(a,b),c)  → NAND(a,b,c)     NOR(OR(a,b), c)  → NOR(a,b,c)
//	XOR(XOR(a,b), c)  → XOR(a,b,c)      XNOR(XOR(a,b),c) → XNOR(a,b,c)
//
// A child is absorbed only if its sole fanout is the absorbing gate and
// it is not a primary output. BUF gates with non-output names collapse
// onto their driver.
func Recompose(c *circuit.Circuit, lib *celllib.Library) (*circuit.Circuit, error) {
	isOut := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		isOut[o] = true
	}
	maxWidth := func(typ circuit.GateType) int {
		w := 2
		for ; w < 64; w++ {
			if _, err := lib.CellFor(typ, w+1); err != nil {
				break
			}
		}
		return w
	}

	// alias maps a collapsed BUF's ID to the driver whose name replaces
	// it; absorbed[g] marks gates merged into their (single) fanout.
	alias := make(map[int]int)
	resolve := func(id int) int {
		for {
			a, ok := alias[id]
			if !ok {
				return id
			}
			id = a
		}
	}
	absorbed := make(map[int]bool)

	// effFanin computes the (recursively) merged fanin of a gate.
	var effFanin func(id int) []int
	memo := make(map[int][]int)
	effFanin = func(id int) []int {
		if v, ok := memo[id]; ok {
			return v
		}
		g := &c.Gates[id]
		var out []int
		for _, f := range g.Fanin {
			f = resolve(f)
			if absorbed[f] {
				out = append(out, effFanin(f)...)
			} else {
				out = append(out, f)
			}
		}
		memo[id] = out
		return out
	}

	// Plane compatibility: which child function can be absorbed into
	// which parent function.
	absorbable := func(parent, child circuit.GateType) bool {
		switch parent {
		case circuit.And, circuit.Nand:
			return child == circuit.And
		case circuit.Or, circuit.Nor:
			return child == circuit.Or
		case circuit.Xor, circuit.Xnor:
			return child == circuit.Xor
		}
		return false
	}

	// Pass 1 (topological): decide aliases and absorptions bottom-up.
	for _, id := range c.TopoOrder() {
		g := &c.Gates[id]
		switch g.Type {
		case circuit.Input:
			continue
		case circuit.Buf:
			if !isOut[id] {
				alias[id] = g.Fanin[0]
				continue
			}
		}
		for _, f := range g.Fanin {
			f = resolve(f)
			child := &c.Gates[f]
			if isOut[f] || len(child.Fanout) != 1 || !absorbable(g.Type, child.Type) {
				continue
			}
			// Absorb only if the merged width still maps.
			merged := len(effFanin(id)) // current effective width
			childWidth := len(effFanin(f))
			if merged-1+childWidth <= maxWidth(g.Type) {
				absorbed[f] = true
				delete(memo, id) // fanin changed; recompute lazily
			}
		}
	}

	// Pass 2: emit the surviving gates.
	b := circuit.NewBuilder(c.Name)
	for _, id := range c.TopoOrder() {
		g := &c.Gates[id]
		if g.Type == circuit.Input {
			b.AddInput(g.Name)
			continue
		}
		if _, isAlias := alias[id]; isAlias || absorbed[id] {
			continue
		}
		fan := effFanin(id)
		// Reconvergent absorption can surface duplicate operands. AND/OR
		// planes are idempotent, so duplicates are dropped; XOR planes
		// are NOT (a⊕a = 0), so duplicates must be kept — the wide XOR
		// evaluates the parity of the full operand list.
		dedup := g.Type != circuit.Xor && g.Type != circuit.Xnor
		names := make([]string, 0, len(fan))
		seen := make(map[int]bool, len(fan))
		for _, f := range fan {
			if dedup && seen[f] {
				continue
			}
			seen[f] = true
			names = append(names, c.Gates[f].Name)
		}
		typ := g.Type
		if len(names) == 1 {
			switch typ {
			case circuit.And, circuit.Or, circuit.Xor:
				typ = circuit.Buf
			case circuit.Nand, circuit.Nor, circuit.Xnor:
				typ = circuit.Not
			}
		}
		b.AddGate(g.Name, typ, names...)
	}
	for _, o := range c.Outputs {
		name := c.Gates[resolve(o)].Name
		if resolve(o) != o {
			// The output was an aliased BUF: keep observing the driver.
			name = c.Gates[resolve(o)].Name
		}
		b.MarkOutput(name)
	}
	return b.Build()
}

type namer struct {
	prefix string
	n      int
	used   map[string]bool
}

func newNamer(c *circuit.Circuit, prefix string) *namer {
	used := make(map[string]bool, c.NumGates())
	for i := range c.Gates {
		used[c.Gates[i].Name] = true
	}
	return &namer{prefix: prefix, used: used}
}

func (n *namer) next() string {
	for {
		n.n++
		name := fmt.Sprintf("%s%d", n.prefix, n.n)
		if !n.used[name] {
			n.used[name] = true
			return name
		}
	}
}
