package techmap

import (
	"fmt"
	"math/rand"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/logicsim"
	"iddqsyn/internal/partition"
	"iddqsyn/internal/standard"
)

// Style names a candidate mapping produced by the transformations.
type Style int

// The candidate mapping styles.
const (
	StyleAsIs   Style = iota // the input netlist unchanged
	StyleNarrow              // Decompose to 2-input cells
	StyleWide                // Recompose fanout-free chains into wide cells
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleAsIs:
		return "as-is"
	case StyleNarrow:
		return "narrow"
	case StyleWide:
		return "wide"
	}
	return fmt.Sprintf("Style(%d)", int(s))
}

// Candidate is one evaluated mapping.
type Candidate struct {
	Style   Style
	Circuit *circuit.Circuit
	Gates   int
	Cost    float64 // PART-IDDQ weighted cost of a trial partition
}

// MapResult reports a cost-aware mapping run.
type MapResult struct {
	Chosen     Candidate
	Candidates []Candidate
}

// MapForIDDQ evaluates the as-is, narrow and wide mappings of the circuit
// under the PART-IDDQ cost function — each candidate is trial-partitioned
// with the §5 standard clustering at the §4.2 estimated module size — and
// returns the style with the lowest weighted cost. This is the paper's
// "controlling the logic synthesis procedure such that the presented cost
// function is considered at the early beginning": the mapper's objective
// is the testability cost, not gate count.
func MapForIDDQ(c *circuit.Circuit, lib *celllib.Library, p estimate.Params,
	w partition.Weights, cons partition.Constraints) (*MapResult, error) {

	narrow, err := Decompose(c, 2)
	if err != nil {
		return nil, fmt.Errorf("techmap: decompose: %w", err)
	}
	wide, err := Recompose(c, lib)
	if err != nil {
		return nil, fmt.Errorf("techmap: recompose: %w", err)
	}
	res := &MapResult{}
	for _, cand := range []struct {
		style Style
		c     *circuit.Circuit
	}{
		{StyleAsIs, c}, {StyleNarrow, narrow}, {StyleWide, wide},
	} {
		cost, err := trialCost(cand.c, lib, p, w, cons)
		if err != nil {
			return nil, fmt.Errorf("techmap: %v candidate: %w", cand.style, err)
		}
		res.Candidates = append(res.Candidates, Candidate{
			Style: cand.style, Circuit: cand.c,
			Gates: cand.c.NumLogicGates(), Cost: cost,
		})
	}
	res.Chosen = res.Candidates[0]
	for _, cand := range res.Candidates[1:] {
		if cand.Cost < res.Chosen.Cost {
			res.Chosen = cand
		}
	}
	return res, nil
}

// trialCost maps the candidate onto the library and evaluates the
// weighted cost of a standard trial partition (fast and deterministic —
// a full evolution run per candidate would triple the synthesis time for
// little ranking benefit; the final partition is evolved on the winner).
func trialCost(c *circuit.Circuit, lib *celllib.Library, p estimate.Params,
	w partition.Weights, cons partition.Constraints) (float64, error) {
	a, err := celllib.Annotate(c, lib)
	if err != nil {
		return 0, err
	}
	e := estimate.New(a, p)
	size := standard.EstimateModuleSize(e, w, cons)
	groups := standard.StandardPartition(c, size, p.Rho)
	pt, err := partition.New(e, groups, w, cons)
	if err != nil {
		return 0, err
	}
	return pt.Cost(), nil
}

// VerifyEquivalent checks two circuits with identical primary input and
// output names for functional equality on `vectors` random vectors (plus
// the all-zero and all-one vectors). It returns an error naming the first
// mismatching output. The transformations in this package are
// function-preserving; this is the runtime guard.
func VerifyEquivalent(a, b *circuit.Circuit, vectors int, seed int64) error {
	return VerifyEquivalentRand(a, b, vectors, rand.New(rand.NewSource(seed)))
}

// VerifyEquivalentRand is VerifyEquivalent with an injected random
// stream, for callers that thread one counted source through a whole
// reproducible run.
func VerifyEquivalentRand(a, b *circuit.Circuit, vectors int, rng *rand.Rand) error {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return fmt.Errorf("techmap: interface mismatch: %d/%d inputs, %d/%d outputs",
			len(a.Inputs), len(b.Inputs), len(a.Outputs), len(b.Outputs))
	}
	// Match inputs and outputs by name, not position.
	bIn := make([]int, len(a.Inputs))
	for i, id := range a.Inputs {
		g, ok := b.GateByName(a.Gates[id].Name)
		if !ok || g.Type != circuit.Input {
			return fmt.Errorf("techmap: input %q missing in %s", a.Gates[id].Name, b.Name)
		}
		bIn[i] = g.ID
	}
	type outPair struct {
		name string
		a, b int
	}
	outs := make([]outPair, len(a.Outputs))
	bOutByName := make(map[string]int, len(b.Outputs))
	for _, o := range b.Outputs {
		bOutByName[b.Gates[o].Name] = o
	}
	for i, o := range a.Outputs {
		name := a.Gates[o].Name
		bo, ok := bOutByName[name]
		if !ok {
			return fmt.Errorf("techmap: output %q missing in %s", name, b.Name)
		}
		outs[i] = outPair{name, o, bo}
	}

	simA := logicsim.New(a)
	simB := logicsim.New(b)
	vecA := make([]bool, len(a.Inputs))
	vecB := make([]bool, len(b.Inputs))
	for trial := 0; trial < vectors+2; trial++ {
		for i := range vecA {
			switch trial {
			case 0:
				vecA[i] = false
			case 1:
				vecA[i] = true
			default:
				vecA[i] = rng.Intn(2) == 1
			}
		}
		for i := range vecA {
			vecB[i] = vecA[i]
		}
		if err := simA.ApplyBits(vecA); err != nil {
			return err
		}
		// b's inputs may be ordered differently; apply by mapping.
		valsB := make([]logicsim.Value, len(b.Inputs))
		for i := range b.Inputs {
			valsB[i] = logicsim.X
		}
		for i, id := range bIn {
			_ = id
			valsB[indexOf(b.Inputs, bIn[i])] = logicsim.FromBool(vecA[i])
		}
		if err := simB.Apply(valsB); err != nil {
			return err
		}
		for _, op := range outs {
			if simA.Value(op.a) != simB.Value(op.b) {
				return fmt.Errorf("techmap: output %q differs on trial %d: %v vs %v",
					op.name, trial, simA.Value(op.a), simB.Value(op.b))
			}
		}
	}
	return nil
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
