package evolution

import (
	"context"
	"path/filepath"
	"testing"

	"iddqsyn/internal/obs"
	"iddqsyn/internal/partition"
)

// TestObservedRunMetricsMatchResult checks that the telemetry a run
// records agrees with the Result it returns — and that observing a run
// does not perturb it (the instrumentation must never touch the seeded
// random stream).
func TestObservedRunMetricsMatchResult(t *testing.T) {
	env, prm := controlSetup(t)

	unobserved, err := RunContext(context.Background(), env.e, env.w, env.cons, prm, nil)
	if err != nil {
		t.Fatal(err)
	}

	o := obs.New("r-obs", nil, nil)
	res, err := RunControlled(context.Background(), env.e, env.w, env.cons, prm, nil, &Control{Obs: o})
	if err != nil {
		t.Fatal(err)
	}

	if res.BestCost != unobserved.BestCost || res.Evaluations != unobserved.Evaluations {
		t.Errorf("observed run diverged: cost %v/%v evals %d/%d",
			res.BestCost, unobserved.BestCost, res.Evaluations, unobserved.Evaluations)
	}

	s := o.Registry().Snapshot()
	if got := s.Counters[MetricEvaluations]; got != uint64(res.Evaluations) {
		t.Errorf("%s = %d, want %d (Result.Evaluations)", MetricEvaluations, got, res.Evaluations)
	}
	if got := s.Counters[MetricGenerations]; got != uint64(res.Generations) {
		t.Errorf("%s = %d, want %d (Result.Generations)", MetricGenerations, got, res.Generations)
	}
	if s.Counters[MetricMutationAttempts] == 0 || s.Counters[MetricMutationApplied] == 0 {
		t.Errorf("mutation counters empty: %v", s.Counters)
	}
	if got := s.Histograms[MetricEvalSeconds].Count; got == 0 {
		t.Error("evaluation latency histogram recorded nothing")
	}
	if got := s.Gauges[MetricBestCostGauge]; got != res.BestCost {
		t.Errorf("%s = %v, want %v", MetricBestCostGauge, got, res.BestCost)
	}

	status, ok := o.Status().(RunStatus)
	if !ok {
		t.Fatalf("live status is %T, want RunStatus", o.Status())
	}
	if status.Generation != res.Generations || status.BestCost != res.BestCost {
		t.Errorf("status = gen %d cost %v, want gen %d cost %v",
			status.Generation, status.BestCost, res.Generations, res.BestCost)
	}
	if len(status.History) != len(res.History) {
		t.Errorf("status history has %d entries, want %d", len(status.History), len(res.History))
	}
}

// TestResumedRunContinuesCountersMonotonically is the acceptance test
// for metrics inside checkpoints: a run interrupted mid-flight leaves
// its cumulative telemetry in the checkpoint, and a resume with a fresh
// Obs restores it, so counters continue monotonically and end exactly
// where an uninterrupted observed run ends.
func TestResumedRunContinuesCountersMonotonically(t *testing.T) {
	env, prm := controlSetup(t)

	oBase := obs.New("r-base", nil, nil)
	baseline, err := RunControlled(context.Background(), env.e, env.w, env.cons, prm, nil, &Control{Obs: oBase})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Interrupted {
		t.Fatal("baseline must run to completion")
	}
	base := oBase.Registry().Snapshot()

	oInt := obs.New("r-interrupted", nil, nil)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trace := func(gen int, best *partition.Partition, bestCost float64) {
		if gen == 12 {
			cancel()
		}
	}
	interrupted, err := RunControlled(ctx, env.e, env.w, env.cons, prm, trace,
		&Control{CheckpointPath: ckpt, CheckpointEvery: 5, Obs: oInt})
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted.Interrupted {
		t.Fatal("run was not interrupted")
	}

	ck, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Metrics == nil {
		t.Fatal("observed checkpoint carries no metrics snapshot")
	}
	mid := ck.Metrics.Counters[MetricEvaluations]
	if mid == 0 || mid >= base.Counters[MetricEvaluations] {
		t.Fatalf("mid-run evaluations = %d, want in (0, %d)", mid, base.Counters[MetricEvaluations])
	}
	if ck.Metrics.Counters[MetricCheckpointWrites] == 0 {
		t.Error("checkpoint metrics must include the write that produced them")
	}

	// Resume into a fresh Obs: the restored counters must pick up where
	// the checkpoint left off, never reset.
	oRes := obs.New("r-resumed", nil, nil)
	resumed, err := ResumeContext(context.Background(), ck, env.e, env.w, env.cons, nil, &Control{Obs: oRes})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Interrupted {
		t.Fatal("resumed run must complete")
	}
	if resumed.BestCost != baseline.BestCost {
		t.Errorf("resumed cost %v != baseline %v", resumed.BestCost, baseline.BestCost)
	}

	got := oRes.Registry().Snapshot()
	if got.Counters[MetricEvaluations] < mid {
		t.Errorf("evaluations went backwards: %d after resume < %d at checkpoint",
			got.Counters[MetricEvaluations], mid)
	}
	// The resumed run replays the exact missing generations, so every
	// cumulative counter must land on the uninterrupted totals.
	for _, name := range []string{
		MetricEvaluations, MetricGenerations,
		MetricMutationAttempts, MetricMutationApplied, MetricMutationAccepted,
		MetricMonteCarloAttempts, MetricMonteCarloApplied, MetricMonteCarloAccepted,
		MetricInfeasible, MetricImprovements,
	} {
		if got.Counters[name] != base.Counters[name] {
			t.Errorf("%s = %d after resume, want %d (uninterrupted baseline)",
				name, got.Counters[name], base.Counters[name])
		}
	}
	// Checkpoint writes belong to the interrupted run's history, not the
	// baseline's (which wrote none) — they must survive the restore.
	if got.Counters[MetricCheckpointWrites] == 0 {
		t.Error("restored checkpoint-write count lost on resume")
	}
}
