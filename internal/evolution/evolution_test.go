package evolution

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/partition"
	"iddqsyn/internal/standard"
)

func estimatorFor(t *testing.T, c *circuit.Circuit) *estimate.Estimator {
	t.Helper()
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	return estimate.New(a, estimate.DefaultParams())
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Mu: 0, Lambda: 1, Chi: 0, Omega: 1, MaxMove: 1, Epsilon: 1, MaxGenerations: 1, StallGenerations: 1},
		{Mu: 1, Lambda: 0, Chi: 0, Omega: 1, MaxMove: 1, Epsilon: 1, MaxGenerations: 1, StallGenerations: 1},
		{Mu: 1, Lambda: 1, Chi: -1, Omega: 1, MaxMove: 1, Epsilon: 1, MaxGenerations: 1, StallGenerations: 1},
		{Mu: 1, Lambda: 1, Chi: 0, Omega: 0, MaxMove: 1, Epsilon: 1, MaxGenerations: 1, StallGenerations: 1},
		{Mu: 1, Lambda: 1, Chi: 0, Omega: 1, MaxMove: 0, Epsilon: 1, MaxGenerations: 1, StallGenerations: 1},
		{Mu: 1, Lambda: 1, Chi: 0, Omega: 1, MaxMove: 1, Epsilon: 0, MaxGenerations: 1, StallGenerations: 1},
		{Mu: 1, Lambda: 1, Chi: 0, Omega: 1, MaxMove: 1, Epsilon: 1, MaxGenerations: 0, StallGenerations: 1},
		{Mu: 1, Lambda: 1, Chi: 0, Omega: 1, MaxMove: 1, Epsilon: 1, MaxGenerations: 1, StallGenerations: 0},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if err := DefaultParams().validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestOptimizeEmptyPopulation(t *testing.T) {
	if _, err := Optimize(nil, DefaultParams(), nil); err == nil {
		t.Error("want error for empty start population")
	}
}

func TestRunC17FindsPaperOptimum(t *testing.T) {
	// §4.3: the optimum partition for C17 at two modules is
	// {(1,3,5), (2,4,6)}. Verify the evolution algorithm's result
	// reaches the cost of that partition (the optimum may be hit in a
	// symmetric form).
	e := estimatorFor(t, circuits.C17())
	w := partition.PaperWeights()
	cons := partition.DefaultConstraints()
	prm := DefaultParams()
	prm.Seed = 3
	res, err := Run(e, w, cons, prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := paperOptimum(t, e, w, cons)
	if res.BestCost > opt.Cost()+1e-9 {
		t.Errorf("evolution cost %.9g worse than paper optimum %.9g\nbest: %v",
			res.BestCost, opt.Cost(), res.Best.Groups())
	}
	if !res.Best.Feasible() {
		t.Error("result must be feasible")
	}
	if err := res.Best.Verify(); err != nil {
		t.Errorf("result invariants: %v", err)
	}
}

func paperOptimum(t *testing.T, e *estimate.Estimator, w partition.Weights, cons partition.Constraints) *partition.Partition {
	t.Helper()
	c := e.A.Circuit
	id := func(n string) int {
		g, ok := c.GateByName(n)
		if !ok {
			t.Fatalf("gate %s missing", n)
		}
		return g.ID
	}
	p, err := partition.New(e, [][]int{
		{id("g1"), id("g3"), id("g5")},
		{id("g2"), id("g4"), id("g6")},
	}, w, cons)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOptimizeImprovesOverStart(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	e := estimatorFor(t, c)
	w := partition.PaperWeights()
	cons := partition.DefaultConstraints()
	// Deliberately fine-grained starts (size 8) leave evolution real work:
	// merging towards the optimum granularity.
	const size = 8
	rng := rand.New(rand.NewSource(5))
	var starts []*partition.Partition
	var startCost float64 = math.Inf(1)
	for i := 0; i < 4; i++ {
		p, err := partition.New(e, standard.ChainStartPartition(c, size, rng), w, cons)
		if err != nil {
			t.Fatal(err)
		}
		if cst := p.Cost(); p.Feasible() && cst < startCost {
			startCost = cst
		}
		starts = append(starts, p)
	}
	prm := DefaultParams()
	prm.MaxGenerations = 60
	prm.StallGenerations = 20
	res, err := Optimize(starts, prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= startCost {
		t.Errorf("no improvement: best %.6g vs start %.6g", res.BestCost, startCost)
	}
	if err := res.Best.Verify(); err != nil {
		t.Errorf("invariants: %v", err)
	}
	if !res.Best.Feasible() {
		t.Error("result must satisfy Γ")
	}
	t.Logf("c432: start %.6g -> best %.6g in %d generations (%d evaluations)",
		startCost, res.BestCost, res.Generations, res.Evaluations)
}

func TestOptimizeDeterministic(t *testing.T) {
	e := estimatorFor(t, circuits.C17())
	w := partition.PaperWeights()
	cons := partition.DefaultConstraints()
	prm := DefaultParams()
	prm.MaxGenerations = 30
	r1, err := Run(e, w, cons, prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(e, w, cons, prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestCost != r2.BestCost || r1.Generations != r2.Generations {
		t.Errorf("nondeterministic: %.9g/%d vs %.9g/%d",
			r1.BestCost, r1.Generations, r2.BestCost, r2.Generations)
	}
}

func TestHistoryMonotone(t *testing.T) {
	e := estimatorFor(t, circuits.MustISCAS85Like("c432"))
	prm := DefaultParams()
	prm.MaxGenerations = 40
	prm.StallGenerations = 40
	res, err := Run(e, partition.PaperWeights(), partition.DefaultConstraints(), prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-12 {
			t.Fatalf("best-so-far cost increased at generation %d: %g -> %g",
				i, res.History[i-1], res.History[i])
		}
	}
}

func TestTraceCalledEveryGeneration(t *testing.T) {
	e := estimatorFor(t, circuits.C17())
	prm := DefaultParams()
	prm.MaxGenerations = 10
	prm.StallGenerations = 10
	calls := 0
	lastGen := 0
	_, err := Run(e, partition.PaperWeights(), partition.DefaultConstraints(), prm,
		func(gen int, best *partition.Partition, bestCost float64) {
			calls++
			if gen != lastGen+1 {
				t.Errorf("generation jumped %d -> %d", lastGen, gen)
			}
			lastGen = gen
			if best == nil || math.IsInf(bestCost, 1) {
				t.Error("trace with no feasible best")
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("trace never called")
	}
}

func TestMutatePreservesInvariants(t *testing.T) {
	e := estimatorFor(t, circuits.MustISCAS85Like("c432"))
	rng := rand.New(rand.NewSource(9))
	groups := standard.ChainStartPartition(e.A.Circuit, 10, rng)
	p, err := partition.New(e, groups, partition.PaperWeights(), partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		q := p.Clone()
		if mutate(q, 4, rng, new(moveScratch)) {
			if err := q.Verify(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			p = q
		}
		if p.NumModules() < 2 {
			break
		}
	}
}

func TestMonteCarloPreservesInvariants(t *testing.T) {
	e := estimatorFor(t, circuits.MustISCAS85Like("c432"))
	rng := rand.New(rand.NewSource(10))
	groups := standard.ChainStartPartition(e.A.Circuit, 10, rng)
	p, err := partition.New(e, groups, partition.PaperWeights(), partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		q := p.Clone()
		if monteCarlo(q, rng, new(moveScratch)) {
			if err := q.Verify(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			p = q
		}
		if p.NumModules() < 2 {
			break
		}
	}
}

func TestMutateSingleModuleNoop(t *testing.T) {
	e := estimatorFor(t, circuits.C17())
	p, err := partition.New(e, [][]int{e.A.Circuit.LogicGates()},
		partition.PaperWeights(), partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if mutate(p.Clone(), 3, rng, new(moveScratch)) {
		t.Error("mutation of a single-module partition must be a no-op")
	}
	if monteCarlo(p.Clone(), rng, new(moveScratch)) {
		t.Error("Monte Carlo on a single-module partition must be a no-op")
	}
}

func TestAdaptStepStaysPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if m := adaptStep(1, 3.0, rng); m < 1 {
			t.Fatalf("step width %d < 1", m)
		}
	}
}

func TestSelectBest(t *testing.T) {
	mk := func(c float64) *individual { return &individual{cost: c} }
	pool := []*individual{mk(5), mk(1), mk(3), mk(2), mk(4)}
	out := selectBest(pool, 3)
	got := []float64{out[0].cost, out[1].cost, out[2].cost}
	sort.Float64s(got)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("selectBest = %v", got)
	}
	if len(selectBest(pool, 10)) != 5 {
		t.Error("selectBest with mu > len must return all")
	}
}

func TestInfeasibleStartsRecover(t *testing.T) {
	// A start partition violating the discriminability constraint (one
	// huge module) must be repaired by evolution: descendants that split
	// current across more modules become feasible and dominate.
	c := circuits.MustISCAS85Like("c432")
	e := estimatorFor(t, c)
	w := partition.PaperWeights()
	// Tighten the threshold so a ~40-gate module is infeasible but a
	// ~20-gate module is fine.
	cons := partition.Constraints{MinDiscriminability: 10}
	p := estimate.DefaultParams()
	var leakSum float64
	for _, g := range c.LogicGates() {
		leakSum += e.A.LeakMax[g]
	}
	leakAvg := leakSum / float64(c.NumLogicGates())
	p.IDDQth = 25 * leakAvg * cons.MinDiscriminability // cap ≈ 25 gates
	e2 := estimate.New(e.A, p)

	// The paper's operators never create modules (K only shrinks when a
	// module empties), so the infeasible start must already have enough
	// modules: take a fine chain partition and merge its first chains
	// into one oversized module that violates the ≈25-gate cap.
	rng := rand.New(rand.NewSource(4))
	chains := standard.ChainStartPartition(c, 8, rng)
	var big []int
	for len(big) < 60 && len(chains) > 1 {
		big = append(big, chains[0]...)
		chains = chains[1:]
	}
	groups := append([][]int{big}, chains...)
	start, err := partition.New(e2, groups, w, cons)
	if err != nil {
		t.Fatal(err)
	}
	if start.Feasible() {
		t.Fatal("start must be infeasible for this test to mean anything")
	}
	prm := DefaultParams()
	prm.MaxGenerations = 150
	prm.StallGenerations = 60
	res, err := Optimize([]*partition.Partition{start}, prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Feasible() {
		t.Error("evolution failed to reach feasibility from an infeasible start")
	}
}

// Parallel descendant evaluation must be bit-identical to sequential
// (mutation stays on one rand stream) and race-free.
func TestParallelEvaluationMatchesSequential(t *testing.T) {
	e := estimatorFor(t, circuits.MustISCAS85Like("c432"))
	w := partition.PaperWeights()
	cons := partition.DefaultConstraints()
	base := DefaultParams()
	base.MaxGenerations = 25
	base.StallGenerations = 25

	run := func(workers int) *Result {
		prm := base
		prm.Workers = workers
		rng := rand.New(rand.NewSource(prm.Seed))
		var starts []*partition.Partition
		for i := 0; i < prm.Mu; i++ {
			p, err := partition.New(e, standard.ChainStartPartition(e.A.Circuit, 8, rng), w, cons)
			if err != nil {
				t.Fatal(err)
			}
			starts = append(starts, p)
		}
		res, err := Optimize(starts, prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(0)
	par := run(4)
	if seq.BestCost != par.BestCost || seq.Evaluations != par.Evaluations {
		t.Errorf("parallel run diverged: %.9g/%d vs %.9g/%d",
			seq.BestCost, seq.Evaluations, par.BestCost, par.Evaluations)
	}
	if err := par.Best.Verify(); err != nil {
		t.Errorf("parallel result invariants: %v", err)
	}
}

func TestDescendantAllocs(t *testing.T) {
	// Regression guard for the hot-loop allocation fixes (moveScratch
	// buffers, partition cost pools, lazy circuit caches): one descendant
	// step — clone the parent, mutate it, evaluate its cost — must stay
	// allocation-lean once the caches and pools are warm. The bound has
	// headroom for pool refills after a GC, but a reintroduced per-move or
	// per-evaluation allocation blows well past it.
	e := estimatorFor(t, circuits.C17())
	p := paperOptimum(t, e, partition.PaperWeights(), partition.DefaultConstraints())
	rng := rand.New(rand.NewSource(7))
	var sc moveScratch
	step := func() {
		child := p.Clone()
		mutate(child, 2, rng, &sc)
		costOf(child)
	}
	for i := 0; i < 32; i++ {
		step() // warm the lazy caches and scratch pools
	}
	avg := testing.AllocsPerRun(200, step)
	t.Logf("descendant step: %.1f allocs/run", avg)
	const maxAllocs = 30
	if avg > maxAllocs {
		t.Errorf("descendant step allocates %.1f times per run, want <= %d — a hot-loop allocation crept back in", avg, maxAllocs)
	}
}
