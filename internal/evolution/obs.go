// Telemetry for the evolution strategy: every quantity the paper's
// evaluation judges the optimizer by — cost per generation, mutation and
// Monte-Carlo acceptance, step-width self-adaptation, constraint-
// violation churn — is recorded into the run's obs registry, streamed as
// structured log events, and published live for the /runz introspection
// endpoint. The instrumentation never touches the seeded random stream,
// so an observed run stays bit-identical to an unobserved one.

package evolution

import (
	"context"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/obs"
)

// Metric names recorded by the optimizer. Exposed as constants so tests
// and tools read the same registry keys the generation loop writes.
const (
	MetricEvaluations        = "evolution.evaluations"
	MetricGenerations        = "evolution.generations"
	MetricMutationAttempts   = "evolution.mutation.attempts"
	MetricMutationApplied    = "evolution.mutation.applied"
	MetricMutationAccepted   = "evolution.mutation.accepted"
	MetricMonteCarloAttempts = "evolution.montecarlo.attempts"
	MetricMonteCarloApplied  = "evolution.montecarlo.applied"
	MetricMonteCarloAccepted = "evolution.montecarlo.accepted"
	MetricInfeasible         = "evolution.descendants.infeasible"
	MetricImprovements       = "evolution.improvements"
	MetricCheckpointWrites   = "evolution.checkpoint.writes"
	MetricCheckpointRetries  = "evolution.checkpoint.retries"

	MetricGenerationGauge = "evolution.generation"
	MetricBestCostGauge   = "evolution.best_cost"
	MetricStallGauge      = "evolution.stall"
	MetricPopulationGauge = "evolution.population"
	MetricStepWidthGauge  = "evolution.step_width.mean"

	MetricEvalSeconds       = "evolution.eval.seconds"
	MetricGenerationSeconds = "evolution.generation.seconds"
	MetricCheckpointSeconds = "evolution.checkpoint.seconds"
)

// RunStatus is the live view of a running optimization, published after
// every generation for the /runz endpoint and persisted as the final
// status of a -metrics snapshot.
type RunStatus struct {
	Circuit        string  `json:"circuit"`
	Generation     int     `json:"generation"`
	MaxGenerations int     `json:"max_generations"`
	BestCost       float64 `json:"best_cost"`
	BestModules    int     `json:"best_modules"`
	Evaluations    int     `json:"evaluations"`
	Stall          int     `json:"stall"`
	Population     int     `json:"population"`

	// InfeasibleDescendants counts descendants that violated the
	// discriminability constraint Γ(Π) across the whole run.
	InfeasibleDescendants uint64 `json:"infeasible_descendants"`

	// History is the best cost after each generation (a copy — safe to
	// serve concurrently while the run appends).
	History []float64 `json:"history"`
}

// runObs holds the resolved metric handles for one optimization run, so
// the generation loop increments pointers instead of doing registry
// lookups. All fields are nil (and every operation a no-op) when the run
// is unobserved; `on` gates the few instrumentation steps that would
// otherwise cost real work (clock reads, per-descendant scans).
type runObs struct {
	on  bool
	o   *obs.Obs
	log *obs.Logger

	evaluations, generations             *obs.Counter
	mutAttempts, mutApplied, mutAccepted *obs.Counter
	mcAttempts, mcApplied, mcAccepted    *obs.Counter
	infeasible                           *obs.Counter
	improvements                         *obs.Counter
	checkpointWrites                     *obs.Counter
	checkpointRetries                    *obs.Counter

	generation, bestCost, stall, population, stepWidth *obs.Gauge

	evalSeconds, genSeconds, ckptSeconds *obs.Histogram
}

// resolveObs picks the run's Obs: an explicit Control.Obs wins, else
// whatever the context carries (the experiment drivers thread it there).
func resolveObs(ctx context.Context, ctl *Control) *obs.Obs {
	if ctl != nil && ctl.Obs != nil {
		return ctl.Obs
	}
	return obs.FromContext(ctx)
}

// resolveChaos picks the run's fault injector the same way: an explicit
// Control.Chaos wins, else the context carriage. Nil (the overwhelmingly
// common case) means nothing is ever injected.
func resolveChaos(ctx context.Context, ctl *Control) *chaos.Injector {
	if ctl != nil && ctl.Chaos != nil {
		return ctl.Chaos
	}
	return chaos.FromContext(ctx)
}

// newRunObs resolves every metric handle once. With o == nil the handles
// stay nil and all recording collapses to no-ops.
func newRunObs(o *obs.Obs) *runObs {
	r := &runObs{on: o != nil, o: o, log: o.Log()}
	if !r.on {
		return r
	}
	r.evaluations = o.Counter(MetricEvaluations)
	r.generations = o.Counter(MetricGenerations)
	r.mutAttempts = o.Counter(MetricMutationAttempts)
	r.mutApplied = o.Counter(MetricMutationApplied)
	r.mutAccepted = o.Counter(MetricMutationAccepted)
	r.mcAttempts = o.Counter(MetricMonteCarloAttempts)
	r.mcApplied = o.Counter(MetricMonteCarloApplied)
	r.mcAccepted = o.Counter(MetricMonteCarloAccepted)
	r.infeasible = o.Counter(MetricInfeasible)
	r.improvements = o.Counter(MetricImprovements)
	r.checkpointWrites = o.Counter(MetricCheckpointWrites)
	r.checkpointRetries = o.Counter(MetricCheckpointRetries)
	r.generation = o.Gauge(MetricGenerationGauge)
	r.bestCost = o.Gauge(MetricBestCostGauge)
	r.stall = o.Gauge(MetricStallGauge)
	r.population = o.Gauge(MetricPopulationGauge)
	r.stepWidth = o.Gauge(MetricStepWidthGauge)
	r.evalSeconds = o.Histogram(MetricEvalSeconds, nil)
	r.genSeconds = o.Histogram(MetricGenerationSeconds, nil)
	r.ckptSeconds = o.Histogram(MetricCheckpointSeconds, nil)
	return r
}

// afterGeneration records the per-generation metrics, publishes the live
// RunStatus, and emits the generation event. Called at the end of every
// completed generation, after selection.
func (r *runObs) afterGeneration(s *state, descendants int) {
	if !r.on {
		return
	}
	r.generations.Inc()
	r.generation.Set(float64(s.res.Generations))
	r.bestCost.Set(s.res.BestCost)
	r.stall.Set(float64(s.stall))
	r.population.Set(float64(len(s.pop)))
	accM, accMC, mSum := 0, 0, 0
	for _, ind := range s.pop {
		mSum += ind.m
		if ind.age != 0 {
			continue
		}
		switch ind.origin {
		case originMutation:
			accM++
		case originMonteCarlo:
			accMC++
		}
	}
	r.mutAccepted.Add(uint64(accM))
	r.mcAccepted.Add(uint64(accMC))
	if len(s.pop) > 0 {
		r.stepWidth.Set(float64(mSum) / float64(len(s.pop)))
	}
	r.o.SetStatus(RunStatus{
		Circuit:               s.pop[0].p.E.A.Circuit.Name,
		Generation:            s.res.Generations,
		MaxGenerations:        s.prm.MaxGenerations,
		BestCost:              s.res.BestCost,
		BestModules:           s.res.Best.NumModules(),
		Evaluations:           s.res.Evaluations,
		Stall:                 s.stall,
		Population:            len(s.pop),
		InfeasibleDescendants: r.infeasible.Value(),
		History:               append([]float64(nil), s.res.History...),
	})
	r.log.Debug("generation",
		"gen", s.res.Generations,
		"best_cost", s.res.BestCost,
		"descendants", descendants,
		"accepted_mutation", accM,
		"accepted_montecarlo", accMC,
		"stall", s.stall)
}

// countInfeasible tallies descendants that violated Γ(Π) (their cost
// carries the graded infeasibility penalty).
func (r *runObs) countInfeasible(descendants []*individual) {
	if !r.on {
		return
	}
	n := uint64(0)
	for _, d := range descendants {
		if d.cost >= infeasiblePenalty {
			n++
		}
	}
	r.infeasible.Add(n)
}
