// Fault-injection tests of the run-control failure surfaces: truncated
// checkpoints are rejected as ErrCorruptCheckpoint, checkpoint I/O routed
// through a chaos filesystem never corrupts the published file, and
// injected worker faults surface as typed errors the degradation layer
// can recognise.

package evolution

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/fsx"
)

// writeGoodCheckpoint runs a short controlled optimization and returns
// the path of its checkpoint plus the file's bytes.
func writeGoodCheckpoint(t *testing.T) (*partitionEnv, Params, string, []byte) {
	t.Helper()
	env, prm := controlSetup(t)
	ckpt := filepath.Join(t.TempDir(), "good.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunControlled(ctx, env.e, env.w, env.cons, prm, nil,
		&Control{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	return env, prm, ckpt, data
}

// A checkpoint cut off at any byte offset — the zero-length file, a single
// byte, or all-but-the-last byte — must load as ErrCorruptCheckpoint with
// the underlying parse failure preserved in the chain, never as a panic or
// a silently-wrong checkpoint.
func TestLoadCheckpointTruncated(t *testing.T) {
	_, _, _, data := writeGoodCheckpoint(t)
	dir := t.TempDir()
	offsets := []int{0, 1, 2, len(data) / 4, len(data) / 2, len(data) - 2, len(data) - 1}
	for _, off := range offsets {
		path := filepath.Join(dir, "trunc.ckpt")
		if err := os.WriteFile(path, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadCheckpoint(path)
		if err == nil {
			t.Errorf("offset %d/%d: truncated checkpoint loaded without error", off, len(data))
			continue
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("offset %d/%d: error %v does not wrap ErrCorruptCheckpoint", off, len(data), err)
		}
	}
	// The intact file still loads — the guard rejects damage, not data.
	path := filepath.Join(dir, "intact.ckpt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Errorf("intact checkpoint rejected: %v", err)
	}
}

// A one-shot disk fault during a periodic checkpoint is absorbed by the
// bounded retry: the run completes, the checkpoint is loadable, and the
// retry is visible in the injector's accounting.
func TestCheckpointRetryMasksInjectedDiskFault(t *testing.T) {
	env, prm := controlSetup(t)
	sched, err := chaos.ParseSchedule("seed=5,after=1,sites=fs.sync")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(sched, nil)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	retried := 0
	ctl := &Control{
		CheckpointPath:  ckpt,
		CheckpointEvery: 5,
		FS:              chaos.NewFS(nil, inj),
		Retry: &fsx.RetryPolicy{
			Attempts: 3,
			Sleep:    func(d time.Duration) {},
			OnRetry:  func(int, error) { retried++ },
		},
	}
	res, err := RunControlled(context.Background(), env.e, env.w, env.cons, prm, nil, ctl)
	if err != nil {
		t.Fatalf("one-shot disk fault must be retried away, got %v", err)
	}
	if res.Interrupted {
		t.Fatal("run did not complete")
	}
	if retried == 0 || inj.Total() == 0 {
		t.Errorf("fault was never injected/retried (retries=%d, injected=%d)", retried, inj.Total())
	}
	if _, err := LoadCheckpoint(ckpt); err != nil {
		t.Errorf("checkpoint after retried fault unreadable: %v", err)
	}
}

// A persistent disk fault exhausts the retry budget: the run surfaces a
// named ErrInjected-wrapping error, returns the best-so-far result, and
// the previously published checkpoint — if any — is still intact.
func TestCheckpointPersistentDiskFaultSurfaces(t *testing.T) {
	env, prm := controlSetup(t)
	sched, err := chaos.ParseSchedule("seed=5,rate=1,sites=fs.rename")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(sched, nil)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	ctl := &Control{
		CheckpointPath:  ckpt,
		CheckpointEvery: 5,
		FS:              chaos.NewFS(nil, inj),
		Retry:           &fsx.RetryPolicy{Attempts: 2, Sleep: func(time.Duration) {}},
	}
	res, werr := RunControlled(context.Background(), env.e, env.w, env.cons, prm, nil, ctl)
	if werr == nil {
		t.Fatal("persistent rename failure must surface as an error")
	}
	if !errors.Is(werr, chaos.ErrInjected) {
		t.Errorf("error %v does not wrap chaos.ErrInjected", werr)
	}
	if !strings.Contains(werr.Error(), "attempts") {
		t.Errorf("error %q should name the exhausted attempt budget", werr)
	}
	if res == nil || res.Best == nil {
		t.Error("a failed checkpoint write must still return the in-memory best-so-far result")
	}
	if _, serr := os.Stat(ckpt); !os.IsNotExist(serr) {
		t.Errorf("failed rename published a file anyway: %v", serr)
	}
}

// An injected worker panic is recovered into an error whose chain still
// carries chaos.ErrInjected through the recover boundary — the signal the
// degradation layer keys on.
func TestInjectedWorkerPanicKeepsErrorChain(t *testing.T) {
	env, prm := controlSetup(t)
	prm.Workers = 4
	sched, err := chaos.ParseSchedule("seed=2,after=6,sites=evolution.worker.panic")
	if err != nil {
		t.Fatal(err)
	}
	ctl := &Control{Chaos: chaos.New(sched, nil)}
	_, werr := RunControlled(context.Background(), env.e, env.w, env.cons, prm, nil, ctl)
	if werr == nil {
		t.Fatal("injected worker panic must surface as an error")
	}
	if !errors.Is(werr, chaos.ErrInjected) {
		t.Errorf("recovered error %v lost chaos.ErrInjected from its chain", werr)
	}
	if !strings.Contains(werr.Error(), "panicked") {
		t.Errorf("error %q should say the worker panicked", werr)
	}
}

// A zero-hit schedule (rate=0) must leave the run bit-identical to an
// uninjected one: injection decisions never touch the optimizer's counted
// random stream.
func TestZeroHitScheduleIsBitIdentical(t *testing.T) {
	env, prm := controlSetup(t)
	baseline, err := RunContext(context.Background(), env.e, env.w, env.cons, prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := chaos.ParseSchedule("seed=1,rate=0,sites=fs.*|evolution.worker.*")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(sched, nil)
	ctl := &Control{Chaos: inj, FS: chaos.NewFS(nil, inj)}
	injected, err := RunControlled(context.Background(), env.e, env.w, env.cons, prm, nil, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if injected.BestCost != baseline.BestCost || injected.Evaluations != baseline.Evaluations {
		t.Errorf("zero-hit schedule changed the run: cost %v vs %v, evals %d vs %d",
			injected.BestCost, baseline.BestCost, injected.Evaluations, baseline.Evaluations)
	}
	if inj.Total() != 0 {
		t.Errorf("rate=0 schedule injected %d faults", inj.Total())
	}
}
