package evolution

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/partition"
)

// controlSetup builds an optimization environment on a circuit large
// enough that the optimizer runs for many generations without stalling,
// plus parameters sized so the run never stalls out before its budget.
func controlSetup(t *testing.T) (*partitionEnv, Params) {
	t.Helper()
	c, err := circuits.RandomLogic(circuits.Spec{
		Name: "ctl", Inputs: 8, Outputs: 4, Gates: 60, Depth: 8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := &partitionEnv{
		e:    estimatorFor(t, c),
		w:    partition.PaperWeights(),
		cons: partition.DefaultConstraints(),
	}
	prm := Params{
		Mu: 4, Lambda: 3, Chi: 1, Omega: 6,
		MaxMove: 3, Epsilon: 1.0,
		MaxGenerations:   25,
		StallGenerations: 50, // > MaxGenerations: the loop never stalls out
		Seed:             3,
	}
	return env, prm
}

type partitionEnv struct {
	e    *estimate.Estimator
	w    partition.Weights
	cons partition.Constraints
}

func TestCancellationReturnsBestSoFar(t *testing.T) {
	env, prm := controlSetup(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 5
	trace := func(gen int, best *partition.Partition, bestCost float64) {
		if gen == cancelAt {
			cancel()
		}
	}
	res, err := RunContext(ctx, env.e, env.w, env.cons, prm, trace)
	if err != nil {
		t.Fatalf("cancellation must not be an error: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("Interrupted not set")
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("Err = %v, want wrapped context.Canceled", res.Err)
	}
	// The cancel fires inside the trace of generation cancelAt; the loop
	// must stop at the very next generation boundary.
	if res.Generations != cancelAt {
		t.Errorf("stopped after generation %d, want %d (within one generation of the cancel)",
			res.Generations, cancelAt)
	}
	if res.Best == nil || res.BestCost <= 0 {
		t.Error("interrupted run must still carry the best-so-far individual")
	}
}

func TestPreCancelledContext(t *testing.T) {
	env, prm := controlSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, env.e, env.w, env.cons, prm, nil)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if !res.Interrupted || res.Generations != 0 {
		t.Errorf("want interruption before generation 1, got interrupted=%v gen=%d",
			res.Interrupted, res.Generations)
	}
	if res.Best == nil {
		t.Error("even a pre-cancelled run must return the best start individual")
	}
}

// The acceptance test of the run-control layer: a run interrupted
// mid-flight and resumed from its checkpoint must end with exactly the
// final cost, partition and bookkeeping of a run that was never
// interrupted — for sequential and parallel cost evaluation alike.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(map[int]string{0: "sequential", 4: "workers4"}[workers], func(t *testing.T) {
			env, prm := controlSetup(t)
			prm.Workers = workers

			baseline, err := RunContext(context.Background(), env.e, env.w, env.cons, prm, nil)
			if err != nil {
				t.Fatal(err)
			}
			if baseline.Interrupted {
				t.Fatal("baseline must run to completion")
			}

			ckpt := filepath.Join(t.TempDir(), "run.ckpt")
			ctl := &Control{CheckpointPath: ckpt, CheckpointEvery: 5}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			trace := func(gen int, best *partition.Partition, bestCost float64) {
				if gen == 12 {
					cancel()
				}
			}
			interrupted, err := RunControlled(ctx, env.e, env.w, env.cons, prm, trace, ctl)
			if err != nil {
				t.Fatal(err)
			}
			if !interrupted.Interrupted {
				t.Fatal("run was not interrupted")
			}

			ck, err := LoadCheckpoint(ckpt)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := ResumeContext(context.Background(), ck, env.e, env.w, env.cons, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Interrupted {
				t.Fatal("resumed run must complete")
			}

			if resumed.BestCost != baseline.BestCost {
				t.Errorf("final cost %v != uninterrupted %v", resumed.BestCost, baseline.BestCost)
			}
			if !reflect.DeepEqual(resumed.Best.Groups(), baseline.Best.Groups()) {
				t.Error("final best partition differs from the uninterrupted run")
			}
			if resumed.Generations != baseline.Generations {
				t.Errorf("generations %d != %d", resumed.Generations, baseline.Generations)
			}
			if resumed.Evaluations != baseline.Evaluations {
				t.Errorf("evaluations %d != %d", resumed.Evaluations, baseline.Evaluations)
			}
			if !reflect.DeepEqual(resumed.History, baseline.History) {
				t.Error("cost history differs from the uninterrupted run")
			}
		})
	}
}

func TestPeriodicCheckpointIsLoadable(t *testing.T) {
	env, prm := controlSetup(t)
	ckpt := filepath.Join(t.TempDir(), "periodic.ckpt")
	_, err := RunControlled(context.Background(), env.e, env.w, env.cons, prm, nil,
		&Control{CheckpointPath: ckpt, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("periodic checkpoint unreadable: %v", err)
	}
	if ck.Generation%2 != 0 || ck.Generation <= 0 {
		t.Errorf("checkpoint generation %d, want a positive multiple of the cadence", ck.Generation)
	}
	if ck.Circuit != "ctl" || len(ck.Population) != prm.Mu {
		t.Errorf("checkpoint identity/population wrong: circuit=%q pop=%d", ck.Circuit, len(ck.Population))
	}
}

func TestLoadCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Error("missing file: want error")
	}
	if _, err := LoadCheckpoint(write("garbage.ckpt", []byte("{truncated"))); err == nil {
		t.Error("corrupted JSON: want error")
	} else if !strings.Contains(err.Error(), "corrupted") {
		t.Errorf("corrupted JSON: error %q should say so", err)
	}
	if _, err := LoadCheckpoint(write("foreign.ckpt", []byte(`{"format":"something-else"}`))); err == nil {
		t.Error("foreign format: want error")
	}

	// A version from the future must be rejected, not misinterpreted.
	env, prm := controlSetup(t)
	good := filepath.Join(dir, "good.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunControlled(ctx, env.e, env.w, env.cons, prm, nil,
		&Control{CheckpointPath: good}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["version"] = CheckpointVersion + 1
	bumped, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(write("future.ckpt", bumped)); err == nil {
		t.Error("future version: want error")
	} else if !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: error %q should name the version", err)
	}
}

// A hand-corrupted checkpoint — here the best individual claims a gate
// twice across modules — must be rejected on load with the violated
// PART-IDDQ constraint named.
func TestResumeRejectsCorruptedPartition(t *testing.T) {
	env, prm := controlSetup(t)
	ckpt := filepath.Join(t.TempDir(), "c.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunControlled(ctx, env.e, env.w, env.cons, prm, nil,
		&Control{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(ck *Checkpoint)) error {
		ck, err := LoadCheckpoint(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		mutate(ck)
		_, err = ResumeContext(context.Background(), ck, env.e, env.w, env.cons, nil, nil)
		return err
	}
	err := corrupt(func(ck *Checkpoint) {
		// Duplicate the first gate of module 0 into the last module.
		last := len(ck.Best) - 1
		ck.Best[last] = append(ck.Best[last], ck.Best[0][0])
	})
	if err == nil || !strings.Contains(err.Error(), "gate-cover") {
		t.Errorf("duplicated gate: err = %v, want the gate-cover constraint named", err)
	}
	err = corrupt(func(ck *Checkpoint) {
		// Drop a gate from a population individual: no longer a cover.
		g := ck.Population[0].Groups
		g[0] = g[0][1:]
	})
	if err == nil || !strings.Contains(err.Error(), "gate-cover") {
		t.Errorf("dropped gate: err = %v, want the gate-cover constraint named", err)
	}
}

func TestResumeRejectsWrongCircuit(t *testing.T) {
	env, prm := controlSetup(t)
	ckpt := filepath.Join(t.TempDir(), "c.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunControlled(ctx, env.e, env.w, env.cons, prm, nil,
		&Control{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	other := estimatorFor(t, circuits.C17())
	if _, err := ResumeContext(context.Background(), ck, other, env.w, env.cons, nil, nil); err == nil {
		t.Error("resuming against a different circuit must fail")
	}
}

func TestWorkerPanicSurfacesAsError(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(map[int]string{0: "sequential", 4: "workers4"}[workers], func(t *testing.T) {
			env, prm := controlSetup(t)
			prm.Workers = workers
			var calls atomic.Int64
			testEvalHook = func(i int, p *partition.Partition) {
				if calls.Add(1) == int64(prm.Mu+3) { // past the initial population, inside generation 1
					panic("injected evaluation fault")
				}
			}
			defer func() { testEvalHook = nil }()

			_, err := RunContext(context.Background(), env.e, env.w, env.cons, prm, nil)
			if err == nil {
				t.Fatal("injected panic must surface as an error")
			}
			msg := err.Error()
			if !strings.Contains(msg, "panicked") || !strings.Contains(msg, "descendant") {
				t.Errorf("error %q should identify the panicking descendant", msg)
			}
			if !strings.Contains(msg, "injected evaluation fault") {
				t.Errorf("error %q should carry the panic value", msg)
			}
		})
	}
}
