// Run control for the evolution strategy: cooperative cancellation at
// generation boundaries, periodic crash-safe checkpointing, and panic
// containment in the parallel cost-evaluation workers. The optimizer
// state lives in a single `state` value so an interrupted run, a resumed
// run and an uninterrupted run all execute the identical generation loop
// — the basis of the bit-identical resume guarantee.

package evolution

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/fsx"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/partition"
)

// DefaultCheckpointEvery is the checkpoint cadence, in generations, used
// when a Control names a checkpoint file but leaves CheckpointEvery zero.
const DefaultCheckpointEvery = 10

// Control configures run control for one optimization run.
type Control struct {
	// CheckpointPath, if non-empty, makes the optimizer persist its full
	// state to this file every CheckpointEvery generations and on
	// interruption. Writes are atomic (temp file + rename), so a crash
	// never leaves a truncated checkpoint behind.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in generations
	// (0 = DefaultCheckpointEvery).
	CheckpointEvery int

	// Obs, if non-nil, observes the run: per-generation counters, gauges
	// and latency histograms, structured log events, the live /runz
	// status, and a metrics snapshot inside every checkpoint (restored on
	// resume so cumulative counters continue monotonically). When nil the
	// Obs carried by the run's context (obs.FromContext) is used instead;
	// if that is also nil the run is unobserved at zero cost.
	Obs *obs.Obs

	// FS, if non-nil, routes every checkpoint write through this
	// filesystem instead of the real one. Chaos tests pass a chaos.FS
	// here to provoke torn writes, full disks and failed renames.
	FS fsx.FS

	// Retry, if non-nil, overrides the bounded retry-with-backoff policy
	// for checkpoint writes (nil = fsx defaults: 3 attempts, jittered
	// exponential backoff from 2ms). The run's OnRetry telemetry is
	// layered on top of any callback set here.
	Retry *fsx.RetryPolicy

	// Chaos, if non-nil, injects faults into the run's failure surfaces
	// (worker panics/delays; combine with FS for I/O faults). When nil
	// the injector carried by the run's context (chaos.FromContext) is
	// used instead; if that is also nil, nothing is ever injected and the
	// run is bit-identical to an uninstrumented one.
	Chaos *chaos.Injector
}

func (c *Control) every() int {
	if c == nil || c.CheckpointPath == "" {
		return 0
	}
	if c.CheckpointEvery <= 0 {
		return DefaultCheckpointEvery
	}
	return c.CheckpointEvery
}

// countingSource wraps the standard math/rand source and counts how many
// times it was stepped. Every Int63 and Uint64 call advances the
// underlying generator by exactly one step, so replaying `draws` steps on
// a fresh source of the same seed reproduces the generator state exactly
// — which is how a resumed run re-enters the random sequence at the
// position the checkpoint captured.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// skip advances the source by n steps (used on resume).
func (s *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Int63()
	}
	s.draws = n
}

// state is the complete optimizer state between two generations: the
// checkpoint serializes exactly this (plus the RNG draw count), and the
// generation loop below is the only code that mutates it.
type state struct {
	prm     Params
	src     *countingSource
	rng     *rand.Rand
	pop     []*individual
	res     *Result
	stall   int
	nextGen int // first generation the loop will run (1 for fresh runs)
	obs     *runObs

	// tsp is the causal-trace span the run's context carried in (the
	// serving layer's core.optimize phase); per-generation evaluate /
	// select / checkpoint child spans hang off it. Nil when untraced —
	// every use then costs one pointer comparison and zero allocations,
	// which the TestDescendantAllocs bound holds the hot path to.
	tsp *obs.TraceSpan

	// mv is the mutation operators' scratch memory. It carries no run
	// state (checkpoints ignore it) — it only keeps the sequential
	// mutation phase allocation-free.
	mv moveScratch

	// Failure-surface plumbing, resolved once by attachControl. None of
	// it ever touches the seeded random stream: an inert injector and the
	// real filesystem leave the run bit-identical to an unplumbed one.
	chaos *chaos.Injector
	fs    fsx.FS
	retry *fsx.RetryPolicy
}

// attachControl resolves the run's failure-surface plumbing: the fault
// injector (explicit Control field first, then the context carriage), the
// checkpoint filesystem, and the retry policy with the run's telemetry
// layered onto its OnRetry callback.
func (s *state) attachControl(ctx context.Context, ctl *Control) {
	s.chaos = resolveChaos(ctx, ctl)
	s.tsp = obs.SpanFromContext(ctx)
	s.fs = fsx.OS{}
	if ctl != nil && ctl.FS != nil {
		s.fs = ctl.FS
	}
	var pol fsx.RetryPolicy
	if ctl != nil && ctl.Retry != nil {
		pol = *ctl.Retry
	}
	inner := pol.OnRetry
	pol.OnRetry = func(attempt int, err error) {
		s.obs.checkpointRetries.Inc()
		s.obs.log.Warn("checkpoint write retrying",
			"attempt", attempt, "err", err.Error())
		if inner != nil {
			inner(attempt, err)
		}
	}
	s.retry = &pol
}

// run executes generations nextGen..MaxGenerations with cancellation
// checks at every generation boundary. An interrupted run returns the
// best-so-far Result with Interrupted set and a nil error (the only
// errors are real failures: a panicking cost evaluation or an unwritable
// checkpoint file).
func (s *state) run(ctx context.Context, trace Trace, ctl *Control) (*Result, error) {
	every := ctl.every()
	for gen := s.nextGen; gen <= s.prm.MaxGenerations; gen++ {
		if s.stall >= s.prm.StallGenerations {
			break // resumed from a checkpoint of an already-stalled run
		}
		if err := ctx.Err(); err != nil {
			return s.interrupt(err, ctl)
		}
		s.res.Generations = gen
		var genStart time.Time
		if s.obs.on {
			genStart = time.Now()
		}
		// Mutation is sequential (single deterministic rand stream);
		// the cost evaluations below may run on a worker pool. The
		// evaluate trace span covers both — descendant construction and
		// the parallel cost evaluations are one causal phase.
		evalTsp := s.tsp.StartChild("evolution.evaluate")
		descendants := make([]*individual, 0, len(s.pop)*(s.prm.Lambda+s.prm.Chi))
		for _, parent := range s.pop {
			for l := 0; l < s.prm.Lambda; l++ {
				s.obs.mutAttempts.Inc()
				child := parent.p.Clone() // recombination = duplication (§4.1)
				moved := mutate(child, parent.m, s.rng, &s.mv)
				if !moved {
					continue
				}
				s.obs.mutApplied.Inc()
				descendants = append(descendants, &individual{
					p: child, m: adaptStep(parent.m, s.prm.Epsilon, s.rng),
					origin: originMutation,
				})
			}
			for x := 0; x < s.prm.Chi; x++ {
				s.obs.mcAttempts.Inc()
				child := parent.p.Clone()
				moved := monteCarlo(child, s.rng, &s.mv)
				if !moved {
					continue
				}
				s.obs.mcApplied.Inc()
				descendants = append(descendants, &individual{
					p: child, m: adaptStep(parent.m, s.prm.Epsilon, s.rng),
					origin: originMonteCarlo,
				})
			}
			parent.age++
		}
		evalErr := evaluate(descendants, s.prm.Workers, costOf, s.obs.evalSeconds, s.chaos)
		evalTsp.End()
		if evalErr != nil {
			return nil, evalErr
		}
		s.res.Evaluations += len(descendants)
		s.obs.evaluations.Add(uint64(len(descendants)))
		s.obs.countInfeasible(descendants)

		// Selection: parents older than ω are deleted; the μ cheapest of
		// the remaining parents and all descendants survive.
		selTsp := s.tsp.StartChild("evolution.select")
		pool := descendants
		for _, ind := range s.pop {
			if ind.age < s.prm.Omega {
				pool = append(pool, ind)
			}
		}
		if len(pool) == 0 {
			selTsp.End()
			break // nothing mutable remains (e.g. single-module partitions)
		}
		s.pop = selectBest(pool, s.prm.Mu)
		selTsp.End()

		if b := cheapest(s.pop); b.cost < s.res.BestCost {
			s.res.BestCost = b.cost
			s.res.Best = b.p.Clone()
			s.stall = 0
			s.obs.improvements.Inc()
			s.obs.log.Info("new best",
				"gen", gen, "cost", b.cost, "modules", b.p.NumModules())
		} else {
			s.stall++
		}
		s.res.History = append(s.res.History, s.res.BestCost)
		if s.obs.on {
			s.obs.genSeconds.ObserveSince(genStart)
		}
		s.obs.afterGeneration(s, len(descendants))
		if trace != nil {
			trace(gen, s.res.Best, s.res.BestCost)
		}
		if s.stall >= s.prm.StallGenerations {
			break
		}
		if every > 0 && gen%every == 0 && gen < s.prm.MaxGenerations {
			ckptTsp := s.tsp.StartChild("evolution.checkpoint")
			err := s.writeCheckpoint(ctl.CheckpointPath)
			ckptTsp.End()
			if err != nil {
				// The run state is intact; surface the result alongside
				// the error so hours of work are not discarded because a
				// disk filled up.
				return s.res, err
			}
		}
	}
	s.obs.log.Info("evolution run end",
		"generations", s.res.Generations,
		"evaluations", s.res.Evaluations,
		"best_cost", s.res.BestCost,
		"interrupted", s.res.Interrupted)
	return s.res, nil
}

// writeCheckpoint persists the current state (with the metrics snapshot
// embedded) and records the write in the telemetry.
func (s *state) writeCheckpoint(path string) error {
	var t0 time.Time
	if s.obs.on {
		t0 = time.Now()
		// Count the write before snapshotting, so the snapshot a resumed
		// run restores already includes the write that produced it.
		s.obs.checkpointWrites.Inc()
	}
	if err := s.checkpoint().write(s.fs, path, s.retry); err != nil {
		return err
	}
	if s.obs.on {
		s.obs.ckptSeconds.ObserveSince(t0)
		s.obs.log.Debug("checkpoint written",
			"path", path, "gen", s.res.Generations)
	}
	return nil
}

// interrupt finalises a cancelled run: best-so-far result, Interrupted
// flag, a wrapped context error, and a final checkpoint if configured.
func (s *state) interrupt(ctxErr error, ctl *Control) (*Result, error) {
	s.res.Interrupted = true
	s.res.Err = fmt.Errorf("evolution: interrupted after generation %d: %w",
		s.res.Generations, ctxErr)
	s.obs.log.Warn("evolution run interrupted",
		"gen", s.res.Generations, "best_cost", s.res.BestCost)
	if ctl != nil && ctl.CheckpointPath != "" {
		if err := s.writeCheckpoint(ctl.CheckpointPath); err != nil {
			return s.res, err
		}
	}
	return s.res, nil
}

// testEvalHook, when non-nil, runs before every descendant cost
// evaluation. Tests use it to inject a panic into a worker and assert it
// surfaces as an error instead of crashing the process.
var testEvalHook func(i int, p *partition.Partition)

// evaluate fills in the cost of every descendant, using up to `workers`
// goroutines. Each descendant is an independent clone and cost is pure,
// so the parallel evaluation is race-free and bit-identical to the
// sequential one. A panic inside a cost evaluation (however it is
// provoked — corrupted state, a bug in an estimator, an injected fault)
// is recovered and returned as an error naming the offending descendant;
// when the panic value is itself an error (the estimator's numeric guards
// panic with wrapped errors) it is wrapped rather than stringified, so
// errors.Is sees through the recover boundary. A cost that comes back
// NaN/Inf without panicking is likewise an error (ErrNonFiniteCost): a
// poisoned number must never enter selection or a checkpoint. The
// remaining workers drain and exit cleanly. A non-nil hist receives the
// per-descendant evaluation latency in seconds; a non-nil inj probes the
// chaos sites evolution.worker.panic / evolution.worker.delay before each
// evaluation.
//
//lint:hotpath descendant evaluation loop — every cost evaluation of a run flows through here
func evaluate(descendants []*individual, workers int, cost func(*partition.Partition) float64, hist *obs.Histogram, inj *chaos.Injector) error {
	//lint:ignore hotalloc one closure per evaluate call, amortized over the λ descendants it evaluates
	eval := func(i int) (err error) {
		//lint:ignore hotalloc one deferred recover guard per descendant; the panic boundary is the point of the worker
		defer func() {
			if r := recover(); r != nil {
				if perr, ok := r.(error); ok {
					err = fmt.Errorf("evolution: cost evaluation of descendant %d/%d panicked: %w",
						i, len(descendants), perr)
				} else {
					err = fmt.Errorf("evolution: cost evaluation of descendant %d/%d panicked: %v",
						i, len(descendants), r)
				}
			}
		}()
		if testEvalHook != nil {
			testEvalHook(i, descendants[i].p)
		}
		inj.MustPass(chaos.SiteEvalPanic)
		inj.Sleep(chaos.SiteEvalDelay)
		if hist != nil {
			defer hist.ObserveSince(time.Now())
		}
		c := cost(descendants[i].p)
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("evolution: descendant %d/%d cost is %g: %w",
				i, len(descendants), c, partition.ErrNonFiniteCost)
		}
		descendants[i].cost = c
		return nil
	}

	if workers <= 1 || len(descendants) < 2 {
		for i := range descendants {
			if err := eval(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(descendants) {
		workers = len(descendants)
	}
	var (
		wg       sync.WaitGroup
		next     int64 = -1
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:ignore hotalloc one worker closure per evaluate call, amortized over the λ evaluations it runs
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(descendants) || failed.Load() {
					return
				}
				if err := eval(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
