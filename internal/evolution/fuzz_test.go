// Fuzzing of the checkpoint loader: arbitrary bytes — truncations, bit
// flips, adversarial JSON — must never panic LoadCheckpoint, and any
// bytes it does accept must survive a write/load round trip unchanged.

package evolution

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzSeedCheckpoint is a minimal structurally valid checkpoint for the
// fuzz corpus (validity here means validate() passes; resuming it would
// additionally need a matching circuit).
func fuzzSeedCheckpoint() *Checkpoint {
	return &Checkpoint{
		Format:  CheckpointFormat,
		Version: CheckpointVersion,
		Circuit: "fuzz",
		Gates:   8,
		Params: Params{
			Mu: 2, Lambda: 1, Chi: 1, Omega: 4,
			MaxMove: 2, Epsilon: 1.0,
			MaxGenerations: 10, StallGenerations: 5, Seed: 1,
		},
		RNGDraws:   17,
		Generation: 3,
		BestCost:   42.5,
		Best:       [][]int{{5, 6}, {7}},
		History:    []float64{44, 43, 42.5},
		Population: []CheckpointIndividual{
			{Groups: [][]int{{5, 6}, {7}}, Cost: 42.5, Age: 1, StepWidth: 2},
			{Groups: [][]int{{5}, {6, 7}}, Cost: 44, Age: 0, StepWidth: 1},
		},
	}
}

func FuzzCheckpointRoundTrip(f *testing.F) {
	valid, err := json.Marshal(fuzzSeedCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("{"))
	f.Add([]byte(`{"format":"iddqsyn-evolution-checkpoint","version":1}`))
	f.Add([]byte(`{"format":"iddqsyn-evolution-checkpoint","version":1,"best":[[0]],"population":[{"groups":[[0]]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		ck, err := LoadCheckpoint(path) // must not panic, whatever the bytes
		if err != nil {
			return
		}
		// Accepted bytes must round-trip bit-identically through the
		// writer (JSON floats are marshalled shortest-round-trip, so
		// DeepEqual over the struct is exact).
		out := filepath.Join(dir, "out.ckpt")
		if err := WriteCheckpoint(ck, out); err != nil {
			t.Fatalf("accepted checkpoint failed to write back: %v", err)
		}
		ck2, err := LoadCheckpoint(out)
		if err != nil {
			t.Fatalf("round trip failed to load: %v", err)
		}
		if !reflect.DeepEqual(ck, ck2) {
			t.Error("round trip changed the checkpoint")
		}
	})
}
