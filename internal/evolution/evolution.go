// Package evolution implements the evolution-based optimization algorithm
// of §4: a (μ, λ, χ)-strategy with duplication as recombination, a
// boundary-gate mutation operator, additional high-variance Monte-Carlo
// descendants against local minima, lifetime-limited selection (parents
// older than ω generations are deleted) and self-adaptation of the
// mutation step width m with normal variation ε — the control-parameter
// scheme the paper adapts from Rechenberg and Schwefel [17-19].
package evolution

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"iddqsyn/internal/estimate"
	"iddqsyn/internal/partition"
	"iddqsyn/internal/standard"
)

// Params are the evolution control parameters of §4.2.
type Params struct {
	Mu     int // μ: number of parents
	Lambda int // λ: number of (mutation) children per parent
	Chi    int // χ: number of Monte-Carlo descendants per parent
	Omega  int // ω: maximum lifetime in generations

	MaxMove int     // m: initial maximum number of gates moved per mutation
	Epsilon float64 // ε: standard deviation of the step-width adaptation

	MaxGenerations   int // hard generation budget
	StallGenerations int // stop after this many generations without improvement

	Seed int64

	// Workers sets the number of goroutines evaluating descendant costs
	// in parallel. Mutation stays sequential (one rand stream), so the
	// result is bit-identical for any worker count. 0 or 1 evaluates
	// sequentially.
	Workers int
}

// DefaultParams returns a configuration that converges on every benchmark
// circuit of the experiments.
func DefaultParams() Params {
	return Params{
		Mu:               8,
		Lambda:           4,
		Chi:              2,
		Omega:            8,
		MaxMove:          4,
		Epsilon:          1.5,
		MaxGenerations:   400,
		StallGenerations: 40,
		Seed:             1,
	}
}

func (p Params) validate() error {
	switch {
	case p.Mu < 1:
		return fmt.Errorf("evolution: μ must be >= 1")
	case p.Lambda < 1:
		return fmt.Errorf("evolution: λ must be >= 1")
	case p.Chi < 0:
		return fmt.Errorf("evolution: χ must be >= 0")
	case p.Omega < 1:
		return fmt.Errorf("evolution: ω must be >= 1")
	case p.MaxMove < 1:
		return fmt.Errorf("evolution: m must be >= 1")
	case p.Epsilon <= 0:
		return fmt.Errorf("evolution: ε must be positive")
	case p.MaxGenerations < 1:
		return fmt.Errorf("evolution: generation budget must be >= 1")
	case p.StallGenerations < 1:
		return fmt.Errorf("evolution: stall window must be >= 1")
	}
	return nil
}

// Move records one applied gate move, for the trace of the C17 example
// (figures 3-5).
type Move struct {
	Gates      []int
	FromModule []int // paper notation: the source module's gate list
	ToModule   []int
	MonteCarlo bool
}

// Trace receives the best individual after every generation. gen is
// 1-based; best is a snapshot safe to keep.
type Trace func(gen int, best *partition.Partition, bestCost float64)

// Result reports an optimization run.
type Result struct {
	Best        *partition.Partition
	BestCost    float64
	Generations int
	Evaluations int       // descendant cost evaluations
	History     []float64 // best cost per generation

	// Interrupted reports that the run was cancelled (context done) at a
	// generation boundary and Best holds the best-so-far individual rather
	// than a converged one. Err then wraps the context's error;
	// interruption is not a failure, so the optimizer's error return stays
	// nil.
	Interrupted bool
	Err         error
}

// origin tags how an individual entered the population, for the
// acceptance telemetry (it never influences selection).
const (
	originStart uint8 = iota
	originMutation
	originMonteCarlo
)

type individual struct {
	p      *partition.Partition
	cost   float64
	age    int
	m      int // self-adapted step width
	origin uint8
}

// infeasiblePenalty grades constraint violations: Γ(Π) is a hard
// constraint in the paper, but an all-infeasible population needs a
// gradient towards feasibility, so a violation adds a penalty that
// dominates every regular cost term yet still orders individuals by how
// far their worst module is from the required discriminability.
const infeasiblePenalty = 1e9

// costOf grades a partition for selection: the weighted global cost plus
// the graded infeasibility penalty. It is pure (no shared state), so
// descendants can be evaluated on a worker pool. It is annotated as a hot
// root directly (not just via evaluate) because evaluate receives it as a
// function value, an indirect call the static call graph cannot resolve.
//
//lint:hotpath cost of every descendant, λ times per generation — the estimate sweep underneath dominates run time
func costOf(p *partition.Partition) float64 {
	c := p.Cost()
	if worst := p.WorstDiscriminability(); worst < p.Cons.MinDiscriminability {
		c += infeasiblePenalty * (1 + math.Log(p.Cons.MinDiscriminability/worst))
	}
	return c
}

// Optimize runs the evolution cycle on an explicit start population.
// Every start partition must share the same estimator, weights and
// constraints. Infeasible individuals (Γ(Π) = 0) are penalised so
// heavily that any feasible descendant dominates them, with the penalty
// graded by the size of the violation so evolution can climb back to
// feasibility.
func Optimize(starts []*partition.Partition, prm Params, trace Trace) (*Result, error) {
	return OptimizeContext(context.Background(), starts, prm, trace)
}

// OptimizeContext is Optimize with cooperative cancellation: the context
// is checked at every generation boundary, and a cancelled run returns
// the best-so-far Result with Interrupted set (and a nil error) instead
// of discarding the work done so far.
func OptimizeContext(ctx context.Context, starts []*partition.Partition, prm Params, trace Trace) (*Result, error) {
	return OptimizeControlled(ctx, starts, prm, trace, nil)
}

// OptimizeControlled is OptimizeContext with run control: if ctl names a
// checkpoint file, the full optimizer state is persisted there
// periodically and on interruption, so a killed run can be resumed
// bit-identically with ResumeContext.
func OptimizeControlled(ctx context.Context, starts []*partition.Partition, prm Params, trace Trace, ctl *Control) (*Result, error) {
	if err := prm.validate(); err != nil {
		return nil, err
	}
	if len(starts) == 0 {
		return nil, fmt.Errorf("evolution: empty start population")
	}
	src := newCountingSource(prm.Seed)
	s := &state{
		prm:     prm,
		src:     src,
		rng:     rand.New(src),
		res:     &Result{},
		nextGen: 1,
		obs:     newRunObs(resolveObs(ctx, ctl)),
	}
	s.attachControl(ctx, ctl)
	s.pop = make([]*individual, 0, len(starts))
	for _, st := range starts {
		s.pop = append(s.pop, &individual{p: st, m: prm.MaxMove})
	}
	s.obs.log.Info("evolution run begin",
		"circuit", starts[0].E.A.Circuit.Name,
		"mu", prm.Mu, "lambda", prm.Lambda, "chi", prm.Chi,
		"max_generations", prm.MaxGenerations, "seed", prm.Seed,
		"workers", prm.Workers)
	// The initial evaluation runs sequentially (it is μ cheap calls) but
	// through the same panic-recovering path as the generation loop.
	if err := evaluate(s.pop, 1, costOf, s.obs.evalSeconds, s.chaos); err != nil {
		return nil, err
	}
	s.res.Evaluations += len(s.pop)
	s.obs.evaluations.Add(uint64(len(s.pop)))
	best := cheapest(s.pop)
	s.res.Best = best.p.Clone()
	s.res.BestCost = best.cost
	return s.run(ctx, trace, ctl)
}

// moveScratch holds the reusable buffers of the mutation operators.
// Mutation is sequential (one rand stream), so one scratch per generation
// loop serves every descendant; the buffers never escape a single
// mutate/monteCarlo call.
type moveScratch struct {
	gates   []int  // boundary gates / module copy for shuffling
	targets []int  // legal target modules of one gate
	one     [1]int // single-gate argument for MoveGates
}

// mutate applies the §4.2 mutation: a random module M_start is selected,
// its boundary gates determined, m_move ∈ {1, ..., min(m, m_boundary)}
// gates chosen uniformly, and each moved into a (random, if several)
// module it is connected with. Returns false if no move was possible.
//
//lint:hotpath runs once per descendant per generation; its partition edits must reuse the moveScratch buffers
func mutate(p *partition.Partition, m int, rng *rand.Rand, sc *moveScratch) bool {
	if p.NumModules() < 2 {
		return false
	}
	// Try a few modules: some have no boundary gates with legal targets.
	for attempt := 0; attempt < 8; attempt++ {
		src := rng.Intn(p.NumModules())
		boundary := p.AppendBoundaryGates(sc.gates[:0], src)
		sc.gates = boundary[:0]
		if len(boundary) == 0 {
			continue
		}
		max := m
		if len(boundary) < max {
			max = len(boundary)
		}
		mMove := 1 + rng.Intn(max)
		//lint:ignore hotalloc non-escaping swap closure passed to rng.Shuffle, stack-allocated
		rng.Shuffle(len(boundary), func(i, j int) { boundary[i], boundary[j] = boundary[j], boundary[i] })
		moved := false
		for _, g := range boundary[:mMove] {
			from := p.ModuleOf(g)
			targets := p.AppendConnectedModules(sc.targets[:0], g)
			sc.targets = targets[:0]
			if len(targets) == 0 {
				continue
			}
			to := targets[rng.Intn(len(targets))]
			sc.one[0] = g
			if _, err := p.MoveGates(sc.one[:], from, to); err == nil {
				moved = true
			}
			if p.NumModules() < 2 {
				break
			}
		}
		if moved {
			return true
		}
	}
	return false
}

// monteCarlo applies the §4.2 high-variance operator: a random number of
// gates of a random module M_start is moved into a random module
// M_target (not necessarily connected). If all gates move, M_start is
// deleted.
//
//lint:hotpath high-variance mutation operator, runs χλ times per generation
func monteCarlo(p *partition.Partition, rng *rand.Rand, sc *moveScratch) bool {
	if p.NumModules() < 2 {
		return false
	}
	src := rng.Intn(p.NumModules())
	dst := rng.Intn(p.NumModules() - 1)
	if dst >= src {
		dst++
	}
	gates := p.AppendModuleGates(sc.gates[:0], src)
	sc.gates = gates[:0]
	n := 1 + rng.Intn(len(gates))
	//lint:ignore hotalloc non-escaping swap closure passed to rng.Shuffle, stack-allocated
	rng.Shuffle(len(gates), func(i, j int) { gates[i], gates[j] = gates[j], gates[i] })
	_, err := p.MoveGates(gates[:n], src, dst)
	return err == nil
}

// adaptStep draws the child's step width from a normal distribution
// around the parent's (§4.2: "the new m is subject to normal distribution
// with variance ε around the m of the step before").
func adaptStep(m int, eps float64, rng *rand.Rand) int {
	nm := int(math.Round(float64(m) + rng.NormFloat64()*eps))
	if nm < 1 {
		nm = 1
	}
	return nm
}

func cheapest(pop []*individual) *individual {
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.cost < best.cost {
			best = ind
		}
	}
	return best
}

// selectBest returns the mu cheapest individuals (or all, if fewer).
func selectBest(pool []*individual, mu int) []*individual {
	// Simple selection sort over a small pool keeps determinism obvious.
	n := len(pool)
	if mu > n {
		mu = n
	}
	out := make([]*individual, 0, mu)
	used := make([]bool, n)
	for k := 0; k < mu; k++ {
		bi := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if bi == -1 || pool[i].cost < pool[bi].cost {
				bi = i
			}
		}
		used[bi] = true
		out = append(out, pool[bi])
	}
	return out
}

// Run is the full §4 flow: the module size is estimated with averaged
// parameters, μ chain-based start partitions are constructed (§4.2), and
// the evolution cycle optimizes the weighted cost under the constraints.
func Run(e *estimate.Estimator, w partition.Weights, cons partition.Constraints, prm Params, trace Trace) (*Result, error) {
	return RunContext(context.Background(), e, w, cons, prm, trace)
}

// RunContext is Run with cooperative cancellation (see OptimizeContext).
func RunContext(ctx context.Context, e *estimate.Estimator, w partition.Weights, cons partition.Constraints, prm Params, trace Trace) (*Result, error) {
	return RunControlled(ctx, e, w, cons, prm, trace, nil)
}

// RunControlled is RunContext with checkpointing (see OptimizeControlled).
func RunControlled(ctx context.Context, e *estimate.Estimator, w partition.Weights, cons partition.Constraints, prm Params, trace Trace, ctl *Control) (*Result, error) {
	if err := prm.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(prm.Seed))
	size := standard.EstimateModuleSize(e, w, cons)
	starts := make([]*partition.Partition, 0, prm.Mu)
	// Deliberately not cancellable: a cancelled run must still return a
	// best-so-far Result, so the start population has to exist before the
	// generation loop can honour ctx at its boundaries.
	//lint:ignore ctxloop cancellation is handled at generation boundaries; aborting here would break the best-so-far contract
	for i := 0; i < prm.Mu; i++ {
		groups := standard.ChainStartPartition(e.A.Circuit, size, rng)
		p, err := partition.New(e, groups, w, cons)
		if err != nil {
			return nil, fmt.Errorf("evolution: start partition %d: %w", i, err)
		}
		starts = append(starts, p)
	}
	return OptimizeControlled(ctx, starts, prm, trace, ctl)
}
