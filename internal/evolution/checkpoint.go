// Crash-safe checkpointing of the evolution state. A checkpoint captures
// everything the generation loop depends on — the control parameters, the
// population (gate groups, ages, self-adapted step widths, costs), the
// best individual, the stall counter, the bookkeeping totals, and the
// exact position of the seed-derived random stream — so a resumed run
// replays the remaining generations bit-identically to a run that was
// never interrupted.

package evolution

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"

	"iddqsyn/internal/estimate"
	"iddqsyn/internal/fsx"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/partcheck"
	"iddqsyn/internal/partition"
)

// ErrCorruptCheckpoint is wrapped by every LoadCheckpoint failure caused
// by the file's content — zero length, truncated or otherwise unparsable
// JSON, or a structure that fails validation. Callers distinguish "the
// checkpoint is damaged" (fall back to a fresh run, keep the file for
// forensics) from "the file cannot be read at all" (an I/O error, worth
// retrying) with errors.Is.
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint")

// CheckpointFormat and CheckpointVersion identify the checkpoint file
// format. The version is bumped whenever the serialized state or the
// generation loop's use of the random stream changes incompatibly; a
// mismatch is a load error, never a silent misresume.
const (
	CheckpointFormat  = "iddqsyn-evolution-checkpoint"
	CheckpointVersion = 1
)

// CheckpointIndividual is one serialized population member.
type CheckpointIndividual struct {
	Groups    [][]int `json:"groups"`
	Cost      float64 `json:"cost"`
	Age       int     `json:"age"`
	StepWidth int     `json:"step_width"` // self-adapted m
}

// Checkpoint is the serialized optimizer state at a generation boundary.
type Checkpoint struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	// Circuit identity, so a checkpoint cannot be resumed against a
	// different netlist.
	Circuit string `json:"circuit"`
	Gates   int    `json:"gates"`

	Params   Params `json:"params"`
	RNGDraws uint64 `json:"rng_draws"` // steps consumed from the seeded source

	Generation  int       `json:"generation"` // last completed generation
	Evaluations int       `json:"evaluations"`
	Stall       int       `json:"stall"`
	BestCost    float64   `json:"best_cost"`
	Best        [][]int   `json:"best"` // gate groups of the best individual
	History     []float64 `json:"history"`

	Population []CheckpointIndividual `json:"population"`

	// Metrics is the run's cumulative telemetry at the checkpoint (nil on
	// unobserved runs and on checkpoints from older versions). Resuming
	// restores it into the new run's registry, so counters continue
	// monotonically — bit-identical resume also means consistent
	// telemetry. The field is additive; version 1 files without it load
	// unchanged.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// checkpoint captures the current state. It is called only at generation
// boundaries, where `state` is fully consistent.
func (s *state) checkpoint() *Checkpoint {
	c := s.pop[0].p.E.A.Circuit
	ck := &Checkpoint{
		Format:      CheckpointFormat,
		Version:     CheckpointVersion,
		Circuit:     c.Name,
		Gates:       c.NumGates(),
		Params:      s.prm,
		RNGDraws:    s.src.draws,
		Generation:  s.res.Generations,
		Evaluations: s.res.Evaluations,
		Stall:       s.stall,
		BestCost:    s.res.BestCost,
		Best:        s.res.Best.Groups(),
		History:     append([]float64(nil), s.res.History...),
	}
	for _, ind := range s.pop {
		ck.Population = append(ck.Population, CheckpointIndividual{
			Groups:    ind.p.Groups(),
			Cost:      ind.cost,
			Age:       ind.age,
			StepWidth: ind.m,
		})
	}
	if s.obs.on {
		ck.Metrics = s.obs.o.Registry().Snapshot()
	}
	return ck
}

// write persists the checkpoint through the crash-safe publication
// protocol of fsx (temp file, fsync, rename, directory fsync), retrying
// transient failures per pol (nil = fsx defaults). A crash or injected
// fault mid-write leaves the previous checkpoint (or none) in place,
// never a truncated one.
func (ck *Checkpoint) write(fs fsx.FS, path string, pol *fsx.RetryPolicy) error {
	data, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return fmt.Errorf("evolution: marshal checkpoint: %w", err)
	}
	if fs == nil {
		fs = fsx.OS{}
	}
	if err := fsx.WriteAtomicRetry(fs, path, data, pol); err != nil {
		return fmt.Errorf("evolution: write checkpoint: %w", err)
	}
	return nil
}

// WriteCheckpoint saves a checkpoint to path (atomic, see write).
func WriteCheckpoint(ck *Checkpoint, path string) error {
	if err := ck.validate(); err != nil {
		return err
	}
	return ck.write(fsx.OS{}, path, nil)
}

// LoadCheckpoint reads and validates a checkpoint file. Corrupted files,
// foreign formats and version mismatches yield descriptive errors.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("evolution: load checkpoint: %w", err)
	}
	if len(data) == 0 {
		// An empty file parses to nothing useful; name the corruption
		// directly (the atomic-write protocol makes this state impossible
		// to produce by crashing, so it points at an external cause).
		return nil, fmt.Errorf("evolution: checkpoint %s is corrupted: %w: zero-length file", path, ErrCorruptCheckpoint)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("evolution: checkpoint %s is corrupted: %w: %w", path, ErrCorruptCheckpoint, err)
	}
	if err := ck.validate(); err != nil {
		return nil, fmt.Errorf("evolution: checkpoint %s: %w: %w", path, ErrCorruptCheckpoint, err)
	}
	return ck, nil
}

// validate checks the structural integrity of a checkpoint.
func (ck *Checkpoint) validate() error {
	switch {
	case ck.Format != CheckpointFormat:
		return fmt.Errorf("not an evolution checkpoint (format %q, want %q)",
			ck.Format, CheckpointFormat)
	case ck.Version != CheckpointVersion:
		return fmt.Errorf("checkpoint version %d not supported (want %d)",
			ck.Version, CheckpointVersion)
	case len(ck.Population) == 0:
		return fmt.Errorf("checkpoint has an empty population")
	case len(ck.Best) == 0:
		return fmt.Errorf("checkpoint has no best individual")
	case ck.Generation < 0 || ck.Stall < 0:
		return fmt.Errorf("checkpoint has negative progress counters")
	}
	if err := ck.Params.validate(); err != nil {
		return fmt.Errorf("checkpoint parameters invalid: %w", err)
	}
	return nil
}

// ResumeContext continues an optimization run from a checkpoint. The
// estimator, weights and constraints must describe the same circuit and
// objective the checkpointed run used (the circuit identity is verified;
// the objective cannot be, so resuming under different weights is a
// caller bug). The control parameters are taken from the checkpoint, and
// the random stream is fast-forwarded to the recorded position, so the
// resumed run's remaining generations — and its final Result — are
// bit-identical to those of an uninterrupted run with the same seed.
func ResumeContext(ctx context.Context, ck *Checkpoint, e *estimate.Estimator, w partition.Weights, cons partition.Constraints, trace Trace, ctl *Control) (*Result, error) {
	if err := ck.validate(); err != nil {
		return nil, err
	}
	c := e.A.Circuit
	// Identity first: auditing groupings against the wrong netlist would
	// produce a misleading structural diagnosis for what is simply a
	// checkpoint/circuit mismatch.
	if ck.Circuit != c.Name || ck.Gates != c.NumGates() {
		return nil, fmt.Errorf("evolution: checkpoint is for circuit %q (%d gates), not %q (%d gates)",
			ck.Circuit, ck.Gates, c.Name, c.NumGates())
	}
	// Statically audit every grouping in the checkpoint before trusting
	// it: a hand-edited or corrupted file is rejected here with the
	// violated constraint named, instead of surfacing later as a bad
	// optimization result.
	if r := partcheck.VerifyStructure(c, ck.Best); !r.OK() {
		return nil, fmt.Errorf("evolution: checkpoint best individual: %w", r.Err())
	}
	src := newCountingSource(ck.Params.Seed)
	src.skip(ck.RNGDraws)
	s := &state{
		prm:     ck.Params,
		src:     src,
		rng:     rand.New(src),
		stall:   ck.Stall,
		nextGen: ck.Generation + 1,
		obs:     newRunObs(resolveObs(ctx, ctl)),
		res: &Result{
			BestCost:    ck.BestCost,
			Generations: ck.Generation,
			Evaluations: ck.Evaluations,
			History:     append([]float64(nil), ck.History...),
		},
	}
	s.attachControl(ctx, ctl)
	if s.obs.on && ck.Metrics != nil {
		// Seed the registry with the checkpointed totals: cumulative
		// counters and histograms continue monotonically across the
		// resume instead of restarting from zero.
		s.obs.o.Registry().Restore(ck.Metrics)
	}
	if s.obs.on {
		s.obs.log.Info("resuming from checkpoint",
			"circuit", ck.Circuit, "gen", ck.Generation,
			"evaluations", ck.Evaluations, "best_cost", ck.BestCost,
			"telemetry_restored", ck.Metrics != nil)
	}
	best, err := partition.New(e, ck.Best, w, cons)
	if err != nil {
		return nil, fmt.Errorf("evolution: checkpoint best individual: %w", err)
	}
	s.res.Best = best
	// Deliberately not cancellable: resuming under an already-cancelled
	// context must still reconstruct the population so the run can report
	// its checkpointed best-so-far individual.
	//lint:ignore ctxloop cancellation is handled at generation boundaries; aborting here would break the best-so-far contract
	for i, ind := range ck.Population {
		if r := partcheck.VerifyStructure(c, ind.Groups); !r.OK() {
			return nil, fmt.Errorf("evolution: checkpoint individual %d: %w", i, r.Err())
		}
		p, err := partition.New(e, ind.Groups, w, cons)
		if err != nil {
			return nil, fmt.Errorf("evolution: checkpoint individual %d: %w", i, err)
		}
		s.pop = append(s.pop, &individual{p: p, cost: ind.Cost, age: ind.Age, m: ind.StepWidth})
	}
	return s.run(ctx, trace, ctl)
}
