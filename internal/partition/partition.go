// Package partition implements the PART-IDDQ problem of §2: a partition
// Π = {M₁, ..., M_K} of the circuit's logic gates into disjoint modules,
// the feasibility constraint Γ(Π) (per-module discriminability d(Mᵢ) ≥ d;
// the virtual-rail perturbation limit r* holds by construction because
// every sensor is sized Rs = r*/îDD,max), and the weighted global cost
//
//	C(Π) = α₁·c₁ + α₂·c₂ + α₃·c₃ + α₄·c₄ + α₅·c₅
//
// with c₁ = log(sensor area), c₂ = delay overhead, c₃ = log(separation),
// c₄ = test-time overhead and c₅ = module count K.
//
// The representation is mutable and incremental: moving gates between
// modules invalidates only the touched modules' estimates, so the
// evolution algorithm of §4 can evaluate descendants cheaply ("costs are
// recomputed just for the modified modules"). The descendant loop clones
// and discards thousands of partitions per generation, so the module
// representation is allocation-lean: each module's gate set is a sorted
// int slice that is immutable once built (MoveGates replaces the touched
// modules' slices instead of editing them), which lets Clone share every
// unmodified slice and every cached estimate copy-on-write style.
package partition

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/estimate"
)

// ErrNonFiniteCost reports that a partition's weighted cost evaluated to
// NaN or ±Inf — the sign of a numeric blow-up in the estimators, never a
// legitimately expensive partition (infeasible partitions are graded with
// a large but finite penalty). Optimizers check candidate costs against
// this so a poisoned estimate can neither win selection nor corrupt a
// checkpointed best.
var ErrNonFiniteCost = errors.New("partition: non-finite cost")

// Weights are the αᵢ of the global cost function.
type Weights struct {
	Area       float64 // α₁: log sensor area
	Delay      float64 // α₂: delay overhead fraction
	Separation float64 // α₃: log interconnection cost
	TestTime   float64 // α₄: test-time overhead fraction
	Modules    float64 // α₅: module count (test clock/output routing)
}

// PaperWeights returns the weight factors of §5:
// C(Π) = 9·c₁ + 10⁵·c₂ + c₃ + c₄ + 10·c₅.
func PaperWeights() Weights {
	return Weights{Area: 9, Delay: 1e5, Separation: 1, TestTime: 1, Modules: 10}
}

// Constraints holds the feasibility requirements Γ(Π) of §2.
type Constraints struct {
	// MinDiscriminability is d: every module must satisfy
	// IDDQ,th / IDDQ,nd,i ≥ d. The paper calls d > 1 mandatory and
	// 10 typical.
	MinDiscriminability float64
}

// DefaultConstraints returns d = 10, the paper's typical value.
func DefaultConstraints() Constraints {
	return Constraints{MinDiscriminability: 10}
}

// CostVector is the evaluated cost terms of one partition.
type CostVector struct {
	LogArea       float64 // c₁
	DelayOverhead float64 // c₂
	LogSeparation float64 // c₃
	TestTime      float64 // c₄
	Modules       float64 // c₅ (= K)

	SensorArea float64 // Σ sensor areas (linear, for Table 1)
	DBIc       float64 // absolute delay with sensors, s
	DNominal   float64 // absolute delay without sensors, s
	Separation int     // Σ S(Mₖ) (linear)
}

// Weighted returns C(Π) = Σ αᵢ·cᵢ.
func (cv CostVector) Weighted(w Weights) float64 {
	return w.Area*cv.LogArea +
		w.Delay*cv.DelayOverhead +
		w.Separation*cv.LogSeparation +
		w.TestTime*cv.TestTime +
		w.Modules*cv.Modules
}

// moduleState is one module of the partition. gates is the module's gate
// set as ascending IDs; together with Partition.moduleOf it is the source
// of truth for membership. The slice is immutable once assigned:
// MoveGates builds replacement slices for the touched modules, so clones
// and cached estimates (whose Gates field aliases it) can share it
// safely.
type moduleState struct {
	gates []int
	// est caches the estimator output; nil after a move touched this
	// module. Immutable once computed, so clones share it.
	est *estimate.Module
}

// Partition is a mutable partition of the circuit's logic gates with
// incremental cost evaluation.
type Partition struct {
	E    *estimate.Estimator
	W    Weights
	Cons Constraints

	modules  []*moduleState
	moduleOf []int // gate ID -> module index; -1 for inputs

	costValid bool
	cost      CostVector
}

// New builds a Partition from explicit gate groups. The groups must be
// non-empty, disjoint, contain only logic gates, and cover the circuit.
func New(e *estimate.Estimator, groups [][]int, w Weights, cons Constraints) (*Partition, error) {
	c := e.A.Circuit
	p := &Partition{
		E: e, W: w, Cons: cons,
		moduleOf: make([]int, c.NumGates()),
	}
	for i := range p.moduleOf {
		p.moduleOf[i] = -1
	}
	covered := 0
	for mi, gates := range groups {
		if len(gates) == 0 {
			return nil, fmt.Errorf("partition: module %d is empty", mi)
		}
		ms := &moduleState{gates: make([]int, 0, len(gates))}
		for _, g := range gates {
			if g < 0 || g >= c.NumGates() {
				return nil, fmt.Errorf("partition: gate %d out of range", g)
			}
			if c.Gates[g].Type == circuit.Input {
				return nil, fmt.Errorf("partition: module %d contains primary input %q", mi, c.Gates[g].Name)
			}
			if p.moduleOf[g] != -1 {
				return nil, fmt.Errorf("partition: gate %q assigned twice", c.Gates[g].Name)
			}
			ms.gates = append(ms.gates, g)
			p.moduleOf[g] = mi
			covered++
		}
		sort.Ints(ms.gates)
		p.modules = append(p.modules, ms)
	}
	if covered != c.NumLogicGates() {
		return nil, fmt.Errorf("partition: covers %d of %d logic gates", covered, c.NumLogicGates())
	}
	return p, nil
}

// NumModules returns K.
func (p *Partition) NumModules() int { return len(p.modules) }

// ModuleGates returns the sorted gate IDs of module mi. The result is a
// fresh copy the caller may modify.
func (p *Partition) ModuleGates(mi int) []int {
	return append([]int(nil), p.modules[mi].gates...)
}

// AppendModuleGates appends the sorted gate IDs of module mi to dst and
// returns the extended slice — the allocation-free variant of ModuleGates
// for callers that reuse a scratch buffer across moves.
func (p *Partition) AppendModuleGates(dst []int, mi int) []int {
	return append(dst, p.modules[mi].gates...)
}

// ModuleSize returns the number of gates in module mi.
func (p *Partition) ModuleSize(mi int) int { return len(p.modules[mi].gates) }

// ModuleOf returns the module index of a gate (-1 for primary inputs).
func (p *Partition) ModuleOf(gate int) int { return p.moduleOf[gate] }

// Groups returns the whole partition as gate-ID groups.
func (p *Partition) Groups() [][]int {
	out := make([][]int, len(p.modules))
	for i := range p.modules {
		out[i] = p.ModuleGates(i)
	}
	return out
}

// ModuleEstimate returns the (cached) estimator output for module mi.
func (p *Partition) ModuleEstimate(mi int) *estimate.Module {
	ms := p.modules[mi]
	if ms.est == nil {
		ms.est = p.E.EvalModule(ms.gates)
	}
	return ms.est
}

// Clone returns a deep copy sharing the immutable estimator. Module gate
// slices and cached estimates are shared copy-on-write style: a move
// replaces the touched modules' slices instead of editing them, so a
// clone's mutation never reaches its siblings. The descendant loop of the
// evolution strategy clones every parent λ+χ times per generation, which
// makes this the optimizer's hottest allocation site — it allocates only
// the module headers and the gate→module index.
func (p *Partition) Clone() *Partition {
	q := &Partition{
		E: p.E, W: p.W, Cons: p.Cons,
		modules:   make([]*moduleState, len(p.modules)),
		moduleOf:  append([]int(nil), p.moduleOf...),
		costValid: p.costValid,
		cost:      p.cost,
	}
	for i, ms := range p.modules {
		q.modules[i] = &moduleState{gates: ms.gates, est: ms.est}
	}
	return q
}

// MoveGates moves the given gates from module `from` to module `to`,
// invalidating both modules' caches. If `from` empties, it is deleted and
// module indices above it shift down (the §4.2 mutation semantics: "if
// all gates of M are moved, this module is deleted"). It returns the
// possibly-adjusted index of the target module.
func (p *Partition) MoveGates(gates []int, from, to int) (int, error) {
	if from == to {
		return to, fmt.Errorf("partition: move within module %d", from)
	}
	if from < 0 || from >= len(p.modules) || to < 0 || to >= len(p.modules) {
		return to, fmt.Errorf("partition: module index out of range (%d -> %d)", from, to)
	}
	src, dst := p.modules[from], p.modules[to]
	for _, g := range gates {
		if p.moduleOf[g] != from {
			return to, fmt.Errorf("partition: gate %d not in module %d", g, from)
		}
	}
	// Build replacement slices rather than editing in place: the old
	// slices may be shared with clones and with cached estimate.Module
	// values, both of which rely on them never changing.
	//lint:ignore hotalloc copy-on-write by design: a fresh, exactly-sized slice keeps clones and cached estimates valid
	newDst := make([]int, len(dst.gates), len(dst.gates)+len(gates))
	copy(newDst, dst.gates)
	moved := 0
	for _, g := range gates {
		if p.moduleOf[g] == to {
			continue // duplicate in the argument list
		}
		p.moduleOf[g] = to
		newDst = append(newDst, g)
		moved++
	}
	//lint:ignore hotalloc copy-on-write by design (see newDst above)
	newSrc := make([]int, 0, len(src.gates)-moved)
	for _, g := range src.gates {
		if p.moduleOf[g] == from {
			newSrc = append(newSrc, g)
		}
	}
	sort.Ints(newDst)
	src.gates, src.est = newSrc, nil
	dst.gates, dst.est = newDst, nil
	p.costValid = false
	if len(src.gates) == 0 {
		p.deleteModule(from)
		if to > from {
			to--
		}
	}
	return to, nil
}

func (p *Partition) deleteModule(mi int) {
	//lint:ignore hotalloc in-place removal: the result is shorter than the backing array, append never grows it
	p.modules = append(p.modules[:mi], p.modules[mi+1:]...)
	for g, m := range p.moduleOf {
		if m > mi {
			p.moduleOf[g] = m - 1
		}
	}
}

// BoundaryGates returns the gates of module mi directly connected (in the
// undirected logic graph) to a gate outside mi — the mutation candidates
// of §4.2.
func (p *Partition) BoundaryGates(mi int) []int {
	return p.AppendBoundaryGates(nil, mi)
}

// AppendBoundaryGates appends module mi's boundary gates to dst and
// returns the extended slice — the allocation-free variant of
// BoundaryGates for the optimizers' move loops, which call it once per
// attempted mutation.
func (p *Partition) AppendBoundaryGates(dst []int, mi int) []int {
	c := p.E.A.Circuit
	for _, g := range p.modules[mi].gates {
		for _, nb := range c.Neighbors(g) {
			if p.moduleOf[nb] != mi {
				dst = append(dst, g)
				break
			}
		}
	}
	return dst
}

// ConnectedModules returns the distinct modules (≠ the gate's own) that a
// gate is directly connected to — the legal mutation targets of §4.2.
func (p *Partition) ConnectedModules(gate int) []int {
	return p.AppendConnectedModules(nil, gate)
}

// AppendConnectedModules appends the gate's connected modules to dst and
// returns the extended slice (ascending, deduplicated). The candidate set
// is a handful of modules, so deduplication is a linear scan of the
// appended tail rather than a map.
func (p *Partition) AppendConnectedModules(dst []int, gate int) []int {
	c := p.E.A.Circuit
	own := p.moduleOf[gate]
	start := len(dst)
	for _, nb := range c.Neighbors(gate) {
		m := p.moduleOf[nb]
		if m < 0 || m == own {
			continue
		}
		dup := false
		for _, seen := range dst[start:] {
			if seen == m {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, m)
		}
	}
	sort.Ints(dst[start:])
	return dst
}

// Feasible evaluates Γ(Π): every module's discriminability must reach
// the constraint's minimum.
func (p *Partition) Feasible() bool {
	return p.WorstDiscriminability() >= p.Cons.MinDiscriminability
}

// WorstDiscriminability returns min_i d(Mᵢ).
func (p *Partition) WorstDiscriminability() float64 {
	worst := math.Inf(1)
	for mi := range p.modules {
		if d := p.ModuleEstimate(mi).Discriminability(p.E.P.IDDQth); d < worst {
			worst = d
		}
	}
	return worst
}

// costScratch holds the transient buffers of one Costs evaluation. The
// descendant loop evaluates thousands of partitions per generation on a
// worker pool, so the buffers are pooled instead of allocated per call;
// nothing in them survives the call (the module pointers are cleared
// before the scratch is returned).
type costScratch struct {
	mods    []*estimate.Module
	arrival []float64
}

var costScratchPool = sync.Pool{New: func() interface{} { return new(costScratch) }}

// Costs evaluates the full cost vector, recomputing only invalidated
// modules. The logarithmic terms use log(1+x) so that degenerate
// partitions (all singleton modules have S = 0) stay finite; the paper's
// log(x) is undefined there and identical in shape everywhere else that
// matters.
func (p *Partition) Costs() CostVector {
	if p.costValid {
		return p.cost
	}
	sc := costScratchPool.Get().(*costScratch)
	if cap(sc.mods) < len(p.modules) {
		//lint:ignore hotalloc pool miss or module-count growth only; steady-state cost evaluations reuse the pooled buffers
		sc.mods = make([]*estimate.Module, len(p.modules))
	}
	if cap(sc.arrival) < p.E.A.Circuit.NumGates() {
		//lint:ignore hotalloc pool miss only (see mods above)
		sc.arrival = make([]float64, p.E.A.Circuit.NumGates())
	}
	mods := sc.mods[:len(p.modules)]
	var areaSum float64
	sepSum := 0
	for mi := range p.modules {
		m := p.ModuleEstimate(mi)
		mods[mi] = m
		areaSum += m.SensorArea
		sepSum += m.Separation
	}
	dBIC := p.E.BICDelayScratch(p.moduleOf, mods, sc.arrival[:cap(sc.arrival)])
	cv := CostVector{
		LogArea:       math.Log1p(areaSum),
		DelayOverhead: p.E.DelayOverhead(dBIC),
		LogSeparation: math.Log1p(float64(sepSum)),
		TestTime:      p.E.TestTimeOverhead(dBIC, mods),
		Modules:       float64(len(p.modules)),
		SensorArea:    areaSum,
		DBIc:          dBIC,
		DNominal:      p.E.NominalDelay(),
		Separation:    sepSum,
	}
	for i := range mods {
		mods[i] = nil
	}
	costScratchPool.Put(sc)
	p.cost = cv
	p.costValid = true
	return cv
}

// Cost returns the weighted global cost C(Π).
func (p *Partition) Cost() float64 {
	return p.Costs().Weighted(p.W)
}

// Verify checks the structural invariants (disjoint cover of all logic
// gates, consistent moduleOf, ascending module gate lists, no empty
// modules) and returns the first violation. Used by tests and as a
// debugging aid.
func (p *Partition) Verify() error {
	c := p.E.A.Circuit
	seen := make(map[int]int)
	for mi, ms := range p.modules {
		if len(ms.gates) == 0 {
			return fmt.Errorf("module %d empty", mi)
		}
		prev := -1
		for _, g := range ms.gates {
			if g <= prev {
				return fmt.Errorf("module %d gate list not ascending at gate %d", mi, g)
			}
			prev = g
			if p, dup := seen[g]; dup {
				return fmt.Errorf("gate %d in modules %d and %d", g, p, mi)
			}
			seen[g] = mi
			if p.moduleOf[g] != mi {
				return fmt.Errorf("gate %d: moduleOf says %d, found in %d", g, p.moduleOf[g], mi)
			}
			if c.Gates[g].Type == circuit.Input {
				return fmt.Errorf("primary input %d in module %d", g, mi)
			}
		}
	}
	if len(seen) != c.NumLogicGates() {
		return fmt.Errorf("covers %d of %d gates", len(seen), c.NumLogicGates())
	}
	return nil
}

// String summarises the partition.
func (p *Partition) String() string {
	cv := p.Costs()
	return fmt.Sprintf("partition: K=%d area=%.4g delay+%.3g%% test+%.3g%% sep=%d C=%.6g feasible=%v",
		len(p.modules), cv.SensorArea, 100*cv.DelayOverhead, 100*cv.TestTime,
		cv.Separation, p.Cost(), p.Feasible())
}
