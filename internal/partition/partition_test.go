package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
)

func c17Estimator(t *testing.T) *estimate.Estimator {
	t.Helper()
	a, err := celllib.Annotate(circuits.C17(), celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	return estimate.New(a, estimate.DefaultParams())
}

func ids(t *testing.T, e *estimate.Estimator, names ...string) []int {
	t.Helper()
	out := make([]int, len(names))
	for i, n := range names {
		g, ok := e.A.Circuit.GateByName(n)
		if !ok {
			t.Fatalf("gate %s missing", n)
		}
		out[i] = g.ID
	}
	return out
}

func paperOptimum(t *testing.T, e *estimate.Estimator) *Partition {
	t.Helper()
	p, err := New(e, [][]int{
		ids(t, e, "g1", "g3", "g5"),
		ids(t, e, "g2", "g4", "g6"),
	}, PaperWeights(), DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	e := c17Estimator(t)
	all := e.A.Circuit.LogicGates()
	cases := map[string][][]int{
		"incomplete":   {all[:3]},
		"empty module": {all, {}},
		"duplicate":    {all, all[:1]},
		"input":        {append([]int{e.A.Circuit.Inputs[0]}, all...)},
		"out of range": {append([]int{-1}, all...)},
	}
	for name, groups := range cases {
		if _, err := New(e, groups, PaperWeights(), DefaultConstraints()); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	p, err := New(e, [][]int{all}, PaperWeights(), DefaultConstraints())
	if err != nil {
		t.Fatalf("single module rejected: %v", err)
	}
	if err := p.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestCostsC17(t *testing.T) {
	e := c17Estimator(t)
	p := paperOptimum(t, e)
	cv := p.Costs()
	if cv.Modules != 2 {
		t.Errorf("c5 = %g, want 2", cv.Modules)
	}
	if cv.SensorArea <= 0 || cv.LogArea <= 0 {
		t.Error("sensor area must be positive")
	}
	if cv.DelayOverhead <= 0 {
		t.Error("delay overhead must be positive with sensors present")
	}
	if cv.TestTime < cv.DelayOverhead {
		t.Error("test-time overhead includes delay overhead plus settling")
	}
	if cv.DBIc <= cv.DNominal {
		t.Error("D_BIC must exceed D")
	}
	if cv.Separation <= 0 || cv.LogSeparation <= 0 {
		t.Error("separation of multi-gate modules must be positive")
	}
	want := 9*cv.LogArea + 1e5*cv.DelayOverhead + cv.LogSeparation + cv.TestTime + 10*cv.Modules
	if math.Abs(p.Cost()-want) > 1e-9 {
		t.Errorf("Cost = %g, want %g", p.Cost(), want)
	}
}

func TestFeasibilityC17(t *testing.T) {
	e := c17Estimator(t)
	p := paperOptimum(t, e)
	// Six NAND2 gates leak ~tens of pA each; threshold 1 µA gives
	// discriminability in the thousands — easily feasible at d = 10.
	if !p.Feasible() {
		t.Errorf("C17 partition should be feasible, worst d = %g", p.WorstDiscriminability())
	}
	// An absurd constraint must fail.
	p.Cons.MinDiscriminability = 1e12
	if p.Feasible() {
		t.Error("d = 1e12 should be infeasible")
	}
}

func TestMoveGates(t *testing.T) {
	e := c17Estimator(t)
	p := paperOptimum(t, e)
	g3 := ids(t, e, "g3")[0]
	costBefore := p.Cost()

	to, err := p.MoveGates([]int{g3}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if to != 1 {
		t.Errorf("target index = %d, want 1", to)
	}
	if p.ModuleOf(g3) != 1 {
		t.Error("g3 should now be in module 1")
	}
	if err := p.Verify(); err != nil {
		t.Errorf("Verify after move: %v", err)
	}
	if p.Cost() == costBefore {
		t.Error("cost should change after the move")
	}
	if n := len(p.ModuleGates(0)); n != 2 {
		t.Errorf("module 0 has %d gates, want 2", n)
	}
}

func TestMoveGatesErrors(t *testing.T) {
	e := c17Estimator(t)
	p := paperOptimum(t, e)
	g2 := ids(t, e, "g2")[0]
	if _, err := p.MoveGates([]int{g2}, 0, 1); err == nil {
		t.Error("want error: g2 not in module 0")
	}
	if _, err := p.MoveGates([]int{g2}, 1, 1); err == nil {
		t.Error("want error: same module")
	}
	if _, err := p.MoveGates([]int{g2}, 1, 7); err == nil {
		t.Error("want error: target out of range")
	}
}

func TestMoveAllGatesDeletesModule(t *testing.T) {
	e := c17Estimator(t)
	p := paperOptimum(t, e)
	m0 := p.ModuleGates(0)
	to, err := p.MoveGates(m0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumModules() != 1 {
		t.Fatalf("modules = %d, want 1 after emptying", p.NumModules())
	}
	if to != 0 {
		t.Errorf("adjusted target = %d, want 0 after deletion shift", to)
	}
	if err := p.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if got := p.Costs().Modules; got != 1 {
		t.Errorf("c5 = %g, want 1", got)
	}
}

func TestBoundaryGatesC17(t *testing.T) {
	// Reproduce the §4.3 example: for partition {(4,6),(2,3),(1,5)} the
	// module (4,6) has boundary gates {g4, g6}.
	e := c17Estimator(t)
	p, err := New(e, [][]int{
		ids(t, e, "g4", "g6"),
		ids(t, e, "g2", "g3"),
		ids(t, e, "g1", "g5"),
	}, PaperWeights(), DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	bg := p.BoundaryGates(0)
	want := ids(t, e, "g4", "g6")
	if len(bg) != 2 || bg[0] != want[0] || bg[1] != want[1] {
		t.Errorf("boundary gates = %v, want %v", bg, want)
	}
	// In the paper's optimum {(1,3,5),(2,4,6)}, module 0's only gate with
	// an outside connection is g3 (g1 and g5 connect only within the
	// module — primary inputs don't count).
	opt := paperOptimum(t, e)
	g3 := ids(t, e, "g3")[0]
	if got := opt.BoundaryGates(0); len(got) != 1 || got[0] != g3 {
		t.Errorf("optimum module 0 boundary = %v, want [g3]", got)
	}
}

func TestConnectedModules(t *testing.T) {
	e := c17Estimator(t)
	p, err := New(e, [][]int{
		ids(t, e, "g1", "g2"),
		ids(t, e, "g3", "g4"),
		ids(t, e, "g5", "g6"),
	}, PaperWeights(), DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	// g1 connects to g5 (module 2) only (fanin I1, I3 are inputs).
	g1 := ids(t, e, "g1")[0]
	if got := p.ConnectedModules(g1); len(got) != 1 || got[0] != 2 {
		t.Errorf("ConnectedModules(g1) = %v, want [2]", got)
	}
	// g3 connects to g2 (module 0), g5 and g6 (module 2).
	g3 := ids(t, e, "g3")[0]
	if got := p.ConnectedModules(g3); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ConnectedModules(g3) = %v, want [0 2]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	e := c17Estimator(t)
	p := paperOptimum(t, e)
	origCost := p.Cost()
	q := p.Clone()
	g3 := ids(t, e, "g3")[0]
	if _, err := q.MoveGates([]int{g3}, 0, 1); err != nil {
		t.Fatal(err)
	}
	if p.Cost() != origCost {
		t.Error("mutating the clone changed the parent's cost")
	}
	if p.ModuleOf(g3) != 0 {
		t.Error("mutating the clone changed the parent's assignment")
	}
	if q.ModuleOf(g3) != 1 {
		t.Error("clone did not take the move")
	}
	if err := p.Verify(); err != nil {
		t.Errorf("parent Verify: %v", err)
	}
	if err := q.Verify(); err != nil {
		t.Errorf("clone Verify: %v", err)
	}
}

// Property: incremental cost after random moves equals the cost of a
// freshly constructed partition with the same groups.
func TestIncrementalMatchesFresh(t *testing.T) {
	e := c17Estimator(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := paperOptimumQuick(e)
		for step := 0; step < 6; step++ {
			if p.NumModules() < 2 {
				break
			}
			from := rng.Intn(p.NumModules())
			gates := p.ModuleGates(from)
			g := gates[rng.Intn(len(gates))]
			targets := p.ConnectedModules(g)
			if len(targets) == 0 {
				continue
			}
			to := targets[rng.Intn(len(targets))]
			if _, err := p.MoveGates([]int{g}, from, to); err != nil {
				return false
			}
			if err := p.Verify(); err != nil {
				return false
			}
		}
		fresh, err := New(e, p.Groups(), p.W, p.Cons)
		if err != nil {
			return false
		}
		return math.Abs(p.Cost()-fresh.Cost()) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func paperOptimumQuick(e *estimate.Estimator) *Partition {
	c := e.A.Circuit
	id := func(n string) int {
		g, _ := c.GateByName(n)
		return g.ID
	}
	p, err := New(e, [][]int{
		{id("g1"), id("g3"), id("g5")},
		{id("g2"), id("g4"), id("g6")},
	}, PaperWeights(), DefaultConstraints())
	if err != nil {
		panic(err)
	}
	return p
}

func TestFinerPartitionTradeoffs(t *testing.T) {
	// Splitting the whole circuit into more modules must increase sensor
	// area (replicated detection circuitry) and the module count, while
	// improving the worst-module discriminability.
	e := c17Estimator(t)
	all := e.A.Circuit.LogicGates()
	one, err := New(e, [][]int{all}, PaperWeights(), DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	two := paperOptimum(t, e)
	if two.Costs().SensorArea <= one.Costs().SensorArea {
		t.Errorf("2 sensors (%g) should cost more area than 1 (%g)",
			two.Costs().SensorArea, one.Costs().SensorArea)
	}
	if two.WorstDiscriminability() <= one.WorstDiscriminability() {
		t.Error("finer partition must improve discriminability")
	}
}

func TestStringSummary(t *testing.T) {
	e := c17Estimator(t)
	p := paperOptimum(t, e)
	s := p.String()
	if len(s) == 0 || s[:9] != "partition" {
		t.Errorf("String() = %q", s)
	}
}

func TestPaperWeights(t *testing.T) {
	w := PaperWeights()
	if w.Area != 9 || w.Delay != 1e5 || w.Separation != 1 || w.TestTime != 1 || w.Modules != 10 {
		t.Errorf("PaperWeights = %+v", w)
	}
}
