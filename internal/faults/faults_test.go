package faults

import (
	"math/rand"
	"testing"
	"testing/quick"

	"iddqsyn/internal/circuits"
	"iddqsyn/internal/logicsim"
)

func TestKindString(t *testing.T) {
	if Bridge.String() != "bridge" || GateOxideShort.String() != "gos" || StuckOn.String() != "stuck-on" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("out-of-range Kind.String")
	}
}

func TestBridgeExcitation(t *testing.T) {
	c := circuits.C17()
	s := logicsim.New(c)
	g1, _ := c.GateByName("g1")
	g2, _ := c.GateByName("g2")
	f := Fault{Kind: Bridge, A: g1.ID, B: g2.ID, Current: 1e-3}

	// I1=1,I3=1 -> g1=0; I4=0 -> g2=1. Opposite values: excited, current
	// observed through g1's pull-down (the low net).
	if err := s.ApplyBits([]bool{true, false, true, false, false}); err != nil {
		t.Fatal(err)
	}
	obs, ex := f.Excited(c, s.Values())
	if !ex {
		t.Fatal("bridge should be excited with opposite values")
	}
	if obs != g1.ID {
		t.Errorf("observer = %d, want g1 (%d), the low net's driver", obs, g1.ID)
	}

	// I3=0 -> g1=1 and g2=1. Same value: not excited.
	if err := s.ApplyBits([]bool{true, false, false, false, false}); err != nil {
		t.Fatal(err)
	}
	if _, ex := f.Excited(c, s.Values()); ex {
		t.Error("bridge must not be excited with equal values")
	}
}

func TestBridgeNotExcitedByX(t *testing.T) {
	c := circuits.C17()
	s := logicsim.New(c)
	g1, _ := c.GateByName("g1")
	g2, _ := c.GateByName("g2")
	f := Fault{Kind: Bridge, A: g1.ID, B: g2.ID}
	if err := s.Apply([]logicsim.Value{logicsim.X, logicsim.X, logicsim.X, logicsim.X, logicsim.X}); err != nil {
		t.Fatal(err)
	}
	if _, ex := f.Excited(c, s.Values()); ex {
		t.Error("X values must not excite a bridge")
	}
}

func TestGateOxideShortExcitation(t *testing.T) {
	c := circuits.C17()
	s := logicsim.New(c)
	g1, _ := c.GateByName("g1")
	f := Fault{Kind: GateOxideShort, Gate: g1.ID, Pin: 0} // pin 0 = I1
	if err := s.ApplyBits([]bool{true, false, false, false, false}); err != nil {
		t.Fatal(err)
	}
	obs, ex := f.Excited(c, s.Values())
	if !ex || obs != g1.ID {
		t.Errorf("GOS with pin high: excited=%v obs=%d, want true,%d", ex, obs, g1.ID)
	}
	if err := s.ApplyBits([]bool{false, false, false, false, false}); err != nil {
		t.Fatal(err)
	}
	if _, ex := f.Excited(c, s.Values()); ex {
		t.Error("GOS with pin low must not be excited")
	}
}

func TestStuckOnExcitation(t *testing.T) {
	c := circuits.C17()
	s := logicsim.New(c)
	g1, _ := c.GateByName("g1")
	nmos := Fault{Kind: StuckOn, Gate: g1.ID, Pin: 0, PMOS: false}
	pmos := Fault{Kind: StuckOn, Gate: g1.ID, Pin: 0, PMOS: true}

	// I1=I3=1 -> g1=0: pMOS stuck-on fights the pull-down.
	if err := s.ApplyBits([]bool{true, false, true, false, false}); err != nil {
		t.Fatal(err)
	}
	if _, ex := pmos.Excited(c, s.Values()); !ex {
		t.Error("stuck-on pMOS should be excited when output is low")
	}
	if _, ex := nmos.Excited(c, s.Values()); ex {
		t.Error("stuck-on nMOS must not be excited when output is low")
	}

	// I1=0 -> g1=1: nMOS stuck-on fights the pull-up.
	if err := s.ApplyBits([]bool{false, false, true, false, false}); err != nil {
		t.Fatal(err)
	}
	if _, ex := nmos.Excited(c, s.Values()); !ex {
		t.Error("stuck-on nMOS should be excited when output is high")
	}
	if _, ex := pmos.Excited(c, s.Values()); ex {
		t.Error("stuck-on pMOS must not be excited when output is high")
	}
}

// Property: ExcitedWord agrees bit-for-bit with scalar Excited across a
// random batch, for every fault kind.
func TestExcitedWordMatchesScalar(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(5))
	cfg.MaxBridges = 40
	list := Universe(c, cfg, rng)
	if len(list) == 0 {
		t.Fatal("empty fault list")
	}
	p := logicsim.NewParallel(c)
	s := logicsim.New(c)
	batch := make([][]bool, 64)
	for k := range batch {
		batch[k] = make([]bool, len(c.Inputs))
		for i := range batch[k] {
			batch[k][i] = rng.Intn(2) == 1
		}
	}
	if err := p.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	for fi := range list {
		f := &list[fi]
		w := f.ExcitedWord(c, p)
		for _, k := range []int{0, 13, 31, 63} {
			if err := s.ApplyBits(batch[k]); err != nil {
				t.Fatal(err)
			}
			obs, ex := f.Excited(c, s.Values())
			if got := w&(1<<uint(k)) != 0; got != ex {
				t.Fatalf("%v pattern %d: word=%v scalar=%v", f, k, got, ex)
			}
			if ex {
				if got := f.Observer(c, p, k); got != obs {
					t.Fatalf("%v pattern %d: Observer=%d scalar=%d", f, k, got, obs)
				}
			}
		}
	}
}

func TestExtractBridgesProximity(t *testing.T) {
	c := circuits.C17()
	cfg := DefaultConfig()
	cfg.BridgeHops = 1
	list := ExtractBridges(c, cfg, rand.New(rand.NewSource(1)))
	// Within 1 hop, only directly connected gate pairs qualify:
	// (g1,g5),(g2,g3),(g2,g4),(g3,g5),(g3,g6),(g4,g6).
	if len(list) != 6 {
		t.Errorf("bridges within 1 hop = %d, want 6: %v", len(list), list)
	}
	for _, f := range list {
		if f.A >= f.B {
			t.Errorf("pair not canonical: %v", &f)
		}
		if f.Current <= 0 {
			t.Errorf("non-positive bridge current: %v", &f)
		}
	}
}

func TestExtractBridgesCap(t *testing.T) {
	c := circuits.MustISCAS85Like("c432")
	cfg := DefaultConfig()
	cfg.MaxBridges = 25
	list := ExtractBridges(c, cfg, rand.New(rand.NewSource(2)))
	if len(list) != 25 {
		t.Errorf("capped list = %d, want 25", len(list))
	}
	// Deterministic for a fixed seed.
	list2 := ExtractBridges(c, cfg, rand.New(rand.NewSource(2)))
	for i := range list {
		if list[i] != list2[i] {
			t.Fatal("capped extraction must be deterministic for a fixed seed")
		}
	}
}

func TestExtractPinFaults(t *testing.T) {
	c := circuits.C17()
	cfg := DefaultConfig()
	gos := ExtractGateOxideShorts(c, cfg)
	if len(gos) != 12 { // 6 gates x 2 pins
		t.Errorf("GOS faults = %d, want 12", len(gos))
	}
	so := ExtractStuckOn(c, cfg)
	if len(so) != 24 { // 6 gates x 2 pins x {n,p}
		t.Errorf("stuck-on faults = %d, want 24", len(so))
	}
}

func TestUniverse(t *testing.T) {
	c := circuits.C17()
	cfg := DefaultConfig()
	u := Universe(c, cfg, rand.New(rand.NewSource(1)))
	if len(u) < 36 {
		t.Errorf("universe = %d faults, want at least GOS+stuck-on count", len(u))
	}
}

func TestFaultString(t *testing.T) {
	for _, tc := range []struct {
		f    Fault
		want string
	}{
		{Fault{Kind: Bridge, A: 1, B: 2}, "bridge(1,2)"},
		{Fault{Kind: GateOxideShort, Gate: 3, Pin: 1}, "gos(g3.1)"},
		{Fault{Kind: StuckOn, Gate: 4, Pin: 0}, "stuck-on(g4.0,n)"},
		{Fault{Kind: StuckOn, Gate: 4, Pin: 0, PMOS: true}, "stuck-on(g4.0,p)"},
	} {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// Property: every bridge fault's defect current is orders of magnitude
// above a typical fault-free gate leakage (the premise of IDDQ testing).
func TestDefectCurrentsDominate(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := DefaultConfig()
		const leak = 100e-12
		return cfg.VDD/cfg.BridgeRes > 1000*leak &&
			cfg.GOSCurrent > 1000*leak && cfg.StuckOnCurrent > 1000*leak
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1}); err != nil {
		t.Error(err)
	}
}
