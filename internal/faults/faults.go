// Package faults models the CMOS defect classes that IDDQ testing targets
// (the paper's references [1-6]): bridging faults between circuit nodes,
// gate-oxide shorts, and stuck-on transistors. Each defect, when excited
// by a test vector, creates a conducting path between the supply rails and
// raises the quiescent current far above the fault-free leakage — without
// necessarily corrupting any logic value, which is why logic testing
// misses these defects and why the BIC sensors of the paper exist.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/logicsim"
)

// Kind enumerates the defect classes.
type Kind int

// The supported IDDQ defect classes.
const (
	Bridge         Kind = iota // resistive short between two signal nets
	GateOxideShort             // short through the gate oxide of an input transistor
	StuckOn                    // transistor that never turns off
)

// String names the defect class.
func (k Kind) String() string {
	switch k {
	case Bridge:
		return "bridge"
	case GateOxideShort:
		return "gos"
	case StuckOn:
		return "stuck-on"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is a single defect instance. Nets are identified by their driving
// gate ID (every net has exactly one driver in the netlist model).
type Fault struct {
	Kind Kind

	// Bridge: A and B are the two bridged nets.
	A, B int

	// GateOxideShort, StuckOn: Gate is the defective gate, Pin the fanin
	// index of the affected transistor. PMOS selects the pull-up device
	// for StuckOn faults.
	Gate int
	Pin  int
	PMOS bool

	// Current is the quiescent defect current when excited, A.
	Current float64
}

// String renders the fault for reports.
func (f *Fault) String() string {
	switch f.Kind {
	case Bridge:
		return fmt.Sprintf("bridge(%d,%d)", f.A, f.B)
	case GateOxideShort:
		return fmt.Sprintf("gos(g%d.%d)", f.Gate, f.Pin)
	case StuckOn:
		dev := "n"
		if f.PMOS {
			dev = "p"
		}
		return fmt.Sprintf("stuck-on(g%d.%d,%s)", f.Gate, f.Pin, dev)
	}
	return "fault(?)"
}

// Excited reports whether the settled state in values activates the
// defect's conducting path, and if so which gate's ground path carries the
// defect current — the gate whose BIC-sensor module observes the elevated
// IDDQ. Unknown (X) values never excite a fault (conservative).
//
// Excitation conditions:
//   - Bridge: the two nets settle to opposite values; the current flows
//     through the pull-down of the low net's driver.
//   - Gate-oxide short: the affected input is high, shorting through the
//     oxide into the channel/source of the gate's own transistor stack.
//   - Stuck-on nMOS: the gate output is high, so the stuck-on pull-down
//     fights the active pull-up. Stuck-on pMOS: output low, symmetric.
func (f *Fault) Excited(c *circuit.Circuit, values []logicsim.Value) (observer int, excited bool) {
	switch f.Kind {
	case Bridge:
		va, vb := values[f.A], values[f.B]
		if va == logicsim.X || vb == logicsim.X || va == vb {
			return 0, false
		}
		if va == logicsim.Zero {
			return f.A, true
		}
		return f.B, true
	case GateOxideShort:
		pin := c.Gates[f.Gate].Fanin[f.Pin]
		if values[pin] == logicsim.One {
			return f.Gate, true
		}
		return 0, false
	case StuckOn:
		v := values[f.Gate]
		if v == logicsim.X {
			return 0, false
		}
		if f.PMOS == (v == logicsim.Zero) {
			return f.Gate, true
		}
		return 0, false
	}
	return 0, false
}

// ExcitedWord evaluates the excitation condition across the 64 patterns of
// a parallel simulation batch, returning a bitmask of exciting patterns.
func (f *Fault) ExcitedWord(c *circuit.Circuit, p *logicsim.Parallel) uint64 {
	switch f.Kind {
	case Bridge:
		return p.Word(f.A) ^ p.Word(f.B)
	case GateOxideShort:
		return p.Word(c.Gates[f.Gate].Fanin[f.Pin])
	case StuckOn:
		if f.PMOS {
			return ^p.Word(f.Gate)
		}
		return p.Word(f.Gate)
	}
	return 0
}

// Observer returns the gate whose module observes the defect current under
// pattern k of a parallel batch. Call only for patterns where ExcitedWord
// has the bit set.
func (f *Fault) Observer(c *circuit.Circuit, p *logicsim.Parallel, k int) int {
	if f.Kind != Bridge {
		return f.Gate
	}
	if p.PatternValue(f.A, k) {
		return f.B // A high, B low: current through B's pull-down
	}
	return f.A
}

// Config sets the defect-current magnitudes and the bridge enumeration
// policy of the fault-list extractor.
type Config struct {
	VDD            float64 // supply voltage, V
	BridgeRes      float64 // nominal bridge resistance, Ω
	GOSCurrent     float64 // gate-oxide short current, A
	StuckOnCurrent float64 // stuck-on contention current, A
	// BridgeHops bounds the undirected distance between the drivers of a
	// candidate bridged net pair: without layout data, logical proximity
	// is the standard proxy for physical adjacency.
	BridgeHops int
	// MaxBridges caps the enumerated bridge list (0 = unlimited); the
	// excess is sampled uniformly with rng for reproducibility.
	MaxBridges int
}

// DefaultConfig returns defect parameters typical of the paper's
// technology: a 5 V supply, kilo-ohm bridges (≈1 mA defect currents —
// 10^6 times the per-gate leakage).
func DefaultConfig() Config {
	return Config{
		VDD:            5.0,
		BridgeRes:      5e3,
		GOSCurrent:     400e-6,
		StuckOnCurrent: 700e-6,
		BridgeHops:     3,
		MaxBridges:     0,
	}
}

// ExtractBridges enumerates bridging faults between nets whose drivers
// are within cfg.BridgeHops in the undirected circuit graph. Pairs are
// returned in deterministic order; if cfg.MaxBridges > 0 the list is
// down-sampled with rng.
func ExtractBridges(c *circuit.Circuit, cfg Config, rng *rand.Rand) []Fault {
	var out []Fault
	logic := c.LogicGates()
	for _, g := range logic {
		dist := c.BoundedDistances(g, cfg.BridgeHops)
		var near []int
		for nb := range dist {
			if nb > g { // each unordered pair once
				near = append(near, nb)
			}
		}
		sort.Ints(near)
		for _, nb := range near {
			out = append(out, Fault{
				Kind: Bridge, A: g, B: nb,
				Current: cfg.VDD / cfg.BridgeRes,
			})
		}
	}
	if cfg.MaxBridges > 0 && len(out) > cfg.MaxBridges {
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		out = out[:cfg.MaxBridges]
		sort.Slice(out, func(i, j int) bool {
			if out[i].A != out[j].A {
				return out[i].A < out[j].A
			}
			return out[i].B < out[j].B
		})
	}
	return out
}

// ExtractGateOxideShorts enumerates one gate-oxide short per gate input
// pin.
func ExtractGateOxideShorts(c *circuit.Circuit, cfg Config) []Fault {
	var out []Fault
	for _, g := range c.LogicGates() {
		for pin := range c.Gates[g].Fanin {
			out = append(out, Fault{
				Kind: GateOxideShort, Gate: g, Pin: pin,
				Current: cfg.GOSCurrent,
			})
		}
	}
	return out
}

// ExtractStuckOn enumerates stuck-on faults for the nMOS and pMOS device
// of every gate input pin.
func ExtractStuckOn(c *circuit.Circuit, cfg Config) []Fault {
	var out []Fault
	for _, g := range c.LogicGates() {
		for pin := range c.Gates[g].Fanin {
			for _, pmos := range []bool{false, true} {
				out = append(out, Fault{
					Kind: StuckOn, Gate: g, Pin: pin, PMOS: pmos,
					Current: cfg.StuckOnCurrent,
				})
			}
		}
	}
	return out
}

// Universe enumerates the complete fault list for the circuit under cfg.
func Universe(c *circuit.Circuit, cfg Config, rng *rand.Rand) []Fault {
	var out []Fault
	out = append(out, ExtractBridges(c, cfg, rng)...)
	out = append(out, ExtractGateOxideShorts(c, cfg)...)
	out = append(out, ExtractStuckOn(c, cfg)...)
	return out
}
