package electrical

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// unwrap returns a helper that unwraps a model result inside a test,
// failing the test on error.
func unwrap(t *testing.T) func(float64, error) float64 {
	return func(v float64, err error) float64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
}

func TestSensorROn(t *testing.T) {
	ok := unwrap(t)
	// 200 mV limit at 10 mA peak -> 20 Ω.
	if got := ok(SensorROn(0.2, 10e-3)); !close(got, 20, 1e-9) {
		t.Errorf("SensorROn = %g, want 20", got)
	}
}

func TestSensorROnRejectsBadInput(t *testing.T) {
	if _, err := SensorROn(0.2, 0); err == nil {
		t.Error("want error for iDDmax <= 0")
	}
	if _, err := SensorROn(0, 1e-3); err == nil {
		t.Error("want error for rail limit <= 0")
	}
}

// Property: the rail perturbation at Rs = SensorROn(r*, i) is exactly r*,
// and any larger current violates the limit.
func TestSensorSizingMeetsLimit(t *testing.T) {
	prop := func(limMilliV, peakMilliA uint8) bool {
		lim := 0.1 + float64(limMilliV%30)*0.01 // 100..390 mV
		peak := 1e-3 * (1 + float64(peakMilliA%50))
		rs, err := SensorROn(lim, peak)
		if err != nil {
			return false
		}
		if !close(RailPerturbation(rs, peak), lim, 1e-12) {
			return false
		}
		return RailPerturbation(rs, peak*1.5) > lim
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSensorAreaModel(t *testing.T) {
	ok := unwrap(t)
	if got := ok(SensorArea(100, 2000, 20)); !close(got, 200, 1e-9) {
		t.Errorf("SensorArea = %g, want 200", got)
	}
	// Halving Rs (bigger bypass device) grows only the A1 term.
	if got := ok(SensorArea(100, 2000, 10)); !close(got, 300, 1e-9) {
		t.Errorf("SensorArea = %g, want 300", got)
	}
}

func TestSensorAreaRejectsBadInput(t *testing.T) {
	if _, err := SensorArea(1, 1, 0); err == nil {
		t.Error("want error for Rs <= 0")
	}
}

func TestDelayDegradationLimits(t *testing.T) {
	ok := unwrap(t)
	// cs = 0: exact series-resistance result 1 + n·Rs/Rg.
	if got := ok(DelayDegradation(3, 10, 1000, 1e-9, 0)); !close(got, 1.03, 1e-9) {
		t.Errorf("δ(cs=0) = %g, want 1.03", got)
	}
	// Huge Cs: the rail never moves within one gate delay, δ → 1.
	if got := ok(DelayDegradation(3, 10, 1000, 1e-9, 1)); !close(got, 1.0, 1e-6) {
		t.Errorf("δ(cs→∞) = %g, want ≈1", got)
	}
	// n < 1 clamps to 1.
	if got := ok(DelayDegradation(0, 10, 1000, 1e-9, 0)); !close(got, 1.01, 1e-9) {
		t.Errorf("δ(n=0) = %g, want 1.01", got)
	}
}

// Property: δ ≥ 1 and is nondecreasing in the activity n.
func TestDelayDegradationMonotoneInActivity(t *testing.T) {
	prop := func(n uint8, rsUnits, csUnits uint8) bool {
		rs := 1 + float64(rsUnits%100)
		cs := float64(csUnits) * 1e-13
		prev := 0.0
		for k := 1; k <= int(n%16)+2; k++ {
			d, err := DelayDegradation(k, rs, 2e3, 1e-9, cs)
			if err != nil || d < 1 || d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// discharge unwraps a transient-simulation result inside a test.
func discharge(t *testing.T, vdd float64, n int, rg, cg, rs, cs, dt float64) DischargeResult {
	t.Helper()
	res, err := SimulateGateDischarge(vdd, n, rg, cg, rs, cs, dt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The cs = 0 closed form must match the transient simulation of the same
// network exactly (both reduce to a single RC with series resistance
// rg + n·rs).
func TestDelayDegradationAgainstTransientCsZero(t *testing.T) {
	ok := unwrap(t)
	const (
		vdd = 5.0
		rg  = 2e3
		cg  = 50e-15
		dt  = 1e-14
	)
	base := discharge(t, vdd, 1, rg, cg, 0, 0, dt)
	wantBase := rg * cg * math.Ln2
	if !close(base.T50, wantBase, wantBase*0.01) {
		t.Fatalf("baseline T50 = %g, analytic %g", base.T50, wantBase)
	}
	for _, n := range []int{1, 2, 4, 8} {
		for _, rs := range []float64{20, 50, 200} {
			sim := discharge(t, vdd, n, rg, cg, rs, 0, dt)
			measured := sim.T50 / base.T50
			formula := ok(DelayDegradation(n, rs, rg, rg*cg*math.Ln2, 0))
			if !close(measured, formula, formula*0.02) {
				t.Errorf("n=%d rs=%g: measured δ=%.4f formula δ=%.4f", n, rs, measured, formula)
			}
		}
	}
}

// With cs > 0 the closed form must stay qualitatively right: δ ≥ 1,
// damped below the cs = 0 value, and the transient simulation must agree
// that a large rail capacitance reduces the degradation.
func TestDelayDegradationDampingAgainstTransient(t *testing.T) {
	ok := unwrap(t)
	const (
		vdd = 5.0
		rg  = 2e3
		cg  = 50e-15
		rs  = 100.0
		dt  = 1e-14
	)
	base := discharge(t, vdd, 1, rg, cg, 0, 0, dt)
	d := rg * cg * math.Ln2
	deltaNoCs := discharge(t, vdd, 4, rg, cg, rs, 0, dt).T50 / base.T50
	deltaBigCs := discharge(t, vdd, 4, rg, cg, rs, 100*cg, dt).T50 / base.T50
	if deltaBigCs >= deltaNoCs {
		t.Errorf("transient: rail capacitance should reduce degradation (%.4f vs %.4f)",
			deltaBigCs, deltaNoCs)
	}
	fNoCs := ok(DelayDegradation(4, rs, rg, d, 0))
	fBigCs := ok(DelayDegradation(4, rs, rg, d, 100*cg))
	if fBigCs >= fNoCs {
		t.Errorf("formula: damping failed (%.4f vs %.4f)", fBigCs, fNoCs)
	}
	if fBigCs < 1 || deltaBigCs < 1 {
		t.Error("degradation factors must never fall below 1")
	}
}

func TestSettlingTime(t *testing.T) {
	ok := unwrap(t)
	tau := 2e-9
	// ln(1000) τ for a 1 mA peak against a 1 µA threshold.
	got := ok(SettlingTime(tau, 1e-3, 1e-6))
	want := tau * math.Log(1000)
	if !close(got, want, want*1e-9) {
		t.Errorf("SettlingTime = %g, want %g", got, want)
	}
	if ok(SettlingTime(tau, 1e-7, 1e-6)) != 0 {
		t.Error("peak below threshold must settle instantly")
	}
}

// SettlingTime must agree with the step-wise decay simulation within one
// time step.
func TestSettlingTimeAgainstDecaySim(t *testing.T) {
	ok := unwrap(t)
	const dt = 1e-12
	for _, tau := range []float64{1e-9, 5e-9, 20e-9} {
		analytic := ok(SettlingTime(tau, 2e-3, 1e-6))
		simulated := ok(DecayToThreshold(2e-3, tau, 1e-6, dt))
		if math.Abs(analytic-simulated) > 2*dt+1e-15 {
			t.Errorf("tau=%g: analytic %g vs simulated %g", tau, analytic, simulated)
		}
	}
}

// Property: settling time is monotone in τ and in the peak/threshold
// ratio.
func TestSettlingTimeMonotone(t *testing.T) {
	settle := func(tau, peak, th float64) float64 {
		v, err := SettlingTime(tau, peak, th)
		if err != nil {
			return math.NaN()
		}
		return v
	}
	prop := func(a, b uint8) bool {
		tau1 := 1e-9 * (1 + float64(a%20))
		tau2 := tau1 * 2
		if !(settle(tau2, 1e-3, 1e-6) > settle(tau1, 1e-3, 1e-6)) {
			return false
		}
		p1 := 1e-5 * (1 + float64(b%40))
		return settle(tau1, p1*10, 1e-6) > settle(tau1, p1, 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// rail unwraps a rail-simulation result inside a test.
func rail(t *testing.T, pulses []Pulse, rs, cs, dt, tEnd float64) RailResult {
	t.Helper()
	res, err := SimulateRail(pulses, rs, cs, dt, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimulateRailPeakBoundedByEstimate(t *testing.T) {
	// The logic-level estimate Rs·Σpeaks must upper-bound the simulated
	// rail excursion for any pulse alignment — the pessimism the paper
	// accepts for computational efficiency (§3.1).
	pulses := []Pulse{
		{Start: 0, Duration: 1e-9, Peak: 300e-6},
		{Start: 0.2e-9, Duration: 1e-9, Peak: 260e-6},
		{Start: 1.5e-9, Duration: 1e-9, Peak: 420e-6},
	}
	const rs = 50.0
	var sumPeaks float64
	for _, p := range pulses {
		sumPeaks += p.Peak
	}
	estimate := RailPerturbation(rs, sumPeaks)
	for _, cs := range []float64{0, 1e-13, 1e-12} {
		res := rail(t, pulses, rs, cs, 1e-12, 4e-9)
		if res.PeakVoltage > estimate {
			t.Errorf("cs=%g: simulated peak %g exceeds estimate %g", cs, res.PeakVoltage, estimate)
		}
		if res.PeakVoltage <= 0 {
			t.Errorf("cs=%g: no rail excursion simulated", cs)
		}
	}
}

func TestSimulateRailAlignedPulsesApproachEstimate(t *testing.T) {
	// With perfectly aligned pulses and no rail capacitance, the simulated
	// peak equals the estimate exactly.
	pulses := []Pulse{
		{Start: 0, Duration: 1e-9, Peak: 300e-6},
		{Start: 0, Duration: 1e-9, Peak: 200e-6},
	}
	res := rail(t, pulses, 100, 0, 1e-13, 2e-9)
	want := RailPerturbation(100, 500e-6)
	if !close(res.PeakVoltage, want, want*0.01) {
		t.Errorf("aligned peak = %g, want %g", res.PeakVoltage, want)
	}
}

func TestSimulateRailDischargesAtEnd(t *testing.T) {
	pulses := []Pulse{{Start: 0, Duration: 0.5e-9, Peak: 1e-3}}
	res := rail(t, pulses, 50, 1e-13, 1e-13, 5e-9)
	if res.EndVoltage > 1e-6 {
		t.Errorf("rail should have discharged, end voltage %g", res.EndVoltage)
	}
	if !close(res.PeakCurrent, 1e-3, 1e-6) {
		t.Errorf("peak current %g, want ≈1e-3", res.PeakCurrent)
	}
}

func TestPulseShape(t *testing.T) {
	p := Pulse{Start: 1, Duration: 2, Peak: 10}
	cases := map[float64]float64{
		0.5: 0, 1: 0, 2: 10, 1.5: 5, 2.5: 5, 3: 0, 4: 0,
	}
	for tt, want := range cases {
		if got := p.current(tt); !close(got, want, 1e-12) {
			t.Errorf("current(%g) = %g, want %g", tt, got, want)
		}
	}
}

// Every model must reject non-positive physical parameters with a
// descriptive error — not a panic — so bad cell libraries or parameter
// files fail diagnosably.
func TestRejectsBadParameters(t *testing.T) {
	assertErr := func(name string, err error) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: want error", name)
			return
		}
		if !strings.Contains(err.Error(), "electrical:") {
			t.Errorf("%s: error %q not attributed to the package", name, err)
		}
	}
	_, err := DelayDegradation(1, 0, 1, 1, 0)
	assertErr("DelayDegradation", err)
	_, err = SettlingTime(0, 1, 1)
	assertErr("SettlingTime", err)
	_, err = SimulateRail(nil, 0, 0, 1, 1)
	assertErr("SimulateRail", err)
	_, err = SimulateGateDischarge(0, 1, 1, 1, 1, 0, 1)
	assertErr("SimulateGateDischarge", err)
	_, err = DecayToThreshold(0, 1, 1, 1)
	assertErr("DecayToThreshold", err)
}

func close(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// NaN slips through every ordered comparison, so the non-positive guards
// alone would let a poisoned estimate propagate silently; each model must
// reject non-finite inputs with an error wrapping ErrNonFinite.
func TestNonFiniteInputsRejected(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		err  error
	}{
		{"SensorROn(NaN current)", func() error { _, err := SensorROn(0.2, nan); return err }()},
		{"SensorROn(Inf limit)", func() error { _, err := SensorROn(inf, 1e-3); return err }()},
		{"SensorArea(NaN rs)", func() error { _, err := SensorArea(1, 1, nan); return err }()},
		{"DelayDegradation(Inf rg)", func() error { _, err := DelayDegradation(2, 10, inf, 1, 0); return err }()},
		{"DelayDegradation(NaN cs)", func() error { _, err := DelayDegradation(2, 10, 100, 1, nan); return err }()},
		{"SettlingTime(NaN peak)", func() error { _, err := SettlingTime(1e-9, nan, 1e-6); return err }()},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted a non-finite input", c.name)
			continue
		}
		if !errors.Is(c.err, ErrNonFinite) {
			t.Errorf("%s: error %v does not wrap ErrNonFinite", c.name, c.err)
		}
	}
}
