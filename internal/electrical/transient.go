package electrical

import (
	"fmt"
	"math"
)

// This file holds small fixed-step transient simulators of the RC networks
// underlying the closed-form models. They play the role of the paper's
// SPICE-level reference: the package tests check every estimator against
// them, and the experiments use them to demonstrate that the logic-level
// maximum-current estimate is a true upper bound.

// Pulse is a triangular gate switching-current pulse: it rises linearly
// from zero at Start to Peak at Start+Duration/2 and falls back to zero at
// Start+Duration. Triangular approximations of CMOS switching currents
// are standard in power-grid analysis.
type Pulse struct {
	Start    float64 // s
	Duration float64 // s
	Peak     float64 // A
}

// current returns the pulse current at time t.
func (p Pulse) current(t float64) float64 {
	dt := t - p.Start
	if dt <= 0 || dt >= p.Duration {
		return 0
	}
	half := p.Duration / 2
	if dt <= half {
		return p.Peak * dt / half
	}
	return p.Peak * (p.Duration - dt) / half
}

// RailResult summarises a virtual-rail transient simulation.
type RailResult struct {
	PeakVoltage float64 // maximum virtual-rail excursion, V
	PeakCurrent float64 // maximum total injected current, A
	EndVoltage  float64 // rail voltage at the end of the simulation, V
}

// SimulateRail integrates the virtual-rail node equation
//
//	Cs·dv/dt = i_in(t) − v/Rs
//
// for the summed gate current pulses, with time step dt until tEnd.
// With cs = 0 the node is purely resistive and v = Rs·i_in(t).
func SimulateRail(pulses []Pulse, rs, cs, dt, tEnd float64) (RailResult, error) {
	if rs <= 0 || dt <= 0 || tEnd <= 0 {
		return RailResult{}, fmt.Errorf("electrical: non-positive rail simulation parameters rs=%g/dt=%g/tEnd=%g",
			rs, dt, tEnd)
	}
	var res RailResult
	v := 0.0
	for t := 0.0; t <= tEnd; t += dt {
		iIn := 0.0
		for _, p := range pulses {
			iIn += p.current(t)
		}
		if iIn > res.PeakCurrent {
			res.PeakCurrent = iIn
		}
		if cs <= 0 {
			v = rs * iIn
		} else {
			v += dt * (iIn - v/rs) / cs
		}
		if v > res.PeakVoltage {
			res.PeakVoltage = v
		}
	}
	res.EndVoltage = v
	return res, nil
}

// DischargeResult reports the 50 % crossing time of a gate output
// discharging through the virtual rail.
type DischargeResult struct {
	T50 float64 // time for the output to fall to VDD/2, s
}

// SimulateGateDischarge integrates the two-node discharge network of the
// §3.2 delay model: n identical gates, each an output capacitance cg
// charged to vdd discharging through rg into a shared virtual rail with
// bypass resistance rs and parasitic capacitance cs.
//
//	cg·dvo/dt = −(vo − vs)/rg            (per gate)
//	cs·dvs/dt = n·(vo − vs)/rg − vs/rs   (rail node)
//
// With cs = 0 the rail is algebraic (vs = n·i·rs) and the network is a
// single RC with series resistance rg + n·rs, giving the exact closed
// form T50 = (rg + n·rs)·cg·ln 2 that the tests compare against.
func SimulateGateDischarge(vdd float64, n int, rg, cg, rs, cs, dt float64) (DischargeResult, error) {
	if vdd <= 0 || n < 1 || rg <= 0 || cg <= 0 || rs < 0 || dt <= 0 {
		return DischargeResult{}, fmt.Errorf("electrical: non-positive discharge parameters vdd=%g/n=%d/rg=%g/cg=%g/rs=%g/dt=%g",
			vdd, n, rg, cg, rs, dt)
	}
	vo := vdd
	vs := 0.0
	t := 0.0
	limit := 1e9 * dt // hard stop against non-convergence
	for vo > vdd/2 && t < limit {
		var i float64
		if cs <= 0 {
			// Algebraic rail: i = (vo − vs)/rg with vs = n·i·rs.
			i = vo / (rg + float64(n)*rs)
			vs = float64(n) * i * rs
		} else {
			i = (vo - vs) / rg
			vs += dt * (float64(n)*i - vs/rs) / cs
		}
		vo -= dt * i / cg
		t += dt
	}
	return DischargeResult{T50: t}, nil
}

// DecayToThreshold simulates an exponentially decaying supply current
// i(t) = i0·exp(−t/τ) and returns the first time it falls below ith.
// It is the numerical counterpart of SettlingTime.
func DecayToThreshold(i0, tau, ith, dt float64) (float64, error) {
	if i0 <= 0 || tau <= 0 || ith <= 0 || dt <= 0 {
		return 0, fmt.Errorf("electrical: non-positive decay parameters i0=%g/tau=%g/ith=%g/dt=%g",
			i0, tau, ith, dt)
	}
	t := 0.0
	for i0*math.Exp(-t/tau) > ith {
		t += dt
	}
	return t, nil
}
