// Package electrical provides the closed-form electrical models behind the
// paper's logic-level estimators — sensor sizing from the virtual-rail
// perturbation limit, the BIC-sensor area model, the second-order gate
// delay degradation factor δ(g,t) of §3.2, and the IDDQ settling time Δ(τ)
// of §3.4 — together with small numerical transient simulators used by the
// tests to validate each closed form against the underlying RC network.
//
// Every model validates its physical inputs and reports non-positive or
// non-finite resistances, currents, delays, or thresholds as an error
// rather than a panic, so a malformed cell library or parameter file
// surfaces as a diagnosable failure instead of a crash. Non-finite inputs
// need their own checks — NaN slips through every ordered comparison — and
// their errors wrap ErrNonFinite so callers can recognise a numeric
// blow-up (an upstream overflow or division by zero) as a class.
package electrical

import (
	"errors"
	"fmt"
	"math"
)

// ErrNonFinite is wrapped by every error reporting a NaN or ±Inf input:
// the signature of an upstream numeric blow-up rather than a merely
// out-of-range parameter. errors.Is(err, ErrNonFinite) identifies the
// class across the whole estimate/electrical boundary.
var ErrNonFinite = errors.New("electrical: non-finite value")

// finite reports whether every argument is an ordinary float (not NaN,
// not ±Inf).
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// SensorROn returns the bypass-device ON resistance Rs* = r*/iDD,max
// (§3.1): the largest resistance keeping the virtual-rail perturbation at
// the maximum transient current within the limit r*. Requirements for r*
// are stringent (100 mV–300 mV), so the feasible Rs is small and its
// delay impact is second-order — which is why the paper fixes Rs at
// exactly this value instead of optimising it per module.
func SensorROn(railLimit, iDDMax float64) (float64, error) {
	if !finite(railLimit, iDDMax) {
		return 0, fmt.Errorf("%w: SensorROn(r*=%g, iDD,max=%g)", ErrNonFinite, railLimit, iDDMax)
	}
	if railLimit <= 0 {
		return 0, fmt.Errorf("electrical: non-positive rail limit r* = %g", railLimit)
	}
	if iDDMax <= 0 {
		return 0, fmt.Errorf("electrical: non-positive iDD,max = %g", iDDMax)
	}
	return railLimit / iDDMax, nil
}

// RailPerturbation returns the worst-case virtual-rail voltage excursion
// Rs·iDD,max — the quantity the constraint of §3.1 bounds by r*.
func RailPerturbation(rs, iDDMax float64) float64 {
	return rs * iDDMax
}

// SensorArea evaluates the paper's BIC-sensor area model A0 + A1/Rs: a
// fixed detection-circuitry term plus a sensing-element/bypass-device term
// inversely proportional to the ON resistance (a lower Rs needs a wider
// MOS bypass switch).
func SensorArea(a0, a1, rs float64) (float64, error) {
	if !finite(a0, a1, rs) {
		return 0, fmt.Errorf("%w: SensorArea(a0=%g, a1=%g, rs=%g)", ErrNonFinite, a0, a1, rs)
	}
	if rs <= 0 {
		return 0, fmt.Errorf("electrical: non-positive Rs = %g", rs)
	}
	return a0 + a1/rs, nil
}

// DelayDegradation returns the gate delay degradation factor δ(g,t) of
// §3.2, from a second-order model of the discharge network: a gate with
// equivalent pull-down resistance rg and nominal delay d, sharing a
// virtual rail (bypass resistance rs, parasitic capacitance cs) with
// n(t) simultaneously switching gates.
//
// The first-order term n·Rs/Rg is the series resistance added by the
// bypass device, scaled by the rail current of all n switchers. The
// second-order factor (1 − exp(−d/(Rs·Cs))) models the rail capacitance
// holding the virtual ground down: a gate much faster than the rail time
// constant never sees the perturbation. With cs → 0 the model reduces to
// the exact series-resistance result 1 + n·Rs/Rg (see the package tests,
// which verify this against a transient simulation of the network).
func DelayDegradation(n int, rs, rg, d, cs float64) (float64, error) {
	if n < 1 {
		n = 1
	}
	if !finite(rs, rg, d, cs) {
		return 0, fmt.Errorf("%w: DelayDegradation(rs=%g, rg=%g, d=%g, cs=%g)", ErrNonFinite, rs, rg, d, cs)
	}
	if rs <= 0 || rg <= 0 || d <= 0 {
		return 0, fmt.Errorf("electrical: non-positive rs=%g/rg=%g/d=%g", rs, rg, d)
	}
	damp := 1.0
	if cs > 0 {
		damp = 1 - math.Exp(-d/(rs*cs))
	}
	return 1 + float64(n)*rs/rg*damp, nil
}

// SettlingTime returns Δ(τ) of §3.4: the time for the transient supply
// current, decaying exponentially with the BIC-sensor time constant
// τ = Rs·Cs, to fall from its peak below the sensing threshold, after
// which the quiescent current can be measured. The result is never
// negative; a peak already below threshold settles instantly.
func SettlingTime(tau, iPeak, iThreshold float64) (float64, error) {
	if !finite(tau, iPeak, iThreshold) {
		return 0, fmt.Errorf("%w: SettlingTime(tau=%g, iPeak=%g, iTh=%g)", ErrNonFinite, tau, iPeak, iThreshold)
	}
	if tau <= 0 || iPeak <= 0 || iThreshold <= 0 {
		return 0, fmt.Errorf("electrical: non-positive settling parameters tau=%g/iPeak=%g/iTh=%g",
			tau, iPeak, iThreshold)
	}
	if iPeak <= iThreshold {
		return 0, nil
	}
	return tau * math.Log(iPeak/iThreshold), nil
}
