// Fault schedules: the one-line, fully replayable specification of a
// chaos run. A schedule names the sites it attacks (glob patterns over
// the registered site names), how often (a Bernoulli rate per call, or a
// one-shot "the Nth call at each site"), the seed of the injector's own
// random stream, and the duration injected at *.delay sites. Because the
// injector draws from its own seeded source — never from an optimizer's
// counted stream — the full fault pattern of a run is a deterministic
// function of the spec string.

package chaos

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DefaultDelay is the duration injected at *.delay sites when the spec
// does not set one.
const DefaultDelay = time.Millisecond

// Schedule is a parsed fault schedule. The zero value injects nothing.
type Schedule struct {
	// Seed seeds the injector's per-site decision streams.
	Seed int64
	// Rate is the per-call Bernoulli injection probability at every
	// matched site, in [0, 1]. Ignored when After is set.
	Rate float64
	// After, if nonzero, makes every matched site inject exactly once —
	// on its After-th call (1-based) — instead of sampling Rate.
	After uint64
	// Sites are glob patterns (path.Match syntax) over site names; a site
	// is attacked iff any pattern matches it.
	Sites []string
	// Delay is the duration injected at *.delay sites (0 = DefaultDelay).
	Delay time.Duration
}

// ParseSchedule parses a one-line spec of comma-separated key=value
// fields:
//
//	seed=7,rate=0.05,sites=fs.*|evolution.worker.panic
//	seed=3,after=4,sites=estimate.nan,delay=2ms
//
// Keys: seed (int), rate (float in [0,1]), after (uint, one-shot at the
// Nth call per site), sites (|-separated glob patterns, required), delay
// (duration for *.delay sites). Unknown keys are errors — a typoed spec
// must not silently inject nothing.
func ParseSchedule(spec string) (Schedule, error) {
	s := Schedule{Delay: DefaultDelay}
	if strings.TrimSpace(spec) == "" {
		return s, fmt.Errorf("chaos: empty schedule spec")
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return s, fmt.Errorf("chaos: malformed field %q (want key=value)", field)
		}
		var err error
		switch k {
		case "seed":
			s.Seed, err = strconv.ParseInt(v, 10, 64)
		case "rate":
			s.Rate, err = strconv.ParseFloat(v, 64)
			if err == nil && (s.Rate < 0 || s.Rate > 1) {
				err = fmt.Errorf("rate %v outside [0,1]", s.Rate)
			}
		case "after":
			s.After, err = strconv.ParseUint(v, 10, 64)
		case "sites":
			for _, pat := range strings.Split(v, "|") {
				pat = strings.TrimSpace(pat)
				if pat == "" {
					continue
				}
				if _, merr := path.Match(pat, "probe"); merr != nil {
					return s, fmt.Errorf("chaos: bad site pattern %q: %w", pat, merr)
				}
				s.Sites = append(s.Sites, pat)
			}
		case "delay":
			s.Delay, err = time.ParseDuration(v)
		default:
			return s, fmt.Errorf("chaos: unknown schedule key %q", k)
		}
		if err != nil {
			return s, fmt.Errorf("chaos: bad %s value %q: %w", k, v, err)
		}
	}
	if len(s.Sites) == 0 {
		return s, fmt.Errorf("chaos: schedule names no sites (sites=...)")
	}
	if s.Delay <= 0 {
		s.Delay = DefaultDelay
	}
	return s, nil
}

// String renders the schedule back to a spec line ParseSchedule accepts,
// so any observed fault pattern is replayable from the log line alone.
func (s Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d", s.Seed)
	if s.After > 0 {
		fmt.Fprintf(&sb, ",after=%d", s.After)
	} else {
		fmt.Fprintf(&sb, ",rate=%v", s.Rate)
	}
	if s.Delay != DefaultDelay && s.Delay > 0 {
		fmt.Fprintf(&sb, ",delay=%s", s.Delay)
	}
	fmt.Fprintf(&sb, ",sites=%s", strings.Join(s.Sites, "|"))
	return sb.String()
}

// Matches reports whether any site pattern covers the given site name.
func (s Schedule) Matches(site string) bool {
	for _, pat := range s.Sites {
		if ok, _ := path.Match(pat, site); ok {
			return true
		}
	}
	return false
}

// MatchedSites filters the registered site list down to the sites this
// schedule attacks, sorted (diagnostics and tests).
func (s Schedule) MatchedSites() []string {
	var out []string
	for _, site := range Sites() {
		if s.Matches(site) {
			out = append(out, site)
		}
	}
	sort.Strings(out)
	return out
}
