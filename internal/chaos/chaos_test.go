package chaos

import (
	"context"
	"errors"
	"testing"

	"iddqsyn/internal/obs"
)

func mustSchedule(t *testing.T, spec string) Schedule {
	t.Helper()
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The injector's whole contract: the hit pattern is a deterministic
// function of (seed, site, call index).
func TestInjectorDeterministic(t *testing.T) {
	pattern := func() []bool {
		in := New(mustSchedule(t, "seed=42,rate=0.3,sites=fs.sync|fs.rename"), nil)
		var hits []bool
		for i := 0; i < 200; i++ {
			hits = append(hits, in.Hit(SiteFSSync))
			hits = append(hits, in.Hit(SiteFSRename))
			hits = append(hits, in.Hit(SiteEvalPanic)) // unmatched: always false
		}
		return hits
	}
	a, b := pattern(), pattern()
	hitAny := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: injector is not deterministic", i)
		}
		hitAny = hitAny || a[i]
	}
	if !hitAny {
		t.Error("rate=0.3 over 400 matched calls never injected")
	}
	// Different seeds must produce different patterns.
	in2 := New(mustSchedule(t, "seed=43,rate=0.3,sites=fs.sync|fs.rename"), nil)
	same := true
	for i := 0; i < 200 && same; i++ {
		h1, h2 := in2.Hit(SiteFSSync), in2.Hit(SiteFSRename)
		if h1 != a[3*i] || h2 != a[3*i+1] {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical injection patterns")
	}
}

func TestInjectorOneShotAfter(t *testing.T) {
	in := New(mustSchedule(t, "seed=1,after=3,sites=fs.sync"), nil)
	var hits []int
	for i := 1; i <= 10; i++ {
		if in.Hit(SiteFSSync) {
			hits = append(hits, i)
		}
	}
	if len(hits) != 1 || hits[0] != 3 {
		t.Errorf("after=3 hit at calls %v, want exactly [3]", hits)
	}
	if in.Counts()[SiteFSSync] != 1 || in.Total() != 1 {
		t.Errorf("counts = %v, total = %d, want one injection", in.Counts(), in.Total())
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Hit(SiteFSSync) {
		t.Error("nil injector injected")
	}
	in.MustPass(SiteEvalPanic) // must not panic
	in.Sleep(SiteEvalDelay)    // must not sleep meaningfully or panic
	if in.Counts() != nil || in.Total() != 0 {
		t.Error("nil injector reports counts")
	}
	if in.Schedule().Rate != 0 {
		t.Error("nil injector reports a schedule")
	}
}

func TestMustPassPanicsWithErrInjected(t *testing.T) {
	in := New(mustSchedule(t, "seed=1,after=1,sites=evolution.worker.panic"), nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustPass did not panic on an injected fault")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Errorf("panic value %v does not wrap ErrInjected", r)
		}
	}()
	in.MustPass(SiteEvalPanic)
}

func TestInjectorRecordsMetrics(t *testing.T) {
	o := obs.New("test-run", nil, nil)
	in := New(mustSchedule(t, "seed=1,after=1,sites=fs.sync"), o)
	in.Hit(SiteFSSync)
	in.Hit(SiteFSSync)
	if got := o.Counter(MetricInjected).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricInjected, got)
	}
	if got := o.Counter(MetricInjected + "." + SiteFSSync).Value(); got != 1 {
		t.Errorf("per-site counter = %d, want 1", got)
	}
}

func TestContextCarriage(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context carries an injector")
	}
	in := New(mustSchedule(t, "seed=1,rate=0,sites=fs.*"), nil)
	ctx := NewContext(context.Background(), in)
	if FromContext(ctx) != in {
		t.Error("context round trip lost the injector")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Error("nil injector should not allocate a context")
	}
}
