package chaos_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/electrical"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/fsx"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/partcheck"
	"iddqsyn/internal/partition"
)

// The chaos soak drives full syntheses through a matrix of fault
// schedules and asserts the pipeline's end-state contract: every run
// finishes with a partcheck-valid partition (optimized or degraded) or a
// named error — never a crash, never a corrupt artifact — and whenever
// recovery succeeds without degradation, the result is bit-identical to
// the uninjected baseline.

func soakCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := circuits.RandomLogic(circuits.Spec{
		Name: "soak", Inputs: 8, Outputs: 4, Gates: 48, Depth: 7, Seed: 11,
	})
	if err != nil {
		t.Fatalf("RandomLogic: %v", err)
	}
	return c
}

func soakParams() *evolution.Params {
	return &evolution.Params{
		Mu: 4, Lambda: 3, Chi: 1, Omega: 6, MaxMove: 3, Epsilon: 1.0,
		MaxGenerations: 12, StallGenerations: 50, Seed: 21,
	}
}

// soakRun is one synthesis under a fault schedule ("" = uninjected),
// checkpointing into ckpt when non-empty.
func soakRun(t *testing.T, c *circuit.Circuit, spec, ckpt string, degrade bool) (*core.Result, *obs.Obs, error) {
	t.Helper()
	opt := core.Options{
		Evolution: soakParams(),
		Obs:       obs.New("soak", nil, nil),
		Degrade:   degrade,
	}
	var inj *chaos.Injector
	if spec != "" {
		sched, err := chaos.ParseSchedule(spec)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", spec, err)
		}
		inj = chaos.New(sched, opt.Obs)
		opt.Chaos = inj
	}
	if ckpt != "" || inj != nil {
		opt.Control = &evolution.Control{
			CheckpointPath:  ckpt,
			CheckpointEvery: 2,
			FS:              chaos.NewFS(nil, inj),
			Retry:           &fsx.RetryPolicy{Sleep: func(time.Duration) {}},
		}
	}
	res, err := core.Synthesize(c, opt)
	return res, opt.Obs, err
}

// assertBitIdentical fails unless res reproduces the baseline exactly.
func assertBitIdentical(t *testing.T, res, baseline *core.Result) {
	t.Helper()
	if res.Evolution == nil || baseline.Evolution == nil {
		t.Fatal("bit-identity check needs evolution results on both sides")
	}
	if res.Evolution.BestCost != baseline.Evolution.BestCost ||
		res.Evolution.Generations != baseline.Evolution.Generations ||
		res.Evolution.Evaluations != baseline.Evolution.Evaluations {
		t.Fatalf("diverged from baseline: cost %v vs %v, generations %d vs %d, evaluations %d vs %d",
			res.Evolution.BestCost, baseline.Evolution.BestCost,
			res.Evolution.Generations, baseline.Evolution.Generations,
			res.Evolution.Evaluations, baseline.Evolution.Evaluations)
	}
	if !reflect.DeepEqual(res.Partition.Groups(), baseline.Partition.Groups()) {
		t.Fatal("partition groups diverged from baseline")
	}
}

// assertValid fails unless the partition passes the static audit with a
// finite cost — the minimum any returned result must satisfy.
func assertValid(t *testing.T, res *core.Result) {
	t.Helper()
	if r := partcheck.VerifyPartition(res.Partition, partcheck.StructureOnly()); !r.OK() {
		t.Fatalf("partition fails the static audit: %v", r.Err())
	}
	if cost := res.Partition.Cost(); math.IsNaN(cost) || math.IsInf(cost, 0) {
		t.Fatalf("partition cost is not finite: %g", cost)
	}
}

// namedFailure reports whether err carries one of the pipeline's typed
// failure causes — the "named error" half of the end-state contract. An
// injected NaN legitimately surfaces as electrical.ErrNonFinite (the
// numeric guard fires before anyone can tell the value was injected).
func namedFailure(err error) bool {
	return errors.Is(err, chaos.ErrInjected) ||
		errors.Is(err, electrical.ErrNonFinite) ||
		errors.Is(err, partition.ErrNonFiniteCost) ||
		errors.Is(err, evolution.ErrCorruptCheckpoint)
}

func TestChaosSoak(t *testing.T) {
	c := soakCircuit(t)
	baseline, _, err := soakRun(t, c, "", "", false)
	if err != nil {
		t.Fatalf("baseline synthesis: %v", err)
	}
	assertValid(t, baseline)

	schedules := []string{
		"seed=1,rate=0,sites=fs.*",
		"seed=2,after=4,sites=evolution.worker.panic",
		"seed=3,after=6,sites=estimate.nan",
		"seed=4,rate=0.25,sites=fs.sync|fs.rename|fs.write",
		"seed=5,rate=1,sites=fs.write",
		"seed=6,rate=0.2,delay=200us,sites=evolution.worker.delay",
		"seed=7,rate=0.4,sites=evolution.worker.panic|estimate.nan",
		// Disk-lifecycle faults: a filling disk (genuine ENOSPC) and torn
		// appends; the checkpoint path must retry or fail with the cause
		// named, never corrupt what is already on disk.
		"seed=8,rate=0.3,sites=fs.enospc",
		"seed=9,rate=0.3,sites=fs.write.short|fs.sync",
		"seed=10,rate=0.2,sites=fs.enospc|fs.write.short|fs.rename",
	}
	for _, spec := range schedules {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "soak.ckpt")
			res, o, err := soakRun(t, c, spec, ckpt, true)
			switch {
			case err != nil:
				// A failed run must fail with its cause named, and any
				// checkpoint it left behind must be intact and resumable
				// to the exact baseline result.
				if !namedFailure(err) {
					t.Fatalf("run failed but the error does not name the injected fault: %v", err)
				}
				if _, serr := os.Stat(ckpt); serr == nil {
					ck, lerr := evolution.LoadCheckpoint(ckpt)
					if lerr != nil {
						t.Fatalf("failed run left a corrupt checkpoint: %v", lerr)
					}
					resumed, rerr := core.Synthesize(c, core.Options{Resume: ck})
					if rerr != nil {
						t.Fatalf("resume from the failed run's checkpoint: %v", rerr)
					}
					assertBitIdentical(t, resumed, baseline)
				}
			case res.Degraded:
				assertValid(t, res)
				if !namedFailure(res.DegradedErr) {
					t.Fatalf("DegradedErr does not name the injected fault: %v", res.DegradedErr)
				}
				if deg, _ := o.Degraded(); !deg {
					t.Fatal("degraded result but Obs.Degraded() is false")
				}
			default:
				// Recovery succeeded without degradation: the run must be
				// indistinguishable from the uninjected baseline.
				assertValid(t, res)
				assertBitIdentical(t, res, baseline)
			}
		})
	}

	t.Run("zero-rate schedule injects nothing", func(t *testing.T) {
		sched, err := chaos.ParseSchedule("seed=1,rate=0,sites=fs.*|evolution.*|estimate.*")
		if err != nil {
			t.Fatal(err)
		}
		inj := chaos.New(sched, nil)
		res, err := core.Synthesize(c, core.Options{
			Evolution: soakParams(),
			Chaos:     inj,
			Control:   &evolution.Control{FS: chaos.NewFS(nil, inj)},
		})
		if err != nil {
			t.Fatalf("zero-rate run: %v", err)
		}
		if inj.Total() != 0 {
			t.Fatalf("zero-rate schedule injected %d faults", inj.Total())
		}
		assertBitIdentical(t, res, baseline)
	})

	t.Run("resume after kill", func(t *testing.T) {
		// A one-shot worker panic with no retry kills the run partway,
		// leaving the last periodic checkpoint behind — the crash
		// scenario. Resuming it without chaos must land exactly on the
		// baseline result.
		ckpt := filepath.Join(t.TempDir(), "killed.ckpt")
		_, _, err := soakRun(t, c, "seed=8,after=40,sites=evolution.worker.panic", ckpt, false)
		if err == nil {
			t.Skip("one-shot fault did not fire before the run completed")
		}
		if !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("killed run error does not name the injected fault: %v", err)
		}
		ck, err := evolution.LoadCheckpoint(ckpt)
		if err != nil {
			t.Fatalf("load checkpoint of killed run: %v", err)
		}
		resumed, err := core.Synthesize(c, core.Options{Resume: ck})
		if err != nil {
			t.Fatalf("resume killed run: %v", err)
		}
		assertBitIdentical(t, resumed, baseline)
	})
}
