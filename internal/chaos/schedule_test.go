package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	cases := []string{
		"seed=7,rate=0.05,sites=fs.*|evolution.worker.panic",
		"seed=3,after=4,sites=estimate.nan",
		"seed=-1,rate=1,delay=2ms,sites=*.delay",
		"seed=0,rate=0,sites=fs.sync",
	}
	for _, spec := range cases {
		s, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		// The rendered spec must parse back to the identical schedule.
		s2, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("round trip of %q -> %q: %v", spec, s.String(), err)
		}
		if s.Seed != s2.Seed || s.Rate != s2.Rate || s.After != s2.After ||
			s.Delay != s2.Delay || strings.Join(s.Sites, "|") != strings.Join(s2.Sites, "|") {
			t.Errorf("round trip of %q changed the schedule: %+v -> %+v", spec, s, s2)
		}
	}
}

func TestParseScheduleDefaults(t *testing.T) {
	s, err := ParseSchedule("seed=1,rate=0.5,sites=fs.*")
	if err != nil {
		t.Fatal(err)
	}
	if s.Delay != DefaultDelay {
		t.Errorf("default delay = %v, want %v", s.Delay, DefaultDelay)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"",                          // empty
		"rate=0.5",                  // no sites
		"seed=1,sites=fs.*,bogus=1", // unknown key
		"seed=x,sites=fs.*",         // bad int
		"rate=1.5,sites=fs.*",       // rate out of range
		"rate",                      // not key=value
		"seed=1,sites=[",            // bad glob
		"delay=fast,sites=fs.*",     // bad duration
	}
	for _, spec := range bad {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) accepted a bad spec", spec)
		}
	}
}

func TestScheduleMatches(t *testing.T) {
	s, err := ParseSchedule("seed=1,rate=1,sites=fs.*|estimate.nan")
	if err != nil {
		t.Fatal(err)
	}
	for site, want := range map[string]bool{
		SiteFSSync:      true,
		SiteFSRename:    true,
		SiteEstimateNaN: true,
		SiteEstimateInf: false,
		SiteEvalPanic:   false,
	} {
		if got := s.Matches(site); got != want {
			t.Errorf("Matches(%s) = %v, want %v", site, got, want)
		}
	}
	matched := s.MatchedSites()
	if len(matched) != 9 { // eight fs.* sites + estimate.nan
		t.Errorf("MatchedSites() = %v, want the 8 fs sites and estimate.nan", matched)
	}
}

func TestDelayFieldParses(t *testing.T) {
	s, err := ParseSchedule("seed=1,rate=1,delay=250us,sites=evolution.worker.delay")
	if err != nil {
		t.Fatal(err)
	}
	if s.Delay != 250*time.Microsecond {
		t.Errorf("delay = %v, want 250µs", s.Delay)
	}
}
