// Package chaos is the deterministic fault-injection framework of
// iddqsyn: the software analogue of the paper's built-in current sensors
// and of E-QED-style systematic error provocation. The pipeline claims to
// survive torn checkpoint writes, full disks, panicking cost-evaluation
// workers and estimator numeric blow-ups; this package injects exactly
// those failures, on a seeded schedule, so every claim is testable and
// every observed failure replayable from a one-line spec.
//
// An Injector is driven by a Schedule (seed + rate/one-shot + site
// globs). Each instrumented failure surface calls the injector at a named
// site: the checkpoint/snapshot writers route their file I/O through the
// FS wrapper (sites fs.*), the optimizer worker pools probe
// evolution.worker.* before every cost evaluation, the comparison
// optimizers probe anneal.move.*, and the estimator corrupts its own
// outputs at estimate.*. Injection decisions come from per-site seeded
// streams — never from an optimizer's counted random stream — so an
// injector with a zero-hit schedule leaves every run bit-identical to an
// uninjected one, and a nil *Injector is free (every method no-ops).
package chaos

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"iddqsyn/internal/obs"
)

// ErrInjected is the root of every chaos-injected failure: any error or
// recovered panic caused by the injector satisfies
// errors.Is(err, ErrInjected), so tests and degradation policies can tell
// provoked failures from organic ones.
var ErrInjected = errors.New("chaos: injected fault")

// The registered fault sites. Schedules match these with glob patterns
// (fs.*, *.panic, ...).
const (
	// File-publication protocol (the fsx atomic-write steps).
	SiteFSCreate  = "fs.create"  // temp-file creation fails
	SiteFSWrite   = "fs.write"   // short write + ENOSPC-style error
	SiteFSSync    = "fs.sync"    // file fsync fails
	SiteFSClose   = "fs.close"   // close reports a deferred write error
	SiteFSRename  = "fs.rename"  // rename fails (destination untouched)
	SiteFSSyncDir = "fs.syncdir" // directory fsync fails

	// Disk-lifecycle sites (the storage faults the serving layer's
	// retention/shedding machinery must survive). Unlike fs.write, whose
	// error is purely chaos-typed, fs.enospc wraps the real
	// syscall.ENOSPC so errors.Is-based disk-full detection fires exactly
	// as it would on a genuinely full disk.
	SiteFSENOSPC     = "fs.enospc"      // Write/Sync fail with syscall.ENOSPC, nothing lands
	SiteFSWriteShort = "fs.write.short" // a prefix lands, then io.ErrShortWrite — a torn write

	// Optimizer worker pools.
	SiteEvalPanic = "evolution.worker.panic" // cost-evaluation worker panics
	SiteEvalDelay = "evolution.worker.delay" // cost evaluation stalls

	// Comparison optimizers (annealer / hill climber move loop).
	SiteAnnealPanic = "anneal.move.panic"
	SiteAnnealDelay = "anneal.move.delay"

	// Estimator boundary: non-finite values the numeric guards must catch.
	SiteEstimateNaN = "estimate.nan" // iDD,max becomes NaN
	SiteEstimateInf = "estimate.inf" // IDDQ,nd becomes +Inf
)

// Sites returns every registered site name.
func Sites() []string {
	return []string{
		SiteFSCreate, SiteFSWrite, SiteFSSync, SiteFSClose, SiteFSRename, SiteFSSyncDir,
		SiteFSENOSPC, SiteFSWriteShort,
		SiteEvalPanic, SiteEvalDelay,
		SiteAnnealPanic, SiteAnnealDelay,
		SiteEstimateNaN, SiteEstimateInf,
	}
}

// MetricInjected counts every injected fault; per-site counts are
// recorded under MetricInjected + "." + site.
const MetricInjected = "chaos.injected"

// Injector decides, deterministically per (schedule seed, site, call
// index), whether each probe injects a fault. A nil *Injector never
// injects and costs one pointer comparison per probe.
type Injector struct {
	sched Schedule
	o     *obs.Obs
	total *obs.Counter

	mu    sync.Mutex
	sites map[string]*siteState // guarded by mu
}

type siteState struct {
	matched  bool
	calls    uint64
	injected uint64
	rng      *rand.Rand
}

// New builds an injector for one schedule. o, if non-nil, receives the
// MetricInjected counters and a debug log event per injected fault.
func New(sched Schedule, o *obs.Obs) *Injector {
	return &Injector{
		sched: sched,
		o:     o,
		total: o.Counter(MetricInjected),
		sites: make(map[string]*siteState),
	}
}

// Schedule returns the injector's schedule (zero value on nil).
func (in *Injector) Schedule() Schedule {
	if in == nil {
		return Schedule{}
	}
	return in.sched
}

// Hit reports whether this call at site injects a fault. The decision is
// a pure function of the schedule seed, the site name and the site's call
// index; concurrent callers share the per-site call counter, so the set
// of injecting call indices is deterministic even when the worker that
// observes a given index is not.
func (in *Injector) Hit(site string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	st := in.sites[site]
	if st == nil {
		st = &siteState{matched: in.sched.Matches(site)}
		if st.matched {
			h := fnv.New64a()
			_, _ = h.Write([]byte(site))
			st.rng = rand.New(rand.NewSource(in.sched.Seed ^ int64(h.Sum64())))
		}
		in.sites[site] = st
	}
	if !st.matched {
		in.mu.Unlock()
		return false
	}
	st.calls++
	hit := false
	if in.sched.After > 0 {
		hit = st.calls == in.sched.After
	} else if in.sched.Rate > 0 {
		hit = st.rng.Float64() < in.sched.Rate
	}
	if hit {
		st.injected++
	}
	in.mu.Unlock()
	if hit {
		in.total.Inc()
		in.o.Counter(MetricInjected + "." + site).Inc()
		in.o.Log().Debug("chaos: fault injected", "site", site)
	}
	return hit
}

// Errf returns an ErrInjected-wrapping error for a fault at site.
func Errf(site string) error {
	return fmt.Errorf("%w at %s", ErrInjected, site)
}

// MustPass panics with an ErrInjected-wrapping error when the schedule
// injects at site, and returns silently otherwise. It is the injected
// analogue of a worker bug: the caller's panic-containment layer (the
// evolution worker pool, the annealer's recover) must convert the panic
// into an error, and the chaos soak asserts that it does.
func (in *Injector) MustPass(site string) {
	if in.Hit(site) {
		panic(Errf(site))
	}
}

// Sleep stalls for the schedule's delay when the schedule injects at
// site (worker-starvation and slow-disk scenarios).
func (in *Injector) Sleep(site string) {
	if in.Hit(site) {
		time.Sleep(in.sched.Delay)
	}
}

// Counts returns the injected-fault count per site (only sites that
// injected at least once appear). Nil-safe.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64)
	for site, st := range in.sites {
		if st.injected > 0 {
			out[site] = st.injected
		}
	}
	return out
}

// Total returns the total number of injected faults. Nil-safe.
func (in *Injector) Total() uint64 {
	var n uint64
	for _, c := range in.Counts() {
		n += c
	}
	return n
}

// ctxKey is the private context key for the injector carriage.
type ctxKey struct{}

// NewContext returns a context carrying in, for call chains that thread a
// context but no explicit injector (the annealer, the experiment
// drivers). Like the obs carriage, this holds test plumbing only — never
// business state.
func NewContext(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, in)
}

// FromContext returns the injector carried by ctx, or nil (which is safe
// to use directly — every method tolerates it).
func FromContext(ctx context.Context) *Injector {
	if ctx == nil {
		return nil
	}
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}
