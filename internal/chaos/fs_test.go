package chaos

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"iddqsyn/internal/fsx"
)

// The protocol audit behind the fsync-before-rename guarantee: WriteAtomic
// must sync the file before publishing it with rename, and sync the
// directory after, so a crash can never leave an empty visible file (data
// not yet allocated) or silently lose the rename.
func TestWriteAtomicProtocolOrder(t *testing.T) {
	cfs := NewFS(nil, nil) // record only
	path := filepath.Join(t.TempDir(), "out.json")
	if err := fsx.WriteAtomic(cfs, path, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	ops := cfs.Ops()
	idx := func(op string) int {
		for i, o := range ops {
			if o == op {
				return i
			}
		}
		t.Fatalf("protocol never performed %q (ops: %v)", op, ops)
		return -1
	}
	if !(idx("create") < idx("write") && idx("write") < idx("sync") &&
		idx("sync") < idx("close") && idx("close") < idx("rename")) {
		t.Errorf("protocol out of order: %v (want create < write < sync < close < rename)", ops)
	}
	if idx("sync") > idx("rename") {
		t.Errorf("file was renamed before fsync: %v — a crash could expose an empty file", ops)
	}
	if idx("syncdir") < idx("rename") {
		t.Errorf("directory synced before the rename it must persist: %v", ops)
	}
}

// Every injectable step of the protocol, failed one at a time: the
// destination must keep its previous content (or stay absent), the error
// must wrap ErrInjected, and a bounded retry must mask the one-shot fault.
func TestWriteAtomicUnderInjectedFaults(t *testing.T) {
	sites := []string{SiteFSCreate, SiteFSWrite, SiteFSSync, SiteFSClose, SiteFSRename, SiteFSSyncDir}
	for _, site := range sites {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "ck.json")
			prev := []byte("previous checkpoint")
			if err := os.WriteFile(path, prev, 0o644); err != nil {
				t.Fatal(err)
			}

			in := New(mustSchedule(t, "seed=1,after=1,sites="+site), nil)
			cfs := NewFS(nil, in)
			err := fsx.WriteAtomic(cfs, path, []byte("new checkpoint"))
			if err == nil {
				t.Fatal("injected fault must fail the write")
			}
			if !errors.Is(err, ErrInjected) {
				t.Errorf("error %v does not wrap ErrInjected", err)
			}
			if !strings.Contains(err.Error(), site) {
				t.Errorf("error %q does not name the injected site %s", err, site)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			// syncdir fails after the rename landed, so the new content is
			// visible (just possibly not durable); every earlier failure
			// must leave the previous checkpoint untouched.
			want := string(prev)
			if site == SiteFSSyncDir {
				want = "new checkpoint"
			}
			if string(got) != want {
				t.Errorf("after injected %s, destination = %q, want %q", site, got, want)
			}

			// The same one-shot fault under retry: masked completely.
			in2 := New(mustSchedule(t, "seed=1,after=1,sites="+site), nil)
			pol := &fsx.RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}}
			if err := fsx.WriteAtomicRetry(NewFS(nil, in2), path, []byte("retried"), pol); err != nil {
				t.Fatalf("retry did not mask a one-shot %s fault: %v", site, err)
			}
			if got, _ := os.ReadFile(path); string(got) != "retried" {
				t.Errorf("after retry, destination = %q, want %q", got, "retried")
			}
		})
	}
}

// A short write must never tear the destination, only the temp file.
func TestShortWriteNeverTearsDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	in := New(mustSchedule(t, "seed=9,after=1,sites=fs.write"), nil)
	err := fsx.WriteAtomic(NewFS(nil, in), path, []byte("0123456789"))
	if err == nil {
		t.Fatal("short write must fail the publication")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Errorf("a torn write left a visible destination: %v", serr)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("torn temp file not cleaned up: %v", entries)
	}
}

// fs.enospc must surface a genuine syscall.ENOSPC (errors.Is) inside the
// ErrInjected chain, on both Write and Sync, with nothing written.
func TestENOSPCSiteIsRealENOSPC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	in := New(mustSchedule(t, "seed=3,rate=1,sites=fs.enospc"), nil)
	f, err := NewFS(nil, in).OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("payload"))
	if n != 0 || werr == nil {
		t.Fatalf("Write under fs.enospc: n=%d err=%v, want 0 and an error", n, werr)
	}
	if !errors.Is(werr, ErrInjected) || !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("fs.enospc error %v must wrap both ErrInjected and syscall.ENOSPC", werr)
	}
	if serr := f.Sync(); !errors.Is(serr, syscall.ENOSPC) {
		t.Fatalf("Sync under fs.enospc: %v, want syscall.ENOSPC in the chain", serr)
	}
	if cerr := f.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if data, _ := os.ReadFile(path); len(data) != 0 {
		t.Fatalf("fs.enospc let %d bytes land", len(data))
	}
}

// fs.write.short must land a deterministic prefix and report a short
// write — the injectable torn-append path.
func TestWriteShortSiteTearsDeterministically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	in := New(mustSchedule(t, "seed=5,after=1,sites=fs.write.short"), nil)
	f, err := NewFS(nil, in).OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("012345678")
	n, werr := f.Write(payload)
	if werr == nil || !errors.Is(werr, ErrInjected) || !errors.Is(werr, io.ErrShortWrite) {
		t.Fatalf("short-write error %v must wrap ErrInjected and io.ErrShortWrite", werr)
	}
	if n != len(payload)/3 {
		t.Fatalf("short write landed %d bytes, want %d", n, len(payload)/3)
	}
	// The one-shot has fired; the next write goes through whole.
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "012"+string(payload) {
		t.Fatalf("on-disk tail %q, want torn prefix then full payload", data)
	}
}

// The new sites must be registered and matched by the fs.* glob, so soak
// schedules cover them without naming them.
func TestDiskLifecycleSitesRegistered(t *testing.T) {
	sched := mustSchedule(t, "seed=1,rate=0.5,sites=fs.*")
	for _, site := range []string{SiteFSENOSPC, SiteFSWriteShort} {
		found := false
		for _, s := range Sites() {
			if s == site {
				found = true
			}
		}
		if !found {
			t.Errorf("site %s not registered in Sites()", site)
		}
		if !sched.Matches(site) {
			t.Errorf("fs.* does not match %s", site)
		}
	}
}
