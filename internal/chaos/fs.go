// The chaos filesystem: an fsx.FS that injects the disk failures the
// atomic-write protocol claims to survive — failed temp creation, short
// writes on a full disk, fsync errors, failed renames, lost directory
// syncs — and records the exact operation sequence, so tests can assert
// both the failure behaviour (the destination is never corrupted) and the
// protocol itself (sync before rename, directory sync after).

package chaos

import (
	"fmt"
	"io"
	"sync"
	"syscall"

	"iddqsyn/internal/fsx"
)

// FS wraps an fsx.FS with fault injection and operation recording. The
// injected failure per site:
//
//	fs.create   CreateTemp fails outright
//	fs.write    half the buffer lands, then an ENOSPC-style error
//	fs.sync     file fsync fails (data may not be durable)
//	fs.close    close reports a deferred write error (file is closed)
//	fs.rename   rename fails with the destination untouched — the
//	            crash-before-rename case the protocol must leave the
//	            previous file visible for
//	fs.syncdir  directory fsync fails (the rename may not be durable)
//	fs.enospc   Write/Sync fail with a genuine syscall.ENOSPC and write
//	            nothing — the full-disk case the admission shedder must
//	            detect with errors.Is(err, syscall.ENOSPC)
//	fs.write.short  a deterministic prefix (one third) lands, then
//	            io.ErrShortWrite — the torn append the journal's replay
//	            must truncate or salvage around
//
// Every injected error wraps ErrInjected.
type FS struct {
	inner fsx.FS
	inj   *Injector

	mu  sync.Mutex
	ops []string // guarded by mu
}

// NewFS builds a chaos filesystem over inner (nil = the real
// filesystem), injecting per inj (nil = record only, inject nothing).
func NewFS(inner fsx.FS, inj *Injector) *FS {
	if inner == nil {
		inner = fsx.OS{}
	}
	return &FS{inner: inner, inj: inj}
}

// Ops returns the recorded operation names, in call order: "create",
// "write", "sync", "close", "rename", "syncdir", "remove".
func (f *FS) Ops() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.ops...)
}

func (f *FS) record(op string) {
	f.mu.Lock()
	f.ops = append(f.ops, op)
	f.mu.Unlock()
}

// CreateTemp implements fsx.FS.
func (f *FS) CreateTemp(dir, pattern string) (fsx.File, error) {
	f.record("create")
	if f.inj.Hit(SiteFSCreate) {
		return nil, Errf(SiteFSCreate)
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &chaosFile{inner: file, fs: f}, nil
}

// OpenAppend implements fsx.AppendFS, so the segmented journal's
// append-and-fsync path sees the same injected write/sync/close faults
// (and the disk-lifecycle sites fs.enospc / fs.write.short) as the
// atomic-write protocol. Opening itself shares the fs.create site: a
// full disk or exhausted descriptor table fails opens and creates alike.
func (f *FS) OpenAppend(name string) (fsx.File, error) {
	f.record("openappend")
	if f.inj.Hit(SiteFSCreate) {
		return nil, Errf(SiteFSCreate)
	}
	file, err := fsx.OpenAppend(f.inner, name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{inner: file, fs: f}, nil
}

// Rename implements fsx.FS. An injected failure models a crash before
// the rename: the destination is untouched.
func (f *FS) Rename(oldpath, newpath string) error {
	f.record("rename")
	if f.inj.Hit(SiteFSRename) {
		return Errf(SiteFSRename)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements fsx.FS (never injected: cleanup must not be the
// failure that hides the original one).
func (f *FS) Remove(name string) error {
	f.record("remove")
	return f.inner.Remove(name)
}

// SyncDir implements fsx.FS.
func (f *FS) SyncDir(dir string) error {
	f.record("syncdir")
	if f.inj.Hit(SiteFSSyncDir) {
		return Errf(SiteFSSyncDir)
	}
	return f.inner.SyncDir(dir)
}

// chaosFile interposes on the per-file operations.
type chaosFile struct {
	inner fsx.File
	fs    *FS
}

func (cf *chaosFile) Name() string { return cf.inner.Name() }

// errENOSPC wraps the real syscall.ENOSPC inside the chaos error chain:
// errors.Is finds both ErrInjected (tests tell provoked from organic)
// and syscall.ENOSPC (the shedder reacts as it would to a full disk).
func errENOSPC() error {
	return fmt.Errorf("%w at %s: %w", ErrInjected, SiteFSENOSPC, syscall.ENOSPC)
}

// Write injects, in site order: a disk-full failure (fs.enospc — nothing
// lands, genuine ENOSPC), a torn write (fs.write.short — a one-third
// prefix lands, then io.ErrShortWrite), or the legacy half-write
// ENOSPC-style error (fs.write). The temp-file protocol must turn each
// into a clean retry; the journal's append path must leave a tail its
// own replay truncates or salvages around.
func (cf *chaosFile) Write(p []byte) (int, error) {
	cf.fs.record("write")
	if cf.fs.inj.Hit(SiteFSENOSPC) {
		return 0, errENOSPC()
	}
	if cf.fs.inj.Hit(SiteFSWriteShort) {
		n := 0
		if third := len(p) / 3; third > 0 {
			n, _ = cf.inner.Write(p[:third]) // the injected error below is the one worth reporting
		}
		return n, fmt.Errorf("%w at %s: %w", ErrInjected, SiteFSWriteShort, io.ErrShortWrite)
	}
	if cf.fs.inj.Hit(SiteFSWrite) {
		n := 0
		if half := len(p) / 2; half > 0 {
			n, _ = cf.inner.Write(p[:half]) // the injected error below is the one worth reporting
		}
		return n, Errf(SiteFSWrite)
	}
	return cf.inner.Write(p)
}

func (cf *chaosFile) Sync() error {
	cf.fs.record("sync")
	if cf.fs.inj.Hit(SiteFSENOSPC) {
		return errENOSPC()
	}
	if cf.fs.inj.Hit(SiteFSSync) {
		return Errf(SiteFSSync)
	}
	return cf.inner.Sync()
}

// Close closes the real file first (no descriptor leaks), then reports
// the injected deferred-write error if one is scheduled.
func (cf *chaosFile) Close() error {
	cf.fs.record("close")
	err := cf.inner.Close()
	if cf.fs.inj.Hit(SiteFSClose) {
		return Errf(SiteFSClose)
	}
	return err
}
