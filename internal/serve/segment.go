// The on-disk record framing of the segmented job journal. A segment
// file is an 8-byte format magic followed by framed records:
//
//	+----------------+----------------+----------------+---------...---+
//	| record magic 4 | payload len 4  | CRC32C 4       | JSON payload  |
//	+----------------+----------------+----------------+---------...---+
//
// Length and CRC are little-endian; the CRC (Castagnoli) covers the
// payload only. The record magic starts with bytes that are invalid
// anywhere in UTF-8 (0xF5) so a JSON payload can never contain it —
// which makes the magic a resynchronization point: when a frame fails
// its bounds or CRC check, the reader scans forward for the next offset
// at which a complete frame validates, losing exactly the damaged bytes
// and nothing after them. A single flipped bit therefore costs at most
// one record; a torn final frame (the crash-mid-append case) costs only
// the tail that was being written.
//
// scanSegment is deliberately pure ([]byte in, records out): the same
// function serves the journal open path, the corruption table tests and
// the replay fuzzer.

package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

const (
	segMagicLen    = 8
	frameHeaderLen = 12 // record magic (4) + payload length (4) + CRC32C (4)

	// maxRecordLen bounds a frame's declared payload length. Journal
	// records are small JSON objects; a length beyond this is framing
	// damage, not a record, and rejecting it keeps the salvage scanner
	// from chasing absurd offsets fabricated by corrupted length bytes.
	maxRecordLen = 1 << 20
)

// segMagic identifies a journal segment file and its format version; a
// format change bumps the trailing byte.
var segMagic = [segMagicLen]byte{'i', 'd', 'd', 'q', 's', 'e', 'g', '1'}

// recMagic opens every record frame. 0xF5 and the 0xC2-without-
// continuation suffix cannot occur in well-formed UTF-8, so no JSON
// payload byte sequence can alias a frame boundary.
var recMagic = [4]byte{0xF5, 'i', 'r', 0xC2}

// castagnoli is the CRC32C table (the polynomial with hardware support
// on both amd64 and arm64 — the checksum stays cheap on the append path).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame marshals one record into a complete frame.
func encodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal journal record: %w", err)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	copy(frame, recMagic[:])
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderLen:], payload)
	return frame, nil
}

// frameAt validates the frame starting at off and returns its record and
// total length. ok is false on any defect: bad magic, implausible or
// out-of-bounds length, CRC mismatch, payload that is not a journal
// record. The CRC is checked before the JSON parse, so the parse only
// ever sees bytes the writer actually framed.
func frameAt(data []byte, off int) (rec Record, size int, ok bool) {
	if off+frameHeaderLen > len(data) {
		return Record{}, 0, false
	}
	if string(data[off:off+4]) != string(recMagic[:]) {
		return Record{}, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
	if n > maxRecordLen || off+frameHeaderLen+n > len(data) {
		return Record{}, 0, false
	}
	payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+8:off+12]) {
		return Record{}, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, false
	}
	if rec.Job == "" || rec.Event == "" {
		return Record{}, 0, false
	}
	return rec, frameHeaderLen + n, true
}

// byteRange is a damaged run of a segment, for quarantine.
type byteRange struct{ start, end int }

// segScan is the result of reading one segment with salvage.
type segScan struct {
	records []Record
	// goodLen is the offset just past the last valid frame — the length
	// a torn active segment is truncated to.
	goodLen int
	// damaged holds the byte runs that failed validation but were
	// resynchronized past (each run loses the records it overlapped,
	// never a later one).
	damaged []byteRange
	// torn is the trailing run after the last valid frame that never
	// resynchronizes — the signature of a crash mid-append. Empty ranges
	// mean a clean tail.
	torn byteRange
	// headerOK reports whether the segment magic was intact.
	headerOK bool
}

// salvaged is the number of damaged runs (resynchronized plus torn).
func (s segScan) salvaged() int {
	n := len(s.damaged)
	if s.torn.end > s.torn.start {
		n++
	}
	return n
}

// clean reports a scan with no damage of any kind.
func (s segScan) clean() bool {
	return s.headerOK && len(s.damaged) == 0 && s.torn.end == s.torn.start
}

// resync finds the smallest offset >= from at which a complete frame
// validates, or -1. Candidates are located by the record magic's first
// byte, then fully validated — a magic-alias inside CRC or length bytes
// (possible: those fields are arbitrary binary) fails validation and the
// scan moves on.
func resync(data []byte, from int) int {
	for off := from; off+frameHeaderLen <= len(data); off++ {
		if data[off] != recMagic[0] {
			continue
		}
		if _, _, ok := frameAt(data, off); ok {
			return off
		}
	}
	return -1
}

// scanSegment reads a segment image with salvage: every frame that
// validates is kept, every damaged run is skipped to the next offset
// where a frame validates again, and an unresynchronizable tail is
// reported as torn. The scan never fails — deciding whether damage is
// tolerable (append segment) or fatal (compacted base) is the caller's
// policy, not the reader's.
func scanSegment(data []byte) segScan {
	sc := segScan{}
	pos := 0
	if len(data) >= segMagicLen && string(data[:segMagicLen]) == string(segMagic[:]) {
		sc.headerOK = true
		pos = segMagicLen
	} else {
		// Header damaged or torn: resynchronize from the start; the
		// skipped prefix is accounted below like any other damage.
	}
	sc.goodLen = pos
	for pos < len(data) {
		rec, size, ok := frameAt(data, pos)
		if ok {
			sc.records = append(sc.records, rec)
			pos += size
			sc.goodLen = pos
			continue
		}
		next := resync(data, pos+1)
		if next < 0 {
			sc.torn = byteRange{start: pos, end: len(data)}
			return sc
		}
		sc.damaged = append(sc.damaged, byteRange{start: pos, end: next})
		pos = next
	}
	return sc
}

// encodeSegment builds a complete segment image (magic + frames) — the
// writer for compacted bases and the generator for corruption tests.
func encodeSegment(recs []Record) ([]byte, error) {
	out := append([]byte(nil), segMagic[:]...)
	for _, rec := range recs {
		frame, err := encodeFrame(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, frame...)
	}
	return out, nil
}
