// Job specifications: what a client submits to the partition-synthesis
// service. A spec carries the gate-level netlist (bench format, inline)
// and the synthesis options the iddqpart CLI exposes, validated into the
// same core.Options the CLI builds. Every parse or validation failure
// wraps ErrSpec with the offending field named — the submission surface
// never panics on client input (FuzzJobSpec enforces this).

package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/core"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/partition"
)

// ErrSpec is wrapped by every job-spec parse or validation failure, so
// the submission handler can classify "client sent a bad spec" (400)
// apart from server-side failures with errors.Is.
var ErrSpec = errors.New("serve: invalid job spec")

// Submission limits: a spec beyond these bounds is rejected at the door,
// before any synthesis work is admitted.
const (
	// MaxNetlistBytes bounds the inline netlist text.
	MaxNetlistBytes = 4 << 20
	// MaxSpecGenerations bounds the requested generation budget.
	MaxSpecGenerations = 100000
	// MaxSpecTimeout bounds the requested per-job wall-clock budget.
	MaxSpecTimeout = time.Hour
)

// JobSpec is one synthesis request. The zero values select the same
// defaults as the iddqpart CLI: the evolution method, the built-in cell
// library, estimated module size, d = 10 and seed 1.
type JobSpec struct {
	// Netlist is the gate-level circuit in bench format, inline.
	Netlist string `json:"netlist"`
	// Name optionally overrides the circuit name for reports.
	Name string `json:"name,omitempty"`
	// Method is "evolution" (default) or "standard".
	Method string `json:"method,omitempty"`
	// ModuleSize fixes the module size (0 = estimate, §4.2).
	ModuleSize int `json:"module_size,omitempty"`
	// Modules overrides ModuleSize for the standard method.
	Modules int `json:"modules,omitempty"`
	// Generations overrides the evolution generation budget (0 = default).
	Generations int `json:"generations,omitempty"`
	// Seed seeds the evolution strategy (0 = 1, the CLI default).
	Seed int64 `json:"seed,omitempty"`
	// Workers sets parallel cost-evaluation workers (0/1 = sequential).
	Workers int `json:"workers,omitempty"`
	// Discriminability is the required d (0 = 10, the paper's value).
	Discriminability float64 `json:"discriminability,omitempty"`
	// Timeout is the per-job wall-clock budget as a Go duration string
	// ("30s", "5m"); empty selects the server's default budget.
	Timeout string `json:"timeout,omitempty"`
	// Tenant names the submitting tenant for fair queueing. It is
	// advisory (the X-Tenant header overrides it) and excluded from the
	// content hash: two tenants submitting the identical job share its
	// result.
	Tenant string `json:"tenant,omitempty"`
}

// ParseJobSpec parses a submission body. A JSON content type (or a body
// that starts with '{') is decoded strictly — unknown fields are spec
// errors, catching typoed option names instead of silently ignoring
// them. Any other body is taken as a raw bench netlist with default
// options, so `curl --data-binary @circuit.bench` works from scripts.
func ParseJobSpec(contentType string, body []byte) (*JobSpec, error) {
	spec := &JobSpec{}
	trimmed := strings.TrimSpace(string(body))
	if strings.Contains(contentType, "json") || strings.HasPrefix(trimmed, "{") {
		dec := json.NewDecoder(strings.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(spec); err != nil {
			return nil, fmt.Errorf("%w: body: %w", ErrSpec, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("%w: body: trailing data after the spec object", ErrSpec)
		}
	} else {
		spec.Netlist = trimmed
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Validate checks every field against the submission limits and parses
// the netlist. It returns nil only for a spec the synthesis pipeline
// can run.
func (s *JobSpec) Validate() error {
	if _, err := s.Circuit(); err != nil {
		return err
	}
	if m := s.Method; m != "" && m != "evolution" && m != "standard" {
		return fmt.Errorf("%w: method %q (want evolution or standard)", ErrSpec, m)
	}
	switch {
	case s.ModuleSize < 0:
		return fmt.Errorf("%w: module_size %d is negative", ErrSpec, s.ModuleSize)
	case s.Modules < 0:
		return fmt.Errorf("%w: modules %d is negative", ErrSpec, s.Modules)
	case s.Generations < 0 || s.Generations > MaxSpecGenerations:
		return fmt.Errorf("%w: generations %d outside [0, %d]", ErrSpec, s.Generations, MaxSpecGenerations)
	case s.Workers < 0:
		return fmt.Errorf("%w: workers %d is negative", ErrSpec, s.Workers)
	case s.Discriminability < 0:
		return fmt.Errorf("%w: discriminability %g is negative", ErrSpec, s.Discriminability)
	}
	if _, err := s.JobTimeout(); err != nil {
		return err
	}
	return nil
}

// Circuit parses the spec's netlist.
func (s *JobSpec) Circuit() (*circuit.Circuit, error) {
	if strings.TrimSpace(s.Netlist) == "" {
		return nil, fmt.Errorf("%w: empty netlist", ErrSpec)
	}
	if len(s.Netlist) > MaxNetlistBytes {
		return nil, fmt.Errorf("%w: netlist is %d bytes (limit %d)", ErrSpec, len(s.Netlist), MaxNetlistBytes)
	}
	name := s.Name
	if name == "" {
		name = "job"
	}
	c, err := bench.Read(strings.NewReader(s.Netlist), name)
	if err != nil {
		return nil, fmt.Errorf("%w: netlist: %w", ErrSpec, err)
	}
	if s.Name != "" {
		// A client-chosen name lands in file-adjacent report text; keep it
		// boring.
		if len(s.Name) > 128 || strings.ContainsAny(s.Name, "/\\\n\r\t ") {
			return nil, fmt.Errorf("%w: name %q (too long or contains separators)", ErrSpec, s.Name)
		}
	}
	return c, nil
}

// JobTimeout parses the per-job budget ("" = 0 = the server default).
func (s *JobSpec) JobTimeout() (time.Duration, error) {
	if s.Timeout == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s.Timeout)
	if err != nil {
		return 0, fmt.Errorf("%w: timeout %q: %w", ErrSpec, s.Timeout, err)
	}
	if d <= 0 || d > MaxSpecTimeout {
		return 0, fmt.Errorf("%w: timeout %s outside (0, %s]", ErrSpec, d, MaxSpecTimeout)
	}
	return d, nil
}

// Options builds the core.Options the job runs under. The caller owns
// run control (Control, Obs, Chaos, Degrade) — Options covers only what
// the spec itself determines. Validate must have passed.
func (s *JobSpec) Options() (core.Options, error) {
	opt := core.Options{ModuleSize: s.ModuleSize, Modules: s.Modules}
	if s.Method == "standard" {
		opt.Method = core.MethodStandard
	}
	eprm := evolution.DefaultParams()
	eprm.Seed = s.Seed
	if s.Seed == 0 {
		eprm.Seed = 1
	}
	eprm.Workers = s.Workers
	if s.Generations > 0 {
		eprm.MaxGenerations = s.Generations
	}
	opt.Evolution = &eprm
	if s.Discriminability > 0 {
		cons := partition.DefaultConstraints()
		cons.MinDiscriminability = s.Discriminability
		opt.Constraints = &cons
	}
	return opt, nil
}

// Hash is the spec's content hash: sha256 over the circuit fingerprint
// (structural — whitespace, comments and line order in the netlist do
// not matter) and every result-determining option, canonicalized so a
// defaulted field hashes identically to its explicit default. Tenant
// and Name are excluded, so identical work submitted by different
// tenants or under different labels dedupes onto one job. Job IDs are
// derived from this hash, which is what makes the results cache fall
// out of the ID scheme instead of needing one of its own.
func (s *JobSpec) Hash() (string, error) {
	c, err := s.Circuit()
	if err != nil {
		return "", err
	}
	// Canonicalize before hashing: Options()/the runtime treat the zero
	// value and the explicit default identically, so the hash must too or
	// semantically identical submissions would split the dedupe cache.
	method := s.Method
	if method == "" {
		method = "evolution"
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	gens := s.Generations
	if gens == 0 {
		gens = evolution.DefaultParams().MaxGenerations
	}
	d := s.Discriminability
	if d == 0 {
		d = partition.DefaultConstraints().MinDiscriminability
	}
	// Normalize the duration spelling ("60s" == "1m"). An empty Timeout
	// stays empty: it means "the server's default budget at run time",
	// which is config-dependent, not a fixed duration.
	timeout := s.Timeout
	if td, perr := time.ParseDuration(timeout); timeout != "" && perr == nil {
		timeout = td.String()
	}
	h := sha256.New()
	fmt.Fprintf(h, "v1\n%s\n", bench.Fingerprint(c))
	fmt.Fprintf(h, "method=%s size=%d modules=%d gens=%d seed=%d d=%g timeout=%s\n",
		method, s.ModuleSize, s.Modules, gens, seed, d, timeout)
	// Workers deliberately excluded: the evolution result is bit-identical
	// for any worker count, so parallelism must not split the cache.
	return hex.EncodeToString(h.Sum(nil)), nil
}

// JobID derives the job's identifier from the content hash.
func (s *JobSpec) JobID() (string, error) {
	h, err := s.Hash()
	if err != nil {
		return "", err
	}
	return "j" + h[:16], nil
}
