package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"iddqsyn/internal/obs"
)

// BenchmarkServeSubmit measures the full admission path per distinct
// submission: spec parse, content hash, durable spec + journal records,
// and fair-queue enqueue. Workers are never started, so the figure is
// pure admission cost (journal fsyncs included — durability is the
// product, not overhead).
func BenchmarkServeSubmit(b *testing.B) {
	dir := b.TempDir()
	s, err := New(Config{Dir: dir, Workers: 1, QueueCap: 1 << 30, Obs: obs.New("bench", nil, nil)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	netlist := c17Netlist(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh seed per iteration defeats the content cache: every
		// submission takes the full durable path.
		body, _ := json.Marshal(&JobSpec{Netlist: netlist, Seed: int64(i + 1)})
		resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			b.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("status %d at iteration %d", resp.StatusCode, i)
		}
	}
}

// BenchmarkJournalAppend measures one durable journal record: frame
// encode, CRC, append to the active segment, fsync. The cost must stay
// O(1) in journal size — the segmented log appends a record, where the
// v1 journal republished the whole file — so the figure holding flat as
// records accumulate across iterations is the point of the benchmark.
func BenchmarkJournalAppend(b *testing.B) {
	j, err := OpenJournal(b.TempDir(), JournalOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = j.Close() }() // bench teardown; append errors already failed the run
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append("jbench", EventStarted, "attempt"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSubmitCached measures the cache-hit path: the identical
// spec resubmitted, answered from the content-hash cache without
// touching the journal.
func BenchmarkServeSubmitCached(b *testing.B) {
	dir := b.TempDir()
	s, err := New(Config{Dir: dir, Workers: 1, Obs: obs.New("bench", nil, nil)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	body, _ := json.Marshal(&JobSpec{Netlist: c17Netlist(b)})
	warm, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		b.Fatal(err)
	}
	_ = warm.Body.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			b.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
