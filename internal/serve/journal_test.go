package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/fsx"
)

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(nil, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct{ job, event, detail string }{
		{"j1", EventSubmitted, "acme"},
		{"j2", EventSubmitted, "zenith"},
		{"j1", EventStarted, "1"},
		{"j1", EventFinished, ""},
		{"j2", EventStarted, "1"},
	}
	for _, s := range steps {
		if err := j.Append(s.job, s.event, s.detail); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh open replays the identical state — the durable journal is
	// the source of truth, not the process that wrote it. Opening also
	// compacts: terminal j1 folds to its submitted + finished pair (its
	// started record is history), live j2 keeps both records.
	j2, err := OpenJournal(nil, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 4 {
		t.Fatalf("compacted journal has %d records, want 4", j2.Len())
	}
	jobs := j2.Replay()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != "j1" || jobs[0].Phase != PhaseDone || jobs[0].Tenant != "acme" {
		t.Fatalf("j1 replayed as %+v", jobs[0])
	}
	// j2 was started but never finished: exactly the state a restarted
	// server must requeue.
	if jobs[1].ID != "j2" || jobs[1].Phase != PhaseRunning || jobs[1].Attempts != 1 {
		t.Fatalf("j2 replayed as %+v", jobs[1])
	}

	// Compaction is idempotent: a third open neither shrinks further nor
	// changes the replayed state.
	j3, err := OpenJournal(nil, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Len() != 4 {
		t.Fatalf("second compaction changed the journal: %d records", j3.Len())
	}
	jobs3 := j3.Replay()
	if len(jobs3) != 2 || jobs3[0].Phase != PhaseDone || jobs3[1].Phase != PhaseRunning {
		t.Fatalf("state drifted across compactions: %+v", jobs3)
	}
}

// Compaction bounds the journal: many finished lifecycles fold down to
// two records per job, and a failed job keeps its terminal detail.
func TestJournalCompactsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(nil, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("j%d", i)
		for _, s := range []struct{ event, detail string }{
			{EventSubmitted, "acme"},
			{EventStarted, "1"},
			{EventStarted, "2"},
			{EventFinished, "degraded"},
		} {
			if err := j.Append(id, s.event, s.detail); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Append("bad", EventSubmitted, "zenith"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("bad", EventFailed, "optimizer exploded"); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(nil, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 22 { // 10 done jobs × 2 + failed job × 2
		t.Fatalf("compacted to %d records, want 22", j2.Len())
	}
	for _, rj := range j2.Replay() {
		switch rj.ID {
		case "bad":
			if rj.Phase != PhaseFailed || rj.Detail != "optimizer exploded" {
				t.Fatalf("failed job replayed as %+v", rj)
			}
		default:
			if rj.Phase != PhaseDone || rj.Detail != "degraded" || rj.Tenant != "acme" {
				t.Fatalf("done job replayed as %+v", rj)
			}
		}
	}
}

func TestJournalCorruptionIsNamed(t *testing.T) {
	cases := []struct{ name, content string }{
		{"zero-length", ""},
		{"not json", "][junk"},
		{"wrong format", `{"format": "something-else", "version": 1}`},
		{"wrong version", `{"format": "iddqsyn-serve-journal", "version": 99}`},
		{"seq gap", `{"format": "iddqsyn-serve-journal", "version": 1,
			"records": [{"seq": 2, "job": "x", "event": "submitted"}]}`},
		{"incomplete record", `{"format": "iddqsyn-serve-journal", "version": 1,
			"records": [{"seq": 1, "job": "", "event": "submitted"}]}`},
	}
	for _, tc := range cases {
		dir := t.TempDir()
		if err := os.WriteFile(journalPath(dir), []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenJournal(nil, dir, nil)
		if !errors.Is(err, ErrCorruptJournal) {
			t.Errorf("%s: err = %v, want ErrCorruptJournal", tc.name, err)
		}
	}
}

// An injected filesystem fault mid-append must leave both the file and
// the in-memory sequence at their previous state — the append-only
// contract under fire.
func TestJournalAppendAtomicUnderFaults(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(nil, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("j1", EventSubmitted, "acme"); err != nil {
		t.Fatal(err)
	}

	// Every fs operation fails, exhausting the retry budget.
	sched, err := chaos.ParseSchedule("seed=1,rate=1,sites=fs.*")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(sched, nil)
	jf, err := OpenJournal(chaos.NewFS(fsx.OS{}, inj), dir,
		&fsx.RetryPolicy{Attempts: 2, BaseDelay: 1, MaxDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := jf.Append("j2", EventSubmitted, "acme"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("append under total fs failure: %v, want ErrInjected in the chain", err)
	}
	if jf.Len() != 1 {
		t.Fatalf("failed append mutated the in-memory sequence: %d records", jf.Len())
	}
	j3, err := OpenJournal(nil, dir, nil)
	if err != nil {
		t.Fatalf("journal damaged by failed append: %v", err)
	}
	if j3.Len() != 1 || j3.Records()[0].Job != "j1" {
		t.Fatalf("journal content changed under failed append: %+v", j3.Records())
	}
}

func TestJournalSideFiles(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(nil, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := &JobSpec{Netlist: c17Netlist(t), Generations: 5}
	id, err := spec.JobID()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteSpec(id, spec); err != nil {
		t.Fatal(err)
	}
	back, err := j.LoadSpec(id)
	if err != nil {
		t.Fatal(err)
	}
	if back.Netlist != spec.Netlist || back.Generations != 5 {
		t.Fatalf("spec round trip: %+v", back)
	}
	res := &JobResult{ID: id, Circuit: "c17", Modules: 2, Cost: 1.5, Groups: [][]int{{0}, {1}}}
	if err := j.WriteResult(res); err != nil {
		t.Fatal(err)
	}
	rback, err := j.LoadResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if rback.Modules != 2 || rback.Cost != 1.5 {
		t.Fatalf("result round trip: %+v", rback)
	}
	// The side files live inside the data dir only.
	for _, p := range []string{specPath(dir, id), resultPath(dir, id)} {
		if filepath.Dir(p) != dir {
			t.Fatalf("side file escapes the data dir: %s", p)
		}
	}
}
