package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/fsx"
)

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct{ job, event, detail string }{
		{"j1", EventSubmitted, "acme"},
		{"j2", EventSubmitted, "zenith"},
		{"j1", EventStarted, "1"},
		{"j1", EventFinished, ""},
		{"j2", EventStarted, "1"},
	}
	for _, s := range steps {
		if err := j.Append(s.job, s.event, s.detail); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh open replays the identical state — the durable journal is
	// the source of truth, not the process that wrote it. Opening also
	// compacts: terminal j1 folds to its submitted + finished pair (its
	// started record is history), live j2 keeps both records.
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 4 {
		t.Fatalf("compacted journal has %d records, want 4", j2.Len())
	}
	jobs := j2.Replay()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != "j1" || jobs[0].Phase != PhaseDone || jobs[0].Tenant != "acme" {
		t.Fatalf("j1 replayed as %+v", jobs[0])
	}
	if jobs[0].SubmittedAt == 0 || jobs[0].TerminalAt == 0 {
		t.Fatalf("j1 lost its timestamps across compaction: %+v", jobs[0])
	}
	// j2 was started but never finished: exactly the state a restarted
	// server must requeue.
	if jobs[1].ID != "j2" || jobs[1].Phase != PhaseRunning || jobs[1].Attempts != 1 {
		t.Fatalf("j2 replayed as %+v", jobs[1])
	}

	// Compaction is idempotent: a third open neither shrinks further nor
	// changes the replayed state.
	j3, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j3.Len() != 4 {
		t.Fatalf("second compaction changed the journal: %d records", j3.Len())
	}
	jobs3 := j3.Replay()
	if len(jobs3) != 2 || jobs3[0].Phase != PhaseDone || jobs3[1].Phase != PhaseRunning {
		t.Fatalf("state drifted across compactions: %+v", jobs3)
	}
}

// Compaction bounds the journal: many finished lifecycles fold down to
// two records per job, and a failed job keeps its terminal detail.
func TestJournalCompactsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("j%d", i)
		for _, s := range []struct{ event, detail string }{
			{EventSubmitted, "acme"},
			{EventStarted, "1"},
			{EventStarted, "2"},
			{EventFinished, "degraded"},
		} {
			if err := j.Append(id, s.event, s.detail); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Append("bad", EventSubmitted, "zenith"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("bad", EventFailed, "optimizer exploded"); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 22 { // 10 done jobs × 2 + failed job × 2
		t.Fatalf("compacted to %d records, want 22", j2.Len())
	}
	for _, rj := range j2.Replay() {
		switch rj.ID {
		case "bad":
			if rj.Phase != PhaseFailed || rj.Detail != "optimizer exploded" {
				t.Fatalf("failed job replayed as %+v", rj)
			}
		default:
			if rj.Phase != PhaseDone || rj.Detail != "degraded" || rj.Tenant != "acme" {
				t.Fatalf("done job replayed as %+v", rj)
			}
		}
	}
}

// Appends roll across segment files at the size threshold and a single
// open replays the whole chain; compaction folds the chain into one
// base and deletes the folded segments.
func TestJournalSegmentsRollAndCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{SegmentMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("j%d", i)
		for _, s := range []struct{ event, detail string }{
			{EventSubmitted, "acme"}, {EventStarted, "1"}, {EventFinished, ""},
		} {
			if err := j.Append(id, s.event, s.detail); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := countJournalFiles(t, dir, ".seg"); n < 2 {
		t.Fatalf("40 appends under a 256-byte threshold left %d segments, want several", n)
	}
	if compacted, err := j.Compact(); err != nil || !compacted {
		t.Fatalf("Compact() = %v, %v; want a published compaction", compacted, err)
	}
	if n := countJournalFiles(t, dir, ".seg"); n != 0 {
		t.Fatalf("compaction left %d folded segments behind", n)
	}
	if n := countJournalFiles(t, dir, ".base"); n != 1 {
		t.Fatalf("compaction left %d base files, want exactly 1", n)
	}
	if j.Len() != 40 { // 20 terminal jobs × 2 summary records
		t.Fatalf("compacted to %d records, want 40", j.Len())
	}
	_ = j.Close()

	j2, err := OpenJournal(dir, JournalOptions{SegmentMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j2.Replay()); got != 20 {
		t.Fatalf("replayed %d jobs after compaction, want 20", got)
	}
}

func countJournalFiles(t *testing.T, dir, ext string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "journal-") && strings.HasSuffix(e.Name(), ext) {
			n++
		}
	}
	return n
}

// An evicted job vanishes from replay, and compaction erases its
// records; resubmitting the same ID afterwards revives it cleanly.
func TestJournalEvictionDropsJob(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []struct{ job, event, detail string }{
		{"old", EventSubmitted, "acme"},
		{"old", EventFinished, ""},
		{"live", EventSubmitted, "acme"},
	} {
		if err := j.Append(s.job, s.event, s.detail); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append("old", EventEvicted, "retention"); err != nil {
		t.Fatal(err)
	}
	for _, rj := range j.Replay() {
		if rj.ID == "old" {
			t.Fatalf("evicted job still replays: %+v", rj)
		}
	}
	if compacted, err := j.Compact(); err != nil || !compacted {
		t.Fatalf("Compact() = %v, %v; eviction must shrink the sequence", compacted, err)
	}
	for _, r := range j.Records() {
		if r.Job == "old" {
			t.Fatalf("compaction kept a record of the evicted job: %+v", r)
		}
	}
	// Resubmission revives the ID.
	if err := j.Append("old", EventSubmitted, "acme"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rj := range j.Replay() {
		if rj.ID == "old" && rj.Phase == PhaseQueued && !rj.Evicted {
			found = true
		}
	}
	if !found {
		t.Fatal("resubmitted ID did not revive after eviction")
	}
}

// A legacy v1 journal.json migrates on open: same replayed state, the
// json gone, the records now in a segmented base.
func TestJournalLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	legacy := `{"format": "iddqsyn-serve-journal", "version": 1, "records": [
		{"seq": 1, "job": "j1", "event": "submitted", "detail": "acme"},
		{"seq": 2, "job": "j1", "event": "started", "detail": "1"},
		{"seq": 3, "job": "j1", "event": "finished"},
		{"seq": 4, "job": "j2", "event": "submitted", "detail": "zenith"}]}`
	if err := os.WriteFile(journalPath(dir), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := j.Replay()
	if len(jobs) != 2 || jobs[0].Phase != PhaseDone || jobs[1].Phase != PhaseQueued {
		t.Fatalf("migrated journal replays as %+v", jobs)
	}
	if _, serr := os.Stat(journalPath(dir)); !os.IsNotExist(serr) {
		t.Fatal("migration left journal.json behind")
	}
	if n := countJournalFiles(t, dir, ".base"); n != 1 {
		t.Fatalf("migration published %d base files, want 1", n)
	}
	// And the migrated state survives another open.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j2.Replay()); got != 2 {
		t.Fatalf("replayed %d jobs after migration, want 2", got)
	}
}

func TestJournalLegacyCorruptionIsNamed(t *testing.T) {
	cases := []struct{ name, content string }{
		{"zero-length", ""},
		{"not json", "][junk"},
		{"wrong format", `{"format": "something-else", "version": 1}`},
		{"wrong version", `{"format": "iddqsyn-serve-journal", "version": 99}`},
		{"seq gap", `{"format": "iddqsyn-serve-journal", "version": 1,
			"records": [{"seq": 2, "job": "x", "event": "submitted"}]}`},
		{"incomplete record", `{"format": "iddqsyn-serve-journal", "version": 1,
			"records": [{"seq": 1, "job": "", "event": "submitted"}]}`},
	}
	for _, tc := range cases {
		dir := t.TempDir()
		if err := os.WriteFile(journalPath(dir), []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenJournal(dir, JournalOptions{})
		if !errors.Is(err, ErrCorruptJournal) {
			t.Errorf("%s: err = %v, want ErrCorruptJournal", tc.name, err)
		}
	}
}

// The base is published atomically, so damage there has no innocent
// explanation: the open must refuse with ErrCorruptJournal instead of
// salvaging around it.
func TestJournalCorruptBaseRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []struct{ event, detail string }{
		{EventSubmitted, "acme"}, {EventStarted, "1"}, {EventFinished, ""},
	} {
		if err := j.Append("j1", s.event, s.detail); err != nil {
			t.Fatal(err)
		}
	}
	if compacted, err := j.Compact(); err != nil || !compacted {
		t.Fatalf("Compact() = %v, %v; want a published base", compacted, err)
	}
	_ = j.Close()
	base := basePath(dir, 0) // first compaction covers segment 0
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, JournalOptions{}); !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("corrupt base opened with err = %v, want ErrCorruptJournal", err)
	}
}

// An injected filesystem fault mid-append must leave both the file and
// the in-memory sequence at their previous state — the append-only
// contract under fire.
func TestJournalAppendAtomicUnderFaults(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("j1", EventSubmitted, "acme"); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()

	// Every fs operation fails, exhausting the retry budget.
	sched, err := chaos.ParseSchedule("seed=1,rate=1,sites=fs.*")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(sched, nil)
	jf, err := OpenJournal(dir, JournalOptions{
		FS:    chaos.NewFS(fsx.OS{}, inj),
		Retry: &fsx.RetryPolicy{Attempts: 2, BaseDelay: 1, MaxDelay: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jf.Append("j2", EventSubmitted, "acme"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("append under total fs failure: %v, want ErrInjected in the chain", err)
	}
	if jf.Len() != 1 {
		t.Fatalf("failed append mutated the in-memory sequence: %d records", jf.Len())
	}
	_ = jf.Close()
	j3, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatalf("journal damaged by failed append: %v", err)
	}
	if j3.Len() != 1 || j3.Records()[0].Job != "j1" {
		t.Fatalf("journal content changed under failed append: %+v", j3.Records())
	}
}

// A crash mid-append leaves a torn final frame on the active segment;
// the next open truncates it cleanly — no salvage counted, every
// acknowledged record intact, and the journal appendable again.
func TestJournalTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("j1", EventSubmitted, "acme"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("j1", EventStarted, "1"); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()
	seg := segPath(dir, 0)
	clean, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := encodeFrame(Record{Seq: 3, Job: "j1", Event: EventFinished})
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), clean...), frame[:len(frame)-5]...)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 2 {
		t.Fatalf("torn tail replayed %d records, want the 2 acknowledged ones", j2.Len())
	}
	if j2.Salvaged() != 0 {
		t.Fatalf("a torn tail counted as salvage (%d runs) — nothing acknowledged was lost", j2.Salvaged())
	}
	if got, _ := os.ReadFile(seg); len(got) != len(clean) {
		t.Fatalf("torn segment is %d bytes after open, want truncated to %d", len(got), len(clean))
	}
	// The repaired segment accepts appends again.
	if err := j2.Append("j1", EventFinished, ""); err != nil {
		t.Fatal(err)
	}
	_ = j2.Close()
	j3, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if jobs := j3.Replay(); len(jobs) != 1 || jobs[0].Phase != PhaseDone {
		t.Fatalf("post-repair append lost: %+v", jobs)
	}
}

// journalSegmentImage builds a raw segment file with n sequential
// records — the shared fixture of the corruption table tests.
func journalSegmentImage(t *testing.T, n int) ([]byte, []Record) {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Seq: i + 1, Job: fmt.Sprintf("job-%d", i), Event: EventSubmitted, Detail: "acme", At: int64(i + 1)}
	}
	data, err := encodeSegment(recs)
	if err != nil {
		t.Fatal(err)
	}
	return data, recs
}

// openSegmentImage plants data as the only segment of a fresh dir and
// opens the journal over it.
func openSegmentImage(t *testing.T, data []byte) (*Journal, string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatalf("salvage open must not fail: %v", err)
	}
	return j, dir
}

// The corruption table: flipping one byte at every offset of a segment
// loses at most the record whose frame contains the byte — never an
// earlier or later one — and damage ahead of the tail is counted and
// quarantined.
func TestJournalByteFlipLosesAtMostOneRecord(t *testing.T) {
	data, recs := journalSegmentImage(t, 3)
	// Frame boundaries: [segMagicLen, b1), [b1, b2), [b2, len).
	bounds := []int{segMagicLen}
	for pos := segMagicLen; pos < len(data); {
		_, size, ok := frameAt(data, pos)
		if !ok {
			t.Fatalf("clean image has an invalid frame at %d", pos)
		}
		pos += size
		bounds = append(bounds, pos)
	}
	frameOf := func(off int) int { // -1 = segment header
		for i := 1; i < len(bounds); i++ {
			if off < bounds[i] {
				return i - 1
			}
		}
		return len(bounds) - 2
	}
	for off := 0; off < len(data); off++ {
		flipped := append([]byte(nil), data...)
		flipped[off] ^= 0x01
		j, dir := openSegmentImage(t, flipped)
		got := map[string]bool{}
		for _, rj := range j.Replay() {
			got[rj.ID] = true
		}
		lost := frameOf(off)
		if off < segMagicLen {
			lost = -1
		}
		for i, r := range recs {
			switch {
			case i == lost && got[r.Job]:
				// The damaged record may still validate if the flip landed in
				// a byte the CRC does not cover and the frame still parses —
				// impossible here (every frame byte is load-bearing), so:
				t.Errorf("offset %d: record %d survived a flip inside its own frame", off, i)
			case i != lost && !got[r.Job]:
				t.Errorf("offset %d: record %d lost to a flip in frame %d", off, i, lost)
			}
		}
		// Damage ahead of the tail is salvage (counted + quarantined); a
		// flip in the final frame is indistinguishable from a torn tail and
		// truncates silently instead.
		if lost >= 0 && lost < len(recs)-1 || lost == -1 {
			if j.Salvaged() == 0 {
				t.Errorf("offset %d: damage before the tail not counted as salvage", off)
			}
			if _, serr := os.Stat(segPath(dir, 1) + ".corrupt"); serr != nil {
				t.Errorf("offset %d: no quarantine sidecar: %v", off, serr)
			}
		}
		_ = j.Close()
	}
}

// The truncation table: cutting the segment at every length replays
// exactly the records whose frames fit — a prefix, never a gap.
func TestJournalTruncationKeepsCleanPrefix(t *testing.T) {
	data, recs := journalSegmentImage(t, 3)
	fits := func(length int) int {
		n, pos := 0, segMagicLen
		for {
			_, size, ok := frameAt(data[:min(length, len(data))], pos)
			if !ok {
				return n
			}
			n++
			pos += size
		}
	}
	for length := 0; length <= len(data); length++ {
		j, _ := openSegmentImage(t, data[:length])
		jobs := j.Replay()
		want := fits(length)
		if len(jobs) != want {
			t.Fatalf("truncated to %d bytes: replayed %d records, want %d", length, len(jobs), want)
		}
		for i := 0; i < want; i++ {
			if jobs[i].ID != recs[i].Job {
				t.Fatalf("truncated to %d bytes: record %d is %s, want %s (prefix broken)",
					length, i, jobs[i].ID, recs[i].Job)
			}
		}
		_ = j.Close()
	}
}

// FuzzJournalReplay feeds arbitrary bytes to the segment reader via a
// real journal open: whatever is on disk, the open must either succeed
// (salvaging) or fail with a named error — never panic — and a second
// open of the salvaged state must succeed cleanly.
func FuzzJournalReplay(f *testing.F) {
	clean, err := encodeSegment([]Record{
		{Seq: 1, Job: "a", Event: EventSubmitted, Detail: "acme", At: 1},
		{Seq: 2, Job: "a", Event: EventFinished, At: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add([]byte{})
	f.Add(segMagic[:])
	f.Add(append(append([]byte(nil), segMagic[:]...), recMagic[:]...))
	f.Add(clean[:len(clean)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatalf("open of arbitrary segment bytes failed: %v", err)
		}
		if err := j.Append("fuzz", EventSubmitted, "t"); err != nil {
			t.Fatalf("append after salvage: %v", err)
		}
		_ = j.Close()
		j2, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatalf("reopen after salvage failed: %v", err)
		}
		found := false
		for _, rj := range j2.Replay() {
			if rj.ID == "fuzz" {
				found = true
			}
		}
		if !found {
			t.Fatal("record appended after salvage did not survive reopen")
		}
		_ = j2.Close()
	})
}

// Stranded atomic-write temps are swept on open.
func TestJournalOpenSweepsStrandedTemps(t *testing.T) {
	dir := t.TempDir()
	stranded := filepath.Join(dir, "journal-00000001.base.tmp123")
	if err := os.WriteFile(stranded, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, JournalOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, serr := os.Stat(stranded); !os.IsNotExist(serr) {
		t.Fatal("open did not sweep the stranded temp file")
	}
}

func TestJournalSideFiles(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := &JobSpec{Netlist: c17Netlist(t), Generations: 5}
	id, err := spec.JobID()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteSpec(id, spec); err != nil {
		t.Fatal(err)
	}
	back, err := j.LoadSpec(id)
	if err != nil {
		t.Fatal(err)
	}
	if back.Netlist != spec.Netlist || back.Generations != 5 {
		t.Fatalf("spec round trip: %+v", back)
	}
	res := &JobResult{ID: id, Circuit: "c17", Modules: 2, Cost: 1.5, Groups: [][]int{{0}, {1}}}
	if err := j.WriteResult(res); err != nil {
		t.Fatal(err)
	}
	rback, err := j.LoadResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if rback.Modules != 2 || rback.Cost != 1.5 {
		t.Fatalf("result round trip: %+v", rback)
	}
	// The side files live inside the data dir only.
	for _, p := range []string{specPath(dir, id), resultPath(dir, id)} {
		if filepath.Dir(p) != dir {
			t.Fatalf("side file escapes the data dir: %s", p)
		}
	}
	// RemoveJobFiles clears all three side files and tolerates retries.
	if err := j.RemoveJobFiles(id); err != nil {
		t.Fatal(err)
	}
	if _, serr := os.Stat(specPath(dir, id)); !os.IsNotExist(serr) {
		t.Fatal("RemoveJobFiles left the spec behind")
	}
	if err := j.RemoveJobFiles(id); err != nil {
		t.Fatalf("second RemoveJobFiles must be a no-op: %v", err)
	}
}

// Record timestamps come from the injected clock and measure retention
// age across compaction.
func TestJournalTimestampsUseInjectedClock(t *testing.T) {
	dir := t.TempDir()
	tick := int64(0)
	now := func() time.Time { tick += 1000; return time.Unix(0, tick) }
	j, err := OpenJournal(dir, JournalOptions{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("j1", EventSubmitted, "acme"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("j1", EventFinished, ""); err != nil {
		t.Fatal(err)
	}
	jobs := j.Replay()
	if len(jobs) != 1 || jobs[0].SubmittedAt != 1000 || jobs[0].TerminalAt != 2000 {
		t.Fatalf("injected clock not reflected: %+v", jobs)
	}
}
