package serve

import (
	"runtime"
	"testing"
	"time"

	"iddqsyn/internal/obs"
)

// TestStartCloseGoroutineGrowth is the runtime complement of the static
// goleak analyzer: repeated Start/Close cycles — including cycles with a
// job submitted and left in flight, so the shutdown path has real work
// to interrupt — must return the process to its baseline goroutine
// count. A worker, queue waiter or event-stream goroutine that survives
// Close shows up here as monotone growth.
func TestStartCloseGoroutineGrowth(t *testing.T) {
	dir := t.TempDir()
	cycle := func(submit bool) {
		s, err := New(Config{Dir: dir, Workers: 4, QueueCap: 8, Obs: obs.New("test", nil, nil)})
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		if submit {
			spec := &JobSpec{Netlist: c17Netlist(t), Generations: 50, Seed: 1}
			if _, _, err := s.submit(spec, "growth"); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
	}

	cycle(true) // warm pools, lazy runtime state, and the journal
	baseline := runtime.NumGoroutine()

	const cycles = 8
	for i := 0; i < cycles; i++ {
		cycle(i%2 == 0)
	}

	// Goroutines unwind asynchronously after Close returns; give them a
	// bounded grace period before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine count grew from %d to %d over %d Start/Close cycles\n%s",
				baseline, n, cycles, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
