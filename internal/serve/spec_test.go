package serve

import (
	"errors"
	"strings"
	"testing"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/circuits"
)

func c17Netlist(t testing.TB) string {
	t.Helper()
	return bench.Format(circuits.C17())
}

func TestParseJobSpecRawNetlist(t *testing.T) {
	nl := c17Netlist(t)
	spec, err := ParseJobSpec("text/plain", []byte(nl))
	if err != nil {
		t.Fatalf("raw netlist: %v", err)
	}
	c, err := spec.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogicGates() != 6 {
		t.Fatalf("C17 parsed to %d logic gates, want 6", c.NumLogicGates())
	}
	if spec.Method != "" || spec.Generations != 0 {
		t.Fatalf("raw submission must carry default options, got %+v", spec)
	}
}

func TestParseJobSpecJSON(t *testing.T) {
	body := `{"netlist": ` + jsonString(c17Netlist(t)) + `, "method": "standard", "generations": 10, "seed": 7, "timeout": "5s"}`
	spec, err := ParseJobSpec("application/json", []byte(body))
	if err != nil {
		t.Fatalf("json spec: %v", err)
	}
	if spec.Method != "standard" || spec.Generations != 10 || spec.Seed != 7 {
		t.Fatalf("decoded %+v", spec)
	}
	d, err := spec.JobTimeout()
	if err != nil || d.Seconds() != 5 {
		t.Fatalf("timeout: %v %v", d, err)
	}
}

func TestParseJobSpecNamedErrors(t *testing.T) {
	nl := jsonString(c17Netlist(t))
	cases := []struct {
		name        string
		contentType string
		body        string
	}{
		{"empty body", "text/plain", ""},
		{"garbage netlist", "text/plain", "this is not bench"},
		{"broken json", "application/json", `{"netlist": "x"`},
		{"unknown field", "application/json", `{"netlist": ` + nl + `, "generatons": 5}`},
		{"trailing data", "application/json", `{"netlist": ` + nl + `} extra`},
		{"bad method", "application/json", `{"netlist": ` + nl + `, "method": "annealing"}`},
		{"negative gens", "application/json", `{"netlist": ` + nl + `, "generations": -1}`},
		{"huge gens", "application/json", `{"netlist": ` + nl + `, "generations": 100001}`},
		{"bad timeout", "application/json", `{"netlist": ` + nl + `, "timeout": "yesterday"}`},
		{"huge timeout", "application/json", `{"netlist": ` + nl + `, "timeout": "26h"}`},
		{"bad name", "application/json", `{"netlist": ` + nl + `, "name": "../../etc/passwd"}`},
	}
	for _, tc := range cases {
		_, err := ParseJobSpec(tc.contentType, []byte(tc.body))
		if !errors.Is(err, ErrSpec) {
			t.Errorf("%s: err = %v, want ErrSpec", tc.name, err)
		}
	}
}

func TestJobSpecHash(t *testing.T) {
	nl := c17Netlist(t)
	a := &JobSpec{Netlist: nl, Generations: 10}
	b := &JobSpec{Netlist: nl, Generations: 10, Tenant: "other", Name: "label"}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("tenant and name must not split the content hash")
	}
	// Whitespace and comments in the netlist are structural no-ops.
	c := &JobSpec{Netlist: "# comment\n\n" + nl + "\n", Generations: 10}
	if hc, _ := c.Hash(); hc != ha {
		t.Fatal("netlist formatting must not split the content hash")
	}
	d := &JobSpec{Netlist: nl, Generations: 11}
	if hd, _ := d.Hash(); hd == ha {
		t.Fatal("a different generation budget must produce a different hash")
	}
	w := &JobSpec{Netlist: nl, Generations: 10, Workers: 4}
	if hw, _ := w.Hash(); hw != ha {
		t.Fatal("workers must not split the cache: the result is bit-identical for any worker count")
	}
	// Defaulted fields hash identically to their explicit defaults: the
	// runtime treats them the same, so the cache must too.
	expl := &JobSpec{Netlist: nl, Generations: 10, Method: "evolution", Seed: 1}
	if he, _ := expl.Hash(); he != ha {
		t.Fatal("explicit defaults must not split the content hash")
	}
	t60 := &JobSpec{Netlist: nl, Generations: 10, Timeout: "60s"}
	t1m := &JobSpec{Netlist: nl, Generations: 10, Timeout: "1m"}
	h60, _ := t60.Hash()
	if h1m, _ := t1m.Hash(); h60 != h1m {
		t.Fatal("one timeout spelled two ways must not split the content hash")
	}
	if h60 == ha {
		t.Fatal("an explicit timeout must hash apart from the server-default budget")
	}
	s2 := &JobSpec{Netlist: nl, Generations: 10, Seed: 2}
	if hs2, _ := s2.Hash(); hs2 == ha {
		t.Fatal("a different seed must produce a different hash")
	}
	id, err := a.JobID()
	if err != nil || len(id) != 17 || id[0] != 'j' {
		t.Fatalf("JobID = %q, %v", id, err)
	}
}

// jsonString JSON-encodes s (tests build spec bodies by hand).
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// FuzzJobSpec drives the submission parser with arbitrary bytes and
// content types: it must never panic, and every rejection must wrap the
// named ErrSpec so the HTTP layer classifies it as a client error.
func FuzzJobSpec(f *testing.F) {
	c17 := bench.Format(circuits.C17())
	f.Add("text/plain", c17)
	f.Add("application/json", `{"netlist": "INPUT a\nOUTPUT b\nb = NOT(a)"}`)
	f.Add("application/json", `{"netlist": "", "method": "evolution"}`)
	f.Add("application/json", `{"generations": -5}`)
	f.Add("text/plain", "INPUT(\x00)\ngarbage")
	f.Add("application/json", `{"netlist": 42}`)
	f.Add("text/plain", "{")
	f.Fuzz(func(t *testing.T, contentType, body string) {
		spec, err := ParseJobSpec(contentType, []byte(body))
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("non-spec error from the parser: %v", err)
			}
			return
		}
		// An accepted spec must survive the rest of the pipeline's entry
		// points without panicking.
		if _, err := spec.Circuit(); err != nil {
			t.Fatalf("accepted spec fails Circuit: %v", err)
		}
		if _, err := spec.Options(); err != nil {
			t.Fatalf("accepted spec fails Options: %v", err)
		}
		if _, err := spec.JobID(); err != nil {
			t.Fatalf("accepted spec fails JobID: %v", err)
		}
	})
}
