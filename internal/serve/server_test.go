package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/fsx"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/partcheck"
)

// newTestServer assembles a served test instance over a temp data dir.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New("test", nil, nil)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// postJSON submits a spec and decodes the response status.
func postJSON(t *testing.T, url string, spec *JobSpec) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &st)
	return resp, st
}

// waitDone polls a job until it leaves the queued/running phases.
func waitDone(t *testing.T, url, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Phase == "done" || st.Phase == "failed" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobStatus{}
}

func getResult(t *testing.T, url, id string) *JobResult {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("result status %d: %s", resp.StatusCode, body)
	}
	res := &JobResult{}
	if err := json.NewDecoder(resp.Body).Decode(res); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestServerLifecycle(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2})
	s.Start()
	spec := &JobSpec{Netlist: c17Netlist(t), Generations: 40, Seed: 1}
	resp, st := postJSON(t, hs.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if resp.Header.Get("Location") != "/jobs/"+st.ID {
		t.Fatalf("Location %q for job %s", resp.Header.Get("Location"), st.ID)
	}
	final := waitDone(t, hs.URL, st.ID)
	if final.Phase != "done" {
		t.Fatalf("job ended %s: %s", final.Phase, final.Detail)
	}
	res := getResult(t, hs.URL, st.ID)
	if res.Report == "" || res.Modules < 1 {
		t.Fatalf("thin result: %+v", res)
	}
	// A healthy pipeline must converge the optimizer itself — a silently
	// degraded fallback here would mean the evolution path is broken.
	if res.Degraded {
		t.Fatalf("healthy job degraded: %s", res.DegradedErr)
	}
	if res.Generations == 0 || res.Evaluations == 0 {
		t.Fatalf("no optimizer work recorded: %+v", res)
	}
	// The durable result must hold a structurally valid partition of the
	// submitted circuit — the service's core guarantee.
	c, err := spec.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	if r := partcheck.VerifyStructure(c, res.Groups); !r.OK() {
		t.Fatalf("result partition fails the audit: %v", r.Err())
	}

	// Identical resubmission: same content-derived ID, served from cache
	// with 200 (not 202), no second job.
	resp2, st2 := postJSON(t, hs.URL, spec)
	if resp2.StatusCode != http.StatusOK || st2.ID != st.ID {
		t.Fatalf("resubmit: status %d id %s (want 200, %s)", resp2.StatusCode, st2.ID, st.ID)
	}
	// A different tenant label dedupes onto the same job too.
	withTenant := *spec
	withTenant.Tenant = "someone-else"
	resp3, st3 := postJSON(t, hs.URL, &withTenant)
	if resp3.StatusCode != http.StatusOK || st3.ID != st.ID {
		t.Fatalf("cross-tenant resubmit: status %d id %s", resp3.StatusCode, st3.ID)
	}
}

func TestServerRawNetlistSubmit(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1})
	s.Start()
	req, err := http.NewRequest("POST", hs.URL+"/jobs", strings.NewReader(c17Netlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-Tenant", "curl-user")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("raw submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "curl-user" {
		t.Fatalf("tenant %q, want the X-Tenant header", st.Tenant)
	}
	if got := waitDone(t, hs.URL, st.ID); got.Phase != "done" {
		t.Fatalf("raw-submitted job ended %s: %s", got.Phase, got.Detail)
	}
}

func TestServerBadSpecIs400(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(`{"netlist": ""}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d, want 400", resp.StatusCode)
	}
}

// Overload: with no workers draining and a one-slot queue, the second
// distinct submission must be refused with 429 and a Retry-After hint —
// the documented backpressure contract.
func TestServerOverloadReturns429(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueCap: 1}) // Start never called: nothing drains
	a := &JobSpec{Netlist: c17Netlist(t), Generations: 10, Seed: 1}
	b := &JobSpec{Netlist: c17Netlist(t), Generations: 10, Seed: 2}
	if resp, _ := postJSON(t, hs.URL, a); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp, _ := postJSON(t, hs.URL, b)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	// A duplicate of the queued job is still a cache hit, not a 429:
	// admission dedupes before it counts capacity.
	if resp, st := postJSON(t, hs.URL, a); resp.StatusCode != http.StatusOK || st.Phase != "queued" {
		t.Fatalf("duplicate under overload: %d phase %s", resp.StatusCode, st.Phase)
	}
}

// SSE: a finished job's event stream opens, delivers its terminal
// status as the first event, and ends.
func TestServerEventsStream(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1})
	s.Start()
	spec := &JobSpec{Netlist: c17Netlist(t), Generations: 30}
	_, st := postJSON(t, hs.URL, spec)
	waitDone(t, hs.URL, st.ID)
	resp, err := http.Get(hs.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // terminal job: the stream ends by itself
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(string(body), "\n\n")
	data, ok := strings.CutPrefix(first, "data: ")
	if !ok {
		t.Fatalf("first frame is not an SSE data frame: %q", first)
	}
	var ev progressEvent
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Job != st.ID || ev.Phase != "done" {
		t.Fatalf("first event %+v", ev)
	}
}

// Restart must never be refused by the admission cap: at crash time the
// journal can hold more unfinished jobs than QueueCap (a full queue
// plus the in-flight ones), so replay bypasses the capacity check.
func TestServerReplayExceedsQueueCap(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Config{Dir: dir, Workers: 1, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		spec := &JobSpec{Netlist: c17Netlist(t), Generations: 10, Seed: int64(i + 1)}
		j, _, err := a.submit(spec, "acme")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.id)
	}
	a.Close() // never started: all three are durably queued

	// The restarted server's cap is smaller than its own backlog —
	// exactly the overload shape under which crashes are most likely.
	b, err := New(Config{Dir: dir, Workers: 1, QueueCap: 1})
	if err != nil {
		t.Fatalf("restart refused its own journal: %v", err)
	}
	defer b.Close()
	b.Start()
	for _, id := range ids {
		j := b.lookup(id)
		if j == nil {
			t.Fatalf("job %s not replayed", id)
		}
		select {
		case <-j.doneCh():
		case <-time.After(30 * time.Second):
			t.Fatalf("replayed job %s never finished", id)
		}
		if st := j.status(); st.Phase != "done" {
			t.Fatalf("replayed job %s ended %s: %s", id, st.Phase, st.Detail)
		}
	}
}

// backoff must tolerate the huge attempt numbers a crash-looping job
// accumulates across restarts: no shift overflow, no jitter panic.
func TestServerBackoffLargeAttemptNoPanic(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Obs: obs.New("test", nil, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.cancel(errShutdown) // cancelled context: the sleeps return immediately
	for _, attempt := range []int{1, 6, 7, 38, 39, 64, 65, 1 << 20} {
		s.backoff(attempt)
	}
}

// failingResultFS fails every rename that would publish a result side
// file while armed — a transient persistent-storage fault localized to
// results (journal, spec and checkpoint writes stay healthy).
type failingResultFS struct {
	fsx.FS
	fail atomic.Bool
}

func (f *failingResultFS) Rename(oldpath, newpath string) error {
	if f.fail.Load() && strings.Contains(newpath, "result-") {
		return errors.New("injected: result volume offline")
	}
	return f.FS.Rename(oldpath, newpath)
}

// A failed job must not poison the cache forever: once the transient
// cause clears, resubmitting the identical spec re-admits the job with
// a fresh attempt window instead of replaying the stale failure.
func TestServerFailedJobResubmission(t *testing.T) {
	ffs := &failingResultFS{FS: fsx.OS{}}
	ffs.fail.Store(true)
	s, hs := newTestServer(t, Config{
		Workers: 1,
		FS:      ffs,
		Retry:   &fsx.RetryPolicy{Attempts: 2, BaseDelay: 1, MaxDelay: 1},
	})
	s.Start()
	spec := &JobSpec{Netlist: c17Netlist(t), Generations: 20, Seed: 9}
	_, st := postJSON(t, hs.URL, spec)
	if got := waitDone(t, hs.URL, st.ID); got.Phase != "failed" {
		t.Fatalf("job under result-write faults ended %s, want failed", got.Phase)
	}

	// Fault cleared: the identical submission re-runs rather than
	// cache-hitting the failure — 202, same content-derived ID.
	ffs.fail.Store(false)
	resp, st2 := postJSON(t, hs.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit of failed job: status %d, want 202", resp.StatusCode)
	}
	if st2.ID != st.ID {
		t.Fatalf("resubmission changed the job ID: %s vs %s", st2.ID, st.ID)
	}
	final := waitDone(t, hs.URL, st2.ID)
	if final.Phase != "done" {
		t.Fatalf("resubmitted job ended %s: %s", final.Phase, final.Detail)
	}
	if res := getResult(t, hs.URL, st.ID); res.Modules < 1 {
		t.Fatalf("thin result after resubmission: %+v", res)
	}
}

// Restart: a job submitted but never run must survive the process —
// replayed from the journal, re-enqueued, and finished by the next
// server over the same data directory.
func TestServerRestartRunsJournaledJobs(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := &JobSpec{Netlist: c17Netlist(t), Generations: 30, Seed: 5}
	j, cached, err := a.submit(spec, "acme")
	if err != nil || cached {
		t.Fatalf("submit: %v cached=%v", err, cached)
	}
	a.Close() // workers never started: the job is durably queued, nothing ran

	b, err := New(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rj := b.lookup(j.id)
	if rj == nil || rj.spec == nil {
		t.Fatal("journaled job not replayed into the restarted server")
	}
	if rj.tenant != "acme" {
		t.Fatalf("tenant lost across restart: %q", rj.tenant)
	}
	b.Start()
	select {
	case <-rj.done:
	case <-time.After(30 * time.Second):
		t.Fatal("replayed job never finished")
	}
	if st := rj.status(); st.Phase != "done" {
		t.Fatalf("replayed job ended %s: %s", st.Phase, st.Detail)
	}
	res, err := b.Journal().LoadResult(j.id)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := spec.Circuit()
	if r := partcheck.VerifyStructure(c, res.Groups); !r.OK() {
		t.Fatalf("replayed result fails the audit: %v", r.Err())
	}
}

// In-process shutdown/resume equality: stop the server mid-run, reopen
// the data dir, finish the job — the final cost must be bit-identical
// to an uninterrupted run of the same spec, by the evolution package's
// resume guarantee carried through the whole service stack.
func TestServerShutdownResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second double synthesis")
	}
	netlist, err := os.ReadFile("../../benchmarks/c432.bench")
	if err != nil {
		t.Fatal(err)
	}
	spec := &JobSpec{
		Netlist: string(netlist), ModuleSize: 40,
		Generations: 60, Seed: 3, Timeout: "5m",
	}

	// Reference: the uninterrupted run.
	refDir := t.TempDir()
	ref, err := New(Config{Dir: refDir, Workers: 1, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	refJob, _, err := ref.submit(spec, "ref")
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	select {
	case <-refJob.done:
	case <-time.After(2 * time.Minute):
		t.Fatal("reference run did not finish")
	}
	refRes, err := ref.Journal().LoadResult(refJob.id)
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	// Interrupted: same spec, shut the server down mid-optimization.
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir, Workers: 1, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	j1, _, err := s1.submit(spec, "acme")
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	deadline := time.Now().Add(time.Minute)
	for {
		j1.mu.Lock()
		gen := j1.gen
		j1.mu.Unlock()
		if gen >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached generation 5")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s1.Close() // interrupts at a generation boundary, persists the checkpoint

	s2, err := New(Config{Dir: dir, Workers: 1, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j2 := s2.lookup(j1.id)
	if j2 == nil {
		t.Fatal("interrupted job not replayed")
	}
	s2.Start()
	select {
	case <-j2.done:
	case <-time.After(2 * time.Minute):
		t.Fatal("resumed job did not finish")
	}
	res, err := s2.Journal().LoadResult(j1.id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != refRes.Cost || res.Generations != refRes.Generations ||
		res.Evaluations != refRes.Evaluations {
		t.Fatalf("resumed run diverged: cost %v/%v gens %d/%d evals %d/%d",
			res.Cost, refRes.Cost, res.Generations, refRes.Generations,
			res.Evaluations, refRes.Evaluations)
	}
	if res.Report != refRes.Report {
		t.Fatal("resumed run's report differs from the uninterrupted reference")
	}
}

// A job whose own wall-clock budget expires still finishes durably —
// best-so-far, audit-clean, and loudly marked timed_out.
func TestServerJobTimeoutFinishesBestSoFar(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second synthesis")
	}
	netlist, err := os.ReadFile("../../benchmarks/c432.bench")
	if err != nil {
		t.Fatal(err)
	}
	s, hs := newTestServer(t, Config{Workers: 1})
	s.Start()
	spec := &JobSpec{
		Netlist: string(netlist), ModuleSize: 40,
		Generations: 400, Seed: 3, Timeout: "1ms",
	}
	_, st := postJSON(t, hs.URL, spec)
	final := waitDone(t, hs.URL, st.ID)
	if final.Phase != "done" {
		t.Fatalf("timed-out job ended %s: %s", final.Phase, final.Detail)
	}
	res := getResult(t, hs.URL, st.ID)
	if !res.TimedOut {
		t.Fatalf("expired budget not marked: %+v", res)
	}
	c, _ := spec.Circuit()
	if r := partcheck.VerifyStructure(c, res.Groups); !r.OK() {
		t.Fatalf("best-so-far result fails the audit: %v", r.Err())
	}
}

// Concurrent smoke load: distinct jobs from several tenants at once,
// all finishing valid. Run under -race in CI.
func TestServeConcurrentLoad(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 4, QueueCap: 32})
	s.Start()
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := &JobSpec{
				Netlist: c17Netlist(t), Generations: 30,
				Seed: int64(i + 1), Tenant: fmt.Sprintf("tenant-%d", i%3),
			}
			body, _ := json.Marshal(spec)
			resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(string(body)))
			if err != nil {
				errs <- err
				return
			}
			var st JobStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			_ = resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			deadline := time.Now().Add(time.Minute)
			for time.Now().Before(deadline) {
				r2, err := http.Get(hs.URL + "/jobs/" + st.ID)
				if err != nil {
					errs <- err
					return
				}
				var cur JobStatus
				err = json.NewDecoder(r2.Body).Decode(&cur)
				_ = r2.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				switch cur.Phase {
				case "done":
					return
				case "failed":
					errs <- fmt.Errorf("job %s failed: %s", st.ID, cur.Detail)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			errs <- fmt.Errorf("job %s never finished", st.ID)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The journal recorded every submission.
	if got := s.Journal().Len(); got < n*2 {
		t.Fatalf("journal has %d records for %d jobs", got, n)
	}
}

func TestServerIntrospectionEndpoints(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1})
	s.Start()
	spec := &JobSpec{Netlist: c17Netlist(t), Generations: 20}
	_, st := postJSON(t, hs.URL, spec)
	waitDone(t, hs.URL, st.ID)
	for _, path := range []string{"/jobz", "/healthz", "/metricz", "/debug/vars", "/"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", path)
		}
	}
	resp, err := http.Get(hs.URL + "/jobz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("jobz: %+v", jobs)
	}
	// The metrics registry counted the lifecycle.
	if s.o.Counter(MetricSubmitted).Value() != 1 || s.o.Counter(MetricFinished).Value() != 1 {
		t.Fatalf("metrics: submitted=%d finished=%d",
			s.o.Counter(MetricSubmitted).Value(), s.o.Counter(MetricFinished).Value())
	}
}

// A traced job must leave behind a complete causal trace — queue wait,
// attempt, the core phases and per-generation evolution spans all under
// one root — plus the queue-wait histogram and per-tenant admission
// counters, all visible over the HTTP surface.
func TestServerTracingAndQueueMetrics(t *testing.T) {
	o := obs.New("test", nil, nil)
	o.SetTracer(obs.NewTracer(obs.TracerConfig{}))
	s, hs := newTestServer(t, Config{Workers: 1, Obs: o})
	s.Start()
	spec := &JobSpec{Netlist: c17Netlist(t), Generations: 20, Tenant: "acme"}
	_, st := postJSON(t, hs.URL, spec)
	if final := waitDone(t, hs.URL, st.ID); final.Phase != "done" {
		t.Fatalf("job phase %q: %s", final.Phase, final.Detail)
	}

	// Queue-wait histogram observed the claim; per-tenant admit counted.
	if n := s.o.Histogram(MetricQueueWait, nil).Count(); n != 1 {
		t.Errorf("%s count = %d, want 1", MetricQueueWait, n)
	}
	if n := s.o.Counter("serve.tenant.acme.admitted").Value(); n != 1 {
		t.Errorf("serve.tenant.acme.admitted = %d, want 1", n)
	}

	// /metricz renders quantiles for the wait histogram.
	resp, err := http.Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Quantiles[MetricQueueWait]; !ok {
		t.Errorf("/metricz quantiles missing %s: %v", MetricQueueWait, snap.Quantiles)
	}

	// /tracez retains the job's trace with the full span decomposition.
	resp, err = http.Get(hs.URL + "/tracez?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var ts obs.TraceSnapshot
	err = json.NewDecoder(resp.Body).Decode(&ts)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Slowest) != 1 {
		t.Fatalf("retained traces = %d, want 1", len(ts.Slowest))
	}
	tr := ts.Slowest[0]
	if tr.Root != "serve.job" {
		t.Fatalf("trace root = %q, want serve.job", tr.Root)
	}
	names := map[string]bool{}
	var rootID uint64
	var childSum int64
	for _, sp := range tr.Spans {
		names[sp.Name] = true
		if sp.Name == "serve.job" {
			rootID = sp.Span
		}
	}
	for _, want := range []string{"serve.admit", "queue.wait", "serve.attempt",
		"serve.publish", "core.annotate", "core.optimize", "core.audit", "core.chip",
		"evolution.evaluate", "evolution.select"} {
		if !names[want] {
			t.Errorf("trace is missing span %q (have %v)", want, names)
		}
	}
	for _, sp := range tr.Spans {
		if sp.Parent == rootID {
			childSum += sp.Dur
		}
	}
	// The root's direct children (admit, queue wait, attempts, publish)
	// must account for essentially all of the end-to-end latency — the
	// "where did the millisecond go" property.
	if childSum < tr.Dur*8/10 {
		t.Errorf("direct children cover %d of %d ns (%.0f%%), want >= 80%%",
			childSum, tr.Dur, 100*float64(childSum)/float64(tr.Dur))
	}

	// A rejected submission ticks the tenant's rejected counter.
	full, fhs := newTestServer(t, Config{Workers: 1, QueueCap: 1}) // Start never called: nothing drains
	_, _ = postJSON(t, fhs.URL, &JobSpec{Netlist: c17Netlist(t), Generations: 20, Tenant: "acme"})
	rr, _ := postJSON(t, fhs.URL, &JobSpec{Netlist: c17Netlist(t), Generations: 21, Tenant: "acme"})
	if rr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status %d, want 429", rr.StatusCode)
	}
	if n := full.o.Counter("serve.tenant.acme.rejected").Value(); n != 1 {
		t.Errorf("serve.tenant.acme.rejected = %d, want 1", n)
	}
}

func TestTenantLabel(t *testing.T) {
	cases := map[string]string{
		"acme":                  "acme",
		"tenant-1_b":            "tenant-1_b",
		"":                      "other",
		"has space":             "other",
		"dots.are.bad":          "other",
		"unicode-é":             "other",
		strings.Repeat("a", 33): "other",
	}
	for in, want := range cases {
		if got := tenantLabel(in); got != want {
			t.Errorf("tenantLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// Chaos survival: a one-shot worker panic and a one-shot estimator NaN
// must be absorbed by the retry machinery — the job still converges to
// a valid, durable result.
func TestServerSurvivesInjectedFaults(t *testing.T) {
	sched, err := chaos.ParseSchedule("seed=1,after=3,sites=evolution.worker.panic|estimate.nan")
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New("chaos-test", nil, nil)
	s, hs := newTestServer(t, Config{Workers: 1, Obs: o, Chaos: chaos.New(sched, o)})
	s.Start()
	spec := &JobSpec{Netlist: c17Netlist(t), Generations: 40}
	_, st := postJSON(t, hs.URL, spec)
	final := waitDone(t, hs.URL, st.ID)
	if final.Phase != "done" {
		t.Fatalf("job under injected faults ended %s: %s", final.Phase, final.Detail)
	}
	res := getResult(t, hs.URL, st.ID)
	c, _ := spec.Circuit()
	if r := partcheck.VerifyStructure(c, res.Groups); !r.OK() {
		t.Fatalf("chaos-survived result fails the audit: %v", r.Err())
	}
}
