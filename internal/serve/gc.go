// Storage-lifecycle maintenance: retention, garbage collection and
// disk-budget shedding. A long-lived server accretes terminal jobs —
// each a spec, a result, often a checkpoint, plus journal records — and
// without a lifecycle the data directory grows until the disk fills and
// every durability guarantee dies with an ENOSPC mid-append. The
// maintenance loop (one goroutine, started with the workers, stopped by
// Close) periodically:
//
//  1. compacts the journal (terminal jobs fold to two records, evicted
//     jobs to none) and sweeps stranded atomic-write temps;
//  2. applies the retention policy: terminal jobs beyond Config.RetainAge
//     or in excess of Config.RetainJobs are evicted, oldest terminal
//     first. Queued and running jobs are never evicted, and a done job
//     inside the retention window keeps serving cached results;
//  3. enforces Config.DiskBudget: while the data directory exceeds it,
//     remaining terminal jobs are evicted oldest-first regardless of the
//     retention window; if the directory still exceeds the budget, new
//     admissions are shed;
//  4. recovers from shedding: once the budget holds and a probe write
//     succeeds (the genuine full-disk test), admissions reopen.
//
// Eviction removes the job's side files *first* and appends the
// EventEvicted record *second*: a crash between the two replays as a
// done job whose result file is missing, which replay finishes evicting
// (server.go) — the reverse order could leak files that no record will
// ever account for. Shedding is load-shedding, not failure: submissions
// get 503 + Retry-After while in-flight jobs run to completion, and
// /healthz reports the named degradation so operators and load
// balancers see the state without reading logs.

package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"iddqsyn/internal/fsx"
)

// DefaultMaintenanceEvery is the maintenance-loop cadence.
const DefaultMaintenanceEvery = 2 * time.Second

// Storage-lifecycle telemetry.
const (
	// MetricStoreBytes gauges the data directory's total size — journal,
	// side files, quarantine sidecars — as of the last maintenance pass.
	MetricStoreBytes = "serve.store.bytes"
	// MetricStoreEvicted counts jobs evicted by retention or budget.
	MetricStoreEvicted = "serve.store.evicted"
	// MetricShed counts submissions refused with 503 while shedding.
	MetricShed = "serve.admission.shed"
)

// tempSweepAge is how old a temp file must be before the periodic sweep
// removes it: long enough that no live WriteAtomic attempt can still own
// it (the open-time sweep, with no concurrent writers, uses zero).
const tempSweepAge = time.Hour

// Shedding reports whether admissions are currently shed, and why.
func (s *Server) Shedding() (reason string, active bool) {
	if !s.shedding.Load() {
		return "", false
	}
	r, _ := s.shedReason.Load().(string)
	return r, true
}

// shed closes admissions with a named reason. Idempotent; the first
// reason wins until recovery so the logs tell one coherent story.
func (s *Server) shed(reason string) {
	s.shedReason.Store(reason)
	if !s.shedding.Swap(true) {
		s.o.Log().Warn("shedding admissions", "reason", reason)
	}
}

// unshed reopens admissions after the disk recovered.
func (s *Server) unshed() {
	if s.shedding.Swap(false) {
		r, _ := s.shedReason.Load().(string)
		s.o.Log().Info("admissions recovered", "was", r)
	}
}

// noteWriteError inspects a durable-write failure for evidence of a
// full disk. errors.Is sees through both the retry wrapping and the
// chaos injection chain (an injected fs.enospc carries the real
// syscall.ENOSPC), so the shedder reacts to a genuinely full disk and a
// rehearsed one identically.
func (s *Server) noteWriteError(err error) {
	if errors.Is(err, syscall.ENOSPC) {
		s.shed("disk full (ENOSPC)")
	}
}

// StoreBytes measures the data directory: every regular file's size,
// best-effort (entries racing their own removal count as zero).
func (s *Server) StoreBytes() int64 {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if info, ierr := e.Info(); ierr == nil {
			total += info.Size()
		}
	}
	return total
}

// terminalOldestFirst snapshots the terminal (done/failed) jobs in
// eviction order: oldest terminal transition first.
func (s *Server) terminalOldestFirst() []*job {
	s.mu.Lock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	var out []*job
	ages := make(map[*job]int64)
	for _, j := range all {
		j.mu.Lock()
		if j.phase == PhaseDone || j.phase == PhaseFailed {
			out = append(out, j)
			ages[j] = j.terminalAt
		}
		j.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if ages[out[a]] != ages[out[b]] {
			return ages[out[a]] < ages[out[b]]
		}
		return out[a].id < out[b].id // deterministic tie-break
	})
	return out
}

// evictJob removes one terminal job: unhooked from the cache map (so a
// resubmission of the same content becomes a fresh job), side files
// removed, EventEvicted appended. Returns the side-file bytes freed, or
// 0 if the job was no longer evictable (resubmitted between snapshot
// and eviction).
func (s *Server) evictJob(j *job, reason string) int64 {
	s.mu.Lock()
	j.mu.Lock()
	terminal := j.phase == PhaseDone || j.phase == PhaseFailed
	if terminal {
		delete(s.jobs, j.id)
	}
	j.mu.Unlock()
	s.mu.Unlock()
	if !terminal {
		return 0
	}
	var freed int64
	for _, p := range []string{
		specPath(s.cfg.Dir, j.id), resultPath(s.cfg.Dir, j.id), checkpointPath(s.cfg.Dir, j.id),
	} {
		if st, err := os.Stat(p); err == nil {
			freed += st.Size()
		}
	}
	if err := s.journal.RemoveJobFiles(j.id); err != nil {
		s.o.Log().Warn("eviction could not remove side files", "job", j.id, "err", err.Error())
	}
	// Files first, record second: if this append fails (or we crash
	// here), a done job replays with its result missing and the replay
	// path finishes the eviction — nothing leaks, nothing resurrects.
	if err := s.journal.Append(j.id, EventEvicted, reason); err != nil {
		s.o.Log().Warn("eviction record not journaled", "job", j.id, "err", err.Error())
		s.noteWriteError(err)
	}
	s.o.Counter(MetricStoreEvicted).Inc()
	s.o.Log().Info("job evicted", "job", j.id, "reason", reason, "freed_bytes", freed)
	return freed
}

// Maintain runs one maintenance pass. The background loop calls it on
// the configured cadence; tests and the torture harness call it
// directly to make lifecycle transitions deterministic.
func (s *Server) Maintain() {
	if _, err := s.journal.Compact(); err != nil {
		s.o.Log().Warn("journal compaction failed", "err", err.Error())
		s.noteWriteError(err)
	}
	if _, err := fsx.SweepTemp(s.cfg.FS, s.cfg.Dir, tempSweepAge); err != nil {
		s.o.Log().Warn("temp sweep incomplete", "err", err.Error())
	}

	// Retention: walk terminal jobs oldest-first; a job falls to age when
	// its terminal transition left the retention window, and to count
	// when keeping it would exceed the cap (the oldest go first).
	now := time.Now().UnixNano()
	terminal := s.terminalOldestFirst()
	remaining := make([]*job, 0, len(terminal))
	n := len(terminal)
	for i, j := range terminal {
		j.mu.Lock()
		at := j.terminalAt
		j.mu.Unlock()
		switch {
		case s.cfg.RetainAge > 0 && at > 0 && now-at > int64(s.cfg.RetainAge):
			s.evictJob(j, "retention: age")
		case s.cfg.RetainJobs > 0 && n-i > s.cfg.RetainJobs:
			s.evictJob(j, "retention: count")
		default:
			remaining = append(remaining, j)
		}
	}

	// Disk budget: evict the survivors oldest-first while the directory
	// overflows — budget pressure overrides the retention window, because
	// a full disk takes the whole service down and a cache entry does not.
	size := s.StoreBytes()
	if b := s.cfg.DiskBudget; b > 0 && size > b {
		for _, j := range remaining {
			size -= s.evictJob(j, "disk budget")
			if size <= b {
				break
			}
		}
		if _, err := s.journal.Compact(); err == nil {
			size = s.StoreBytes() // compaction may have freed journal bytes too
		}
	}
	s.o.Gauge(MetricStoreBytes).Set(float64(size))

	// Shedding transitions. Over budget with nothing left to evict means
	// the live jobs themselves exceed the budget: shed until they drain.
	// An ENOSPC shed additionally demands a successful probe write — the
	// disk itself must answer, not our bookkeeping.
	if b := s.cfg.DiskBudget; b > 0 && size > b {
		s.shed(fmt.Sprintf("disk budget exceeded: %d > %d bytes", size, b))
		return
	}
	if _, active := s.Shedding(); active {
		if err := s.probeWrite(); err != nil {
			s.o.Log().Warn("disk probe still failing", "err", err.Error())
			return
		}
		s.unshed()
	}
}

// probeWrite exercises the full durable-write path with a throwaway
// file — the recovery test an ENOSPC shed must pass before admissions
// reopen.
func (s *Server) probeWrite() error {
	p := filepath.Join(s.cfg.Dir, "probe.json")
	if err := fsx.WriteAtomic(s.cfg.FS, p, []byte(`{"probe":true}`)); err != nil {
		return err
	}
	return os.Remove(p)
}

// maintainLoop is the background maintenance goroutine (started by
// Start, stopped by Close via the server context).
func (s *Server) maintainLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.MaintenanceEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.Maintain()
		}
	}
}
