// The HTTP surface of the job service, on the Go 1.22 pattern mux:
//
//	POST /jobs              submit (JSON spec, or a raw bench netlist)
//	GET  /jobs/{id}         job status
//	GET  /jobs/{id}/result  durable result (once done)
//	GET  /jobs/{id}/events  SSE progress stream
//	GET  /jobz              every job's status
//	GET  /healthz           readiness (503 until admission passes)
//	GET  /metricz           metrics snapshot with latency quantiles
//	GET  /tracez            slowest retained causal traces (Chrome trace_event)
//	GET  /debug/...         the obs introspection tree (expvar, pprof)
//
// The handler is mounted behind obs.HardenedServerMax (body cap, read/
// write/idle timeouts); the SSE handler is the one place that extends
// its own write deadline, via http.NewResponseController.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"iddqsyn/internal/obs"
)

// MaxSubmitBytes caps a submission body: the largest netlist plus spec
// overhead. cmd/iddqserve passes it to obs.HardenedServerMax.
const MaxSubmitBytes = MaxNetlistBytes + 64*1024

// Handler builds the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobz", func(w http.ResponseWriter, _ *http.Request) {
		obs.WriteJSON(w, s.Jobs())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "admission self-test pending or failed")
			return
		}
		if reason, active := s.Shedding(); active {
			// Degraded, with the reason named: load balancers see the 503,
			// operators see why without reading logs.
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "degraded: shedding admissions: "+reason)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, _ *http.Request) {
		snap := s.o.Registry().Snapshot()
		snap.ComputeQuantiles()
		obs.WriteJSON(w, snap)
	})
	mux.HandleFunc("GET /tracez", func(w http.ResponseWriter, r *http.Request) {
		obs.ServeTracez(w, r, s.o.Tracer())
	})
	mux.Handle("GET /debug/", obs.NewMux(s.o))
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "iddqserve — IDDQ-testable partition synthesis as a service")
		fmt.Fprintln(w, "")
		fmt.Fprintln(w, "POST /jobs              submit a netlist (bench text or JSON spec)")
		fmt.Fprintln(w, "GET  /jobs/{id}         job status")
		fmt.Fprintln(w, "GET  /jobs/{id}/result  result (once done)")
		fmt.Fprintln(w, "GET  /jobs/{id}/events  SSE progress stream")
		fmt.Fprintln(w, "GET  /jobz /healthz /metricz /tracez /debug/")
	})
	return mux
}

// writeError serves a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable,
			errors.New("serve: admission self-test pending or failed"))
		return
	}
	if reason, active := s.Shedding(); active {
		// Storage-pressure shedding: distinct from queue overload (429) —
		// more work cannot be made durable right now, so retrying another
		// replica is right and retrying here soon may not be. Retry-After
		// spans at least one maintenance pass, the earliest recovery point.
		s.o.Counter(MetricShed).Inc()
		s.tenantRejected(r.Header.Get("X-Tenant"))
		retry := int(s.cfg.MaintenanceEvery/time.Second) + 1
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: shedding admissions: %s", reason))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := ParseJobSpec(r.Header.Get("Content-Type"), body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = spec.Tenant
	}
	j, cached, err := s.submit(spec, tenant)
	switch {
	case errors.Is(err, ErrOverloaded):
		// The documented backpressure contract: 429 plus a Retry-After
		// estimate derived from the backlog and the worker pool.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.RetryAfter()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrSpec):
		writeError(w, http.StatusBadRequest, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	w.Header().Set("Location", "/jobs/"+j.id)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(j.status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	obs.WriteJSON(w, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	st := j.status()
	switch st.Phase {
	case PhaseDone.String():
		res, err := s.journal.LoadResult(j.id)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// The maintenance loop evicted this job between lookup and
				// load; the job is gone, not broken.
				writeError(w, http.StatusNotFound, errors.New("serve: result evicted"))
				return
			}
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		obs.WriteJSON(w, res)
	case PhaseFailed.String():
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("serve: job failed: %s", st.Detail))
	default:
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.RetryAfter()))
		writeError(w, http.StatusNotFound,
			fmt.Errorf("serve: job is %s; no result yet", st.Phase))
	}
}

// handleEvents streams the job's progress as server-sent events until
// the job reaches a terminal phase or the client goes away. The first
// event is always the job's current status, so a subscriber to an
// already-finished job still observes its outcome.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	rc := http.NewResponseController(w)
	// A progress stream legitimately outlives the server's WriteTimeout;
	// clear the per-response deadline (the idle/read limits still apply
	// to the connection).
	_ = rc.SetWriteDeadline(time.Time{})
	ch, cancel := j.stream().Subscribe(obs.DefaultSubscriberBuffer)
	defer cancel()
	writeEvent := func(v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	st := j.status()
	if !writeEvent(progressEvent{
		Job: st.ID, Phase: st.Phase,
		Generation: st.Generation, BestCost: st.BestCost, Detail: st.Detail,
	}) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return // broadcaster closed: terminal phase reached
			}
			if !writeEvent(ev) {
				return
			}
		}
	}
}
