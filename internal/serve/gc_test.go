package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/fsx"
	"iddqsyn/internal/obs"
)

// runJobs submits n distinct jobs (seed-varied specs) and waits for all
// of them to finish, returning their IDs in submission order.
func runJobs(t *testing.T, hs *httptest.Server, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		spec := &JobSpec{Netlist: c17Netlist(t), Generations: 10, Seed: int64(i + 1)}
		resp, st := postJSON(t, hs.URL, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := waitDone(t, hs.URL, id); st.Phase != "done" {
			t.Fatalf("job %s ended %s: %s", id, st.Phase, st.Detail)
		}
	}
	return ids
}

func TestMaintainRetentionCountEvictsOldestFirst(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Workers: 2, RetainJobs: 1, MaintenanceEvery: time.Hour, // loop inert; Maintain driven by the test
	})
	s.Start()
	ids := runJobs(t, hs, 3)
	// Terminal order is finish order, which with 2 workers is not
	// submission order; read each job's terminalAt to find the survivor.
	newest, newestAt := "", int64(0)
	for _, id := range ids {
		j := s.lookup(id)
		j.mu.Lock()
		if j.terminalAt > newestAt {
			newest, newestAt = id, j.terminalAt
		}
		j.mu.Unlock()
	}

	s.Maintain()

	for _, id := range ids {
		alive := s.lookup(id) != nil
		if id == newest && !alive {
			t.Fatalf("newest job %s evicted; retention must keep it", id)
		}
		if id != newest {
			if alive {
				t.Fatalf("job %s survived a RetainJobs=1 pass", id)
			}
			for _, p := range []string{specPath(s.cfg.Dir, id), resultPath(s.cfg.Dir, id)} {
				if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
					t.Fatalf("evicted job %s left side file %s", id, p)
				}
			}
			resp, err := http.Get(hs.URL + "/jobs/" + id + "/result")
			if err != nil {
				t.Fatal(err)
			}
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("evicted job result: status %d, want 404", resp.StatusCode)
			}
		}
	}
	// The survivor still serves its cached result.
	if res := getResult(t, hs.URL, newest); res.Report == "" {
		t.Fatalf("survivor %s lost its result", newest)
	}
	// Eviction is durable: a restarted server must not resurrect the
	// evicted jobs.
	s.Close()
	s2, err := New(Config{Dir: s.cfg.Dir, Obs: obs.New("reopen", nil, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, id := range ids {
		if got := s2.lookup(id) != nil; got != (id == newest) {
			t.Fatalf("after restart job %s present=%v, want %v", id, got, id == newest)
		}
	}
}

func TestMaintainRetentionAgePinsQueuedJobs(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Workers: 1, RetainAge: time.Nanosecond, MaintenanceEvery: time.Hour,
	})
	s.Start()
	done := runJobs(t, hs, 1)[0]
	s.Close() // stop the workers so the next submission stays queued

	s2, err := New(Config{
		Dir: s.cfg.Dir, RetainAge: time.Nanosecond, MaintenanceEvery: time.Hour,
		Obs: obs.New("reopen", nil, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() // workers never started: the queued job stays queued
	queued, _, err := s2.submit(&JobSpec{Netlist: c17Netlist(t), Generations: 10, Seed: 99}, "t1")
	if err != nil {
		t.Fatal(err)
	}

	s2.Maintain()

	if s2.lookup(done) != nil {
		t.Fatalf("terminal job %s survived RetainAge=1ns", done)
	}
	if s2.lookup(queued.id) == nil {
		t.Fatal("queued job was evicted; queued/running jobs must be pinned")
	}
	if _, err := os.Stat(specPath(s2.cfg.Dir, queued.id)); err != nil {
		t.Fatalf("queued job lost its spec: %v", err)
	}
}

func TestMaintainDiskBudgetShedsAndRecovers(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2, MaintenanceEvery: time.Hour})
	s.Start()
	ids := runJobs(t, hs, 3)
	s.Close()
	hs.Close()

	// Reopen under an impossible budget: everything terminal must go, and
	// with the journal base alone still over budget, admissions shed.
	o := obs.New("reopen", nil, nil)
	s2, err := New(Config{Dir: s.cfg.Dir, DiskBudget: 1, MaintenanceEvery: time.Hour, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()

	s2.Maintain()

	for _, id := range ids {
		if s2.lookup(id) != nil {
			t.Fatalf("job %s survived budget pressure", id)
		}
	}
	reason, active := s2.Shedding()
	if !active || !strings.Contains(reason, "disk budget exceeded") {
		t.Fatalf("shedding = (%q, %v), want active budget shed", reason, active)
	}

	// Submissions shed with 503 + Retry-After; health reports degraded.
	resp, _ := postJSON(t, hs2.URL, &JobSpec{Netlist: c17Netlist(t), Generations: 10, Seed: 50})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 missing Retry-After")
	}
	hresp, err := http.Get(hs2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	_ = hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hbody), "degraded") {
		t.Fatalf("healthz while shedding: %d %q, want 503 degraded", hresp.StatusCode, hbody)
	}

	// The lifecycle metrics are on /metricz.
	mresp, err := http.Get(hs2.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	_ = mresp.Body.Close()
	var snap struct {
		Counters map[string]uint64  `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatalf("metricz decode: %v", err)
	}
	if snap.Counters[MetricStoreEvicted] < uint64(len(ids)) {
		t.Fatalf("%s = %d, want >= %d", MetricStoreEvicted, snap.Counters[MetricStoreEvicted], len(ids))
	}
	if snap.Counters[MetricShed] == 0 {
		t.Fatalf("%s missing after a shed 503:\n%s", MetricShed, mbody)
	}
	for _, g := range []string{MetricStoreBytes, MetricJournalBytes} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Fatalf("gauge %s missing from /metricz:\n%s", g, mbody)
		}
	}

	// Budget relief recovers admissions automatically on the next pass.
	s2.cfg.DiskBudget = 1 << 30 // maintenance loop is inert (1h); no concurrent reader
	s2.Maintain()
	if reason, active := s2.Shedding(); active {
		t.Fatalf("still shedding after budget relief: %q", reason)
	}
	resp2, _ := postJSON(t, hs2.URL, &JobSpec{Netlist: c17Netlist(t), Generations: 10, Seed: 51})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery submit: status %d, want 202", resp2.StatusCode)
	}
}

func TestENOSPCShedsUntilProbeSucceeds(t *testing.T) {
	// One-shot ENOSPC on the first filesystem write: the submission that
	// hits it fails, the server sheds, and the next maintenance pass —
	// whose probe write now succeeds — reopens admissions.
	inj := chaos.New(chaos.Schedule{Seed: 7, After: 1, Sites: []string{"fs.enospc"}}, nil)
	s, hs := newTestServer(t, Config{
		Workers: 1, MaintenanceEvery: time.Hour,
		FS:    chaos.NewFS(fsx.OS{}, inj),
		Retry: &fsx.RetryPolicy{Attempts: 1}, // no retry masking the one-shot fault
	})
	// Workers intentionally not started: admission paths only.

	spec := &JobSpec{Netlist: c17Netlist(t), Generations: 10, Seed: 1}
	_, _, err := s.submit(spec, "t1")
	if err == nil {
		t.Fatal("submit succeeded through an injected ENOSPC")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("submit error %v does not carry ENOSPC", err)
	}
	reason, active := s.Shedding()
	if !active || !strings.Contains(reason, "ENOSPC") {
		t.Fatalf("shedding = (%q, %v), want ENOSPC shed", reason, active)
	}

	resp, _ := postJSON(t, hs.URL, spec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submit: status %d, want 503", resp.StatusCode)
	}

	// The one-shot fault is spent; the probe write passes and admissions
	// recover.
	s.Maintain()
	if reason, active := s.Shedding(); active {
		t.Fatalf("still shedding after disk recovered: %q", reason)
	}
	resp2, _ := postJSON(t, hs.URL, spec)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery submit: status %d, want 202", resp2.StatusCode)
	}
}

func TestMaintainLoopRunsInBackground(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Workers: 1, RetainJobs: 1, MaintenanceEvery: 10 * time.Millisecond,
	})
	s.Start()
	// Submit two distinct jobs; the loop may evict the first before a
	// status poll ever observes it done, so wait on the end invariant
	// (exactly one terminal job retained) instead of per-job phases.
	for i := 0; i < 2; i++ {
		spec := &JobSpec{Netlist: c17Netlist(t), Generations: 10, Seed: int64(i + 1)}
		if resp, _ := postJSON(t, hs.URL, spec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		jobs := s.Jobs()
		if len(jobs) == 1 && jobs[0].Phase == "done" {
			return // the loop evicted down to the retention cap on its own
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("background maintenance never enforced RetainJobs; jobs: %+v", s.Jobs())
}
