package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/fsx"
	"iddqsyn/internal/obs"
)

// Until the admission self-test passes, the service refuses traffic:
// /healthz is 503 and submissions bounce. After it passes, both open up.
func TestSelfTestGatesAdmission(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, SelfTestAdmission: true})
	s.Start()
	if s.Ready() {
		t.Fatal("server ready before the self-test ran")
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz before self-test: %d, want 503", resp.StatusCode)
	}
	sub, err := http.Post(hs.URL+"/jobs", "text/plain", strings.NewReader(c17Netlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	_ = sub.Body.Close()
	if sub.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit before self-test: %d, want 503", sub.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.SelfTest(ctx); err != nil {
		t.Fatalf("self-test on a healthy pipeline: %v", err)
	}
	if !s.Ready() {
		t.Fatal("self-test passed but the server stayed unready")
	}
	resp2, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after self-test: %d", resp2.StatusCode)
	}
}

// Chaos admission, the survivable case: one-shot injected faults on the
// worker pool, the estimator and the checkpoint filesystem are absorbed
// by retry/degrade, so the probe converges and the server opens.
func TestSelfTestSurvivesChaos(t *testing.T) {
	sched, err := chaos.ParseSchedule("seed=3,after=2,sites=evolution.worker.panic|estimate.nan|fs.sync")
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New("admission-chaos", nil, nil)
	inj := chaos.New(sched, o)
	s, _ := newTestServer(t, Config{
		Workers: 1, SelfTestAdmission: true,
		Obs: o, Chaos: inj, FS: chaos.NewFS(fsx.OS{}, inj),
	})
	s.Start()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.SelfTest(ctx); err != nil {
		t.Fatalf("self-test under one-shot chaos: %v", err)
	}
	if !s.Ready() {
		t.Fatal("survivable chaos left the server unready")
	}
	if inj.Total() == 0 {
		t.Fatal("the schedule injected nothing — the test proved nothing")
	}
}

// Chaos admission, the fatal case: an estimator that always poisons
// every evaluation defeats retries and the standard fallback alike. The
// self-test must fail and the server must keep refusing traffic —
// that is the admission contract.
func TestSelfTestRefusesFatalChaos(t *testing.T) {
	sched, err := chaos.ParseSchedule("seed=1,rate=1,sites=estimate.nan")
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New("admission-fatal", nil, nil)
	s, hs := newTestServer(t, Config{
		Workers: 1, SelfTestAdmission: true,
		Obs: o, Chaos: chaos.New(sched, o),
	})
	s.Start()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.SelfTest(ctx); err == nil {
		t.Fatal("self-test passed under a fully poisoned estimator")
	}
	if s.Ready() {
		t.Fatal("failed self-test left the server ready")
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after failed self-test: %d, want 503", resp.StatusCode)
	}
}
