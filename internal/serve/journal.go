// The durable job journal: every lifecycle transition of every job —
// submitted, started, finished, failed — is a record in an append-only
// sequence, published crash-safely through fsx.WriteAtomicRetry. The
// journal is the service's source of truth across restarts: opening a
// data directory replays the record sequence into per-job states, and
// every job that was submitted but never finished is simply work to
// re-enqueue (its evolution checkpoint, if one was written, makes the
// re-run resume instead of restart).
//
// The sequence is logically append-only; physically each append
// republishes the whole journal file through the atomic-write protocol,
// so a crash at any point leaves the previous journal intact — never a
// truncated or interleaved one. To keep that per-append rewrite from
// growing without bound over a long-lived server, opening a journal
// compacts it: each terminal job's record run is folded down to its
// submitted + terminal pair (the per-attempt records only matter while
// a job is live), so the file size tracks the job count, not the full
// lifecycle history. Job specs and results live in side files
// (spec-<id>.json, result-<id>.json) written *before* the record that
// references them: a crash between the two leaves an orphaned side file,
// which is harmless, rather than a dangling reference, which would not
// be.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"iddqsyn/internal/fsx"
)

// ErrCorruptJournal is wrapped by every OpenJournal failure caused by
// the journal file's content, as opposed to an I/O error reading it.
var ErrCorruptJournal = errors.New("serve: corrupt job journal")

// JournalFormat and JournalVersion identify the journal file format; a
// mismatch is a load error, never a silent misreplay.
const (
	JournalFormat  = "iddqsyn-serve-journal"
	JournalVersion = 1
)

// The journal event kinds.
const (
	// EventSubmitted: the job's spec is durably recorded and the job is
	// queued. Detail carries the tenant.
	EventSubmitted = "submitted"
	// EventStarted: a worker picked the job up. Detail carries the
	// attempt number.
	EventStarted = "started"
	// EventFinished: the job's result file is durably recorded. Detail
	// distinguishes "" (converged) from "degraded" and "timeout".
	EventFinished = "finished"
	// EventFailed: every attempt failed; Detail carries the named error.
	EventFailed = "failed"
)

// Record is one journal entry.
type Record struct {
	Seq    int    `json:"seq"`
	Job    string `json:"job"`
	Event  string `json:"event"`
	Detail string `json:"detail,omitempty"`
}

// journalFile is the on-disk representation.
type journalFile struct {
	Format  string   `json:"format"`
	Version int      `json:"version"`
	Records []Record `json:"records"`
}

// JobPhase is a job's lifecycle phase as replayed from the journal.
type JobPhase int

// The replayed phases, in lifecycle order.
const (
	PhaseQueued JobPhase = iota
	PhaseRunning
	PhaseDone
	PhaseFailed
)

// String names the phase for status responses.
func (p JobPhase) String() string {
	switch p {
	case PhaseQueued:
		return "queued"
	case PhaseRunning:
		return "running"
	case PhaseDone:
		return "done"
	case PhaseFailed:
		return "failed"
	}
	return fmt.Sprintf("JobPhase(%d)", int(p))
}

// ReplayedJob is the folded journal state of one job.
type ReplayedJob struct {
	ID       string
	Tenant   string
	Phase    JobPhase
	Attempts int
	Detail   string // EventFinished/EventFailed detail
}

// Journal is the open journal of one data directory. All methods are
// safe for concurrent use; appends are serialized.
type Journal struct {
	fs  fsx.FS
	dir string
	pol *fsx.RetryPolicy

	mu   sync.Mutex
	recs []Record
}

// journalPath is the journal file inside a data directory.
func journalPath(dir string) string { return filepath.Join(dir, "journal.json") }

// specPath is the spec side file of a job.
func specPath(dir, id string) string { return filepath.Join(dir, "spec-"+id+".json") }

// resultPath is the result side file of a job.
func resultPath(dir, id string) string { return filepath.Join(dir, "result-"+id+".json") }

// checkpointPath is the evolution checkpoint of a job.
func checkpointPath(dir, id string) string { return filepath.Join(dir, "ckpt-"+id+".ckpt") }

// OpenJournal opens (or creates) the journal in dir, replay-validating
// any existing file. Writes go through fs (nil = the real filesystem)
// with retry policy pol (nil = fsx defaults).
func OpenJournal(fs fsx.FS, dir string, pol *fsx.RetryPolicy) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	j := &Journal{fs: fs, dir: dir, pol: pol}
	data, err := os.ReadFile(journalPath(dir))
	switch {
	case errors.Is(err, os.ErrNotExist):
		return j, nil
	case err != nil:
		return nil, fmt.Errorf("serve: read journal: %w", err)
	}
	if len(data) == 0 {
		// The atomic-write protocol cannot produce this by crashing; an
		// empty file points at an external cause worth naming.
		return nil, fmt.Errorf("serve: journal %s: %w: zero-length file", journalPath(dir), ErrCorruptJournal)
	}
	var jf journalFile
	if err := json.Unmarshal(data, &jf); err != nil {
		return nil, fmt.Errorf("serve: journal %s: %w: %w", journalPath(dir), ErrCorruptJournal, err)
	}
	if jf.Format != JournalFormat {
		return nil, fmt.Errorf("serve: journal %s: %w: format %q (want %q)",
			journalPath(dir), ErrCorruptJournal, jf.Format, JournalFormat)
	}
	if jf.Version != JournalVersion {
		return nil, fmt.Errorf("serve: journal %s: %w: version %d not supported (want %d)",
			journalPath(dir), ErrCorruptJournal, jf.Version, JournalVersion)
	}
	for i, r := range jf.Records {
		if r.Seq != i+1 {
			return nil, fmt.Errorf("serve: journal %s: %w: record %d has seq %d",
				journalPath(dir), ErrCorruptJournal, i, r.Seq)
		}
		if r.Job == "" || r.Event == "" {
			return nil, fmt.Errorf("serve: journal %s: %w: record %d is incomplete",
				journalPath(dir), ErrCorruptJournal, r.Seq)
		}
	}
	j.recs = jf.Records
	// Compact: terminal jobs fold to their submitted + terminal pair, so
	// per-append rewrites stay proportional to the job count instead of
	// the full lifecycle history. Best-effort — if publishing the
	// compacted file fails, the uncompacted sequence stays authoritative
	// (compaction is an I/O optimization, never a correctness need).
	if recs, changed := compactRecords(jf.Records); changed {
		if err := j.publish(recs); err == nil {
			j.recs = recs
		}
	}
	return j, nil
}

// fold applies one record to a job's replayed state.
func fold(job *ReplayedJob, r Record) {
	switch r.Event {
	case EventSubmitted:
		job.Tenant = r.Detail
		job.Phase = PhaseQueued
	case EventStarted:
		job.Phase = PhaseRunning
		job.Attempts++
	case EventFinished:
		job.Phase = PhaseDone
		job.Detail = r.Detail
	case EventFailed:
		job.Phase = PhaseFailed
		job.Detail = r.Detail
	}
}

// compactRecords rewrites the sequence with each terminal job reduced
// to a two-record summary that replays to the identical state (tenant,
// phase, detail; a terminal job's attempt count is only meaningful
// while it is live). Live jobs keep their records untouched. Reports
// whether anything shrank; the returned sequence is re-numbered.
func compactRecords(recs []Record) ([]Record, bool) {
	byID := make(map[string]*ReplayedJob)
	perJob := make(map[string][]Record)
	var order []string
	for _, r := range recs {
		if _, ok := byID[r.Job]; !ok {
			byID[r.Job] = &ReplayedJob{ID: r.Job}
			order = append(order, r.Job)
		}
		fold(byID[r.Job], r)
		perJob[r.Job] = append(perJob[r.Job], r)
	}
	out := make([]Record, 0, len(recs))
	for _, id := range order {
		job := byID[id]
		switch job.Phase {
		case PhaseDone, PhaseFailed:
			ev := EventFinished
			if job.Phase == PhaseFailed {
				ev = EventFailed
			}
			out = append(out,
				Record{Job: id, Event: EventSubmitted, Detail: job.Tenant},
				Record{Job: id, Event: ev, Detail: job.Detail})
		default:
			out = append(out, perJob[id]...)
		}
	}
	if len(out) == len(recs) {
		return recs, false
	}
	for i := range out {
		out[i].Seq = i + 1
	}
	return out, true
}

// Dir is the journal's data directory.
func (j *Journal) Dir() string { return j.dir }

// Len is the number of records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Records returns a copy of the record sequence.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.recs...)
}

// Append durably appends one record (Seq is assigned here). The record
// is visible to Records only after the journal file is published; a
// failed append leaves both the file and the in-memory sequence at the
// previous state.
func (j *Journal) Append(job, event, detail string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := Record{Seq: len(j.recs) + 1, Job: job, Event: event, Detail: detail}
	recs := append(append([]Record(nil), j.recs...), rec)
	if err := j.publish(recs); err != nil {
		return err
	}
	j.recs = recs
	return nil
}

// publish marshals and atomically republishes the full record sequence.
// The caller must hold j.mu or have exclusive access (OpenJournal).
func (j *Journal) publish(recs []Record) error {
	jf := journalFile{Format: JournalFormat, Version: JournalVersion, Records: recs}
	data, err := json.MarshalIndent(jf, "", " ")
	if err != nil {
		return fmt.Errorf("serve: marshal journal: %w", err)
	}
	if err := fsx.WriteAtomicRetry(j.fs, journalPath(j.dir), data, j.pol); err != nil {
		return fmt.Errorf("serve: append journal: %w", err)
	}
	return nil
}

// WriteSpec durably records a job's spec side file. It must complete
// before the EventSubmitted record referencing it is appended.
func (j *Journal) WriteSpec(id string, spec *JobSpec) error {
	data, err := json.MarshalIndent(spec, "", " ")
	if err != nil {
		return fmt.Errorf("serve: marshal spec: %w", err)
	}
	if err := fsx.WriteAtomicRetry(j.fs, specPath(j.dir, id), data, j.pol); err != nil {
		return fmt.Errorf("serve: write spec: %w", err)
	}
	return nil
}

// LoadSpec reads a job's spec side file back (restart replay).
func (j *Journal) LoadSpec(id string) (*JobSpec, error) {
	data, err := os.ReadFile(specPath(j.dir, id))
	if err != nil {
		return nil, fmt.Errorf("serve: load spec for %s: %w", id, err)
	}
	spec := &JobSpec{}
	if err := json.Unmarshal(data, spec); err != nil {
		return nil, fmt.Errorf("serve: spec for %s: %w: %w", id, ErrCorruptJournal, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("serve: spec for %s: %w", id, err)
	}
	return spec, nil
}

// WriteResult durably records a job's result side file. It must
// complete before the EventFinished record referencing it is appended.
func (j *Journal) WriteResult(res *JobResult) error {
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return fmt.Errorf("serve: marshal result: %w", err)
	}
	if err := fsx.WriteAtomicRetry(j.fs, resultPath(j.dir, res.ID), data, j.pol); err != nil {
		return fmt.Errorf("serve: write result: %w", err)
	}
	return nil
}

// LoadResult reads a job's result side file back.
func (j *Journal) LoadResult(id string) (*JobResult, error) {
	data, err := os.ReadFile(resultPath(j.dir, id))
	if err != nil {
		return nil, fmt.Errorf("serve: load result for %s: %w", id, err)
	}
	res := &JobResult{}
	if err := json.Unmarshal(data, res); err != nil {
		return nil, fmt.Errorf("serve: result for %s: %w: %w", id, ErrCorruptJournal, err)
	}
	return res, nil
}

// Replay folds the record sequence into per-job states, in first-seen
// submission order. A job whose terminal record (finished/failed) is
// missing replays as queued-or-running — exactly the work a restarted
// server must pick back up.
func (j *Journal) Replay() []*ReplayedJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	byID := make(map[string]*ReplayedJob)
	var order []*ReplayedJob
	for _, r := range j.recs {
		job := byID[r.Job]
		if job == nil {
			job = &ReplayedJob{ID: r.Job}
			byID[r.Job] = job
			order = append(order, job)
		}
		fold(job, r)
	}
	return order
}
