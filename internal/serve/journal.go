// The durable job journal: every lifecycle transition of every job —
// submitted, started, finished, failed, evicted — is a record in an
// append-only sequence that survives any crash. The journal is the
// service's source of truth across restarts: opening a data directory
// replays the record sequence into per-job states, and every job that
// was submitted but never finished is simply work to re-enqueue (its
// evolution checkpoint, if one was written, makes the re-run resume
// instead of restart).
//
// Physically the sequence is segmented. Appends go to an active segment
// file (journal-<n>.seg) as CRC32C-framed records (segment.go), one
// write + fsync per record — O(1) per append, where the v1 journal
// republished the whole file every time. When the active segment
// reaches its size threshold it is sealed and a new one started.
// Compaction folds the whole sequence down — each terminal job to its
// submitted + terminal pair, evicted jobs to nothing — and publishes it
// as a base file (journal-<n>.base) through the atomic-write protocol;
// the base's index records which segments it covers, so a crash between
// publishing the base and deleting the folded segments is repaired on
// the next open (stale segments are simply removed). Replay cost is
// O(live jobs), not O(history).
//
// Damage tolerance is asymmetric by construction. Append segments are
// written in place, so a crash can tear their tail and a disk can flip
// their bits: replay salvages them — a torn tail is truncated, a
// CRC-failing run is skipped to the next valid frame, quarantined to a
// .corrupt sidecar and counted in serve.journal.salvaged — and the next
// compaction folds the survivors into a clean base. The base itself is
// only ever published atomically, so damage there has no innocent
// explanation: it fails the open with ErrCorruptJournal.
//
// Job specs and results live in side files (spec-<id>.json,
// result-<id>.json) written *before* the record that references them: a
// crash between the two leaves an orphaned side file, which is
// harmless, rather than a dangling reference, which would not be.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"iddqsyn/internal/fsx"
	"iddqsyn/internal/obs"
)

// ErrCorruptJournal is wrapped by every OpenJournal failure caused by
// journal content that salvage cannot repair — a damaged base file or
// an invalid legacy journal — as opposed to an I/O error reading it.
var ErrCorruptJournal = errors.New("serve: corrupt job journal")

// JournalFormat and JournalVersion identify the legacy (v1) whole-file
// journal format, still parsed for migration; a mismatch is a load
// error, never a silent misreplay.
const (
	JournalFormat  = "iddqsyn-serve-journal"
	JournalVersion = 1
)

// Journal telemetry.
const (
	// MetricJournalBytes gauges the journal's on-disk footprint (base +
	// segments, excluding side files and quarantine sidecars).
	MetricJournalBytes = "serve.journal.bytes"
	// MetricJournalSalvaged counts damaged runs skipped during replay —
	// every increment means bytes were quarantined to a .corrupt sidecar.
	MetricJournalSalvaged = "serve.journal.salvaged"
)

// DefaultSegmentMaxBytes is the roll threshold of the active segment.
const DefaultSegmentMaxBytes = 256 << 10

// The journal event kinds.
const (
	// EventSubmitted: the job's spec is durably recorded and the job is
	// queued. Detail carries the tenant.
	EventSubmitted = "submitted"
	// EventStarted: a worker picked the job up. Detail carries the
	// attempt number.
	EventStarted = "started"
	// EventFinished: the job's result file is durably recorded. Detail
	// distinguishes "" (converged) from "degraded" and "timeout".
	EventFinished = "finished"
	// EventFailed: every attempt failed; Detail carries the named error.
	EventFailed = "failed"
	// EventEvicted: retention/GC removed the terminal job's side files;
	// the job no longer replays (compaction drops its records entirely).
	// Appended *after* the side files are gone, so a crash between the
	// two leaves a done job with a missing result — which replay finishes
	// evicting — never an evicted record whose files linger uncounted.
	EventEvicted = "evicted"
)

// Record is one journal entry. At is the wall-clock append time in Unix
// nanoseconds — retention age is measured from it.
type Record struct {
	Seq    int    `json:"seq"`
	Job    string `json:"job"`
	Event  string `json:"event"`
	Detail string `json:"detail,omitempty"`
	At     int64  `json:"at,omitempty"`
}

// journalFile is the legacy v1 on-disk representation.
type journalFile struct {
	Format  string   `json:"format"`
	Version int      `json:"version"`
	Records []Record `json:"records"`
}

// JobPhase is a job's lifecycle phase as replayed from the journal.
type JobPhase int

// The replayed phases, in lifecycle order.
const (
	PhaseQueued JobPhase = iota
	PhaseRunning
	PhaseDone
	PhaseFailed
)

// String names the phase for status responses.
func (p JobPhase) String() string {
	switch p {
	case PhaseQueued:
		return "queued"
	case PhaseRunning:
		return "running"
	case PhaseDone:
		return "done"
	case PhaseFailed:
		return "failed"
	}
	return fmt.Sprintf("JobPhase(%d)", int(p))
}

// ReplayedJob is the folded journal state of one job.
type ReplayedJob struct {
	ID       string
	Tenant   string
	Phase    JobPhase
	Attempts int
	Detail   string // EventFinished/EventFailed detail
	// SubmittedAt / TerminalAt are the record timestamps (Unix nanos) of
	// the job's latest admission and terminal transition — what retention
	// age is measured from. Zero for pre-timestamp records.
	SubmittedAt int64
	TerminalAt  int64
	// Evicted marks a job whose side files retention/GC removed; it is
	// excluded from Replay and dropped at the next compaction.
	Evicted bool
}

// JournalOptions configures OpenJournal. The zero value is usable: real
// filesystem, default retry policy, unobserved, default segment size.
type JournalOptions struct {
	// FS routes segment appends and base publishes (nil = the real
	// filesystem; chaos tests pass a chaos.FS).
	FS fsx.FS
	// Retry is the atomic-publish retry policy (nil = fsx defaults).
	Retry *fsx.RetryPolicy
	// Obs receives the journal metrics and salvage warnings (nil = none).
	Obs *obs.Obs
	// SegmentMaxBytes is the active-segment roll threshold
	// (0 = DefaultSegmentMaxBytes).
	SegmentMaxBytes int64
	// Now supplies record timestamps (nil = time.Now; tests inject a
	// deterministic clock).
	Now func() time.Time
}

// Journal is the open journal of one data directory. All methods are
// safe for concurrent use; appends are serialized.
type Journal struct {
	fs     fsx.FS
	dir    string
	pol    *fsx.RetryPolicy
	o      *obs.Obs
	segMax int64
	now    func() time.Time

	mu          sync.Mutex
	recs        []Record
	maxSeq      int
	active      fsx.File // open handle to the active segment (lazy; nil until first append)
	activeIndex int
	activeSize  int64
	sealedBytes int64 // base + sealed segments
	salvaged    uint64
}

// File layout inside a data directory.

// journalPath is the legacy v1 journal file (migrated on open).
func journalPath(dir string) string { return filepath.Join(dir, "journal.json") }

// segPath is append segment n.
func segPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%08d.seg", n))
}

// basePath is the compacted base covering segments <= n.
func basePath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%08d.base", n))
}

// specPath is the spec side file of a job.
func specPath(dir, id string) string { return filepath.Join(dir, "spec-"+id+".json") }

// resultPath is the result side file of a job.
func resultPath(dir, id string) string { return filepath.Join(dir, "result-"+id+".json") }

// checkpointPath is the evolution checkpoint of a job.
func checkpointPath(dir, id string) string { return filepath.Join(dir, "ckpt-"+id+".ckpt") }

// journalIndex parses the numeric index out of a segment or base file
// name with the given extension, or -1.
func journalIndex(name, ext string) int {
	var n int
	if _, err := fmt.Sscanf(name, "journal-%08d"+ext, &n); err != nil || n < 0 {
		return -1
	}
	if name != fmt.Sprintf("journal-%08d"+ext, n) {
		return -1
	}
	return n
}

// OpenJournal opens (or creates) the journal in dir: stranded temp
// files are swept, a legacy v1 journal is migrated, the newest base is
// loaded strictly, the append segments above it are replayed with
// salvage, and the folded sequence is compacted back into a fresh base
// when that shrinks it (or when salvage left damaged segments behind).
func OpenJournal(dir string, opt JournalOptions) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	j := &Journal{
		fs: opt.FS, dir: dir, pol: opt.Retry, o: opt.Obs,
		segMax: opt.SegmentMaxBytes, now: opt.Now,
	}
	if j.segMax <= 0 {
		j.segMax = DefaultSegmentMaxBytes
	}
	if j.now == nil {
		j.now = time.Now
	}
	// A crash mid-WriteAtomic strands its temp file; no concurrent writer
	// can exist while the directory is being opened, so sweep them all.
	if n, err := fsx.SweepTemp(j.fs, dir, 0); err != nil {
		j.o.Log().Warn("journal temp sweep incomplete", "dir", dir, "err", err.Error())
	} else if n > 0 {
		j.o.Log().Info("removed stranded temp files", "dir", dir, "count", n)
	}

	baseIdx, segIdxs, err := j.scanDir()
	if err != nil {
		return nil, err
	}

	// Legacy migration: a v1 journal.json with no segmented state becomes
	// the first base. With segmented state present, the json is a leftover
	// of a migration that crashed after publishing the base — remove it
	// and load the segmented state as usual.
	legacy, rerr := os.ReadFile(journalPath(dir))
	switch {
	case rerr == nil && baseIdx < 0 && len(segIdxs) == 0:
		recs, lerr := loadLegacy(dir, legacy)
		if lerr != nil {
			return nil, lerr
		}
		j.recs = recs
		j.maxSeq = maxSeq(recs)
		j.activeIndex = 0
		compacted, _ := compactRecords(recs)
		if err := j.publishBaseLocked(compacted); err != nil {
			return nil, fmt.Errorf("serve: migrate legacy journal: %w", err)
		}
		_ = os.Remove(journalPath(dir)) // migrated; a leftover is re-removed next open
		return j, nil
	case rerr == nil:
		_ = os.Remove(journalPath(dir)) // superseded by the published base; best-effort
	case !errors.Is(rerr, os.ErrNotExist):
		return nil, fmt.Errorf("serve: read journal: %w", rerr)
	}

	if baseIdx >= 0 {
		data, rerr := os.ReadFile(basePath(dir, baseIdx))
		if rerr != nil {
			return nil, fmt.Errorf("serve: read journal base: %w", rerr)
		}
		sc := scanSegment(data)
		if !sc.clean() {
			// The base is only ever published whole through the atomic-write
			// protocol; damage here is external and unrecoverable.
			return nil, fmt.Errorf("serve: journal base %s: %w: %d damaged runs, torn tail %d bytes",
				basePath(dir, baseIdx), ErrCorruptJournal, len(sc.damaged), sc.torn.end-sc.torn.start)
		}
		j.recs = sc.records
		j.sealedBytes += int64(len(data))
	}

	// Replay the append segments above the base, salvaging damage; the
	// highest one stays open for appends unless it already rolled over.
	for i, idx := range segIdxs {
		if idx <= baseIdx {
			// Folded into the base already; a crash between base publish and
			// segment removal leaves these behind.
			_ = os.Remove(segPath(dir, idx)) // stale by construction; best-effort
			continue
		}
		last := i == len(segIdxs)-1
		size, serr := j.replaySegmentLocked(idx, last)
		if serr != nil {
			return nil, serr
		}
		j.activeIndex = idx
		if last && size < j.segMax {
			j.activeSize = size
		} else {
			j.sealedBytes += size
			j.activeIndex = idx + 1
		}
	}
	if j.activeIndex <= baseIdx {
		j.activeIndex = baseIdx + 1
	}
	j.maxSeq = maxSeq(j.recs)
	j.updateBytesGaugeLocked()

	// Open-time compaction: fold terminal jobs down (and drop evicted
	// ones) when that shrinks the sequence, and always rebuild the base
	// after salvage so damaged segments do not survive to be re-salvaged
	// on every subsequent open.
	compacted, changed := compactRecords(j.recs)
	if changed || j.salvaged > 0 {
		if err := j.publishBaseLocked(compacted); err != nil {
			// Compaction is an I/O optimization; the replayed sequence stays
			// authoritative when publishing the folded one fails.
			j.o.Log().Warn("journal compaction failed; continuing uncompacted", "err", err.Error())
		}
	}
	return j, nil
}

// scanDir inventories the journal files: the newest base index (-1 if
// none; older bases are removed) and the segment indices ascending.
func (j *Journal) scanDir() (baseIdx int, segIdxs []int, err error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return -1, nil, fmt.Errorf("serve: scan journal dir: %w", err)
	}
	baseIdx = -1
	var bases []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n := journalIndex(e.Name(), ".base"); n >= 0 {
			bases = append(bases, n)
			if n > baseIdx {
				baseIdx = n
			}
		}
		if n := journalIndex(e.Name(), ".seg"); n >= 0 {
			segIdxs = append(segIdxs, n)
		}
	}
	for _, n := range bases {
		if n != baseIdx {
			_ = os.Remove(basePath(j.dir, n)) // superseded base; best-effort
		}
	}
	sort.Ints(segIdxs)
	return baseIdx, segIdxs, nil
}

// replaySegmentLocked reads one append segment with salvage, appending
// its surviving records to j.recs — the caller (open-time replay, like
// the other *Locked helpers it runs beside) guarantees exclusive access
// to the journal. active marks the highest segment, whose
// torn tail is truncated in place (the crash-mid-append case) rather
// than quarantined. Returns the segment's on-disk size after repair.
func (j *Journal) replaySegmentLocked(idx int, active bool) (int64, error) {
	path := segPath(j.dir, idx)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("serve: read journal segment: %w", err)
	}
	if len(data) == 0 {
		return 0, nil // created but never written; reusable as-is
	}
	sc := scanSegment(data)
	j.recs = append(j.recs, sc.records...)
	for _, r := range sc.damaged {
		j.quarantine(path, data[r.start:r.end])
	}
	size := int64(len(data))
	if sc.torn.end > sc.torn.start {
		if active {
			// A torn tail on the active segment is the expected shape of a
			// crash mid-append: cut it so the next append starts on a frame
			// boundary. Not counted as salvage — nothing acknowledged is lost.
			if terr := os.Truncate(path, int64(sc.goodLen)); terr != nil {
				return 0, fmt.Errorf("serve: truncate torn journal tail: %w", terr)
			}
			size = int64(sc.goodLen)
		} else {
			j.quarantine(path, data[sc.torn.start:sc.torn.end])
			sc.damaged = append(sc.damaged, sc.torn) // count it below
		}
	}
	if n := len(sc.damaged); n > 0 {
		j.salvaged += uint64(n)
		j.o.Counter(MetricJournalSalvaged).Add(uint64(n))
		j.o.Log().Warn("journal segment salvaged",
			"segment", path, "damaged_runs", n, "records_kept", len(sc.records))
	}
	return size, nil
}

// quarantine preserves damaged segment bytes in a .corrupt sidecar for
// postmortems. Best-effort: quarantine failing must not fail the open.
func (j *Journal) quarantine(segfile string, damaged []byte) {
	f, err := os.OpenFile(segfile+".corrupt", os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		j.o.Log().Warn("quarantine failed", "segment", segfile, "err", err.Error())
		return
	}
	_, werr := f.Write(damaged)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		j.o.Log().Warn("quarantine failed", "segment", segfile, "err", werr.Error())
	}
}

// loadLegacy parses and validates a v1 whole-file journal.
func loadLegacy(dir string, data []byte) ([]Record, error) {
	if len(data) == 0 {
		// The atomic-write protocol cannot produce this by crashing; an
		// empty file points at an external cause worth naming.
		return nil, fmt.Errorf("serve: journal %s: %w: zero-length file", journalPath(dir), ErrCorruptJournal)
	}
	var jf journalFile
	if err := json.Unmarshal(data, &jf); err != nil {
		return nil, fmt.Errorf("serve: journal %s: %w: %w", journalPath(dir), ErrCorruptJournal, err)
	}
	if jf.Format != JournalFormat {
		return nil, fmt.Errorf("serve: journal %s: %w: format %q (want %q)",
			journalPath(dir), ErrCorruptJournal, jf.Format, JournalFormat)
	}
	if jf.Version != JournalVersion {
		return nil, fmt.Errorf("serve: journal %s: %w: version %d not supported (want %d)",
			journalPath(dir), ErrCorruptJournal, jf.Version, JournalVersion)
	}
	for i, r := range jf.Records {
		if r.Seq != i+1 {
			return nil, fmt.Errorf("serve: journal %s: %w: record %d has seq %d",
				journalPath(dir), ErrCorruptJournal, i, r.Seq)
		}
		if r.Job == "" || r.Event == "" {
			return nil, fmt.Errorf("serve: journal %s: %w: record %d is incomplete",
				journalPath(dir), ErrCorruptJournal, r.Seq)
		}
	}
	return jf.Records, nil
}

// maxSeq is the highest sequence number in recs (salvage can leave
// gaps; appends continue above the survivors).
func maxSeq(recs []Record) int {
	n := 0
	for _, r := range recs {
		if r.Seq > n {
			n = r.Seq
		}
	}
	return n
}

// fold applies one record to a job's replayed state.
func fold(job *ReplayedJob, r Record) {
	switch r.Event {
	case EventSubmitted:
		job.Tenant = r.Detail
		job.Phase = PhaseQueued
		job.SubmittedAt = r.At
		job.Evicted = false // a resubmission revives an evicted ID
	case EventStarted:
		job.Phase = PhaseRunning
		job.Attempts++
	case EventFinished:
		job.Phase = PhaseDone
		job.Detail = r.Detail
		job.TerminalAt = r.At
	case EventFailed:
		job.Phase = PhaseFailed
		job.Detail = r.Detail
		job.TerminalAt = r.At
	case EventEvicted:
		job.Evicted = true
	}
}

// compactRecords rewrites the sequence with each terminal job reduced
// to a two-record summary that replays to the identical state (tenant,
// phase, detail, timestamps; a terminal job's attempt count is only
// meaningful while it is live) and each evicted job dropped entirely.
// Live jobs keep their records untouched. Reports whether anything
// shrank; the returned sequence is re-numbered.
func compactRecords(recs []Record) ([]Record, bool) {
	byID := make(map[string]*ReplayedJob)
	perJob := make(map[string][]Record)
	var order []string
	for _, r := range recs {
		if _, ok := byID[r.Job]; !ok {
			byID[r.Job] = &ReplayedJob{ID: r.Job}
			order = append(order, r.Job)
		}
		fold(byID[r.Job], r)
		perJob[r.Job] = append(perJob[r.Job], r)
	}
	out := make([]Record, 0, len(recs))
	for _, id := range order {
		job := byID[id]
		switch {
		case job.Evicted:
			// Evicted jobs leave no trace: their side files are gone, and
			// carrying their records forever would defeat retention.
		case job.Phase == PhaseDone || job.Phase == PhaseFailed:
			ev := EventFinished
			if job.Phase == PhaseFailed {
				ev = EventFailed
			}
			out = append(out,
				Record{Job: id, Event: EventSubmitted, Detail: job.Tenant, At: job.SubmittedAt},
				Record{Job: id, Event: ev, Detail: job.Detail, At: job.TerminalAt})
		default:
			out = append(out, perJob[id]...)
		}
	}
	if len(out) == len(recs) {
		return recs, false
	}
	for i := range out {
		out[i].Seq = i + 1
	}
	return out, true
}

// Dir is the journal's data directory.
func (j *Journal) Dir() string { return j.dir }

// Len is the number of records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Records returns a copy of the record sequence.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.recs...)
}

// Bytes is the journal's on-disk footprint: base plus segments,
// excluding side files and quarantine sidecars.
func (j *Journal) Bytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sealedBytes + j.activeSize
}

// Salvaged is the number of damaged runs skipped during replay.
func (j *Journal) Salvaged() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.salvaged
}

// updateBytesGaugeLocked publishes the footprint gauge; j.mu held.
func (j *Journal) updateBytesGaugeLocked() {
	j.o.Gauge(MetricJournalBytes).Set(float64(j.sealedBytes + j.activeSize))
}

// Append durably appends one record (Seq and At are assigned here): one
// framed write plus one fsync to the active segment — O(1) in the
// journal's size. The record is visible to Records only after the fsync
// returns; a failed append repairs the segment tail (or abandons the
// segment for the next one) so the on-disk sequence never holds a frame
// that was not acknowledged.
func (j *Journal) Append(job, event, detail string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := Record{Seq: j.maxSeq + 1, Job: job, Event: event, Detail: detail, At: j.now().UnixNano()}
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	// The attempt is idempotent under retry: any failure repairs the
	// segment tail back to the last acknowledged length (or abandons the
	// segment), so a re-run starts clean — the same shape as the retried
	// atomic-write protocol, for the same transient faults.
	if err := j.pol.Do(func() error {
		if err := j.ensureActiveLocked(); err != nil {
			return err
		}
		if _, werr := j.active.Write(frame); werr != nil {
			j.repairActiveLocked()
			return werr
		}
		if serr := j.active.Sync(); serr != nil {
			// The bytes may sit in the page cache, but an fsync failure means
			// their durability is unknowable; take the record back.
			j.repairActiveLocked()
			return serr
		}
		return nil
	}); err != nil {
		return fmt.Errorf("serve: append journal: %w", err)
	}
	j.activeSize += int64(len(frame))
	j.maxSeq = rec.Seq
	j.recs = append(j.recs, rec)
	j.updateBytesGaugeLocked()
	if j.activeSize >= j.segMax {
		j.rollLocked()
	}
	return nil
}

// ensureActiveLocked opens (lazily creating) the active segment; j.mu
// held. A brand-new segment gets its header written, synced, and its
// directory entry made durable before any record lands in it.
func (j *Journal) ensureActiveLocked() error {
	if j.active != nil {
		return nil
	}
	path := segPath(j.dir, j.activeIndex)
	f, err := fsx.OpenAppend(j.fs, path)
	if err != nil {
		return err
	}
	st, serr := os.Stat(path)
	if serr != nil {
		_ = f.Close() // the stat error is the one worth reporting
		return serr
	}
	j.active = f
	j.activeSize = st.Size()
	if j.activeSize == 0 {
		if _, werr := j.active.Write(segMagic[:]); werr != nil {
			j.repairActiveLocked()
			return werr
		}
		if serr := j.active.Sync(); serr != nil {
			j.repairActiveLocked()
			return serr
		}
		if derr := (fsx.OS{}).SyncDir(j.dir); derr != nil {
			j.repairActiveLocked()
			return derr
		}
		j.activeSize = segMagicLen
	}
	return nil
}

// repairActiveLocked recovers from a failed append: the active segment
// is truncated back to its last acknowledged length, or — when even the
// truncate fails — abandoned (sealed torn; replay salvages it) and the
// index advanced so the next append starts a fresh segment. j.mu held.
func (j *Journal) repairActiveLocked() {
	path := segPath(j.dir, j.activeIndex)
	if j.active != nil {
		_ = j.active.Close() // the append error is the one worth reporting
		j.active = nil
	}
	if err := os.Truncate(path, j.activeSize); err == nil {
		return // tail repaired; the segment is reusable in place
	} else if errors.Is(err, os.ErrNotExist) {
		j.activeSize = 0
		return // nothing ever landed; the same index is reusable
	}
	if st, serr := os.Stat(path); serr == nil {
		j.sealedBytes += st.Size()
	}
	j.o.Log().Warn("abandoning torn journal segment", "segment", path)
	j.activeIndex++
	j.activeSize = 0
}

// rollLocked seals the active segment and points appends at the next
// index (created lazily). j.mu held.
func (j *Journal) rollLocked() {
	if j.active != nil {
		_ = j.active.Close() // records were each fsynced; close has nothing left to flush
		j.active = nil
	}
	j.sealedBytes += j.activeSize
	j.activeIndex++
	j.activeSize = 0
}

// Compact folds the record sequence (terminal jobs to two records,
// evicted jobs to nothing) and, when that shrinks it, publishes the
// result as a new base atomically and removes the folded segments.
// Reports whether a compaction was published. Safe to call any time;
// the maintenance loop calls it periodically and a failed publish
// leaves the uncompacted sequence authoritative.
func (j *Journal) Compact() (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	compacted, changed := compactRecords(j.recs)
	if !changed {
		return false, nil
	}
	if err := j.publishBaseLocked(compacted); err != nil {
		return false, err
	}
	return true, nil
}

// publishBaseLocked writes compacted as the new base covering every
// current segment, then removes the folded segments and the previous
// base. The base lands via the atomic-write protocol, so a crash at any
// point leaves either the old state (possibly with stale segments the
// next open removes) or the new one — never a half-folded journal.
// j.mu held.
func (j *Journal) publishBaseLocked(compacted []Record) error {
	covers := j.activeIndex
	data, err := encodeSegment(compacted)
	if err != nil {
		return err
	}
	if j.active != nil {
		_ = j.active.Close() // every acknowledged record is already fsynced
		j.active = nil
	}
	if err := fsx.WriteAtomicRetry(j.fs, basePath(j.dir, covers), data, j.pol); err != nil {
		return fmt.Errorf("serve: publish journal base: %w", err)
	}
	// Best-effort cleanup of everything the new base supersedes; leftovers
	// are removed on the next open (segments <= base index are stale).
	if entries, rerr := os.ReadDir(j.dir); rerr == nil {
		for _, e := range entries {
			if n := journalIndex(e.Name(), ".seg"); n >= 0 && n <= covers {
				_ = os.Remove(filepath.Join(j.dir, e.Name()))
			}
			if n := journalIndex(e.Name(), ".base"); n >= 0 && n < covers {
				_ = os.Remove(filepath.Join(j.dir, e.Name()))
			}
		}
	}
	j.recs = compacted
	j.maxSeq = maxSeq(compacted)
	j.activeIndex = covers + 1
	j.activeSize = 0
	j.sealedBytes = int64(len(data))
	j.updateBytesGaugeLocked()
	return nil
}

// Close releases the active segment handle. Every acknowledged append
// was already fsynced, so Close never loses data; the journal can be
// reopened (by this process or the next) at any time.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.active == nil {
		return nil
	}
	err := j.active.Close()
	j.active = nil
	return err
}

// WriteSpec durably records a job's spec side file. It must complete
// before the EventSubmitted record referencing it is appended.
func (j *Journal) WriteSpec(id string, spec *JobSpec) error {
	data, err := json.MarshalIndent(spec, "", " ")
	if err != nil {
		return fmt.Errorf("serve: marshal spec: %w", err)
	}
	if err := fsx.WriteAtomicRetry(j.fs, specPath(j.dir, id), data, j.pol); err != nil {
		return fmt.Errorf("serve: write spec: %w", err)
	}
	return nil
}

// LoadSpec reads a job's spec side file back (restart replay).
func (j *Journal) LoadSpec(id string) (*JobSpec, error) {
	data, err := os.ReadFile(specPath(j.dir, id))
	if err != nil {
		return nil, fmt.Errorf("serve: load spec for %s: %w", id, err)
	}
	spec := &JobSpec{}
	if err := json.Unmarshal(data, spec); err != nil {
		return nil, fmt.Errorf("serve: spec for %s: %w: %w", id, ErrCorruptJournal, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("serve: spec for %s: %w", id, err)
	}
	return spec, nil
}

// WriteResult durably records a job's result side file. It must
// complete before the EventFinished record referencing it is appended.
func (j *Journal) WriteResult(res *JobResult) error {
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return fmt.Errorf("serve: marshal result: %w", err)
	}
	if err := fsx.WriteAtomicRetry(j.fs, resultPath(j.dir, res.ID), data, j.pol); err != nil {
		return fmt.Errorf("serve: write result: %w", err)
	}
	return nil
}

// LoadResult reads a job's result side file back.
func (j *Journal) LoadResult(id string) (*JobResult, error) {
	data, err := os.ReadFile(resultPath(j.dir, id))
	if err != nil {
		return nil, fmt.Errorf("serve: load result for %s: %w", id, err)
	}
	res := &JobResult{}
	if err := json.Unmarshal(data, res); err != nil {
		return nil, fmt.Errorf("serve: result for %s: %w: %w", id, ErrCorruptJournal, err)
	}
	return res, nil
}

// RemoveJobFiles deletes a job's side files (spec, result, checkpoint)
// — the space-reclaiming half of eviction, performed *before* the
// EventEvicted record is appended. Missing files are fine (a retried
// eviction, or a job that never checkpointed).
func (j *Journal) RemoveJobFiles(id string) error {
	var first error
	for _, p := range []string{resultPath(j.dir, id), checkpointPath(j.dir, id), specPath(j.dir, id)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) && first == nil {
			first = fmt.Errorf("serve: evict %s: %w", id, err)
		}
	}
	return first
}

// Replay folds the record sequence into per-job states, in first-seen
// submission order, excluding evicted jobs. A job whose terminal record
// (finished/failed) is missing replays as queued-or-running — exactly
// the work a restarted server must pick back up.
func (j *Journal) Replay() []*ReplayedJob {
	// Snapshot the sequence under the lock, fold outside it: the replayed
	// states are confined to this call until returned, so only the shared
	// record slice needs the critical section.
	j.mu.Lock()
	recs := append([]Record(nil), j.recs...)
	j.mu.Unlock()
	byID := make(map[string]*ReplayedJob)
	var order []*ReplayedJob
	for _, r := range recs {
		job := byID[r.Job]
		if job == nil {
			job = &ReplayedJob{ID: r.Job}
			byID[r.Job] = job
			order = append(order, job)
		}
		fold(job, r)
	}
	out := order[:0]
	for _, job := range order {
		if !job.Evicted {
			out = append(out, job)
		}
	}
	return out
}
