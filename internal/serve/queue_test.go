package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestQueueFairRoundRobin(t *testing.T) {
	q := newFairQueue(16)
	// Tenant A floods before tenant B submits anything.
	for i := 0; i < 5; i++ {
		if err := q.Push("a", "a"+string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push("b", "b0"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var order []string
	for i := 0; i < 6; i++ {
		id, ok := q.Pop(ctx)
		if !ok {
			t.Fatal("queue closed early")
		}
		order = append(order, id)
	}
	// Fairness: b0 must come out second (one rotation after a's head),
	// not sixth (behind a's whole backlog).
	if order[1] != "b0" {
		t.Fatalf("tenant b waited behind tenant a's flood: order %v", order)
	}
}

func TestQueueOverload(t *testing.T) {
	q := newFairQueue(2)
	if err := q.Push("a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("b", "2"); err != nil {
		t.Fatal(err)
	}
	if !q.Full() {
		t.Fatal("queue at cap must report Full")
	}
	if err := q.Push("c", "3"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("push over cap: %v, want ErrOverloaded", err)
	}
	if _, ok := q.Pop(context.Background()); !ok {
		t.Fatal("pop")
	}
	if q.Full() {
		t.Fatal("queue below cap must accept again")
	}
	if err := q.Push("c", "3"); err != nil {
		t.Fatal(err)
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newFairQueue(4)
	got := make(chan string, 1)
	go func() {
		id, ok := q.Pop(context.Background())
		if ok {
			got <- id
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := q.Push("a", "late"); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-got:
		if id != "late" {
			t.Fatalf("popped %q", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Pop never woke for the Push")
	}
}

func TestQueueCloseUnblocksAllPops(t *testing.T) {
	q := newFairQueue(4)
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		go func() {
			_, ok := q.Pop(context.Background())
			if !ok {
				done <- struct{}{}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("pop %d still blocked after Close", i)
		}
	}
	if err := q.Push("a", "x"); err == nil {
		t.Fatal("push after Close must fail")
	}
}

func TestQueuePopHonoursContext(t *testing.T) {
	q := newFairQueue(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := q.Pop(ctx); ok {
		t.Fatal("Pop under a cancelled context must not claim work")
	}
}
