// Chaos admission: a server armed with -chaos refuses to serve until a
// self-test job has survived the injected faults end to end. The
// self-test is not a mock — it is a real job through the real admission
// path, journal, queue, worker pool, optimizer, retry/degrade loop and
// static audit, so "ready" means the whole pipeline demonstrably
// produces a partcheck-valid result under the configured fault schedule.

package serve

import (
	"context"
	"fmt"

	"iddqsyn/internal/bench"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/partcheck"
)

// SelfTestSpec is the admission probe: the paper's C17 example circuit
// under a small, fixed evolution budget — milliseconds of work, every
// failure surface exercised.
func SelfTestSpec() *JobSpec {
	return &JobSpec{
		Netlist:     bench.Format(circuits.C17()),
		Name:        "selftest-c17",
		Generations: 40,
		Seed:        1,
		Timeout:     "30s",
	}
}

// SelfTest submits the probe job through the full service path and
// waits for it to finish. On a durable, partcheck-valid result the
// server becomes ready; any other outcome keeps it refusing traffic.
// Start must have been called (the probe needs the worker pool).
func (s *Server) SelfTest(ctx context.Context) error {
	spec := SelfTestSpec()
	j, _, err := s.submit(spec, "selftest")
	if err != nil {
		return fmt.Errorf("serve: self-test submit: %w", err)
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("serve: self-test: %w", context.Cause(ctx))
	case <-s.ctx.Done():
		return fmt.Errorf("serve: self-test: %w", context.Cause(s.ctx))
	case <-j.doneCh():
	}
	st := j.status()
	if st.Phase != PhaseDone.String() {
		return fmt.Errorf("serve: self-test job %s: %s", st.Phase, st.Detail)
	}
	res, err := s.journal.LoadResult(j.id)
	if err != nil {
		return fmt.Errorf("serve: self-test result: %w", err)
	}
	// Trust nothing: re-audit the durable result against the probe
	// circuit before declaring the pipeline healthy.
	c, err := spec.Circuit()
	if err != nil {
		return err
	}
	if r := partcheck.VerifyStructure(c, res.Groups); !r.OK() {
		return fmt.Errorf("serve: self-test result fails the static audit: %w", r.Err())
	}
	s.ready.Store(true)
	s.o.Log().Info("admission self-test passed",
		"job", j.id, "modules", res.Modules, "degraded", res.Degraded)
	return nil
}
