// Package serve is the partition-synthesis service: clients POST a
// netlist plus constraints and get a job ID; a bounded worker pool runs
// each job through the full core synthesis flow (evolution optimizer,
// retry/degrade loop, static partition audit) under a per-job timeout,
// streaming progress over SSE and serving results from a content-hash
// cache.
//
// Durability is the point. Every lifecycle transition goes through the
// append-only job journal (journal.go) and every job checkpoints its
// optimizer state crash-safely, so a SIGKILL'd server restarts, replays
// the journal, re-enqueues the unfinished jobs and resumes each one from
// its checkpoint — finishing, by the bit-identical resume guarantee of
// the evolution package, with exactly the result the uninterrupted run
// would have produced.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"iddqsyn/internal/chaos"
	"iddqsyn/internal/core"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/fsx"
	"iddqsyn/internal/obs"
	"iddqsyn/internal/partition"
)

// Service telemetry (in the server's metrics registry, alongside the
// per-job optimizer metrics that accumulate there).
const (
	MetricSubmitted = "serve.jobs.submitted"
	MetricCacheHits = "serve.jobs.cachehits"
	MetricOverload  = "serve.jobs.overload" // submissions refused with 429
	MetricFinished  = "serve.jobs.finished"
	MetricFailed    = "serve.jobs.failed"
	MetricDegraded  = "serve.jobs.degraded"
	MetricResumed   = "serve.jobs.resumed" // attempts that resumed a checkpoint
	MetricRetries   = "serve.jobs.retries" // serve-level attempt retries

	// MetricQueueWait is the histogram of seconds each admitted job spent
	// between enqueue and worker claim — the queue's contribution to
	// end-to-end latency, invisible before this metric existed.
	MetricQueueWait = "serve.queue.wait_seconds"
	// MetricQueueDepth gauges the admission-queue backlog.
	MetricQueueDepth = "serve.queue.depth"
	// MetricSSEDropped counts events evicted from slow SSE subscribers'
	// buffers across all job streams.
	MetricSSEDropped = "obs.sse.dropped"

	// Per-tenant admission telemetry: serve.tenant.<label>.admitted /
	// .rejected, with the tenant name sanitized by tenantLabel to keep
	// metric-name cardinality bounded.
	tenantMetricPrefix = "serve.tenant."
)

// tenantLabel maps a client-supplied tenant name onto a bounded metric
// label: alphanumerics, '-' and '_' pass through (max 32 bytes),
// anything else collapses to "other" so a hostile tenant header cannot
// mint unbounded metric names.
func tenantLabel(tenant string) string {
	if tenant == "" || len(tenant) > 32 {
		return "other"
	}
	for i := 0; i < len(tenant); i++ {
		c := tenant[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return "other"
		}
	}
	return tenant
}

// Defaults for the zero Config.
const (
	DefaultWorkers         = 2
	DefaultJobTimeout      = 5 * time.Minute
	DefaultCheckpointEvery = 5
	DefaultJobAttempts     = 2
)

// errShutdown is the cancellation cause of a server shutdown; runJob
// uses it to tell "the server is stopping — leave the job resumable"
// from "this job's budget expired — finish it best-so-far".
var errShutdown = errors.New("serve: shutting down")

// Config assembles a Server.
type Config struct {
	// Dir is the data directory: journal, specs, results, checkpoints.
	Dir string
	// Workers is the job worker pool size (0 = DefaultWorkers).
	Workers int
	// QueueCap bounds the admission queue (0 = DefaultQueueCap).
	QueueCap int
	// JobTimeout is the default per-job wall-clock budget, used when the
	// spec names none (0 = DefaultJobTimeout).
	JobTimeout time.Duration
	// CheckpointEvery is the per-job checkpoint cadence in generations
	// (0 = DefaultCheckpointEvery).
	CheckpointEvery int
	// JobAttempts bounds the serve-level retries of a failed job
	// (0 = DefaultJobAttempts). Each failed attempt backs off with
	// seeded jitter before the next.
	JobAttempts int
	// Seed seeds the retry-backoff jitter (0 = 1). The norandglobal lint
	// bans ambient randomness; all service randomness flows from here.
	Seed int64
	// SelfTestAdmission gates readiness on SelfTest: until it passes,
	// /healthz reports 503 and submissions are refused. Armed by the
	// -chaos flag of cmd/iddqserve.
	SelfTestAdmission bool

	// Obs observes the service (nil = unobserved). Job telemetry
	// accumulates in its registry; each job additionally gets its own
	// obs run (shared registry and logger) so live status stays per-job.
	Obs *obs.Obs
	// Chaos, if non-nil, injects deterministic faults into every job's
	// failure surfaces (worker pool, estimator) — robustness testing.
	Chaos *chaos.Injector
	// FS routes journal, result and checkpoint writes (nil = the real
	// filesystem; chaos tests pass a chaos.FS).
	FS fsx.FS
	// Retry overrides the write retry policy (nil = fsx defaults).
	Retry *fsx.RetryPolicy

	// Storage lifecycle (gc.go). Zero values mean: default segment size,
	// unbounded retention, no disk budget, default maintenance cadence.

	// SegmentMaxBytes is the journal's active-segment roll threshold
	// (0 = DefaultSegmentMaxBytes).
	SegmentMaxBytes int64
	// RetainJobs caps the terminal (done/failed) jobs kept on disk;
	// beyond it the oldest are evicted (0 = unbounded).
	RetainJobs int
	// RetainAge evicts terminal jobs older than this (0 = unbounded).
	// Queued and running jobs are never evicted.
	RetainAge time.Duration
	// DiskBudget bounds the data directory's total size in bytes. Above
	// it, maintenance evicts terminal jobs oldest-first, and if the
	// directory still exceeds the budget, new submissions are shed with
	// 503 until it recovers (0 = unbounded).
	DiskBudget int64
	// MaintenanceEvery is the GC/compaction cadence
	// (0 = DefaultMaintenanceEvery).
	MaintenanceEvery time.Duration
}

// job is the in-memory state of one job. The server's map owns the
// identity; the job's own mutex guards the mutable fields.
type job struct {
	id string
	// tenant and spec are written at creation and rewritten only when a
	// failed (terminal, unqueued) job is resubmitted — under mu, like the
	// rest of the mutable state; workers read them through jobSpec().
	tenant string
	spec   *JobSpec

	mu       sync.Mutex
	phase    JobPhase
	attempts int
	detail   string
	gen      int
	bestCost float64
	// terminalAt is the Unix-nano time the job last reached a terminal
	// phase (journal record time on replay) — what retention age and
	// oldest-first eviction order are measured from.
	terminalAt int64

	// events and done are mu-guarded too: resubmitting a failed job
	// replaces both for the new lifecycle, so reads go through stream()/
	// doneCh() and the job's own methods capture them under the lock.
	events *obs.Broadcaster
	done   chan struct{} // closed on terminal phase (done/failed)

	// Causal-trace state, mu-guarded: the root span covers the job's whole
	// admitted lifetime, qwait the enqueue→claim stretch (started on the
	// submitting goroutine, ended by the claiming worker). All nil when
	// tracing is off or the job was replayed from the journal.
	root     *obs.TraceSpan
	qwait    *obs.TraceSpan
	enqueued time.Time // when the job entered the queue (zero for cache hits)
}

// claimTrace hands the worker the queue-wait span and enqueue time at
// claim; the span is cleared so a later resubmission starts clean.
func (j *job) claimTrace() (*obs.TraceSpan, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	qw := j.qwait
	j.qwait = nil
	return qw, j.enqueued
}

// rootSpan is the job's current trace root (nil when untraced).
func (j *job) rootSpan() *obs.TraceSpan {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.root
}

// jobSpec is the job's spec under the lock: a failed-job resubmission
// rewrites it, and the claiming worker must observe the rewrite.
func (j *job) jobSpec() *JobSpec {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spec
}

// attemptCount is the attempts recorded so far, under the lock.
func (j *job) attemptCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// setTrace installs the trace state for one admitted lifecycle.
func (j *job) setTrace(root, qwait *obs.TraceSpan, enqueued time.Time) {
	j.mu.Lock()
	j.root = root
	j.qwait = qwait
	j.enqueued = enqueued
	j.mu.Unlock()
}

// stream is the job's current event broadcaster.
func (j *job) stream() *obs.Broadcaster {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events
}

// doneCh is the channel closed at the job's next terminal phase.
func (j *job) doneCh() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// JobStatus is the JSON view of a job's state.
type JobStatus struct {
	ID         string  `json:"id"`
	Tenant     string  `json:"tenant,omitempty"`
	Phase      string  `json:"phase"`
	Attempts   int     `json:"attempts,omitempty"`
	Detail     string  `json:"detail,omitempty"`
	Generation int     `json:"generation,omitempty"`
	BestCost   float64 `json:"best_cost,omitempty"`
	Result     string  `json:"result,omitempty"` // href, set once done
	Events     string  `json:"events"`           // href of the SSE stream
}

// JobResult is the durable result of a finished job (result-<id>.json).
type JobResult struct {
	ID          string  `json:"id"`
	Circuit     string  `json:"circuit"`
	Method      string  `json:"method"`
	Gates       int     `json:"gates"`
	Modules     int     `json:"modules"`
	Cost        float64 `json:"cost"`
	Feasible    bool    `json:"feasible"`
	Groups      [][]int `json:"groups"`
	Generations int     `json:"generations,omitempty"`
	Evaluations int     `json:"evaluations,omitempty"`
	Degraded    bool    `json:"degraded,omitempty"`
	DegradedErr string  `json:"degraded_err,omitempty"`
	TimedOut    bool    `json:"timed_out,omitempty"`
	Report      string  `json:"report"`
}

// progressEvent is what the per-job SSE stream carries.
type progressEvent struct {
	Job        string  `json:"job"`
	Phase      string  `json:"phase"`
	Generation int     `json:"generation,omitempty"`
	BestCost   float64 `json:"best_cost,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

// Server is the running service (minus the HTTP listener, which
// cmd/iddqserve owns so tests can drive the handler directly).
type Server struct {
	cfg     Config
	o       *obs.Obs
	journal *Journal
	queue   *fairQueue

	ctx    context.Context
	cancel context.CancelCauseFunc
	wg     sync.WaitGroup

	ready   atomic.Bool
	started atomic.Bool

	// Shedding state (gc.go): when shedding is set, new submissions get
	// 503 and /healthz names shedReason; in-flight jobs keep running.
	shedding   atomic.Bool
	shedReason atomic.Value // string

	mu     sync.Mutex
	jobs   map[string]*job
	jitter *rand.Rand // retry-backoff jitter; guarded by mu
}

// New opens the data directory, replays the journal, and re-enqueues
// every job that was submitted but never finished. Call Start to launch
// the workers and Close to stop them (leaving in-flight jobs resumable).
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("serve: Config.Dir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = DefaultJobTimeout
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	if cfg.JobAttempts <= 0 {
		cfg.JobAttempts = DefaultJobAttempts
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaintenanceEvery <= 0 {
		cfg.MaintenanceEvery = DefaultMaintenanceEvery
	}
	journal, err := OpenJournal(cfg.Dir, JournalOptions{
		FS: cfg.FS, Retry: cfg.Retry, Obs: cfg.Obs,
		SegmentMaxBytes: cfg.SegmentMaxBytes,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:     cfg,
		o:       cfg.Obs,
		journal: journal,
		queue:   newFairQueue(cfg.QueueCap),
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(map[string]*job),
		jitter:  rand.New(rand.NewSource(cfg.Seed)),
	}
	s.ready.Store(!cfg.SelfTestAdmission)
	if err := s.replay(); err != nil {
		cancel(errShutdown)
		return nil, err
	}
	return s, nil
}

// replay folds the journal into in-memory jobs and re-enqueues the
// unfinished ones. A job whose spec file is unreadable is failed
// durably — it can never run again, and the journal should say so.
func (s *Server) replay() error {
	for _, rj := range s.journal.Replay() {
		if rj.Phase == PhaseDone {
			if _, serr := os.Stat(resultPath(s.cfg.Dir, rj.ID)); errors.Is(serr, os.ErrNotExist) {
				// Eviction removes side files before appending its record; a
				// crash between the two replays as a done job whose result is
				// gone. Finish the eviction rather than resurrect a job that
				// can no longer serve its result.
				if jerr := s.journal.Append(rj.ID, EventEvicted, "replay: result missing"); jerr != nil {
					return jerr
				}
				continue
			}
		}
		j := &job{
			id:         rj.ID,
			tenant:     rj.Tenant,
			phase:      rj.Phase,
			attempts:   rj.Attempts,
			detail:     rj.Detail,
			terminalAt: rj.TerminalAt,
			events:     s.newStream(),
			done:       make(chan struct{}),
		}
		spec, err := s.journal.LoadSpec(rj.ID)
		if err == nil {
			j.spec = spec
		}
		switch rj.Phase {
		case PhaseDone, PhaseFailed:
			close(j.done)
			j.events.Close()
		case PhaseQueued, PhaseRunning:
			if err != nil {
				// The submitted record exists but its spec does not — a
				// crash between the two should leave the orphan the other
				// way around, so name the corruption and fail the job.
				detail := fmt.Sprintf("spec unreadable on replay: %v", err)
				if jerr := s.journal.Append(rj.ID, EventFailed, detail); jerr != nil {
					return jerr
				}
				j.phase = PhaseFailed
				j.detail = detail
				close(j.done)
				j.events.Close()
				break
			}
			j.phase = PhaseQueued // a "running" job was interrupted; requeue
			// forcePush, not Push: the journal can hold more unfinished jobs
			// than QueueCap (a full queue plus the in-flight ones at crash
			// time), and refusing them here would make the server unable to
			// restart from its own journal under exactly the overload that
			// makes crashes likely. Capacity gates admission, not replay.
			if err := s.queue.forcePush(j.tenant, j.id); err != nil {
				return fmt.Errorf("serve: requeue %s on replay: %w", j.id, err)
			}
			j.enqueued = time.Now() // queue wait restarts at replay; no trace root
			s.o.Log().Info("replayed unfinished job", "job", j.id, "tenant", j.tenant,
				"attempts", j.attempts)
		}
		s.jobs[j.id] = j
	}
	return nil
}

// Start launches the worker pool. Idempotent.
func (s *Server) Start() {
	if s.started.Swap(true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				id, ok := s.queue.Pop(s.ctx)
				if !ok {
					return
				}
				s.runJob(id)
			}
		}()
	}
	s.wg.Add(1)
	go s.maintainLoop()
}

// Ready reports whether the service admits submissions (false while a
// configured admission self-test is pending or after it failed).
func (s *Server) Ready() bool { return s.ready.Load() }

// Journal exposes the server's journal (tests and the soak harness).
func (s *Server) Journal() *Journal { return s.journal }

// Close stops the service: workers are cancelled (each in-flight job's
// optimizer interrupts at its next generation boundary and persists a
// final checkpoint, leaving the job resumable), then every event stream
// is closed so SSE handlers drain. Safe to call more than once.
func (s *Server) Close() {
	s.cancel(errShutdown)
	s.queue.Close()
	s.wg.Wait()
	if err := s.journal.Close(); err != nil {
		// Every acknowledged append was fsynced; a close error loses nothing.
		s.o.Log().Warn("journal close", "err", err.Error())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.stream().Close()
	}
}

// lookup finds a job by ID.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// newStream builds a job event broadcaster with slow-consumer loss
// accounted in obs.sse.dropped.
func (s *Server) newStream() *obs.Broadcaster {
	b := obs.NewBroadcaster()
	b.SetDropCounter(s.o.Counter(MetricSSEDropped))
	return b
}

// tenantAdmitted / tenantRejected tick the per-tenant admission
// counters (label cardinality bounded by tenantLabel).
func (s *Server) tenantAdmitted(tenant string) {
	s.o.Counter(tenantMetricPrefix + tenantLabel(tenant) + ".admitted").Inc()
}

func (s *Server) tenantRejected(tenant string) {
	s.o.Counter(tenantMetricPrefix + tenantLabel(tenant) + ".rejected").Inc()
}

// submit admits a spec: cache lookup by content-derived job ID, queue
// capacity check, durable spec + journal records, then enqueue — all
// under the server mutex so the capacity check cannot race another
// submission between check and enqueue. The bool reports a cache hit.
func (s *Server) submit(spec *JobSpec, tenant string) (*job, bool, error) {
	id, err := spec.JobID()
	if err != nil {
		return nil, false, err
	}
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		j.mu.Lock()
		failed := j.phase == PhaseFailed
		j.mu.Unlock()
		if !failed {
			// The content hash is the ID, so an identical submission — any
			// tenant, any time — lands on the existing job and its result.
			s.o.Counter(MetricCacheHits).Inc()
			return j, true, nil
		}
		// A failure is not a cacheable outcome: it may have been transient
		// (fs fault, chaos schedule), so a resubmission re-admits the job
		// with a fresh attempt window instead of replaying the stale
		// failure forever. The spec side file already exists; only the
		// journal record and queue entry are new.
		if s.queue.Full() {
			s.o.Counter(MetricOverload).Inc()
			s.tenantRejected(tenant)
			return nil, false, ErrOverloaded
		}
		root := s.o.Tracer().StartRoot("serve.job")
		admit := root.StartChild("serve.admit")
		if err := s.journal.Append(id, EventSubmitted, tenant); err != nil {
			admit.End()
			root.End()
			s.noteWriteError(err)
			return nil, false, err
		}
		admit.End()
		j.mu.Lock()
		j.phase = PhaseQueued
		j.detail = ""
		j.tenant = tenant
		j.spec = spec
		j.events = s.newStream() // the failed lifecycle's stream is closed
		j.done = make(chan struct{})
		j.root = root
		j.qwait = root.StartChild("queue.wait")
		j.enqueued = time.Now()
		j.mu.Unlock()
		if err := s.queue.Push(tenant, id); err != nil {
			return nil, false, err
		}
		s.o.Gauge(MetricQueueDepth).Set(float64(s.queue.Len()))
		s.o.Counter(MetricSubmitted).Inc()
		s.tenantAdmitted(tenant)
		s.o.Log().Info("failed job resubmitted", "job", id, "tenant", tenant)
		return j, false, nil
	}
	if s.queue.Full() {
		s.o.Counter(MetricOverload).Inc()
		s.tenantRejected(tenant)
		return nil, false, ErrOverloaded
	}
	// The trace root opens once the job is past the capacity gate: it
	// covers admission (spec + journal writes), queue wait, every attempt
	// and the result publish, and ends at the job's terminal phase.
	root := s.o.Tracer().StartRoot("serve.job")
	admit := root.StartChild("serve.admit")
	// Side file first, then the journal record referencing it: a crash
	// between the two leaves an orphaned spec file, never a journal
	// record whose spec is missing.
	if err := s.journal.WriteSpec(id, spec); err != nil {
		admit.End()
		root.End()
		s.noteWriteError(err)
		return nil, false, err
	}
	if err := s.journal.Append(id, EventSubmitted, tenant); err != nil {
		admit.End()
		root.End()
		s.noteWriteError(err)
		return nil, false, err
	}
	admit.End()
	j := &job{
		id: id, tenant: tenant, spec: spec,
		events: s.newStream(),
		done:   make(chan struct{}),
	}
	j.root = root
	j.qwait = root.StartChild("queue.wait")
	j.enqueued = time.Now()
	s.jobs[id] = j
	// Cannot fail: capacity was checked above and only dequeues shrink
	// the queue while we hold s.mu.
	if err := s.queue.Push(tenant, id); err != nil {
		return nil, false, err
	}
	s.o.Gauge(MetricQueueDepth).Set(float64(s.queue.Len()))
	s.o.Counter(MetricSubmitted).Inc()
	s.tenantAdmitted(tenant)
	s.o.Log().Info("job submitted", "job", id, "tenant", tenant)
	return j, false, nil
}

// RetryAfter estimates, in whole seconds, when an overloaded queue is
// worth retrying: the backlog divided over the worker pool, floored at
// one second.
func (s *Server) RetryAfter() int {
	n := s.queue.Len() / s.cfg.Workers
	if n < 1 {
		n = 1
	}
	return n
}

// status snapshots a job for the HTTP layer.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Tenant: j.tenant, Phase: j.phase.String(),
		Attempts: j.attempts, Detail: j.detail,
		Generation: j.gen, BestCost: j.bestCost,
		Events: "/jobs/" + j.id + "/events",
	}
	if j.phase == PhaseDone {
		st.Result = "/jobs/" + j.id + "/result"
	}
	return st
}

// setRunning transitions the job to running for one attempt.
func (j *job) setRunning(attempt int) {
	j.mu.Lock()
	j.phase = PhaseRunning
	j.attempts = attempt
	ev := j.events
	j.mu.Unlock()
	ev.Publish(progressEvent{Job: j.id, Phase: PhaseRunning.String()})
}

// progress records optimizer progress and publishes it to the stream.
func (j *job) progress(gen int, cost float64) {
	j.mu.Lock()
	j.gen = gen
	j.bestCost = cost
	ev := j.events
	j.mu.Unlock()
	ev.Publish(progressEvent{
		Job: j.id, Phase: PhaseRunning.String(),
		Generation: gen, BestCost: cost,
	})
}

// finish transitions the job to its terminal phase and closes the
// stream (after a final event) so SSE consumers and waiters return.
func (j *job) finish(phase JobPhase, detail string) {
	j.mu.Lock()
	j.phase = phase
	j.detail = detail
	j.terminalAt = time.Now().UnixNano()
	gen, cost := j.gen, j.bestCost
	ev, done := j.events, j.done
	j.mu.Unlock()
	ev.Publish(progressEvent{
		Job: j.id, Phase: phase.String(),
		Generation: gen, BestCost: cost, Detail: detail,
	})
	ev.Close()
	close(done)
}

// runJob executes one job to a durable terminal state, with bounded
// serve-level retries (jittered backoff) around the core synthesis flow
// — which itself already retries and, when allowed, degrades. A nil,
// nil return from attempt means the server is shutting down: the job
// stays un-finished in the journal, its checkpoint on disk, and the
// next process picks it up.
func (s *Server) runJob(id string) {
	j := s.lookup(id)
	if j == nil || j.jobSpec() == nil {
		s.o.Log().Error("queued job has no state", "job", id)
		return
	}
	// Worker claim: the queue-wait stretch ends here, both as a span in
	// the job's trace and as an observation in the wait histogram.
	qwait, enqueued := j.claimTrace()
	qwait.End()
	if !enqueued.IsZero() {
		s.o.Histogram(MetricQueueWait, nil).ObserveSince(enqueued)
	}
	s.o.Gauge(MetricQueueDepth).Set(float64(s.queue.Len()))
	root := j.rootSpan()
	replayed := j.attemptCount() // replayed attempts don't count against this run
	maxAttempts := replayed + s.cfg.JobAttempts
	for attempt := replayed + 1; attempt <= maxAttempts; attempt++ {
		if s.ctx.Err() != nil {
			return // shutdown before the attempt started: stays queued in the journal
		}
		// The durable start record is an fsync on the hot path — span it,
		// or several ms per attempt go missing from the trace.
		jsp := root.StartChild("serve.journal.start")
		jerr := s.journal.Append(id, EventStarted, strconv.Itoa(attempt))
		jsp.End()
		if jerr != nil {
			// Without a durable start record the journal is the wrong
			// shape to trust; fail the attempt as if the job had.
			s.noteWriteError(jerr)
			s.o.Log().Error("journal append failed", "job", id, "err", jerr.Error())
			j.finish(PhaseFailed, fmt.Sprintf("journal append: %v", jerr))
			s.o.Counter(MetricFailed).Inc()
			root.End()
			return
		}
		j.setRunning(attempt)
		asp := root.StartChild("serve.attempt")
		res, err := s.attempt(j, asp)
		asp.End()
		switch {
		case err == nil && res == nil:
			// Shutdown mid-attempt: checkpoint written, job resumable. The
			// trace root stays open (the job did not finish); the tracer's
			// active-trace cap reclaims it.
			return
		case err == nil:
			psp := root.StartChild("serve.publish")
			ferr := s.finishJob(j, res)
			psp.End()
			if ferr == nil {
				root.End()
				return
			}
			err = ferr
		}
		s.o.Log().Warn("job attempt failed",
			"job", id, "attempt", attempt, "of", maxAttempts, "err", err.Error())
		if attempt == maxAttempts {
			detail := err.Error()
			if jerr := s.journal.Append(id, EventFailed, detail); jerr != nil {
				s.noteWriteError(jerr)
				s.o.Log().Error("journal append failed", "job", id, "err", jerr.Error())
			}
			j.finish(PhaseFailed, detail)
			s.o.Counter(MetricFailed).Inc()
			root.End()
			return
		}
		s.o.Counter(MetricRetries).Inc()
		bsp := root.StartChild("serve.backoff")
		s.backoff(attempt)
		bsp.End()
	}
}

// backoff sleeps between serve-level attempts: exponential from 50ms,
// capped at 2s, jittered over [d/2, 3d/2) by the server's seeded source,
// and cut short by shutdown.
func (s *Server) backoff(attempt int) {
	// Clamp the exponent before shifting: attempts accumulate across
	// restarts via journal replay, and an unclamped shift overflows into
	// a negative or zero duration whose jitter draw would panic.
	e := attempt - 1
	if e > 6 {
		e = 6 // 50ms<<6 already exceeds the 2s cap below
	}
	d := 50 * time.Millisecond << e
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	s.mu.Lock()
	d = d/2 + time.Duration(s.jitter.Int63n(int64(d)))
	s.mu.Unlock()
	select {
	case <-s.ctx.Done():
	case <-time.After(d):
	}
}

// attempt runs one synthesis attempt. sp is the attempt's trace span
// (nil when untraced); it rides the context so core and evolution
// phases attach their own children. Returns (nil, nil) when the attempt
// was interrupted by server shutdown — resumable, not failed.
func (s *Server) attempt(j *job, sp *obs.TraceSpan) (*JobResult, error) {
	spec := j.jobSpec()
	c, err := spec.Circuit()
	if err != nil {
		return nil, err
	}
	opt, err := spec.Options()
	if err != nil {
		return nil, err
	}
	// Each job runs as its own obs run over the server's shared registry
	// and logger: metrics aggregate service-wide, status stays per-job.
	jobObs := obs.New(j.id, s.o.Registry(), s.o.Log())
	opt.Obs = jobObs
	opt.Chaos = s.cfg.Chaos
	opt.Degrade = opt.Method == core.MethodEvolution
	ckpt := checkpointPath(s.cfg.Dir, j.id)
	if opt.Method == core.MethodEvolution {
		opt.Control = &evolution.Control{
			CheckpointPath:  ckpt,
			CheckpointEvery: s.cfg.CheckpointEvery,
			Obs:             jobObs,
			FS:              s.cfg.FS,
			Retry:           s.cfg.Retry,
			Chaos:           s.cfg.Chaos,
		}
		if ck, lerr := evolution.LoadCheckpoint(ckpt); lerr == nil {
			if ck.Circuit == c.Name && ck.Gates == c.NumGates() {
				opt.Resume = ck
				s.o.Counter(MetricResumed).Inc()
				s.o.Log().Info("resuming job from checkpoint",
					"job", j.id, "gen", ck.Generation, "best_cost", ck.BestCost)
			}
		} else if !errors.Is(lerr, os.ErrNotExist) {
			// A corrupt checkpoint must not wedge the job: start fresh and
			// say so. The determinism of the seeded run makes the restart
			// converge on the identical result.
			s.o.Log().Warn("ignoring unusable checkpoint", "job", j.id, "err", lerr.Error())
		}
	}
	// The optimizer publishes its own live status on jobObs; the trace
	// only feeds the job's SSE stream and /jobs/{id} view. (It must not
	// call jobObs.SetStatus itself: the status atomic requires one
	// concrete type per run, and the optimizer owns it.)
	opt.Trace = func(gen int, _ *partition.Partition, cost float64) {
		j.progress(gen, cost)
	}
	timeout, err := spec.JobTimeout()
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = s.cfg.JobTimeout
	}
	ctx, cancel := context.WithTimeout(s.ctx, timeout)
	defer cancel()
	ctx = obs.ContextWithSpan(ctx, sp)
	res, err := core.SynthesizeContext(ctx, c, opt)
	if err != nil {
		if errors.Is(context.Cause(s.ctx), errShutdown) {
			return nil, nil
		}
		return nil, err
	}
	timedOut := false
	if ev := res.Evolution; ev != nil && ev.Interrupted {
		if errors.Is(context.Cause(s.ctx), errShutdown) {
			// The final checkpoint is on disk (interrupt wrote it); leave
			// the journal un-finished so replay resumes this job.
			return nil, nil
		}
		// The job's own budget expired: its best-so-far design passed the
		// core audit, so it ships — marked, never silently.
		timedOut = true
	}
	jr := &JobResult{
		ID:       j.id,
		Circuit:  c.Name,
		Method:   res.Method.String(),
		Gates:    c.NumLogicGates(),
		Modules:  res.Partition.NumModules(),
		Cost:     res.Partition.Cost(),
		Feasible: res.Partition.Feasible(),
		Groups:   res.Partition.Groups(),
		Degraded: res.Degraded,
		TimedOut: timedOut,
		Report:   res.Report(),
	}
	if res.Evolution != nil {
		jr.Generations = res.Evolution.Generations
		jr.Evaluations = res.Evolution.Evaluations
	}
	if res.DegradedErr != nil {
		jr.DegradedErr = res.DegradedErr.Error()
	}
	return jr, nil
}

// finishJob publishes the result durably (side file first, then the
// journal record) and transitions the job.
func (s *Server) finishJob(j *job, res *JobResult) error {
	if err := s.journal.WriteResult(res); err != nil {
		s.noteWriteError(err)
		return err
	}
	detail := ""
	switch {
	case res.Degraded:
		detail = "degraded"
		s.o.Counter(MetricDegraded).Inc()
	case res.TimedOut:
		detail = "timeout"
	}
	if err := s.journal.Append(j.id, EventFinished, detail); err != nil {
		s.noteWriteError(err)
		return err
	}
	j.finish(PhaseDone, detail)
	s.o.Counter(MetricFinished).Inc()
	s.o.Log().Info("job finished", "job", j.id, "modules", res.Modules,
		"cost", res.Cost, "degraded", res.Degraded, "timed_out", res.TimedOut)
	return nil
}

// Jobs snapshots every job's status, newest phase first not guaranteed —
// ordering is by job ID for determinism.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	ids := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		ids = append(ids, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, j := range ids {
		out = append(out, j.status())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
