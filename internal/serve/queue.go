// Admission control: a bounded queue with fair per-tenant round-robin
// dispatch. Each tenant gets its own FIFO; workers pop tenants in
// rotation, so one tenant flooding the service delays only its own
// backlog — the next tenant's first job is at most one rotation away.
// When the total backlog hits the bound, Push refuses with
// ErrOverloaded and the submission surface turns that into 429 +
// Retry-After instead of letting latency grow without bound.

package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrOverloaded is returned by Push when the queue is at capacity. The
// HTTP layer maps it to 429 Too Many Requests with a Retry-After hint.
var ErrOverloaded = errors.New("serve: queue at capacity")

// DefaultQueueCap bounds the total backlog when Config.QueueCap is 0.
const DefaultQueueCap = 64

// fairQueue is the bounded multi-tenant queue. All methods are safe for
// concurrent use.
type fairQueue struct {
	mu      sync.Mutex
	cap     int
	n       int
	tenants []string            // rotation order, tenants with queued work
	byT     map[string][]string // tenant -> queued job IDs
	next    int                 // rotation cursor into tenants
	wake    chan struct{}       // buffered(1) doorbell for blocked Pops
	closed  bool
}

func newFairQueue(capacity int) *fairQueue {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	return &fairQueue{
		cap:  capacity,
		byT:  make(map[string][]string),
		wake: make(chan struct{}, 1),
	}
}

// Len is the total queued backlog.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Full reports whether the next Push would be refused.
func (q *fairQueue) Full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n >= q.cap
}

// Push enqueues a job for a tenant; ErrOverloaded at capacity.
func (q *fairQueue) Push(tenant, id string) error { return q.push(tenant, id, false) }

// forcePush enqueues regardless of capacity. Journal replay uses it: at
// crash time the backlog legitimately holds up to the cap in queued jobs
// plus every in-flight one, and a restart must never refuse work its own
// journal admitted — capacity is enforced at admission time only.
func (q *fairQueue) forcePush(tenant, id string) error { return q.push(tenant, id, true) }

func (q *fairQueue) push(tenant, id string, force bool) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return errors.New("serve: queue closed")
	}
	if !force && q.n >= q.cap {
		q.mu.Unlock()
		return ErrOverloaded
	}
	if _, ok := q.byT[tenant]; !ok {
		q.tenants = append(q.tenants, tenant)
	}
	q.byT[tenant] = append(q.byT[tenant], id)
	q.n++
	q.mu.Unlock()
	q.ring()
	return nil
}

// ring wakes one blocked Pop (non-blocking; the doorbell coalesces).
func (q *fairQueue) ring() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// tryPop dequeues the next job in tenant rotation, if any.
func (q *fairQueue) tryPop() (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return "", false
	}
	if q.next >= len(q.tenants) {
		q.next = 0
	}
	t := q.tenants[q.next]
	ids := q.byT[t]
	id := ids[0]
	if len(ids) == 1 {
		// Tenant drained: drop it from the rotation (the cursor now points
		// at its successor, keeping the rotation fair).
		delete(q.byT, t)
		q.tenants = append(q.tenants[:q.next], q.tenants[q.next+1:]...)
	} else {
		q.byT[t] = ids[1:]
		q.next++
	}
	q.n--
	return id, true
}

// Pop blocks until a job is available (rotating fairly across tenants),
// the context is done, or the queue is closed. ok is false only for the
// latter two.
func (q *fairQueue) Pop(ctx context.Context) (string, bool) {
	for {
		if id, ok := q.tryPop(); ok {
			// More work may remain and several Pops may be blocked; pass
			// the doorbell along.
			q.mu.Lock()
			nonempty := q.n > 0
			q.mu.Unlock()
			if nonempty {
				q.ring()
			}
			return id, true
		}
		q.mu.Lock()
		closed := q.closed
		q.mu.Unlock()
		if closed {
			q.ring() // cascade the close to the next blocked Pop
			return "", false
		}
		select {
		case <-ctx.Done():
			return "", false
		case <-q.wake:
		}
	}
}

// Close unblocks every Pop; subsequent Pushes fail.
func (q *fairQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.ring()
}
