package runctl

import (
	"context"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"iddqsyn/internal/obs"
)

func TestWithTimeoutZeroMeansNoDeadline(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), 0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero budget must not set a deadline")
	}
	cancel()
	if ctx.Err() == nil {
		t.Error("cancel must still work")
	}
}

func TestWithTimeoutExpires(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("timeout never fired")
	}
	if ctx.Err() != context.DeadlineExceeded {
		t.Errorf("err = %v, want DeadlineExceeded", ctx.Err())
	}
}

// syncWriter collects the progress notes concurrently written by the
// signal watcher goroutine.
type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

func TestWithSignalsTwoStage(t *testing.T) {
	exited := make(chan int, 1)
	exit = func(code int) { exited <- code }
	defer func() { exit = os.Exit }()

	var notes syncWriter
	ctx, stop := WithSignals(context.Background(), &notes)
	defer stop()

	// First signal: graceful cancellation.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first SIGINT did not cancel the context")
	}

	// Second signal: hard exit with the conventional status.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != ForcedExitCode {
			t.Errorf("exit code %d, want %d", code, ForcedExitCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGINT did not force an exit")
	}

	out := notes.String()
	if !strings.Contains(out, "finishing the current generation") {
		t.Errorf("first-signal note missing from %q", out)
	}
	if !strings.Contains(out, "exiting immediately") {
		t.Errorf("second-signal note missing from %q", out)
	}
}

func TestWithSignalsStopIsIdempotent(t *testing.T) {
	ctx, stop := WithSignals(context.Background(), nil)
	stop()
	stop() // must not panic (double close)
	if ctx.Err() == nil {
		t.Error("stop must cancel the context")
	}
}

// A fired deadline must be visible in the run's telemetry; a run that
// finishes inside its budget must not be.
func TestWithTimeoutObsRecordsExpiry(t *testing.T) {
	o := obs.New("r-timeout", nil, nil)
	ctx, cancel := WithTimeoutObs(context.Background(), 5*time.Millisecond, o)
	defer cancel()
	<-ctx.Done()
	deadline := func() bool {
		for i := 0; i < 100; i++ { // the watcher goroutine races the test
			if o.Counter(MetricTimeouts).Value() == 1 {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		return false
	}
	if !deadline() {
		t.Errorf("%s = %d, want 1 after expiry", MetricTimeouts, o.Counter(MetricTimeouts).Value())
	}

	o2 := obs.New("r-finished", nil, nil)
	ctx2, cancel2 := WithTimeoutObs(context.Background(), time.Hour, o2)
	cancel2()
	<-ctx2.Done()
	time.Sleep(5 * time.Millisecond)
	if got := o2.Counter(MetricTimeouts).Value(); got != 0 {
		t.Errorf("%s = %d for a run cancelled before its deadline, want 0", MetricTimeouts, got)
	}
}
