package runctl

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// The exit-code contract of every iddqsyn binary: -timeout expiry, a
// graceful SIGINT/SIGTERM stop, and a named optimizer failure each map
// to their own documented status.
func TestExitCodeTable(t *testing.T) {
	optFail := errors.New("evolution: cost evaluation panicked")
	cases := []struct {
		name  string
		err   error
		cause error
		want  int
	}{
		{"clean run", nil, nil, ExitOK},
		{"timeout, best-so-far reported", nil, context.DeadlineExceeded, ExitTimeout},
		{"interrupt, best-so-far reported", nil, context.Canceled, ExitInterrupted},
		{"named optimizer failure", optFail, nil, ExitOptimizer},
		{"wrapped optimizer failure", fmt.Errorf("core: %w", optFail), nil, ExitOptimizer},
		{"deadline surfaced through the error chain", fmt.Errorf("core: %w", context.DeadlineExceeded), nil, ExitTimeout},
		{"cancellation surfaced through the error chain", fmt.Errorf("core: %w", context.Canceled), nil, ExitInterrupted},
		{"timeout wins over a provoked failure", optFail, context.DeadlineExceeded, ExitTimeout},
		{"interrupt wins over a provoked failure", optFail, context.Canceled, ExitInterrupted},
		{"timeout wins over interrupt classification", fmt.Errorf("x: %w", context.Canceled), context.DeadlineExceeded, ExitTimeout},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err, tc.cause); got != tc.want {
			t.Errorf("%s: ExitCode(%v, %v) = %d, want %d", tc.name, tc.err, tc.cause, got, tc.want)
		}
	}
}

// The codes themselves are part of the CLI contract; a renumbering is a
// breaking change and must be deliberate.
func TestExitCodeValuesAreStable(t *testing.T) {
	want := map[string]int{
		"ExitOK": 0, "ExitFailure": 1, "ExitUsage": 2,
		"ExitTimeout": 3, "ExitInterrupted": 4, "ExitOptimizer": 5,
		"ForcedExitCode": 130,
	}
	got := map[string]int{
		"ExitOK": ExitOK, "ExitFailure": ExitFailure, "ExitUsage": ExitUsage,
		"ExitTimeout": ExitTimeout, "ExitInterrupted": ExitInterrupted,
		"ExitOptimizer": ExitOptimizer, "ForcedExitCode": ForcedExitCode,
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %d, want %d", name, got[name], w)
		}
	}
}

// ExitCode composes with the real WithTimeout plumbing: an expired
// budget classifies as ExitTimeout via context.Cause.
func TestExitCodeFromExpiredTimeout(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), 1)
	defer cancel()
	<-ctx.Done()
	if got := ExitCode(nil, context.Cause(ctx)); got != ExitTimeout {
		t.Fatalf("expired -timeout classified as %d, want %d", got, ExitTimeout)
	}
}
