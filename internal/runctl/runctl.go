// Package runctl provides the process-level run control shared by the
// iddqsyn binaries: two-stage signal handling (the first SIGINT/SIGTERM
// cancels the run's context so optimizers stop at the next generation
// boundary and persist their state; the second forces an immediate exit)
// and an optional wall-clock deadline. It exists so every long-running
// command gets identical, well-tested semantics instead of hand-rolled
// signal loops.
package runctl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"iddqsyn/internal/obs"
)

// MetricSignals counts the SIGINT/SIGTERM deliveries an observed run
// received (a run that shut down gracefully shows 1 here; 2 means the
// escape hatch fired).
const MetricSignals = "runctl.signals"

// MetricTimeouts counts wall-clock deadlines that fired (0 or 1 per run):
// a run snapshot with this set explains an Interrupted result without
// any signal having been delivered.
const MetricTimeouts = "runctl.timeouts"

// The documented exit codes shared by every iddqsyn binary (iddqpart,
// iddqstudy, iddqserve). A run that ends early for a *controlled* reason
// — the -timeout budget expired, or the first SIGINT/SIGTERM triggered a
// graceful stop — reports that reason in its exit status, distinct from
// a real failure, so wrapping scripts and CI can tell "the budget ran
// out, the best-so-far result is valid" from "the optimizer broke".
const (
	// ExitOK: the run completed.
	ExitOK = 0
	// ExitFailure: a generic failure outside the optimizer run itself
	// (unreadable input, bad library file, snapshot write failure).
	ExitFailure = 1
	// ExitUsage: bad flags or arguments.
	ExitUsage = 2
	// ExitTimeout: the -timeout wall-clock budget expired; long-running
	// commands still report their best-so-far result before exiting.
	ExitTimeout = 3
	// ExitInterrupted: the first SIGINT/SIGTERM stopped the run
	// gracefully (state persisted, best-so-far result reported).
	ExitInterrupted = 4
	// ExitOptimizer: a named optimizer/synthesis failure — every attempt
	// failed with the cause named in the error chain (and degradation,
	// if enabled, also failed).
	ExitOptimizer = 5
)

// ForcedExitCode is the exit status of a hard exit on the second signal
// (128 + SIGINT, the conventional "killed by Ctrl-C" status).
const ForcedExitCode = 130

// ExitCode classifies how a guarded run ended. err is the failure
// returned by the run phase itself (nil on success); cause is
// context.Cause of the run's context after WithTimeout/WithSignals
// composition. Deadline expiry wins over cancellation, cancellation
// wins over a plain failure — an optimizer error provoked by the
// context going away is reported as the timeout/interrupt it is, not as
// an optimizer failure. Setup failures outside the guarded run phase
// are the caller's to map (conventionally ExitFailure/ExitUsage).
func ExitCode(err, cause error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(cause, context.DeadlineExceeded):
		return ExitTimeout
	case errors.Is(err, context.Canceled) || errors.Is(cause, context.Canceled):
		return ExitInterrupted
	case err != nil:
		return ExitOptimizer
	}
	return ExitOK
}

// exit is swapped out by tests; the second signal must never return.
var exit = os.Exit

// WithSignals derives a context that is cancelled by the first SIGINT or
// SIGTERM. A second signal hard-exits the process with ForcedExitCode —
// the escape hatch when graceful shutdown itself hangs. Progress notes
// are written to w (nil silences them). The returned stop function
// releases the signal handler and the watcher goroutine; call it as soon
// as the guarded work is done.
func WithSignals(ctx context.Context, w io.Writer) (context.Context, context.CancelFunc) {
	return WithSignalsObs(ctx, w, nil)
}

// WithSignalsObs is WithSignals with telemetry: each delivered signal
// increments MetricSignals and is logged as a structured warning, so an
// interrupted run's metrics snapshot records why it stopped. A nil o
// keeps the behaviour of WithSignals exactly.
func WithSignalsObs(ctx context.Context, w io.Writer, o *obs.Obs) (context.Context, context.CancelFunc) {
	if w == nil {
		w = io.Discard
	}
	signals := o.Counter(MetricSignals)
	log := o.Log()
	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			signals.Inc()
			log.Warn("signal received: cancelling run", "signal", sig.String())
			fmt.Fprintf(w, "received %v: finishing the current generation and saving state (signal again to exit immediately)\n", sig)
			cancel()
		case <-done:
			return
		}
		select {
		case sig := <-ch:
			signals.Inc()
			log.Warn("second signal: exiting immediately", "signal", sig.String())
			fmt.Fprintf(w, "received second %v: exiting immediately\n", sig)
			exit(ForcedExitCode)
		case <-done:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
		cancel()
	}
	return ctx, stop
}

// WithTimeout derives a context with a wall-clock budget; d <= 0 means no
// deadline. It composes with WithSignals: apply the timeout first, then
// the signal handler.
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return WithTimeoutObs(ctx, d, nil)
}

// WithTimeoutObs is WithTimeout with telemetry: when the deadline fires
// (rather than the run finishing first), MetricTimeouts is incremented
// and a structured warning is logged, so a snapshot of an interrupted
// run records why it stopped. A nil o keeps WithTimeout's behaviour
// exactly.
func WithTimeoutObs(ctx context.Context, d time.Duration, o *obs.Obs) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	if o == nil {
		return ctx, cancel
	}
	timeouts := o.Counter(MetricTimeouts)
	log := o.Log()
	go func() {
		<-ctx.Done()
		if context.Cause(ctx) == context.DeadlineExceeded {
			timeouts.Inc()
			log.Warn("wall-clock budget exhausted: cancelling run", "budget", d.String())
		}
	}()
	return ctx, cancel
}
