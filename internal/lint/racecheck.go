package lint

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"iddqsyn/internal/lint/analysis"
)

// The race cross-check is the dynamic half of the sharedstate analyzer,
// in the escapecheck mold: where escapecheck diffs the static allocation
// model against the compiler's escape analysis, racecheck diffs the
// static lockset model against the race detector. It runs a set of
// scopes — the seeded intentional-race corpus plus the repo's heaviest
// concurrent workloads (chaos soak, serve soak, torture-lite) — under
// `go test -race`, parses every GORACE "WARNING: DATA RACE" report, and
// re-attributes each report to a static sharedstate candidate by
// matching the report's stack frames against the analyzer's recorded
// access sites (exact line first, then enclosing-function line range).
//
// The contract, per scope kind:
//
//   - seeds: the corpus test MUST fail, every report must attribute to a
//     seeded field, and every seed in RaceSeedFields must be observed.
//     A seed the detector cannot observe, or a report the analyzer has
//     no candidate for, is a hole in one half of the cross-check.
//   - soaks: zero unexplained reports. A report that attributes to a
//     static finding means the analyzer already flagged it (`make lint`
//     is dirty until it is fixed or justified); a report with no static
//     candidate is the bad case — a real race the lockset model missed.

// RaceSeedDir is the seeded-race corpus location, relative to the module
// root. The corpus is build-tagged (raceseeds) so the deliberate races
// never reach a normal build.
const RaceSeedDir = "internal/lint/testdata/src/raceseeds"

// RaceSeedFields is the canonical manifest of the seeded corpus: every
// planted field and the finding kind it seeds. The static half
// (TestRaceSeedCorpusFullyFlagged, and RaceCheck's own preflight) must
// flag exactly these fields; the dynamic half (the seeds scope) must
// observe a race on each. Extending the corpus means adding the seed
// here, in races.go, and in races_test.go together.
var RaceSeedFields = map[string]string{
	"raceseeds.UnguardedCounter.N": KindGuardGap,
	"raceseeds.DisjointPair.V":     KindDisjoint,
	"raceseeds.MixedFlag.Flag":     KindAtomicMix,
}

// RaceScope is one `go test -race` workload of the cross-check.
type RaceScope struct {
	Name  string
	Args  []string // go arguments, run from the module root
	Seeds bool     // seeds scope: must fail, with every seed observed
}

// DefaultRaceScopes returns the standard cross-check workloads: the
// seeded corpus, the chaos soak, the process-level serve soak (whose
// child binary is also race-built — see buildServe in cmd/iddqserve),
// and a torture-lite cycle (the in-process kill/replay and journal
// fault-injection tests, the same invariants cmd/iddqtorture drives
// through a real binary).
func DefaultRaceScopes() []RaceScope {
	return []RaceScope{
		{
			Name:  "seeds",
			Seeds: true,
			Args: []string{"test", "-race", "-count=1", "-tags", "raceseeds",
				"./" + RaceSeedDir + "/"},
		},
		{
			Name: "chaos-soak",
			Args: []string{"test", "-race", "-count=1", "-run", "TestChaosSoak",
				"./internal/chaos/"},
		},
		{
			Name: "serve-soak",
			Args: []string{"test", "-race", "-count=1", "-run",
				"TestSoakKillRestartBitIdentical", "./cmd/iddqserve/"},
		},
		{
			Name: "torture-lite",
			Args: []string{"test", "-race", "-count=1", "-run",
				"TestServerShutdownResumeBitIdentical|TestServerSurvivesInjectedFaults|TestJournalAppendAtomicUnderFaults",
				"./internal/serve/"},
		},
	}
}

// GoraceFrame is one stack frame of a race report.
type GoraceFrame struct {
	Func string
	File string // as printed by the detector (absolute)
	Line int
}

// GoraceReport is one parsed "WARNING: DATA RACE" block.
type GoraceReport struct {
	Summary string // first operation line, e.g. "Read at 0x… by goroutine 8:"
	Frames  []GoraceFrame
}

// ParseGorace extracts every DATA RACE report from `go test -race`
// output. Frames from all stacks of a report (both operations and the
// creation stacks) are collected in order; attribution tries them
// first-to-last, so the faulting operation frames win.
func ParseGorace(out string) []GoraceReport {
	var (
		reports []GoraceReport
		cur     *GoraceReport
		prev    string // last seen function line inside a report
	)
	for _, raw := range strings.Split(out, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case line == "WARNING: DATA RACE":
			cur = &GoraceReport{}
			prev = ""
		case cur == nil:
			// outside a report
		case strings.HasPrefix(line, "=========="):
			reports = append(reports, *cur)
			cur = nil
		default:
			if cur.Summary == "" && line != "" {
				cur.Summary = line
			}
			if file, ln, ok := parseFrameLoc(line); ok {
				cur.Frames = append(cur.Frames, GoraceFrame{Func: prev, File: file, Line: ln})
			} else {
				prev = strings.TrimSuffix(line, "()")
			}
		}
	}
	if cur != nil { // truncated output: keep what we saw
		reports = append(reports, *cur)
	}
	return reports
}

// parseFrameLoc parses a frame location line, `/path/file.go:123 +0x4c`.
func parseFrameLoc(line string) (string, int, bool) {
	loc, _, _ := strings.Cut(line, " ")
	file, lineStr, ok := strings.Cut(loc, ".go:")
	if !ok {
		return "", 0, false
	}
	n, err := strconv.Atoi(lineStr)
	if err != nil || n <= 0 {
		return "", 0, false
	}
	return file + ".go", n, true
}

// AttributeRace maps one dynamic race report to a static sharedstate
// candidate. Matching is two-pass over the report's frames: a frame
// whose file:line is exactly a recorded access site wins; failing that,
// a frame inside the line range of a function that contains a recorded
// access site for the field. Returns ok=false when no frame touches any
// candidate's sites.
func AttributeRace(rep GoraceReport, fields []SharedField) (field SharedField, frame GoraceFrame, ok bool) {
	for _, f := range rep.Frames {
		for _, cand := range fields {
			for _, s := range cand.Sites {
				if f.Line == s.Line && sameFile(f.File, s.File) {
					return cand, f, true
				}
			}
		}
	}
	for _, f := range rep.Frames {
		for _, cand := range fields {
			for _, s := range cand.Sites {
				if f.Line >= s.FuncStart && f.Line <= s.FuncEnd && sameFile(f.File, s.File) {
					return cand, f, true
				}
			}
		}
	}
	return SharedField{}, GoraceFrame{}, false
}

// sameFile compares a race-report path against an analyzer site path.
// Both are normally absolute; tolerate one being a suffix of the other
// (trimmed build roots, test fixtures).
func sameFile(a, b string) bool {
	a, b = filepath.ToSlash(a), filepath.ToSlash(b)
	return a == b || strings.HasSuffix(a, "/"+b) || strings.HasSuffix(b, "/"+a)
}

// RaceAttribution is one dynamic report after attribution.
type RaceAttribution struct {
	Summary string // the report's operation line
	Field   string // attributed field id ("" when unexplained)
	Kinds   []string
	Frame   string // "file:line (func)" of the matching frame
}

// RaceScopeResult is one scope's outcome.
type RaceScopeResult struct {
	Name         string
	Reports      int
	Attributed   []RaceAttribution
	Unexplained  []RaceAttribution
	MissingSeeds []string // seeds scope: manifest entries no report covered
	TestFailed   bool     // the `go test` run exited non-zero
	Err          string   // tooling failure (non-race test failure, …)
	LogPath      string   // raw output artifact, when a log dir was given
}

// Passed reports whether the scope met its contract.
func (r *RaceScopeResult) Passed(seeds bool) bool {
	if r.Err != "" || len(r.Unexplained) > 0 {
		return false
	}
	if seeds {
		return r.TestFailed && r.Reports > 0 && len(r.MissingSeeds) == 0
	}
	return true
}

// RaceCheckReport is the full cross-check outcome.
type RaceCheckReport struct {
	StaticFields       int      // module-wide sharedstate candidates
	SeedFields         int      // candidates in the seeded corpus
	SeedsMissingStatic []string // manifest seeds sharedstate failed to flag
	Scopes             []RaceScopeResult
	scopeSeeds         map[string]bool
}

// Passed reports whether every scope met its contract and the static
// half flagged the whole seed manifest.
func (r *RaceCheckReport) Passed() bool {
	if len(r.SeedsMissingStatic) > 0 {
		return false
	}
	for i := range r.Scopes {
		if !r.Scopes[i].Passed(r.scopeSeeds[r.Scopes[i].Name]) {
			return false
		}
	}
	return true
}

// SeedCorpusFindings runs sharedstate over the seeded corpus alone (the
// analysis loader parses it regardless of build tags) and returns every
// flagged field with its finding kinds. Both RaceCheck's preflight and
// the zero-false-negative corpus test consume this.
func SeedCorpusFindings(root string) ([]SharedField, error) {
	prog, err := analysis.Load(analysis.Config{
		Root:     filepath.Join(root, "internal", "lint", "testdata"),
		Patterns: []string{"raceseeds"},
	})
	if err != nil {
		return nil, err
	}
	return collectSharedFields(prog)
}

// moduleSharedFields runs sharedstate module-wide and returns every
// candidate field — including ones silenced by //lint:ignore, because a
// justified ignore is still a valid attribution target for a dynamic
// report (the justification is what the report then indicts).
func moduleSharedFields(root string, patterns []string) ([]SharedField, error) {
	prog, err := analysis.LoadModule(root, patterns)
	if err != nil {
		return nil, err
	}
	return collectSharedFields(prog)
}

func collectSharedFields(prog *analysis.Program) ([]SharedField, error) {
	var (
		mu     sync.Mutex
		fields []SharedField
	)
	opts := analysis.Options{
		Applies:        Applies,
		KnownAnalyzers: Names(),
		RootsOnly:      true,
		OnResult: func(pkg *analysis.Package, a *analysis.Analyzer, result interface{}) {
			if r, ok := result.(*SharedStateResult); ok && r != nil {
				mu.Lock()
				fields = append(fields, r.Fields...)
				mu.Unlock()
			}
		},
	}
	if _, err := prog.Run([]*analysis.Analyzer{SharedState}, opts); err != nil {
		return nil, err
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Field < fields[j].Field })
	return fields, nil
}

// RaceCheck runs the static-vs-dynamic race cross-check: sharedstate
// module-wide and over the seeded corpus, then every scope under the
// race detector, attributing each GORACE report back to a static
// candidate. When logDir is non-empty, each scope's raw output is
// written there as gorace-<scope>.log (the CI artifact).
func RaceCheck(root string, scopes []RaceScope, logDir string) (*RaceCheckReport, error) {
	if len(scopes) == 0 {
		scopes = DefaultRaceScopes()
	}
	moduleFields, err := moduleSharedFields(root, []string{"./..."})
	if err != nil {
		return nil, err
	}
	seedFields, err := SeedCorpusFindings(root)
	if err != nil {
		return nil, err
	}

	rep := &RaceCheckReport{
		StaticFields: len(moduleFields),
		SeedFields:   len(seedFields),
		scopeSeeds:   map[string]bool{},
	}
	flagged := map[string]bool{}
	for _, f := range seedFields {
		flagged[f.Field] = true
	}
	for id := range RaceSeedFields {
		if !flagged[id] {
			rep.SeedsMissingStatic = append(rep.SeedsMissingStatic, id)
		}
	}
	sort.Strings(rep.SeedsMissingStatic)

	if logDir != "" {
		if err := os.MkdirAll(logDir, 0o755); err != nil {
			return nil, err
		}
	}
	for _, sc := range scopes {
		rep.scopeSeeds[sc.Name] = sc.Seeds
		candidates := moduleFields
		if sc.Seeds {
			candidates = seedFields
		}
		rep.Scopes = append(rep.Scopes, runRaceScope(root, sc, candidates, logDir))
	}
	return rep, nil
}

func runRaceScope(root string, sc RaceScope, candidates []SharedField, logDir string) RaceScopeResult {
	res := RaceScopeResult{Name: sc.Name}
	cmd := exec.Command("go", sc.Args...)
	cmd.Dir = root
	// Never halt on the first report: the seeds scope needs all of them.
	cmd.Env = append(os.Environ(), "GORACE=halt_on_error=0")
	out, err := cmd.CombinedOutput()
	if logDir != "" {
		res.LogPath = filepath.Join(logDir, "gorace-"+sc.Name+".log")
		if werr := os.WriteFile(res.LogPath, out, 0o644); werr != nil && err == nil {
			err = werr
		}
	}
	reports := ParseGorace(string(out))
	res.Reports = len(reports)
	res.TestFailed = err != nil
	if err != nil && len(reports) == 0 {
		// Failure with no race report is a broken scope, not a finding.
		res.Err = fmt.Sprintf("go %s: %v\n%s", strings.Join(sc.Args, " "), err, tail(string(out), 20))
		return res
	}

	seen := map[string]bool{}
	for _, r := range reports {
		field, frame, ok := AttributeRace(r, candidates)
		att := RaceAttribution{Summary: r.Summary}
		if ok {
			att.Field = field.Field
			att.Kinds = field.Kinds
			att.Frame = fmt.Sprintf("%s:%d (%s)", filepath.Base(frame.File), frame.Line, frame.Func)
			seen[field.Field] = true
			res.Attributed = append(res.Attributed, att)
		} else {
			if len(r.Frames) > 0 {
				f := r.Frames[0]
				att.Frame = fmt.Sprintf("%s:%d (%s)", filepath.Base(f.File), f.Line, f.Func)
			}
			res.Unexplained = append(res.Unexplained, att)
		}
	}
	if sc.Seeds {
		for id := range RaceSeedFields {
			if !seen[id] {
				res.MissingSeeds = append(res.MissingSeeds, id)
			}
		}
		sort.Strings(res.MissingSeeds)
	}
	return res
}

// tail returns the last n lines of s, for compact error context.
func tail(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}
