package lint

import (
	"go/ast"

	"iddqsyn/internal/lint/analysis"
)

// CtxLoop flags loops that make cancellation ineffective: inside a
// function that takes a context.Context, a loop that does real work (calls
// functions) but neither consults the context (ctx.Err()/ctx.Done(), or
// passing ctx into a callee that checks it) nor sits inside a loop that
// does, will run to completion no matter what -timeout or SIGINT asked
// for. Generation and sweep loops are exactly this shape when the check is
// forgotten.
//
// Being syntactic, the check treats any mention of the context parameter
// within the loop as observing it — passing ctx onward delegates the
// check — and only the outermost offending loop is reported. Loops whose
// body contains no function calls (pure index/append bookkeeping) are
// exempt: they terminate quickly and have nothing to propagate ctx into.
var CtxLoop = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "flag generation/sweep loops in context-aware functions that never check " +
		"ctx.Err()/ctx.Done() nor pass ctx to a callee; such loops make -timeout " +
		"and SIGINT handling silently ineffective",
	Run: runCtxLoop,
}

func runCtxLoop(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ctxPkg := importName(f, "context")
		if ctxPkg == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			ctxName := contextParam(ftype, ctxPkg)
			if ctxName == "" || ctxName == "_" {
				return true
			}
			checkLoops(pass, body, ctxName, false)
			// Nested function literals are visited again by the outer
			// Inspect with their own parameter lists, so do not prune.
			return true
		})
	}
	return nil, nil
}

// contextParam returns the name of the first context.Context parameter of
// a function type ("" if it has none).
func contextParam(ftype *ast.FuncType, ctxPkg string) string {
	if ftype.Params == nil {
		return ""
	}
	for _, field := range ftype.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != ctxPkg {
			continue
		}
		for _, name := range field.Names {
			return name.Name
		}
	}
	return ""
}

// checkLoops reports the outermost loops under n that do work without
// observing ctx. underChecked tracks whether an enclosing loop already
// observes ctx each iteration (inner loops are then bounded by it) or was
// itself reported (avoid cascading findings).
func checkLoops(pass *analysis.Pass, n ast.Node, ctxName string, underChecked bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		var whole ast.Node // the full loop, condition included
		switch node.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			whole = node
		case *ast.FuncLit:
			// A nested literal is a fresh scope handled by runCtxLoop
			// (it may or may not take its own ctx); a loop inside it does
			// not belong to this function's cancellation contract.
			return false
		default:
			return true
		}
		inner := underChecked
		switch {
		case referencesIdent(whole, ctxName):
			inner = true // this loop observes ctx each iteration
		case !underChecked && containsWork(whole):
			pass.Reportf(node.Pos(),
				"loop never checks %s.Err()/%s.Done() nor passes %s to a callee; "+
					"cancellation (-timeout, SIGINT) is ineffective while it runs",
				ctxName, ctxName, ctxName)
			inner = true // do not cascade into nested loops
		}
		checkLoops(pass, loopBody(node), ctxName, inner)
		return false // recursion above handles the subtree
	})
}

func loopBody(n ast.Node) ast.Node {
	switch loop := n.(type) {
	case *ast.ForStmt:
		return loop.Body
	case *ast.RangeStmt:
		return loop.Body
	}
	return n
}

// referencesIdent reports whether the subtree mentions the identifier.
func referencesIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// nonWorkCalls are builtin functions and universe types whose call syntax
// does not invoke user code: a loop containing only these is bookkeeping,
// not work worth a cancellation point.
var nonWorkCalls = map[string]bool{
	"append": true, "cap": true, "clear": true, "copy": true,
	"delete": true, "len": true, "make": true, "max": true, "min": true,
	"new": true, "panic": true, "print": true, "println": true,
	"recover": true,
	// Common type conversions (syntactically indistinguishable from calls).
	"bool": true, "byte": true, "complex64": true, "complex128": true,
	"error": true, "float32": true, "float64": true, "int": true,
	"int8": true, "int16": true, "int32": true, "int64": true,
	"rune": true, "string": true, "uint": true, "uint8": true,
	"uint16": true, "uint32": true, "uint64": true, "uintptr": true,
	"any": true,
}

// containsWork reports whether the subtree calls anything that could be a
// user function (method calls, selector calls, or plain calls that are not
// builtins/conversions).
func containsWork(n ast.Node) bool {
	work := false
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return !work
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if !nonWorkCalls[fun.Name] {
				work = true
			}
		default:
			work = true
		}
		return !work
	})
	return work
}
