package analysis

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Baseline is a committed inventory of grandfathered findings: CI fails
// on any finding not in the baseline, while the debt it records is
// tracked (and shrinks as entries stop matching). Entries are keyed by
// (file, analyzer, message) — deliberately not by line number, so pure
// code motion does not invalidate the baseline — and matched as a
// multiset: three identical grandfathered findings cover at most three
// live ones.
//
// The file format is one entry per line,
//
//	<file>\t<analyzer>\t<message>
//
// with '#' comment lines and blank lines skipped, sorted for stable
// diffs. File paths are slash-separated and relative to the module root.
type Baseline struct {
	counts map[baselineKey]int
}

type baselineKey struct {
	File     string
	Analyzer string
	Message  string
}

// ParseBaseline reads a baseline file.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{counts: map[baselineKey]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want <file>\\t<analyzer>\\t<message>, got %q", lineNo, line)
		}
		b.counts[baselineKey{parts[0], parts[1], parts[2]}]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Len reports the number of grandfathered entries.
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// Filter splits findings into new ones (not covered by the baseline) and
// the count of findings the baseline absorbed. root relativizes finding
// file names the same way WriteBaseline does.
func (b *Baseline) Filter(findings []Finding, root string) (fresh []Finding, absorbed int) {
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, c := range b.counts {
		remaining[k] = c
	}
	for _, f := range findings {
		k := baselineKey{relURI(root, f.Position.Filename), f.Analyzer, f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			absorbed++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, absorbed
}

// WriteBaseline renders findings in baseline format, sorted.
func WriteBaseline(w io.Writer, findings []Finding, root string) error {
	lines := make([]string, 0, len(findings))
	for _, f := range findings {
		lines = append(lines, fmt.Sprintf("%s\t%s\t%s",
			relURI(root, f.Position.Filename), f.Analyzer, f.Message))
	}
	sort.Strings(lines)
	if _, err := fmt.Fprintln(w, "# iddqlint baseline: grandfathered findings (one per line,"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# file<TAB>analyzer<TAB>message). Regenerate with iddqlint -baseline-update."); err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// BaselinePathDefault is the conventional baseline location at the
// module root.
const BaselinePathDefault = "lint.baseline"
