package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// IgnoreDirective is the comment prefix that suppresses a finding:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The reason
// is mandatory — a bare ignore is itself a policy violation, so the
// framework treats it as not matching.
const IgnoreDirective = "lint:ignore"

// RunAnalyzers applies every analyzer to every package and returns the
// surviving findings sorted by file position. An analyzer error aborts the
// run (it is a bug in the analyzer, not a finding).
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignored := ignoreLines(pkg)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if names := ignored[key]; names[a.Name] || names["*"] {
					continue
				}
				findings = append(findings, Finding{
					Position: pos,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// ignoreLines collects, per "file:line" key, the analyzer names suppressed
// there by lint:ignore directives. A directive suppresses its own line and
// the following line, so both trailing comments and own-line comments
// above the flagged statement work.
func ignoreLines(pkg *Package) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, IgnoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: directive does not apply
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					if out[key] == nil {
						out[key] = map[string]bool{}
					}
					out[key][fields[0]] = true
				}
			}
		}
	}
	return out
}

// Inspect walks every node of every non-nil file in depth-first order,
// calling fn; fn returning false prunes the subtree. It mirrors
// ast.Inspect over a whole pass.
func Inspect(files []*ast.File, fn func(ast.Node) bool) {
	for _, f := range files {
		ast.Inspect(f, fn)
	}
}
