package analysis

import (
	"fmt"
	"go/token"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// IgnoreDirective is the comment prefix that suppresses a finding:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The
// analyzer name must match the reporting analyzer exactly, and the reason
// is mandatory. A directive that suppresses nothing is itself reported
// (as analyzer "lintdirective"), so stale exemptions cannot linger after
// the code they excused is gone.
const IgnoreDirective = "lint:ignore"

// DirectiveAnalyzer is the pseudo-analyzer name under which the framework
// reports malformed, unknown-analyzer and unused ignore directives. It is
// not suppressible.
const DirectiveAnalyzer = "lintdirective"

// Options configures one Program.Run.
type Options struct {
	// Parallel bounds the number of packages type-checked and analyzed
	// concurrently; 0 means GOMAXPROCS.
	Parallel int
	// Applies, when non-nil, gates which analyzers run on which package
	// (by import path). An analyzer that does not apply is skipped for
	// that package, and ignore directives naming it there are left alone.
	Applies func(a *Analyzer, pkgPath string) bool
	// KnownAnalyzers is the full suite's names, used to distinguish an
	// ignore directive naming an unknown analyzer (reported) from one
	// naming a real analyzer that simply is not running (left alone).
	// When empty, the names of the analyzers being run are used.
	KnownAnalyzers []string
	// RootsOnly restricts findings to the packages matched by the load
	// patterns; dependency packages are still type-checked and analyzed
	// so their facts flow, but their diagnostics are dropped.
	RootsOnly bool
	// FactDebug, when non-nil, receives one line per exported fact after
	// the run completes.
	FactDebug io.Writer
	// OnResult, when non-nil, receives every analyzer Run return value
	// (including nil ones) with the package it was produced for. It is
	// called concurrently from the worker goroutines — one call per
	// (package, analyzer) — so implementations must synchronize their own
	// state.
	OnResult func(pkg *Package, a *Analyzer, result interface{})
	// OnTiming, when non-nil, receives the wall-clock cost of every
	// analyzer run — one call per (package, analyzer), concurrently from
	// the worker goroutines like OnResult. The per-package type-check is
	// not included: timing exists to apportion the lint budget across
	// analyzers, and the type-check is a fixed cost they all share.
	OnTiming func(pkg *Package, a *Analyzer, elapsed time.Duration)
}

// pkgState is the per-package bookkeeping that spans both analysis waves:
// the parsed ignore directives (suppressions from either wave mark them
// used) and the set of analyzers that actually ran on the package (so the
// unused-directive report only fires for analyzers that had a chance to
// report).
type pkgState struct {
	directives []*directive
	ran        map[string]bool
}

// Run type-checks every package of the Program and applies the analyzers
// in two waves, each parallel across packages:
//
//   - wave 1 (Forward): dependency order. A package starts as soon as all
//     its in-module imports have finished, so facts exported while
//     analyzing a dependency are always visible to its dependents. The
//     type-check itself happens in this wave.
//   - wave 2 (Reverse): dependent order over the same graph. A package
//     starts as soon as every package importing it has finished, so facts
//     exported while analyzing a caller's package (e.g. "this imported
//     function is reachable from a hot root") are visible when the
//     defining package is analyzed.
//
// Ignore directives are shared across the waves, and directive hygiene
// (malformed/unknown/unused) is judged only after both waves finished.
//
// The returned error reports broken tooling — a type-check failure or a
// panicking/failing analyzer — as distinct from findings, so drivers can
// exit 2 rather than 1 (see cmd/iddqlint).
func (prog *Program) Run(analyzers []*Analyzer, opts Options) ([]Finding, error) {
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	known := map[string]bool{}
	for _, n := range opts.KnownAnalyzers {
		known[n] = true
	}
	if len(known) == 0 {
		for _, a := range analyzers {
			known[a.Name] = true
		}
	}
	facts := newFactStore()

	rootSet := map[*Package]bool{}
	for _, pkg := range prog.Roots {
		rootSet[pkg] = true
	}
	states := map[*Package]*pkgState{}
	for _, pkg := range prog.Packages {
		states[pkg] = &pkgState{ran: map[string]bool{}}
	}

	var forward, reverse []*Analyzer
	for _, a := range analyzers {
		if a.Direction == Reverse {
			reverse = append(reverse, a)
		} else {
			forward = append(forward, a)
		}
	}

	var (
		mu       sync.Mutex
		findings []Finding
		failures []error
	)
	runWave := func(wave []*Analyzer, deps func(*Package) []*Package, typeCheck bool) {
		prog.schedule(parallel, deps, func(pkg *Package) {
			fs, errs := prog.runPackage(pkg, wave, opts, facts, states[pkg], typeCheck)
			mu.Lock()
			if opts.RootsOnly && !rootSet[pkg] {
				fs = nil
			}
			findings = append(findings, fs...)
			failures = append(failures, errs...)
			mu.Unlock()
		})
	}

	dependents := map[*Package][]*Package{}
	for _, pkg := range prog.Packages {
		for _, dep := range pkg.Imports {
			dependents[dep] = append(dependents[dep], pkg)
		}
	}
	runWave(forward, func(pkg *Package) []*Package { return pkg.Imports }, true)
	if len(reverse) > 0 && len(failures) == 0 {
		runWave(reverse, func(pkg *Package) []*Package { return dependents[pkg] }, false)
	}

	for _, pkg := range prog.Packages {
		if opts.RootsOnly && !rootSet[pkg] {
			continue
		}
		st := states[pkg]
		findings = append(findings, directiveFindings(st.directives, known, st.ran)...)
	}

	if opts.FactDebug != nil {
		for _, line := range facts.dump() {
			fmt.Fprintln(opts.FactDebug, line)
		}
	}
	if len(failures) > 0 {
		msgs := make([]string, len(failures))
		for i, e := range failures {
			msgs[i] = e.Error()
		}
		sort.Strings(msgs)
		return nil, fmt.Errorf("%s", strings.Join(msgs, "\n"))
	}
	sortFindings(findings)
	return findings, nil
}

// schedule runs work once per package, in parallel, respecting deps: a
// package starts only after work finished on every package deps returns
// for it. With deps = Imports this is dependency order; with deps = the
// dependents map it is the same graph walked backwards.
func (prog *Program) schedule(parallel int, deps func(*Package) []*Package, work func(*Package)) {
	waiting := map[*Package]int{}
	unlocks := map[*Package][]*Package{}
	ready := make(chan *Package, len(prog.Packages))
	for _, pkg := range prog.Packages {
		d := deps(pkg)
		waiting[pkg] = len(d)
		for _, dep := range d {
			unlocks[dep] = append(unlocks[dep], pkg)
		}
		if len(d) == 0 {
			ready <- pkg
		}
	}
	done := make(chan *Package, len(prog.Packages))

	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pkg := range ready {
				work(pkg)
				done <- pkg
			}
		}()
	}
	for finished := 0; finished < len(prog.Packages); finished++ {
		pkg := <-done
		for _, dep := range unlocks[pkg] {
			waiting[dep]--
			if waiting[dep] == 0 {
				ready <- dep
			}
		}
	}
	close(ready)
	wg.Wait()
}

// runPackage applies one wave's analyzers to one package, resolving
// ignore directives against the cross-wave state. In the first wave
// (typeCheck true) the package is type-checked first. Returned errors are
// tooling failures, not findings.
func (prog *Program) runPackage(pkg *Package, analyzers []*Analyzer, opts Options,
	facts *factStore, st *pkgState, typeCheck bool) ([]Finding, []error) {

	if typeCheck {
		// A dependency that failed to type-check poisons this package too;
		// stay quiet about it (the root cause is already reported).
		for _, dep := range pkg.Imports {
			if dep.Types == nil {
				return nil, nil
			}
		}
		if err := prog.typeCheck(pkg); err != nil {
			return nil, []error{err}
		}
		st.directives = collectDirectives(pkg)
	}
	if pkg.Types == nil {
		return nil, nil // poisoned in wave 1
	}

	var findings []Finding
	for _, a := range analyzers {
		if opts.Applies != nil && !opts.Applies(a, pkg.Path) {
			continue
		}
		st.ran[a.Name] = true
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Pkg:       pkg,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			TypesPkg:  pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
			facts:     facts,
		}
		start := time.Now()
		res, err := a.Run(pass)
		if opts.OnTiming != nil {
			opts.OnTiming(pkg, a, time.Since(start))
		}
		if err != nil {
			return nil, []error{fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)}
		}
		if opts.OnResult != nil {
			opts.OnResult(pkg, a, res)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if suppressed(st.directives, a.Name, pos) {
				continue
			}
			findings = append(findings, Finding{Position: pos, Analyzer: a.Name, Message: d.Message})
		}
	}
	return findings, nil
}

// ParseIgnore parses one comment's text (with or without the leading //)
// as an ignore directive. It returns ok=false when the comment is not an
// ignore directive at all, and malformed=true when it is one but lacks an
// analyzer name or a reason.
func ParseIgnore(text string) (name, reason string, ok, malformed bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, isDir := strings.CutPrefix(text, IgnoreDirective)
	if !isDir {
		return "", "", false, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", "", true, true
	}
	return fields[0], strings.Join(fields[1:], " "), true, false
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos     token.Position
	name    string // analyzer named by the directive ("" if malformed)
	reason  string
	inTest  bool
	used    bool
	malform bool
}

// collectDirectives parses every lint:ignore comment in the package.
func collectDirectives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		fileName := pkg.Fset.Position(f.Pos()).Filename
		inTest := strings.HasSuffix(fileName, "_test.go")
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok, malformed := ParseIgnore(c.Text)
				if !ok {
					continue
				}
				out = append(out, &directive{
					pos: pkg.Fset.Position(c.Pos()), inTest: inTest,
					name: name, reason: reason, malform: malformed,
				})
			}
		}
	}
	return out
}

// suppressed reports whether a diagnostic of the named analyzer at pos is
// covered by a directive (exact analyzer-name match, on the same line or
// the line above), marking every covering directive used.
func suppressed(directives []*directive, analyzer string, pos token.Position) bool {
	hit := false
	for _, d := range directives {
		if d.malform || d.name != analyzer || d.pos.Filename != pos.Filename {
			continue
		}
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 {
			d.used = true
			hit = true
		}
	}
	return hit
}

// directiveFindings reports directive hygiene violations: malformed
// directives, directives naming an analyzer that does not exist, and
// directives that suppressed nothing even though their analyzer ran.
// Directives naming a real analyzer that was not run here (disabled, or
// scoped away by Applies) are left alone. Test files never produce
// analyzer findings, so unused directives there are skipped too.
func directiveFindings(directives []*directive, known, ran map[string]bool) []Finding {
	var out []Finding
	for _, d := range directives {
		switch {
		case d.malform:
			out = append(out, Finding{Position: d.pos, Analyzer: DirectiveAnalyzer,
				Message: "malformed ignore directive: want //lint:ignore <analyzer> <reason>"})
		case !known[d.name]:
			out = append(out, Finding{Position: d.pos, Analyzer: DirectiveAnalyzer,
				Message: fmt.Sprintf("ignore directive names unknown analyzer %q (see iddqlint -list); the exact name is required", d.name)})
		case !d.used && ran[d.name] && !d.inTest:
			out = append(out, Finding{Position: d.pos, Analyzer: DirectiveAnalyzer,
				Message: fmt.Sprintf("unused ignore directive: %s reports nothing here; remove the directive", d.name)})
		}
	}
	return out
}

// sortFindings orders findings by file position, then analyzer.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
}
