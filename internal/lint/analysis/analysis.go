// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check with a
// Run function over one parsed package, a Pass carries the package being
// checked, and diagnostics are reported through the Pass.
//
// The module deliberately has no third-party dependencies, so the real
// x/tools framework is unavailable; this package reproduces the subset the
// iddqlint suite needs — purely syntactic analyzers over go/ast — with the
// same shape, so the analyzers can migrate to the real multichecker
// unchanged if the dependency is ever added.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph help text shown by `iddqlint -help`.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report. The returned value is ignored by this framework (the
	// x/tools API uses it for inter-analyzer facts, which iddqlint does
	// not need).
	Run func(pass *Pass) (interface{}, error)
}

// Package is one loaded (parsed, not type-checked) Go package.
type Package struct {
	// Path is the import path, e.g. "iddqsyn/internal/atpg".
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files holds every parsed source file of the package, test files
	// included (analyzers that exempt tests use Pass.IsTestFile).
	Files []*ast.File
}

// Pass connects one Analyzer run to one Package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet
	Files    []*ast.File

	// Report delivers one diagnostic. The framework fills this in; Run
	// implementations call it (or the Reportf convenience).
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file was parsed from a _test.go source.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Diagnostic is one finding, positioned in the package's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the framework
}

// Finding is a resolved diagnostic ready for printing or comparison.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}
