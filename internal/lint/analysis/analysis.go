// Package analysis is a minimal, dependency-free, *types-aware* mirror of
// the golang.org/x/tools/go/analysis API: an Analyzer is a named check with
// a Run function over one type-checked package, a Pass carries the package
// being checked plus its type information, and diagnostics are reported
// through the Pass.
//
// The module deliberately has no third-party dependencies, so the real
// x/tools framework is unavailable; this package reproduces the subset the
// iddqlint suite needs using only the standard library (go/ast, go/types,
// go/importer). Compared to the v1 framework, which parsed files one
// package at a time and ran purely syntactic checks, v2:
//
//   - loads the whole module as one Program: a shared token.FileSet, an
//     in-module import graph, and one type-checked world, so a types.Object
//     seen in package A is pointer-identical when package B references it;
//   - type-checks packages and runs analyzers in dependency order, in
//     parallel across packages (see Program.Run);
//   - propagates Facts: an analyzer can record a property of an object
//     (e.g. "this function's result derives from time.Now") while checking
//     the defining package and consume it while checking an importer.
//
// The standard library itself is type-checked from source via
// go/importer's "source" compiler, once per process, so analyzers see real
// types for time.Now, *rand.Rand, error and friends without any export
// data or third-party loader.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Direction is the fact-flow direction of an analyzer, which decides the
// package order it runs in (see Program.Run).
type Direction int

const (
	// Forward analyzers run dependencies-first: facts they export while
	// analyzing a package are visible to the packages that import it.
	// This is the x/tools model and the zero value.
	Forward Direction = iota
	// Reverse analyzers run dependents-first: facts they export while
	// analyzing a package are visible to the packages it imports. This is
	// the direction of caller→callee properties — a callee inherits
	// "reachable from a hot root" from its callers, which live in
	// importing packages.
	Reverse
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph help text shown by `iddqlint -list`.
	Doc string
	// FactTypes lists the fact values the analyzer may export; every fact
	// type an analyzer passes to ExportObjectFact/ExportPackageFact must
	// appear here (the runner validates exports against this list).
	FactTypes []Fact
	// Direction selects the wave the analyzer runs in: Forward (the
	// default, dependencies first) or Reverse (dependents first).
	Direction Direction
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report. The returned value is ignored by the framework itself
	// but handed to Options.OnResult, so drivers can collect structured
	// per-package results (the escape cross-check harness does).
	Run func(pass *Pass) (interface{}, error)
}

// Fact is a property of a types.Object or a package, exported while
// analyzing the defining package and importable while analyzing any
// package that (transitively) depends on it. Implementations are pointers
// to concrete structs; AFact is a marker method.
type Fact interface{ AFact() }

// Package is one loaded and type-checked Go package.
type Package struct {
	// Path is the import path, e.g. "iddqsyn/internal/atpg".
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the Program-wide FileSet positioning every file.
	Fset *token.FileSet
	// Files holds every parsed source file of the package, test files
	// included (analyzers that exempt tests use Pass.IsTestFile).
	Files []*ast.File
	// CheckedFiles is the subset of Files that participates in the
	// type-check: non-test files of the primary package. Test files are
	// parsed (for ignore directives and syntactic checks) but carry no
	// type information.
	CheckedFiles []*ast.File
	// Types and TypesInfo hold the type-checked package; nil until the
	// runner has checked it. TypesInfo covers CheckedFiles only.
	Types     *types.Package
	TypesInfo *types.Info
	// Imports are the in-module dependencies, in no particular order.
	Imports []*Package

	// importPaths is every import path mentioned by CheckedFiles.
	importPaths []string
}

// Pass connects one Analyzer run to one Package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet
	Files    []*ast.File
	// TypesPkg and TypesInfo expose the package's type information.
	// TypesInfo covers non-test files only; ast.Nodes from test files
	// resolve to nil objects/types.
	TypesPkg  *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The framework fills this in; Run
	// implementations call it (or the Reportf convenience).
	Report func(Diagnostic)

	facts *factStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file was parsed from a _test.go source.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// ExportObjectFact records fact about obj. The fact becomes visible to
// this analyzer (and to -fact-debug) while checking any package that
// depends on the one being analyzed. The fact's dynamic type must be
// listed in the analyzer's FactTypes.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		//lint:ignore panicpolicy analyzer-author API misuse, not a runtime condition
		panic("ExportObjectFact: nil object")
	}
	p.facts.exportObject(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact of fact's type previously exported for
// obj into fact, reporting whether one was found. Facts exported by the
// current package's own pass are visible too, so intra-package fixpoints
// can use the same API as cross-package lookups.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	return p.facts.importObject(obj, fact)
}

// ExportPackageFact records fact about the package being analyzed.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.exportPackage(p.Analyzer, p.TypesPkg, fact)
}

// ImportPackageFact copies the fact of fact's type previously exported
// for pkg into fact, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	return p.facts.importPackage(pkg, fact)
}

// Diagnostic is one finding, positioned in the Program's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the framework
}

// Finding is a resolved diagnostic ready for printing or comparison.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Inspect walks every node of every non-nil file in depth-first order,
// calling fn; fn returning false prunes the subtree. It mirrors
// ast.Inspect over a whole pass.
func Inspect(files []*ast.File, fn func(ast.Node) bool) {
	for _, f := range files {
		ast.Inspect(f, fn)
	}
}
