package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// stdImporter type-checks standard-library packages from source (the
// module has no third-party dependencies, so everything that is not
// in-module is stdlib). go/importer's source compiler caches each package
// after the first import; the process-wide singleton below makes that
// cache span every Program in the process — the whole stdlib is checked
// at most once per test binary or lint run. The importer is not safe for
// concurrent use, so stdMu serializes it; in-module packages are checked
// outside this lock and therefore still parallelize.
var (
	stdOnce sync.Once
	stdImp  types.Importer
	stdFset *token.FileSet
	stdMu   sync.Mutex
)

func stdImport(path string) (*types.Package, error) {
	stdOnce.Do(func() {
		stdFset = token.NewFileSet()
		stdImp = importer.ForCompiler(stdFset, "source", nil)
	})
	stdMu.Lock()
	defer stdMu.Unlock()
	return stdImp.Import(path)
}

// progImporter resolves imports while type-checking one package:
// in-module paths resolve to the already-checked *types.Package of the
// dependency (the runner guarantees dependencies complete first),
// everything else goes to the shared source importer.
type progImporter struct {
	prog *Program
}

func (pi progImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dep := pi.prog.byPath[path]; dep != nil {
		if dep.Types == nil {
			return nil, fmt.Errorf("dependency %s not type-checked yet", path)
		}
		return dep.Types, nil
	}
	return stdImport(path)
}

// typeCheck checks one package's CheckedFiles, filling pkg.Types and
// pkg.TypesInfo. All dependencies must already be checked.
func (prog *Program) typeCheck(pkg *Package) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []error
	conf := types.Config{
		Importer: progImporter{prog},
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(pkg.Path, prog.Fset, pkg.CheckedFiles, info)
	if len(errs) > 0 {
		var sb strings.Builder
		for i, e := range errs {
			if i > 0 {
				sb.WriteString("\n\t")
			}
			sb.WriteString(e.Error())
			if i == 9 && len(errs) > 10 {
				fmt.Fprintf(&sb, "\n\t... and %d more", len(errs)-10)
				break
			}
		}
		return fmt.Errorf("lint: type-check %s failed:\n\t%s", pkg.Path, sb.String())
	}
	if err != nil {
		return fmt.Errorf("lint: type-check %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return nil
}
