package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// factStore is the Program-wide fact database. Keys pair the subject (a
// types.Object or *types.Package) with the fact's dynamic type, so
// distinct analyzers with distinct fact types never collide. Object
// identity works across packages because the whole Program shares one
// type-checked world: the *types.Func for evolution.Run seen while
// checking package evolution is the same pointer an importer's
// TypesInfo.Uses resolves to.
//
// The store is written while a package is analyzed and read while its
// dependents are analyzed; packages run concurrently, so every access
// takes the lock.
type factStore struct {
	mu  sync.RWMutex
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
	// byAnalyzer records which analyzer exported each fact, for
	// -fact-debug output.
	exported []exportRecord
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

type exportRecord struct {
	Analyzer string
	Subject  string // object or package description
	Fact     Fact
}

func newFactStore() *factStore {
	return &factStore{obj: map[objFactKey]Fact{}, pkg: map[pkgFactKey]Fact{}}
}

// validFactType panics unless the fact's type is declared by the
// analyzer and is a pointer (imports copy through the pointer).
func validFactType(a *Analyzer, fact Fact) {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Ptr {
		//lint:ignore panicpolicy analyzer-author API misuse, caught in the suite's own tests
		panic(fmt.Sprintf("analysis: %s: fact %T must be a pointer to a struct", a.Name, fact))
	}
	for _, ft := range a.FactTypes {
		if reflect.TypeOf(ft) == t {
			return
		}
	}
	//lint:ignore panicpolicy analyzer-author API misuse, caught in the suite's own tests
	panic(fmt.Sprintf("analysis: %s exports fact %T not declared in FactTypes", a.Name, fact))
}

func (s *factStore) exportObject(a *Analyzer, obj types.Object, fact Fact) {
	validFactType(a, fact)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obj[objFactKey{obj, reflect.TypeOf(fact)}] = fact
	s.exported = append(s.exported, exportRecord{a.Name, objString(obj), fact})
}

func (s *factStore) importObject(obj types.Object, fact Fact) bool {
	s.mu.RLock()
	stored, ok := s.obj[objFactKey{obj, reflect.TypeOf(fact)}]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (s *factStore) exportPackage(a *Analyzer, pkg *types.Package, fact Fact) {
	validFactType(a, fact)
	if pkg == nil {
		//lint:ignore panicpolicy framework-internal sequencing bug, not a runtime condition
		panic("analysis: ExportPackageFact before type-check")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pkg[pkgFactKey{pkg, reflect.TypeOf(fact)}] = fact
	s.exported = append(s.exported, exportRecord{a.Name, "package " + pkg.Path(), fact})
}

func (s *factStore) importPackage(pkg *types.Package, fact Fact) bool {
	s.mu.RLock()
	stored, ok := s.pkg[pkgFactKey{pkg, reflect.TypeOf(fact)}]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// dump returns every exported fact as "analyzer: subject: fact" lines,
// sorted, for -fact-debug.
func (s *factStore) dump() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.exported))
	for _, r := range s.exported {
		out = append(out, fmt.Sprintf("%s: %s: %+v", r.Analyzer, r.Subject, r.Fact))
	}
	sort.Strings(out)
	return out
}

func objString(obj types.Object) string {
	if pkg := obj.Pkg(); pkg != nil {
		return pkg.Path() + "." + obj.Name()
	}
	return obj.Name()
}
