package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output (the OASIS Static Analysis Results Interchange
// Format), the shape GitHub code scanning ingests. Only the required
// subset is emitted: one run, one tool driver with a rule per analyzer,
// and one result per finding with a physical location. File URIs are
// emitted relative to the module root so the log is stable across
// machines and usable with SARIF's uriBaseId convention.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Version        string      `json:"version,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription,omitempty"`
	DefaultConfig    *sarifConfig `json:"defaultConfiguration,omitempty"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. analyzers supplies
// the rule metadata (every finding's analyzer should be listed; the
// framework's own "lintdirective" rule is added automatically); root,
// when non-empty, makes file URIs relative to it.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, toolVersion, root string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := map[string]int{}
	addRule := func(id, doc string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: firstSentence(doc)},
			FullDescription:  sarifMessage{Text: doc},
			DefaultConfig:    &sarifConfig{Level: "error"},
		})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule(DirectiveAnalyzer,
		"lint:ignore directive hygiene: directives must name a real analyzer exactly and must suppress a live finding")

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		ri, ok := index[f.Analyzer]
		if !ok {
			addRule(f.Analyzer, f.Analyzer)
			ri = index[f.Analyzer]
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ri,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relURI(root, f.Position.Filename)},
					Region:           sarifRegion{StartLine: f.Position.Line, StartColumn: f.Position.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "iddqlint",
				InformationURI: "https://example.com/iddqsyn/cmd/iddqlint",
				Version:        toolVersion,
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relURI renders path relative to root with forward slashes, falling
// back to the path itself when it is not under root.
func relURI(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}

// firstSentence trims doc to its first sentence-ish fragment for the
// short description.
func firstSentence(doc string) string {
	doc = strings.TrimSpace(doc)
	if i := strings.IndexAny(doc, ";.\n"); i > 0 {
		return doc[:i]
	}
	return doc
}
