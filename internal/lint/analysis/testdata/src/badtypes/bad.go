// Package badtypes fails to type-check: drivers must report this as a
// tooling failure (exit 2), not as findings.
package badtypes

func f() int { return undefinedIdent() }
