// Package mid depends on base.
package mid

import "chain/base"

func Mid() int { return base.Leaf() + 1 }
