// Package top depends on mid (and, transitively, base).
package top

import "chain/mid"

func Top() int { return mid.Mid() + 1 }
