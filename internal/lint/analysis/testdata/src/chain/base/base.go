// Package base is the leaf of the fact-flow chain.
package base

func Leaf() int { return 1 }
