// Package dirpkg exercises ignore-directive hygiene against the test
// analyzer "flagme", which reports every function whose name starts with
// "Bad".
package dirpkg

//lint:ignore flagme demonstration suppression
func BadSuppressed() {}

func BadLive() {}

func BadSameLine() {} //lint:ignore flagme same-line suppression

//lint:ignore flagme nothing to suppress here
func Fine() {}

//lint:ignore nosuch analyzer does not exist
func Fine2() {}

//lint:ignore flagme
func BadMalformed() {}

//lint:ignore other not running in this suite
func Fine3() {}
