// Package a participates in an import cycle with b.
package a

import "cyc/b"

func A() int { return b.B() }
