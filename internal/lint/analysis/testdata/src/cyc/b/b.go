// Package b participates in an import cycle with a.
package b

import "cyc/a"

func B() int { return a.A() }
