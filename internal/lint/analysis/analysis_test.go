package analysis_test

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
	"testing"

	"iddqsyn/internal/lint/analysis"
)

func load(t *testing.T, patterns ...string) *analysis.Program {
	t.Helper()
	prog, err := analysis.Load(analysis.Config{Root: "testdata", Patterns: patterns})
	if err != nil {
		t.Fatalf("load %v: %v", patterns, err)
	}
	return prog
}

func TestLoadTopoOrder(t *testing.T) {
	prog := load(t, "chain/top")
	var order []string
	for _, pkg := range prog.Packages {
		order = append(order, pkg.Path)
	}
	idx := map[string]int{}
	for i, p := range order {
		idx[p] = i
	}
	for _, p := range []string{"chain/base", "chain/mid", "chain/top"} {
		if _, ok := idx[p]; !ok {
			t.Fatalf("dependency closure missing %s: %v", p, order)
		}
	}
	if !(idx["chain/base"] < idx["chain/mid"] && idx["chain/mid"] < idx["chain/top"]) {
		t.Fatalf("not topologically sorted: %v", order)
	}
	if len(prog.Roots) != 1 || prog.Roots[0].Path != "chain/top" {
		t.Fatalf("roots = %v, want [chain/top]", prog.Roots)
	}
}

func TestLoadCycle(t *testing.T) {
	_, err := analysis.Load(analysis.Config{Root: "testdata", Patterns: []string{"cyc/a"}})
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("want import-cycle error, got %v", err)
	}
}

// chainFact accumulates the dependency chain a package's analysis saw:
// its presence in an importer proves facts flowed dependencies-first.
type chainFact struct{ Chain string }

func (*chainFact) AFact() {}

// chainAnalyzer exports a chainFact describing the package plus every
// dependency fact it could import, records the order packages were
// analyzed in, and reports the chain as a diagnostic.
func chainAnalyzer(mu *sync.Mutex, order *[]string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:      "chainfact",
		Doc:       "test analyzer proving dependency-order fact flow",
		FactTypes: []analysis.Fact{(*chainFact)(nil)},
		Run: func(pass *analysis.Pass) (interface{}, error) {
			mu.Lock()
			*order = append(*order, pass.Pkg.Path)
			mu.Unlock()
			var parts []string
			for _, dep := range pass.Pkg.Imports {
				f := new(chainFact)
				if pass.ImportPackageFact(dep.Types, f) {
					parts = append(parts, f.Chain)
				}
			}
			sort.Strings(parts)
			chain := pass.Pkg.Name
			if len(parts) > 0 {
				chain += "<-(" + strings.Join(parts, ",") + ")"
			}
			pass.ExportPackageFact(&chainFact{Chain: chain})
			pass.Reportf(pass.Files[0].Pos(), "chain: %s", chain)
			return nil, nil
		},
	}
}

// TestFactFlowParallel runs the chain analyzer with several workers: the
// scheduler must still analyze base before mid before top (facts flow in
// dependency order even under parallelism), and the fact imported at the
// top must contain the full transitive chain.
func TestFactFlowParallel(t *testing.T) {
	prog := load(t, "chain/top")
	var mu sync.Mutex
	var order []string
	a := chainAnalyzer(&mu, &order)
	findings, err := prog.Run([]*analysis.Analyzer{a}, analysis.Options{
		Parallel:  4,
		RootsOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, p := range order {
		idx[p] = i
	}
	if !(idx["chain/base"] < idx["chain/mid"] && idx["chain/mid"] < idx["chain/top"]) {
		t.Fatalf("analysis order violated dependency order: %v", order)
	}
	// RootsOnly drops the diagnostics of the dependency packages.
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the root's", findings)
	}
	if want := "chain: top<-(mid<-(base))"; findings[0].Message != want {
		t.Fatalf("fact chain = %q, want %q", findings[0].Message, want)
	}
}

func TestRunTypeErrorIsFailure(t *testing.T) {
	prog := load(t, "badtypes")
	var mu sync.Mutex
	var order []string
	_, err := prog.Run([]*analysis.Analyzer{chainAnalyzer(&mu, &order)}, analysis.Options{})
	if err == nil || !strings.Contains(err.Error(), "undefinedIdent") {
		t.Fatalf("want type-check failure mentioning undefinedIdent, got %v", err)
	}
}

// flagme reports every function whose name starts with "Bad".
var flagme = &analysis.Analyzer{
	Name: "flagme",
	Doc:  "test analyzer flagging Bad* functions",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Bad") {
					pass.Reportf(fd.Name.Pos(), "function %s is flagged", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

// TestDirectives pins the full directive hygiene contract: exact-name
// suppression on the same line or the line above; unused, unknown-name
// and malformed directives reported under "lintdirective"; directives
// naming a known-but-not-running analyzer left alone.
func TestDirectives(t *testing.T) {
	prog := load(t, "dirpkg")
	findings, err := prog.Run([]*analysis.Analyzer{flagme}, analysis.Options{
		KnownAnalyzers: []string{"flagme", "other"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+": "+f.Message)
	}
	want := []struct{ analyzer, substr string }{
		{"flagme", "BadLive"},
		{"flagme", "BadMalformed"},
		{"lintdirective", "malformed ignore directive"},
		{"lintdirective", `unknown analyzer "nosuch"`},
		{"lintdirective", "unused ignore directive: flagme"},
	}
	if len(findings) != len(want) {
		t.Fatalf("findings:\n%s\nwant %d entries", strings.Join(got, "\n"), len(want))
	}
	for _, w := range want {
		found := false
		for _, f := range findings {
			if f.Analyzer == w.analyzer && strings.Contains(f.Message, w.substr) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %s finding containing %q in:\n%s", w.analyzer, w.substr, strings.Join(got, "\n"))
		}
	}
	// The suppressed functions must not appear.
	for _, f := range findings {
		if strings.Contains(f.Message, "BadSuppressed") || strings.Contains(f.Message, "BadSameLine") {
			t.Errorf("suppressed finding leaked: %s", f)
		}
	}
}

func sampleFindings() []analysis.Finding {
	return []analysis.Finding{
		{Position: token.Position{Filename: "/mod/a/a.go", Line: 3, Column: 2},
			Analyzer: "flagme", Message: "function BadLive is flagged"},
		{Position: token.Position{Filename: "/mod/b/b.go", Line: 10, Column: 1},
			Analyzer: "chainfact", Message: "chain: top"},
	}
}

// TestWriteSARIF checks the emitted log is structurally valid SARIF
// 2.1.0: schema, version, per-analyzer rules, and results whose ruleIndex
// points back at the right rule.
func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	analyzers := []*analysis.Analyzer{flagme}
	if err := analysis.WriteSARIF(&buf, sampleFindings(), analyzers, "test", "/mod"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string
					Rules []struct {
						ID               string
						ShortDescription struct{ Text string }
					}
				}
			}
			Results []struct {
				RuleID    string
				RuleIndex int
				Level     string
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct{ URI string }
						Region           struct{ StartLine, StartColumn int }
					}
				}
			}
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Fatalf("version %q schema %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "iddqlint" {
		t.Fatalf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d", len(run.Results))
	}
	for _, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("ruleIndex %d out of range", r.RuleIndex)
		}
		if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Fatalf("ruleIndex %d points at %q, want %q",
				r.RuleIndex, run.Tool.Driver.Rules[r.RuleIndex].ID, r.RuleID)
		}
	}
	if uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "a/a.go" {
		t.Fatalf("uri = %q, want root-relative a/a.go", uri)
	}
	if run.Results[0].Locations[0].PhysicalLocation.Region.StartLine != 3 {
		t.Fatal("startLine lost")
	}
}

// TestBaselineRoundTrip pins the write → parse → filter cycle and the
// multiset semantics (N grandfathered entries absorb at most N findings).
func TestBaselineRoundTrip(t *testing.T) {
	findings := sampleFindings()
	var buf bytes.Buffer
	if err := analysis.WriteBaseline(&buf, findings, "/mod"); err != nil {
		t.Fatal(err)
	}
	b, err := analysis.ParseBaseline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("baseline len = %d, want 2", b.Len())
	}
	fresh, absorbed := b.Filter(findings, "/mod")
	if len(fresh) != 0 || absorbed != 2 {
		t.Fatalf("filter: fresh=%v absorbed=%d, want all absorbed", fresh, absorbed)
	}
	// Line numbers must not matter: move a finding and it still matches.
	moved := append([]analysis.Finding(nil), findings...)
	moved[0].Position.Line = 99
	fresh, absorbed = b.Filter(moved, "/mod")
	if len(fresh) != 0 || absorbed != 2 {
		t.Fatalf("line-moved filter: fresh=%v absorbed=%d", fresh, absorbed)
	}
	// Multiset: a duplicate of an absorbed finding is fresh.
	dup := append(moved, moved[0])
	fresh, absorbed = b.Filter(dup, "/mod")
	if len(fresh) != 1 || absorbed != 2 {
		t.Fatalf("multiset filter: fresh=%v absorbed=%d, want 1 fresh", fresh, absorbed)
	}
	// A new message is fresh.
	extra := append(moved, analysis.Finding{
		Position: token.Position{Filename: "/mod/c.go", Line: 1},
		Analyzer: "flagme", Message: "new finding",
	})
	fresh, _ = b.Filter(extra, "/mod")
	if len(fresh) != 1 || fresh[0].Message != "new finding" {
		t.Fatalf("fresh = %v", fresh)
	}
}
