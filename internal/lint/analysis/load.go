package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Config selects what Load loads.
type Config struct {
	// Root is the directory the patterns are resolved against: the module
	// root in module mode, or a testdata directory in GOPATH-style mode.
	Root string
	// ModulePath is the module's import-path prefix ("iddqsyn"). When
	// empty, Load runs in testdata mode: packages live under Root/src and
	// are imported by their path relative to Root/src, the layout the
	// analysistest golden packages use.
	ModulePath string
	// Patterns are the package patterns: "./..." (every package under
	// Root), "./dir/..." (a subtree), or plain directories. In testdata
	// mode a pattern is a package path under Root/src.
	Patterns []string
}

// Program is a loaded package graph: every matched package plus the
// in-module dependency closure needed to type-check it, sharing one
// FileSet, topologically sorted so every package appears after its
// imports.
type Program struct {
	Fset *token.FileSet
	// Packages is the dependency closure in topological (dependencies
	// first) order.
	Packages []*Package
	// Roots is the subset of Packages matched by the patterns themselves
	// (the packages the caller asked to analyze), in topological order.
	Roots []*Package

	byPath map[string]*Package
}

// Package returns the loaded package with the given import path, or nil.
func (prog *Program) Package(path string) *Package { return prog.byPath[path] }

// Load parses the packages selected by cfg plus their in-module
// dependency closure and arranges them in dependency order. Files are
// parsed with comments (analyzers and the ignore-directive machinery need
// them); type-checking happens later, inside Program.Run, in parallel
// across packages.
func Load(cfg Config) (*Program, error) {
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, err
	}
	srcRoot := root // where import paths are anchored
	if cfg.ModulePath == "" {
		srcRoot = filepath.Join(root, "src")
	}

	// Resolve patterns to package directories.
	dirSet := map[string]bool{}
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range cfg.Patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkGoDirs(srcRoot, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(srcRoot, strings.TrimSuffix(pat, "/..."))
			if err := walkGoDirs(base, add); err != nil {
				return nil, err
			}
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(srcRoot, d)
			}
			add(d)
		}
	}
	sort.Strings(dirs)

	prog := &Program{Fset: token.NewFileSet(), byPath: map[string]*Package{}}
	rootSet := map[string]bool{}
	// Load the matched packages, then chase in-module imports to closure.
	queue := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		path, err := importPathFor(cfg.ModulePath, srcRoot, dir)
		if err != nil {
			return nil, err
		}
		rootSet[path] = true
		queue = append(queue, path)
	}
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if prog.byPath[path] != nil {
			continue
		}
		dir := dirFor(cfg.ModulePath, srcRoot, path)
		pkg, err := loadDir(prog.Fset, dir, path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			if rootSet[path] {
				delete(rootSet, path) // matched dir with no Go files
			}
			continue
		}
		prog.byPath[path] = pkg
		for _, imp := range pkg.importPaths {
			if inModule(cfg.ModulePath, srcRoot, imp) && prog.byPath[imp] == nil {
				queue = append(queue, imp)
			}
		}
	}

	// Resolve in-module import edges and topologically sort.
	for _, pkg := range prog.byPath {
		for _, imp := range pkg.importPaths {
			if dep := prog.byPath[imp]; dep != nil && dep != pkg {
				pkg.Imports = append(pkg.Imports, dep)
			}
		}
	}
	sorted, err := topoSort(prog.byPath)
	if err != nil {
		return nil, err
	}
	prog.Packages = sorted
	for _, pkg := range sorted {
		if rootSet[pkg.Path] {
			prog.Roots = append(prog.Roots, pkg)
		}
	}
	return prog, nil
}

// LoadModule loads patterns against the module rooted at root, reading
// the module path from go.mod.
func LoadModule(root string, patterns []string) (*Program, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	return Load(Config{Root: root, ModulePath: modPath, Patterns: patterns})
}

// importPathFor maps a package directory to its import path.
func importPathFor(modPath, srcRoot, dir string) (string, error) {
	rel, err := filepath.Rel(srcRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside %s", dir, srcRoot)
	}
	if rel == "." {
		if modPath == "" {
			return "", fmt.Errorf("lint: cannot import the testdata src root itself")
		}
		return modPath, nil
	}
	if modPath == "" {
		return filepath.ToSlash(rel), nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor is the inverse of importPathFor.
func dirFor(modPath, srcRoot, path string) string {
	if modPath == "" {
		return filepath.Join(srcRoot, filepath.FromSlash(path))
	}
	if path == modPath {
		return srcRoot
	}
	return filepath.Join(srcRoot, filepath.FromSlash(strings.TrimPrefix(path, modPath+"/")))
}

// inModule reports whether an import path belongs to the loaded world:
// the module itself in module mode, or any package under Root/src in
// testdata mode (stdlib paths are excluded by checking the directory
// exists).
func inModule(modPath, srcRoot, path string) bool {
	if modPath != "" {
		return path == modPath || strings.HasPrefix(path, modPath+"/")
	}
	st, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// loadDir parses one directory as one package. Test files are parsed into
// Files but only primary-package non-test files enter CheckedFiles (the
// type-check set). Returns nil for directories without Go files.
func loadDir(fset *token.FileSet, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %w", dir, err)
	}
	var files, checked []*ast.File
	var name, testName string
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		isTest := strings.HasSuffix(e.Name(), "_test.go")
		if isTest {
			if testName == "" {
				testName = f.Name.Name
			}
		} else if name == "" {
			name = f.Name.Name
		}
		files = append(files, f)
		if !isTest && f.Name.Name == name {
			checked = append(checked, f)
			for _, imp := range f.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil {
					importSet[p] = true
				}
			}
		}
	}
	if len(files) == 0 {
		return nil, nil // not a Go package (e.g. a docs-only directory)
	}
	if name == "" {
		name = testName
	}
	imports := make([]string, 0, len(importSet))
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	return &Package{
		Path: importPath, Name: name, Dir: dir, Fset: fset,
		Files: files, CheckedFiles: checked, importPaths: imports,
	}, nil
}

// topoSort orders packages dependencies-first (Kahn), with ties broken by
// import path so the order is deterministic. An import cycle is an error.
func topoSort(byPath map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	indeg := map[*Package]int{}
	dependents := map[*Package][]*Package{}
	for _, p := range paths {
		pkg := byPath[p]
		indeg[pkg] += 0
		for _, dep := range pkg.Imports {
			indeg[pkg]++
			dependents[dep] = append(dependents[dep], pkg)
		}
	}
	var ready []*Package
	for _, p := range paths {
		if indeg[byPath[p]] == 0 {
			ready = append(ready, byPath[p])
		}
	}
	var out []*Package
	for len(ready) > 0 {
		pkg := ready[0]
		ready = ready[1:]
		out = append(out, pkg)
		for _, dep := range dependents[pkg] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
		// Keep the ready list deterministic.
		sort.Slice(ready, func(i, j int) bool { return ready[i].Path < ready[j].Path })
	}
	if len(out) != len(byPath) {
		var cyc []string
		for _, p := range paths {
			if indeg[byPath[p]] > 0 {
				cyc = append(cyc, p)
			}
		}
		return nil, fmt.Errorf("lint: import cycle among %s", strings.Join(cyc, ", "))
	}
	return out, nil
}

// walkGoDirs calls add for every directory under base that contains at
// least one .go file, skipping testdata, vendor, hidden and
// underscore-prefixed directories.
func walkGoDirs(base string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			add(filepath.Dir(path))
		}
		return nil
	})
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}
