package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadPackages parses the packages selected by patterns, rooted at the
// module directory root. Supported patterns are the ones the iddqlint
// driver needs: "./..." (every package under root), "./dir/..." (every
// package under a subtree) and plain directory paths ("./cmd/iddqlint",
// "internal/atpg"). Directories named "testdata" or "vendor", and hidden
// or underscore-prefixed directories, are skipped during "..." expansion.
//
// Files are parsed with comments (analyzers and the ignore-directive
// machinery need them) but not type-checked: the iddqlint analyzers are
// syntactic by design, so the loader stays fast and dependency-free.
func LoadPackages(root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirSet := map[string]bool{}
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkGoDirs(root, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, strings.TrimSuffix(pat, "/..."))
			if err := walkGoDirs(base, add); err != nil {
				return nil, err
			}
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(root, d)
			}
			add(d)
		}
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(modPath, root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses a single directory as one package with the given import
// path. It is the entry point the analysistest harness uses for testdata
// packages.
func LoadDir(dir, importPath string) (*Package, error) {
	return loadDirAs(dir, importPath)
}

func loadDir(modPath, root, dir string) (*Package, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	return loadDirAs(dir, importPath)
}

func loadDirAs(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %w", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var name, testName string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		// The package name comes from the first non-test file; test-only
		// directories fall back to whatever the test files declare.
		if strings.HasSuffix(e.Name(), "_test.go") {
			if testName == "" {
				testName = f.Name.Name
			}
		} else if name == "" {
			name = f.Name.Name
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil // not a Go package (e.g. a docs-only directory)
	}
	if name == "" {
		name = testName
	}
	return &Package{Path: importPath, Name: name, Dir: dir, Fset: fset, Files: files}, nil
}

// walkGoDirs calls add for every directory under base that contains at
// least one .go file, skipping testdata, vendor, hidden and
// underscore-prefixed directories.
func walkGoDirs(base string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			add(filepath.Dir(path))
		}
		return nil
	})
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}
