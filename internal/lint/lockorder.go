package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"iddqsyn/internal/lint/analysis"
)

// LockOrder detects lock-acquisition-order cycles: mutex B acquired while
// A is held on one code path, and A acquired while B is held on another.
// Two such paths running concurrently deadlock, and the race detector is
// silent about it — it needs the unlucky interleaving, which a chaos soak
// may never produce.
//
// Mutexes are identified structurally, not by instance: a field mutex is
// "pkg.Type.field", a package-level mutex is "pkg.name". This matches how
// lock hierarchies are designed (all instances of a type share one rank)
// and keeps the analysis flow-insensitive and cheap. Within a function the
// held set is tracked by a linear scan in source order: Lock/RLock pushes,
// Unlock/RUnlock pops, a *deferred* unlock holds to the end of the
// function. Calls are expanded one level deep through per-function
// acquisition summaries (AcquiresFact), which cross package boundaries in
// the forward (dependencies-first) direction — the serve layer calling
// into store with a lock held is exactly the cross-package shape that
// produced real deadlocks elsewhere.
//
// Self-edges (re-acquiring the same structural mutex) are not reported:
// two instances of one type may be locked in sequence legitimately
// (hand-over-hand), and instance-level reentrancy is the mutexguard /
// runtime deadlock detector's territory. Only cycles between *distinct*
// mutexes are flagged, at every edge that participates in the cycle.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "detect lock-acquisition-order cycles across functions and packages " +
		"(mutex A held while acquiring B, elsewhere B held while acquiring A): " +
		"static deadlock risks the race detector cannot see",
	FactTypes: []analysis.Fact{(*AcquiresFact)(nil)},
	Run:       runLockOrder,
}

// AcquiresFact summarizes the structural mutexes a function may acquire,
// directly or transitively; callers consult it to extend their held-set
// edges through calls.
type AcquiresFact struct {
	Mutexes []string // sorted structural IDs
}

// AFact marks AcquiresFact as a framework fact.
func (*AcquiresFact) AFact() {}

func (f *AcquiresFact) String() string {
	return "acquires " + strings.Join(f.Mutexes, ", ")
}

// lockEvent is one mutex operation or call site in source order.
type lockEvent struct {
	pos      token.Pos
	mutex    string      // structural ID ("" for call events)
	op       string      // "lock", "unlock", "call"
	deferred bool        // inside a defer statement
	callee   *types.Func // for op "call"
}

func runLockOrder(pass *analysis.Pass) (interface{}, error) {
	funcs := packageFuncs(pass)
	events := make(map[*types.Func][]lockEvent, len(funcs))
	for _, fn := range funcs {
		events[fn.obj] = lockEvents(pass, fn.decl.Body)
	}

	// Fixpoint: transitive acquisition summaries over this package's call
	// graph, seeded with imported facts for out-of-package callees.
	acq := make(map[*types.Func]map[string]bool, len(funcs))
	for fn := range events {
		acq[fn] = map[string]bool{}
	}
	calleeAcquires := func(callee *types.Func) []string {
		if local, ok := acq[callee]; ok {
			ids := make([]string, 0, len(local))
			for id := range local {
				ids = append(ids, id)
			}
			return ids
		}
		fact := new(AcquiresFact)
		if pass.ImportObjectFact(callee, fact) {
			return fact.Mutexes
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			fn, evs := f.obj, events[f.obj]
			for _, ev := range evs {
				switch ev.op {
				case "lock":
					if !acq[fn][ev.mutex] {
						acq[fn][ev.mutex] = true
						changed = true
					}
				case "call":
					for _, id := range calleeAcquires(ev.callee) {
						if !acq[fn][id] {
							acq[fn][id] = true
							changed = true
						}
					}
				}
			}
		}
	}
	for fn, ids := range acq {
		if len(ids) == 0 {
			continue
		}
		sorted := make([]string, 0, len(ids))
		for id := range ids {
			sorted = append(sorted, id)
		}
		sort.Strings(sorted)
		pass.ExportObjectFact(fn, &AcquiresFact{Mutexes: sorted})
	}

	// Edge pass: replay each function's events with a held-set; every
	// acquisition (direct or through a call summary) while another mutex is
	// held records an ordered edge.
	type edge struct {
		pos    token.Pos
		via    string // what was being acquired/called when the edge formed
		caller string
	}
	edges := map[string]map[string]edge{}
	addEdge := func(from, to string, pos token.Pos, via, caller string) {
		if from == to {
			return // structural self-edge: hand-over-hand, not an order cycle
		}
		if edges[from] == nil {
			edges[from] = map[string]edge{}
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = edge{pos: pos, via: via, caller: caller}
		}
	}
	// File order, so the representative position of a repeated edge is
	// stable run to run.
	for _, f := range funcs {
		fn, evs := f.obj, events[f.obj]
		var held []string
		for _, ev := range evs {
			switch ev.op {
			case "lock":
				for _, h := range held {
					addEdge(h, ev.mutex, ev.pos, ev.mutex, fn.Name())
				}
				held = append(held, ev.mutex)
			case "unlock":
				if ev.deferred {
					continue // deferred unlock: held to function end
				}
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.mutex {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case "call":
				if len(held) == 0 {
					continue
				}
				ids := calleeAcquires(ev.callee)
				sort.Strings(ids)
				for _, id := range ids {
					for _, h := range held {
						addEdge(h, id, ev.pos, ev.callee.Name()+" (which acquires "+id+")", fn.Name())
					}
				}
			}
		}
	}

	// Report every edge that lies on a cycle: A→B where B reaches A.
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range edges[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	froms := make([]string, 0, len(edges))
	for from := range edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		tos := make([]string, 0, len(edges[from]))
		for to := range edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if !reaches(to, from) {
				continue
			}
			e := edges[from][to]
			pass.Reportf(e.pos,
				"lock order cycle: %s acquires %s while holding %s, but %s is elsewhere held while acquiring %s (deadlock risk); "+
					"pick one global acquisition order", e.caller, to, from, to, from)
		}
	}
	return nil, nil
}

// lockEvents scans one function body in source order for mutex
// operations and resolvable calls.
func lockEvents(pass *analysis.Pass, body *ast.BlockStmt) []lockEvent {
	var evs []lockEvent
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				walk(d.Call, true)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, op, ok := mutexOp(pass, call); ok {
				if id := mutexID(pass, recv); id != "" {
					evs = append(evs, lockEvent{pos: call.Pos(), mutex: id, op: op, deferred: deferred})
				}
				return true
			}
			if callee := calleeFuncOf(pass, call); callee != nil && !isInterfaceMethod(callee) {
				evs = append(evs, lockEvent{pos: call.Pos(), op: "call", deferred: deferred, callee: callee})
			}
			return true
		})
	}
	walk(body, false)
	return evs
}

// mutexOp recognizes calls of the sync lock methods, returning the
// receiver expression and whether it is an acquisition ("lock") or a
// release ("unlock").
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (recv ast.Expr, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return nil, "", false
	}
	// The method must actually come from package sync (Mutex, RWMutex or
	// the Locker interface), not merely be named Lock.
	var m *types.Func
	if s, okSel := pass.TypesInfo.Selections[sel]; okSel {
		m, _ = s.Obj().(*types.Func)
	} else {
		m, _ = pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	}
	if m == nil || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel.X, op, true
}

// mutexID names a mutex structurally: "pkg.Type.field" for a field,
// "pkg.Type" for a lockable type (embedded mutex), "pkg.name" for a
// package-level mutex. Function-local mutexes get no ID — they cannot
// participate in a cross-function order cycle.
func mutexID(pass *analysis.Pass, recv ast.Expr) string {
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return ""
		}
		if pass.TypesPkg != nil && v.Parent() == pass.TypesPkg.Scope() {
			return pkgBase(pass.Pkg.Path) + "." + v.Name()
		}
		// A receiver/parameter of a named type with an embedded mutex:
		// identify by the type. Plain local sync.Mutex values resolve to
		// the sync package and are skipped.
		if id := namedTypeID(v.Type()); id != "" {
			return id
		}
	case *ast.SelectorExpr:
		tv, ok := pass.TypesInfo.Types[e.X]
		if !ok {
			return ""
		}
		if base := namedTypeID(tv.Type); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}

// namedTypeID renders a named, non-sync type as "pkg.Type" (pointers
// dereferenced); anything else — including sync.Mutex itself, so bare
// local mutexes stay anonymous — yields "".
func namedTypeID(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if named.Obj().Pkg().Path() == "sync" {
		return ""
	}
	return fmt.Sprintf("%s.%s", pkgBase(named.Obj().Pkg().Path()), named.Obj().Name())
}
