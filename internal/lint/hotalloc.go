package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"iddqsyn/internal/lint/analysis"
)

// HotAlloc reports allocation sites reachable from //lint:hotpath roots.
//
// The PART-IDDQ descendant-evaluation loop is the hot path that bounds
// every scale target: a single fmt.Sprintf or escaping closure slipped
// into it costs 2-10x and no tier-1 test notices. hotalloc makes that
// property statically checkable. A function annotated
//
//	//lint:hotpath <reason>
//
// is a hot root; hotness propagates caller→callee over a conservative
// static call graph (direct calls, interface dispatch resolved against
// every implementation visible from the caller's package, and function
// values that escape into arguments). The analyzer runs in the
// framework's reverse wave — dependents before dependencies — so a Hot
// fact exported while analyzing evolution (the caller) is visible when
// partition and estimate (the callees) are analyzed.
//
// Inside hot functions the analyzer flags, pre-escape-analysis, every
// construct that *can* allocate: composite literals of reference types
// and &T{} literals, make and new, append whose backing growth is not
// provably amortized (the first argument is neither a caller-provided
// buffer parameter nor a local made with explicit capacity), interface
// boxing at call sites (a concrete value passed to an interface
// parameter — the fmt functions are the canonical case), closures, and
// string concatenation. The compiler's real escape analysis is the
// ground truth; `iddqlint -escapecheck` (make lint-escape) diffs these
// verdicts against -gcflags=-m output and fails on analyzer false
// negatives, so the approximation can only err on the loud side.
//
// Cold paths inside hot functions (error returns, once-per-batch setup)
// are justified with //lint:ignore hotalloc <reason> — the reasons are
// the documentation of why each allocation is acceptable.
//
// Calls into the observation packages (obs, chaos) neither propagate
// hotness nor have their boxing flagged: observation on the hot path is
// exempt by design (the chaos soak proves it does not perturb results),
// and its cost is budgeted separately.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "report allocation sites (composite literals, make/new, unamortized append, " +
		"interface boxing, closures, string concatenation) in functions reachable from " +
		"//lint:hotpath roots; the statically checked form of the allocation-free hot-loop invariant",
	FactTypes: []analysis.Fact{(*HotFact)(nil)},
	Direction: analysis.Reverse,
	Run:       runHotAlloc,
}

// HotFact marks a function as reachable from a hotpath root. It is
// exported for the function objects a hot function calls, so hotness
// crosses package boundaries against the import direction.
type HotFact struct {
	Root   string // qualified name of the annotated root, e.g. "evolution.costOf"
	Reason string // the root's annotation reason
}

// AFact marks HotFact as a framework fact.
func (*HotFact) AFact() {}

func (f *HotFact) String() string { return fmt.Sprintf("hot (root %s: %s)", f.Root, f.Reason) }

// hotExemptPackages are package base names whose functions never become
// hot and whose call sites are not boxing-checked: observation and fault
// injection are exempt from the allocation budget by design.
var hotExemptPackages = map[string]bool{"obs": true, "chaos": true}

// HotFunc is one function the analyzer concluded is hot, with its body's
// line range — the escape cross-check scans compiler diagnostics inside
// these ranges.
type HotFunc struct {
	Name      string
	File      string
	DeclLine  int // line of the func name in the declaration
	StartLine int
	EndLine   int
	Root      string
}

// CallSite is one call inside a hot function body to a statically
// resolvable function, keyed by the callee's declaration position. The
// compiler attributes an inlined callee's escape diagnostics to the call
// line in the *caller*, so the escape cross-check uses these records to
// credit such re-attributed diagnostics to the callee's own sites.
type CallSite struct {
	File       string // call position
	Line       int
	CalleeFile string // callee's declaration position
	CalleeLine int
}

// AllocSite is one pre-suppression hotalloc site. The escape cross-check
// matches compiler heap diagnostics against these, so a site justified
// with //lint:ignore — or discounted as cold — still counts as "the
// analyzer saw it".
type AllocSite struct {
	File string
	Line int
	Kind string
	// Cold marks a site on a failure path (panic argument, return of a
	// non-nil error, recover-guarded block): recorded for the escape
	// cross-check, but not reported as a finding — error construction on a
	// terminal path runs once per failure, not once per iteration.
	Cold bool
}

// HotAllocResult is runHotAlloc's return value, collected by the escape
// cross-check harness through analysis.Options.OnResult.
type HotAllocResult struct {
	Pkg       string
	HotFuncs  []HotFunc
	Allocs    []AllocSite
	CallSites []CallSite
}

func runHotAlloc(pass *analysis.Pass) (interface{}, error) {
	if hotExemptPackages[pkgBase(pass.Pkg.Path)] {
		return nil, nil
	}
	funcs := packageFuncs(pass)
	roots := collectHotRoots(pass, funcs)

	byObj := map[*types.Func]fnInfo{}
	for _, fn := range funcs {
		byObj[fn.obj] = fn
	}

	// Seed the hot set: this package's annotated roots, plus every
	// function a dependent package's pass already marked hot.
	hot := map[*types.Func]*HotFact{}
	var work []*types.Func
	markHot := func(fn *types.Func, fact *HotFact) {
		if hot[fn] == nil {
			hot[fn] = fact
			work = append(work, fn)
		}
	}
	for _, r := range roots {
		markHot(r.fn.obj, &HotFact{Root: pkgBase(pass.Pkg.Path) + "." + r.fn.obj.Name(), Reason: r.reason})
	}
	for _, fn := range funcs {
		fact := new(HotFact)
		if pass.ImportObjectFact(fn.obj, fact) {
			markHot(fn.obj, fact)
		}
	}
	if len(hot) == 0 {
		return &HotAllocResult{Pkg: pass.Pkg.Path}, nil
	}

	// Propagate caller→callee to a fixpoint. Callees in this package join
	// the local worklist; callees elsewhere get the fact exported (their
	// packages run later in the reverse wave). The observation exemption
	// stops propagation into obs/chaos.
	impl := newImplIndex(pass.TypesPkg)
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		decl, ok := byObj[fn]
		if !ok {
			continue // defined elsewhere; its own package's pass reports it
		}
		fact := hot[fn]
		for _, callee := range callees(pass, decl.decl.Body, impl) {
			if callee.Pkg() == nil || hotExemptPackages[pkgBase(callee.Pkg().Path())] {
				continue
			}
			if callee.Pkg() == pass.TypesPkg {
				markHot(callee, fact)
				continue
			}
			already := new(HotFact)
			if !pass.ImportObjectFact(callee, already) {
				pass.ExportObjectFact(callee, fact)
			}
		}
	}

	// Export facts for this package's own hot functions too (visible to
	// -fact-debug and to later passes over depending packages' tests).
	for fn, fact := range hot {
		already := new(HotFact)
		if !pass.ImportObjectFact(fn, already) {
			pass.ExportObjectFact(fn, fact)
		}
	}

	// Report allocation sites in this package's hot function bodies.
	res := &HotAllocResult{Pkg: pass.Pkg.Path}
	for _, fn := range funcs {
		if hot[fn.obj] == nil {
			continue
		}
		start := pass.Fset.Position(fn.decl.Body.Pos())
		end := pass.Fset.Position(fn.decl.Body.End())
		res.HotFuncs = append(res.HotFuncs, HotFunc{
			Name: fn.obj.Name(), File: start.Filename,
			DeclLine:  pass.Fset.Position(fn.decl.Name.Pos()).Line,
			StartLine: start.Line, EndLine: end.Line,
			Root: hot[fn.obj].Root,
		})
		reportHotAllocs(pass, fn, hot[fn.obj], res)
	}
	return res, nil
}

// reportHotAllocs walks one hot function body and reports every
// can-allocate construct, recording each (pre-suppression) in res.
func reportHotAllocs(pass *analysis.Pass, fn fnInfo, fact *HotFact, res *HotAllocResult) {
	seen := map[token.Pos]bool{}
	cold := coldRanges(pass, fn.decl.Body)
	report := func(pos token.Pos, kind, detail string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		p := pass.Fset.Position(pos)
		for _, r := range cold {
			if pos >= r.from && pos < r.to {
				res.Allocs = append(res.Allocs, AllocSite{File: p.Filename, Line: p.Line, Kind: kind, Cold: true})
				return
			}
		}
		res.Allocs = append(res.Allocs, AllocSite{File: p.Filename, Line: p.Line, Kind: kind})
		pass.Reportf(pos, "%s on the hot path%s: %q is reachable from //lint:hotpath root %s (%s); "+
			"hoist it out of the loop, reuse a scratch buffer, or justify with //lint:ignore hotalloc <reason>",
			kind, detail, fn.obj.Name(), fact.Root, fact.Reason)
	}
	body := fn.decl.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[nn]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(nn.Pos(), "composite literal", "")
			}
		case *ast.UnaryExpr:
			if nn.Op == token.AND {
				if lit, ok := ast.Unparen(nn.X).(*ast.CompositeLit); ok {
					report(lit.Pos(), "composite literal", " (address taken)")
				}
			}
		case *ast.FuncLit:
			report(nn.Pos(), "closure", "")
		case *ast.BinaryExpr:
			if nn.Op == token.ADD && isStringType(pass, nn) {
				report(nn.Pos(), "string concatenation", "")
			}
		case *ast.CallExpr:
			reportHotCall(pass, fn, nn, report)
			if callee := calleeFuncOf(pass, nn); callee != nil && callee.Pkg() != nil && callee.Pos().IsValid() {
				cp := pass.Fset.Position(nn.Pos())
				dp := pass.Fset.Position(callee.Pos())
				res.CallSites = append(res.CallSites, CallSite{
					File: cp.Filename, Line: cp.Line,
					CalleeFile: dp.Filename, CalleeLine: dp.Line,
				})
			}
		}
		return true
	})
}

// posRange is a half-open [from, to) position interval.
type posRange struct{ from, to token.Pos }

// coldRanges collects the failure-path intervals of one function body:
// panic arguments, return statements yielding a non-nil error, and
// recover-guarded blocks. Allocation inside them runs once per failure —
// it is recorded for the escape cross-check but not worth a finding.
func coldRanges(pass *analysis.Pass, body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					out = append(out, posRange{nn.Pos(), nn.End()})
				}
			}
		case *ast.ReturnStmt:
			for _, res := range nn.Results {
				if isNonNilError(pass, res) {
					out = append(out, posRange{nn.Pos(), nn.End()})
					break
				}
			}
		case *ast.IfStmt:
			if usesRecover(pass, nn.Init) || usesRecover(pass, nn.Cond) {
				out = append(out, posRange{nn.Body.Pos(), nn.Body.End()})
			}
		}
		return true
	})
	return out
}

// isNonNilError reports whether a return result is an error-typed
// expression other than the literal nil.
func isNonNilError(pass *analysis.Pass, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

// usesRecover reports whether the node contains a call of the recover
// builtin.
func usesRecover(pass *analysis.Pass, n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// reportHotCall classifies one call inside a hot function: builtin
// allocators (make, new, unamortized append) and interface boxing of
// concrete arguments.
func reportHotCall(pass *analysis.Pass, fn fnInfo, call *ast.CallExpr,
	report func(pos token.Pos, kind, detail string)) {

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make", "")
			case "new":
				report(call.Pos(), "new", "")
			case "append":
				if len(call.Args) > 0 && !amortizedAppend(pass, fn, call.Args[0]) {
					report(call.Pos(), "append (growth not provably amortized)", "")
				}
			case "panic":
				// panic's argument is boxed into an interface{}. The site
				// is always inside a cold range, so it is recorded for the
				// escape cross-check but never reported as a finding.
				for _, arg := range call.Args {
					at, ok := pass.TypesInfo.Types[arg]
					if !ok || at.Type == nil || at.IsNil() {
						continue
					}
					switch at.Type.Underlying().(type) {
					case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
					default:
						report(arg.Pos(), "interface boxing", "")
					}
				}
			}
			return
		}
	}
	callee := calleeFuncOf(pass, call)
	if callee != nil && callee.Pkg() != nil && hotExemptPackages[pkgBase(callee.Pkg().Path())] {
		return // observation exemption
	}
	var sig *types.Signature
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok {
		if tv.IsType() {
			return // conversion, not a call
		}
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}
	if sig == nil && callee != nil {
		sig, _ = callee.Type().(*types.Signature)
	}
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			break
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.IsNil() {
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Interface:
			continue // interface→interface: no boxing
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			// Pointer-shaped: the value is stored directly in the
			// interface's data word, no allocation.
			continue
		}
		report(arg.Pos(), "interface boxing", "")
	}
}

// paramTypeAt returns the effective parameter type for argument i,
// unrolling the variadic tail (f(xs...) spread calls return the slice
// type itself and are filtered out by the interface check).
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// amortizedAppend reports whether the append target's growth is provably
// amortized: the slice is a caller-provided parameter (the Append*
// scratch-buffer idiom — amortization is the caller's choice), or a
// local assigned from a make with an explicit capacity in this function.
func amortizedAppend(pass *analysis.Pass, fn fnInfo, target ast.Expr) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if isParamOf(fn, v) {
		return true
	}
	madeWithCap := false
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if madeWithCap {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			lobj := pass.TypesInfo.Defs[lid]
			if lobj == nil {
				lobj = pass.TypesInfo.Uses[lid]
			}
			if lobj != v {
				continue
			}
			if mk, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if mid, ok := ast.Unparen(mk.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[mid].(*types.Builtin); ok &&
						b.Name() == "make" && len(mk.Args) >= 3 {
						madeWithCap = true
					}
				}
			}
		}
		return true
	})
	return madeWithCap
}

// isParamOf reports whether v is a parameter (or receiver) of fn.
func isParamOf(fn fnInfo, v *types.Var) bool {
	sig, ok := fn.obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return sig.Recv() == v
}

// isStringType reports whether the expression has string type.
func isStringType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// packageFuncs lists every function declaration with a body in the
// package's type-checked files.
func packageFuncs(pass *analysis.Pass) []fnInfo {
	var out []fnInfo
	for _, f := range pass.Pkg.CheckedFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			out = append(out, fnInfo{fd, obj})
		}
	}
	return out
}
