package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"iddqsyn/internal/lint/analysis"
)

// MutexGuard checks "guarded by" annotations: a struct field or package
// variable declared with a comment
//
//	count int // guarded by mu
//
// may only be accessed from a function that (somewhere in its body) locks
// that mutex — a call to <...>.mu.Lock() or <...>.mu.RLock(), or mu.Lock()
// for a package-level mutex — or that visibly opts out of locking:
//
//   - functions whose name ends in "Locked" (the caller-holds-the-lock
//     naming convention);
//   - accesses whose receiver is a local variable declared in the same
//     function (a freshly built value not yet shared).
//
// The check is per-function, not path-sensitive: holding the lock
// anywhere in the function is accepted. That is deliberately coarse — the
// analyzer's job is to catch fields that grew a new access site in a
// function that never touches the mutex at all, the mistake the race
// detector only finds when a test happens to interleave.
var MutexGuard = &analysis.Analyzer{
	Name: "mutexguard",
	Doc: "fields and variables annotated `// guarded by mu` must only be accessed by functions " +
		"that lock mu (or are named *Locked); catches unsynchronized access sites statically",
	Run: runMutexGuard,
}

// guardedByRE anchors the annotation to the start of a comment line (or
// the start of a sentence), so prose that merely *mentions* the
// convention — like this analyzer's own doc comment — does not register
// as an annotation.
var guardedByRE = regexp.MustCompile(`(?m)(?:^|\. )guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func runMutexGuard(pass *analysis.Pass) (interface{}, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	for _, f := range pass.Pkg.CheckedFiles {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, guards, fd)
		}
	}
	return nil, nil
}

// collectGuards maps guarded objects (struct fields and package-level
// variables) to the name of their guarding mutex.
func collectGuards(pass *analysis.Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, f := range pass.Pkg.CheckedFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.StructType:
				for _, field := range nn.Fields.List {
					guard := guardAnnotation(field.Doc, field.Comment)
					if guard == "" {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							guards[obj] = guard
						}
					}
				}
			case *ast.GenDecl:
				for _, spec := range nn.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					guard := guardAnnotation(vs.Doc, vs.Comment)
					if guard == "" && len(nn.Specs) == 1 {
						guard = guardAnnotation(nn.Doc, nil)
					}
					if guard == "" {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						if v, ok := obj.(*types.Var); ok && v.Parent() == pass.TypesPkg.Scope() {
							guards[obj] = guard
						}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(g.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuardedAccesses reports guarded-object accesses inside one
// function that holds none of the required mutexes.
func checkGuardedAccesses(pass *analysis.Pass, guards map[types.Object]string, fd *ast.FuncDecl) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	locked := lockedMutexes(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[nn.Sel]
			if obj == nil {
				return true
			}
			guard, ok := guards[obj]
			if !ok || locked[guard] {
				return true
			}
			if localReceiver(pass, fd, nn.X) {
				return true
			}
			pass.Reportf(nn.Sel.Pos(),
				"%q is guarded by %q (see its declaration) but this function never locks it; "+
					"acquire %s.Lock/RLock or use a *Locked accessor", obj.Name(), guard, guard)
			return true
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[nn]
			if obj == nil {
				return true
			}
			if guard, ok := guards[obj]; ok && !locked[guard] {
				// Package-level guarded variable accessed bare.
				if v, isVar := obj.(*types.Var); isVar && !v.IsField() {
					pass.Reportf(nn.Pos(),
						"%q is guarded by %q (see its declaration) but this function never locks it; "+
							"acquire %s.Lock/RLock or use a *Locked accessor", obj.Name(), guard, guard)
				}
			}
		}
		return true
	})
}

// lockedMutexes collects the names of mutexes this function locks
// anywhere in its body: calls of the form <path>.mu.Lock(), mu.Lock(),
// and their RLock variants (including deferred ones).
func lockedMutexes(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch base := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			locked[base.Name] = true
		case *ast.SelectorExpr:
			locked[base.Sel.Name] = true
		}
		return true
	})
	return locked
}

// localReceiver reports whether the access base bottoms out in a local
// variable declared inside this function (excluding parameters and
// receivers): a value still private to the constructor that built it.
func localReceiver(pass *analysis.Pass, fd *ast.FuncDecl, base ast.Expr) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Declared inside the body (not in the signature)?
	return obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
}
