// Package spanend is the golden input for the spanend analyzer.
package spanend

import "obs"

type job struct {
	root  *obs.TraceSpan
	qwait *obs.TraceSpan
}

// Bad: the producer result is unreachable — nobody can ever End it.
func dropped(t *obs.Tracer) {
	t.StartRoot("serve.job") // want `span from t.StartRoot is dropped`
}

// Bad: bound to blank, same hole.
func blank(t *obs.Tracer) {
	_ = t.StartRoot("serve.job") // want `span from t.StartRoot is bound to _`
}

// Bad: the tuple producer's span result is discarded.
func blankTuple(ctx interface{}) interface{} {
	ctx2, _ := obs.StartTraceSpan(ctx, "phase") // want `span from obs.StartTraceSpan is bound to _`
	return ctx2
}

// Bad: started, assigned, then forgotten.
func forgotten(t *obs.Tracer) {
	sp := t.StartRoot("serve.job") // want `span sp is started but never ended`
	_ = sp
}

// Bad: spawning children is a use, but it neither ends the parent nor
// hands it off — the parent still leaks.
func parentLeaks(t *obs.Tracer) {
	root := t.StartRoot("serve.job") // want `span root is started but never ended`
	c := root.StartChild("phase")
	c.End()
}

// Good: the straightforward start/End pair.
func paired(t *obs.Tracer) {
	sp := t.StartRoot("serve.job")
	sp.End()
}

// Good: deferred End, including from inside a closure.
func deferred(t *obs.Tracer) {
	sp := t.StartRoot("serve.job")
	defer sp.End()
	child := sp.StartChild("phase")
	defer func() { child.End() }()
}

// Good: the tuple producer with both results kept and the span ended.
func tuple(ctx interface{}) interface{} {
	ctx2, sp := obs.StartTraceSpan(ctx, "phase")
	sp.End()
	return ctx2
}

// Good: ownership hands off through a call — the cross-goroutine
// queue-wait pattern, where the claimer Ends the span.
func handoffCall(ctx interface{}, t *obs.Tracer) interface{} {
	sp := t.StartRoot("serve.job")
	return obs.ContextWithSpan(ctx, sp)
}

// Good: escape into a struct field at birth; the worker that claims the
// job owns the End.
func handoffField(j *job, t *obs.Tracer) {
	j.root = t.StartRoot("serve.job")
	j.qwait = j.root.StartChild("queue.wait")
}

// Good: returned spans are the caller's to end.
func handoffReturn(t *obs.Tracer) *obs.TraceSpan {
	return t.StartRoot("serve.job")
}

// Good: retrieval is not production — SpanFromContext's result is not
// owned here, so never ending it is fine.
func retrieved(ctx interface{}) {
	psp := obs.SpanFromContext(ctx)
	c := psp.StartChild("phase")
	c.End()
}

// Good: a method value visibly reaches End.
func methodValue(t *obs.Tracer, run func(done func() interface{})) {
	sp := t.StartRoot("serve.job")
	run(func() interface{} { return sp.End() })
}
