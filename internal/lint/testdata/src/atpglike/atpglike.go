// Package atpglike is outside the determinism-scope package list, but
// functions taking a *math/rand.Rand parameter join the seeded optimizer
// path by contract — accepting the injected stream is the API signal.
package atpglike

import (
	"math/rand"
	"time"
)

// Generate takes the seeded stream, so wall-clock reads inside it are
// contract violations.
func Generate(rng *rand.Rand, n int) []int {
	out := make([]int, 0, n)
	if time.Now().UnixNano()%2 == 0 { // want `time\.Now`
		out = append(out, 0)
	}
	for i := 0; i < n; i++ {
		out = append(out, rng.Intn(n)) // injected stream: fine
	}
	return out
}

// Helper has no rand parameter and the package is out of scope: no
// report here, but the taint fact is still exported for callers.
func Helper() int64 {
	return time.Now().UnixNano()
}

// Shuffle consumes the tainted helper while holding the seeded stream.
func Shuffle(rng *rand.Rand, xs []int) {
	off := Helper() // tainted, but absorbed into a local...
	_ = off
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
