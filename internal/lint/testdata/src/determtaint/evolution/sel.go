package evolution

import "context"

// pickWinner races two result channels: whichever is ready first (or a
// uniform coin flip when both are) decides — nondeterministic.
func pickWinner(a, b chan int) int {
	select { // want `2 competing communications`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// waitOne is the blessed pattern: one real communication plus a
// cancellation check.
func waitOne(ctx context.Context, c chan int) (int, bool) {
	select {
	case <-ctx.Done():
		return 0, false
	case v := <-c:
		return v, true
	}
}

// drainOrStop with a bare done channel is also fine.
func drainOrStop(done chan struct{}, c chan int) int {
	select {
	case <-done:
		return 0
	case v := <-c:
		return v
	}
}

// pollOne with a default case is deterministic enough (single
// communication, non-blocking): silent.
func pollOne(c chan int) (int, bool) {
	select {
	case v := <-c:
		return v, true
	default:
		return 0, false
	}
}
