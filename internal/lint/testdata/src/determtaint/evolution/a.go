// Package evolution is the determtaint golden package: its base name puts
// every function on the seeded optimizer path. It plants the two bugs the
// analyzer exists to catch — a wall-clock read inside a cost function and
// a map iteration serialized into checkpoint bytes — next to the
// legitimate patterns that must stay silent.
package evolution

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"time"

	"clocksrc"
	"obs"
)

// costOf is planted bug #1: a cost function sampling the wall clock.
func costOf(widths []float64) float64 {
	base := 0.0
	for _, w := range widths {
		base += w
	}
	return base + float64(time.Now().UnixNano()%3) // want `time\.Now.*seeded optimizer path`
}

// encodeModules is planted bug #2: map iteration order baked into
// checkpoint bytes through a serializer.
func encodeModules(mods map[int][]int) []byte {
	var buf bytes.Buffer
	for id, gates := range mods {
		fmt.Fprintf(&buf, "%d:%d\n", id, len(gates)) // want `map iteration order.*serializes`
	}
	return buf.Bytes()
}

// moduleIDs accumulates map order into a slice and never sorts it.
func moduleIDs(mods map[int][]int) []int {
	var ids []int
	for id := range mods { // want `"ids" accumulates it and is never sorted`
		ids = append(ids, id)
	}
	return ids
}

// statuses is the regression shape that once livelocked the fixpoint: a
// never-sorted map-order accumulator (ids), plus a second slice derived
// from it whose later sort cleansed the derived taint every round while
// the derivation re-added it. The derived, sorted slice must stay
// silent; the accumulator itself still reports.
func statuses(mods map[int][]int) []int {
	ids := make([]*int, 0, len(mods))
	for id := range mods { // want `"ids" accumulates it and is never sorted`
		id := id
		ids = append(ids, &id)
	}
	out := make([]int, 0, len(ids))
	for _, p := range ids {
		out = append(out, *p)
	}
	sort.Ints(out)
	return out
}

// sortedModuleIDs is the fix idiom and must stay silent.
func sortedModuleIDs(mods map[int][]int) []int {
	ids := make([]int, 0, len(mods))
	for id := range mods {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// stepTimed is the blessed observation pattern: the wall-clock value is
// consumed only by the obs package.
func stepTimed(h *obs.Histogram) {
	t0 := time.Now()
	h.ObserveSince(t0)
}

// sinceObserved: tainted local consumed exclusively by observation.
func sinceObserved(h *obs.Histogram, start time.Time) {
	elapsed := time.Since(start)
	h.Observe(elapsed.Seconds())
}

// seedFromClock launders the clock through a local before returning it.
func seedFromClock() int64 {
	t0 := time.Now()
	return t0.UnixNano() // want `"t0" carries a nondeterministic value \(time\.Now`
}

// mutateRate consumes a same-package tainted function.
func mutateRate() float64 {
	return float64(seedFromClock()%100) / 100 // want `via seedFromClock`
}

// seedPopulation consumes a tainted function from another package: the
// fact crossed the package boundary in dependency order.
func seedPopulation() int64 {
	return clocksrc.Stamp() // want `time\.Now \(via clocksrc\.Stamp\)`
}

// runTag mixes in process identity.
func runTag() string {
	return fmt.Sprintf("run-%d", os.Getpid()) // want `os\.Getpid`
}

// chainedSeed consumes a fact that propagated through an intra-package
// chain in the dependency before being exported.
func chainedSeed() int64 {
	return clocksrc.Chained2() // want `via clocksrc\.Chained2`
}

// fixedSeed consumes the dependency's deterministic function: silent.
func fixedSeed() int64 {
	return clocksrc.Fixed()
}

// startObserved consumes a wall-clock value produced by the observation
// package: exempt by provenance.
func startObserved(l *obs.Logger) {
	l.Info("started", "at", obs.StartedAt())
}

type state struct {
	seed int64
	gen  int
}

// stamp stores the clock into escaping memory (void function: the taint
// fact is on the write, not a result).
func (s *state) stamp() {
	s.seed = time.Now().UnixNano() // want `time\.Now`
}

// refresh calls the tainted void method.
func (s *state) refresh() {
	s.stamp() // want `via stamp`
}

// advance is plain deterministic state mutation: silent.
func (s *state) advance() {
	s.gen++
}
