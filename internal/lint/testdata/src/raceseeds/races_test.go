//go:build raceseeds

package raceseeds

import (
	"runtime"
	"testing"
	"time"
)

// hammerWindow is how long each seed's reader races its background
// writer. A few milliseconds is millions of overlapping accesses —
// far past what the race detector needs to observe each seed.
const hammerWindow = 30 * time.Millisecond

// TestSeededRaces drives every seeded race hard enough for the race
// detector to observe all of them. Run it as
//
//	go test -race -tags raceseeds ./internal/lint/testdata/src/raceseeds/
//
// and it MUST fail with one DATA RACE report per seed — a passing run
// under -race means a seed went unobserved, which is itself a finding
// against the corpus. RaceCheck's seeds scope asserts exactly that,
// then re-attributes each report to the seeded field's static finding.
func TestSeededRaces(t *testing.T) {
	t.Run("guarded+bare", func(t *testing.T) {
		var c UnguardedCounter
		stop := make(chan struct{})
		wg := c.Spin(stop)
		sink := 0
		for deadline := time.Now().Add(hammerWindow); time.Now().Before(deadline); {
			sink += c.Peek()
			runtime.Gosched() // single-CPU schedulers need the nudge to interleave
		}
		close(stop)
		wg.Wait()
		_ = sink
	})
	t.Run("disjoint-locks", func(t *testing.T) {
		var d DisjointPair
		stop := make(chan struct{})
		wg := d.Churn(stop)
		sink := 0
		for deadline := time.Now().Add(hammerWindow); time.Now().Before(deadline); {
			sink += d.Sum()
			runtime.Gosched()
		}
		close(stop)
		wg.Wait()
		_ = sink
	})
	t.Run("atomic+plain", func(t *testing.T) {
		var m MixedFlag
		stop := make(chan struct{})
		wg := m.Publish(stop)
		var sink int64
		for deadline := time.Now().Add(hammerWindow); time.Now().Before(deadline); {
			sink += m.Raw()
			runtime.Gosched()
		}
		close(stop)
		wg.Wait()
		_ = sink
	})
}
