//go:build raceseeds

// Package raceseeds is the seeded intentional-race corpus: one type per
// lockset-inconsistency shape the sharedstate analyzer claims to catch.
// The corpus is the contract between the static and dynamic halves of
// the race cross-check:
//
//   - sharedstate must flag every seeded field (the zero-false-negative
//     assertion in TestRaceSeedCorpusFullyFlagged, plus line-anchored
//     want comments via TestSharedStateRaceSeeds);
//   - the hammer test (races_test.go) must make the race detector
//     observe every seed, and RaceCheck must re-attribute each GORACE
//     report back to the seeded field's static finding.
//
// The build tag keeps the deliberately racy code out of every normal
// build; only the racecheck seeds scope (and an explicit
// `go test -race -tags raceseeds` on this directory) compiles it. The
// analysis loader parses files ignoring build tags, so the analyzer
// sees the corpus unconditionally.
package raceseeds

import (
	"sync"
	"sync/atomic"
)

// UnguardedCounter seeds the guarded+bare shape: the background
// goroutine increments under Mu, Peek reads bare — the mutex protects
// nothing.
type UnguardedCounter struct {
	Mu sync.Mutex
	N  int // want `field raceseeds\.UnguardedCounter\.N is shared across goroutines with inconsistent locksets: guarded by .* but bare`
}

// Spin increments guarded on a spawned goroutine until stop closes.
func (c *UnguardedCounter) Spin(stop chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Mu.Lock()
			c.N++
			c.Mu.Unlock()
		}
	}()
	return &wg
}

// Peek reads N with no lock — one half of the seeded race.
func (c *UnguardedCounter) Peek() int {
	return c.N
}

// DisjointPair seeds the disjoint-locks shape: the writer holds WMu,
// the reader holds RMu, and the two locksets never intersect — both
// sides are "locked" and the accesses are still unordered.
type DisjointPair struct {
	WMu sync.Mutex
	RMu sync.Mutex
	V   int // want `field raceseeds\.DisjointPair\.V is shared across goroutines with inconsistent locksets: guarded by disjoint locks`
}

// Churn writes V under WMu on a spawned goroutine until stop closes.
func (d *DisjointPair) Churn(stop chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	go d.churn(stop, &wg)
	return &wg
}

func (d *DisjointPair) churn(stop chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		// Batch the writes per acquisition: mutex operations under heavy
		// contention can manufacture incidental happens-before edges
		// through the runtime's shared semaphore table, hiding the race
		// from the detector; many accesses per critical section keep most
		// read/write pairs unordered.
		d.WMu.Lock()
		for i := 0; i < 64; i++ {
			d.V++
		}
		d.WMu.Unlock()
	}
}

// Sum reads V under the wrong mutex — the other half of the seed.
func (d *DisjointPair) Sum() int {
	d.RMu.Lock()
	defer d.RMu.Unlock()
	s := 0
	for i := 0; i < 64; i++ {
		s += d.V
	}
	return s
}

// MixedFlag seeds the atomic+plain shape: the publisher goroutine
// advances Flag through sync/atomic, Raw loads it bare — the plain read
// breaks the atomic half's ordering promise.
type MixedFlag struct {
	Flag int64 // want `field raceseeds\.MixedFlag\.Flag is shared across goroutines with inconsistent locksets: atomic at .* but plain at`
}

// Publish advances Flag atomically on a spawned goroutine until stop
// closes.
func (m *MixedFlag) Publish(stop chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			atomic.AddInt64(&m.Flag, 1)
		}
	}()
	return &wg
}

// Raw reads Flag without the atomic — the seeded mix.
func (m *MixedFlag) Raw() int64 {
	return m.Flag
}
