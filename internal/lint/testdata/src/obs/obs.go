// Package obs is a miniature stand-in for the real internal/obs: its base
// name is "obs", which makes it an observation-exempt package for
// determtaint — values it consumes or produces never feed optimization.
package obs

import "time"

type Histogram struct{ n int }

func (h *Histogram) Observe(v float64)         { h.n++ }
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }
func (h *Histogram) Count() int                { return h.n }

type Logger struct{}

func (l *Logger) Info(msg string, kv ...interface{}) {}

// StartedAt returns a wall-clock value; determtaint must treat it as
// clean for callers because it comes from an observation package.
func StartedAt() time.Time { return time.Now() }
