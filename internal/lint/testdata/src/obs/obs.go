// Package obs is a miniature stand-in for the real internal/obs: its base
// name is "obs", which makes it an observation-exempt package for
// determtaint — values it consumes or produces never feed optimization.
package obs

import "time"

type Histogram struct{ n int }

func (h *Histogram) Observe(v float64)         { h.n++ }
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }
func (h *Histogram) Count() int                { return h.n }

type Logger struct{}

func (l *Logger) Info(msg string, kv ...interface{}) {}

// StartedAt returns a wall-clock value; determtaint must treat it as
// clean for callers because it comes from an observation package.
func StartedAt() time.Time { return time.Now() }

// TraceSpan mirrors the real tracing API's span: spanend recognizes the
// named type (in a package named "obs") plus the Start* producer naming
// convention.
type TraceSpan struct{ name string }

func (sp *TraceSpan) End() time.Duration                { return 0 }
func (sp *TraceSpan) StartChild(name string) *TraceSpan { return &TraceSpan{name: name} }
func (sp *TraceSpan) Trace() uint64                     { return 0 }

type Tracer struct{}

func (t *Tracer) StartRoot(name string) *TraceSpan { return &TraceSpan{name: name} }

type spanCtx interface{}

// StartTraceSpan mirrors the tuple-returning producer.
func StartTraceSpan(ctx spanCtx, name string) (spanCtx, *TraceSpan) {
	return ctx, &TraceSpan{name: name}
}

// SpanFromContext is retrieval, not production: the caller does not own
// the result's End, and spanend must not track it.
func SpanFromContext(ctx spanCtx) *TraceSpan { return nil }

// ContextWithSpan is a handoff sink for escape tests.
func ContextWithSpan(ctx spanCtx, sp *TraceSpan) spanCtx { return ctx }
