// Package driver is the caller side of the hotalloc golden: it declares
// the hotpath roots, dispatches through an interface implemented in the
// kernel package (exercising cross-package fact export in the reverse
// wave), and pins both positive findings and the deliberate negatives
// (value struct literals, caller-provided append buffers, suppressed
// sites, directive hygiene).
package driver

import "hotalloc/kernel"

// Evaluator is dispatched on the hot path; kernel.Impl implements it.
type Evaluator interface {
	Eval(n int) int
}

// evalLoop is the descendant-evaluation inner loop of the golden.
//
//lint:hotpath per-descendant evaluation loop
func evalLoop(ev Evaluator, xs []int, scratch []int) int {
	total := 0
	for _, x := range xs {
		total += ev.Eval(x)
		total += len(kernel.Leaf(x))
		total += helper(x)
		scratch = fill(scratch[:0], x)
		total += len(scratch)
	}
	return total
}

// helper inherits hotness from evalLoop. The value struct literal does
// not allocate and is not flagged; the pointer literal is.
func helper(n int) int {
	s := struct{ a, b int }{n, n}
	p := &pair{n, n} // want `composite literal on the hot path`
	return s.a + p.a
}

type pair struct{ a, b int }

// fill appends into a caller-provided buffer: amortization is the
// caller's choice, so nothing is flagged even though fill is hot.
func fill(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// describe exercises the remaining allocation kinds.
//
//lint:hotpath per-move reporting path
func describe(n int) int {
	msg := tag(n) + tag(n) // want `string concatenation on the hot path`
	sink(n)                // want `interface boxing on the hot path`
	f := func() int { // want `closure on the hot path`
		return n
	}
	xs := []int{n} // want `composite literal on the hot path`
	m := map[int]int{n: n} // want `composite literal on the hot path`
	p := new(pair) // want `new on the hot path`
	q := make([]int, n) // want `make on the hot path`
	ok := []int{n} //lint:ignore hotalloc golden: justified site stays silent
	return len(msg) + f() + len(xs) + len(m) + p.a + len(q) + len(ok)
}

// tag is hot via describe; constant returns allocate nothing.
func tag(n int) string {
	if n > 0 {
		return "+"
	}
	return "-"
}

// sink is hot via describe; an interface parameter alone is fine.
func sink(v interface{}) int {
	if v == nil {
		return 0
	}
	return 1
}

// cold is not reachable from any root: allocations are silent.
func cold(n int) []int {
	return append([]int{}, n)
}

/*lint:hotpath*/ // want `hotpath directive requires a reason`
func badRoot() {}

func notRoot() {
	/*lint:hotpath stray*/ // want `hotpath directive must be in the doc comment`
}
