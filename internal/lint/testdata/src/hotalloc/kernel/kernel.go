// Package kernel is the callee side of the hotalloc cross-package golden:
// it declares no hotpath roots of its own. Its functions become hot only
// through facts exported by the driver package, which runs *earlier* in
// the reverse wave because it imports this one.
package kernel

// Impl implements the driver's Evaluator interface; Eval is reached via
// interface dispatch from the driver's hot root.
type Impl struct{ buf []int }

// Eval appends into a field slice: growth is not provably amortized.
func (im *Impl) Eval(n int) int {
	im.buf = append(im.buf, n) // want `append \(growth not provably amortized\) on the hot path`
	return len(im.buf)
}

// Leaf is called directly by the driver's hot root. The make is flagged;
// the append into a slice made with explicit capacity is not.
func Leaf(n int) []int {
	out := make([]int, 0, n) // want `make on the hot path`
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Cold is never reached from any hot root: its allocations are silent.
func Cold() []int {
	xs := []int{1, 2, 3}
	return append(xs, 4)
}
