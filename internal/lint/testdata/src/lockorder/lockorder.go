// Package lockorder pins the lock-order-cycle analyzer: a direct two-lock
// inversion, a cycle formed through a call (one function's acquisition
// summary extending another's held set), a consistent nesting that must
// stay silent, and structural self-edges that are exempt.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }

var (
	a A
	b B
	c C
	d D
	e E
)

// lockAB nests b.mu under a.mu; lockBA nests them the other way around.
// Both acquisition sites lie on the cycle and both are reported.
func lockAB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order cycle`
	b.mu.Unlock()
}

func lockBA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock order cycle`
	a.mu.Unlock()
}

// lockAC nests c.mu under a.mu through a call; nobody nests a.mu under
// c.mu, so the edge is acyclic and silent.
func lockAC() {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockC()
}

func lockC() {
	c.mu.Lock()
	defer c.mu.Unlock()
}

// lockDThenE forms its half of a cycle through grabE's acquisition
// summary; the report lands on the call that extends the held set.
func lockDThenE() {
	d.mu.Lock()
	defer d.mu.Unlock()
	grabE() // want `lock order cycle`
}

func grabE() {
	e.mu.Lock()
	e.mu.Unlock()
}

func lockEThenD() {
	e.mu.Lock()
	defer e.mu.Unlock()
	d.mu.Lock() // want `lock order cycle`
	d.mu.Unlock()
}

// handOverHand re-acquires the same structural mutex (two instances of
// one type): a self-edge, exempt by design.
func handOverHand(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

// sequential acquires in strict sequence, never nested: no edges at all.
func sequential() {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}
