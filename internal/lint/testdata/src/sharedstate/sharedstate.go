// Package sharedstate pins the lockset analyzer: a field guarded on one
// path and bare on another, a field guarded by disjoint locks, a field
// mixing atomic and plain access, a loop-spawned worker pool racing
// itself — and the silences: consistent guarding, single-goroutine
// fields, pre-spawn initialization, constructor locals, and *Locked
// helpers whose caller holds the guard.
package sharedstate

import (
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------
// guarded+bare: the background literal locks, the exported reader does
// not — the lock protects nothing. One finding, at the field.

type counter struct {
	mu sync.Mutex
	n  int // want `field sharedstate\.counter\.n is shared across goroutines with inconsistent locksets: guarded by .* but bare`
}

func (c *counter) Run(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			c.mu.Lock()
			c.n++
			c.mu.Unlock()
		}
	}()
}

func (c *counter) Read() int {
	return c.n
}

// ---------------------------------------------------------------------
// disjoint-locks: writer holds wmu, reader holds rmu — the locksets
// never intersect, so the two goroutines are unordered.

type split struct {
	wmu sync.Mutex
	rmu sync.Mutex
	v   int // want `field sharedstate\.split\.v is shared across goroutines with inconsistent locksets: guarded by disjoint locks`
}

func (s *split) Start(stop chan struct{}) {
	go s.writeLoop(stop)
}

func (s *split) writeLoop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		s.wmu.Lock()
		s.v++
		s.wmu.Unlock()
	}
}

func (s *split) Load() int {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	return s.v
}

// ---------------------------------------------------------------------
// atomic+plain: the goroutine publishes with atomic.StoreInt64, the
// reader loads bare — the plain half breaks the atomic half's promise.

type signal struct {
	flag int64 // want `field sharedstate\.signal\.flag is shared across goroutines with inconsistent locksets: atomic at .* but plain at`
}

func (g *signal) Arm(done chan struct{}) {
	go func() {
		<-done
		atomic.StoreInt64(&g.flag, 1)
	}()
}

func (g *signal) Armed() bool {
	return g.flag == 1
}

// ---------------------------------------------------------------------
// multi-instance: one spawn site inside a loop mints many goroutines
// that race each other — the field is shared even though every access
// sits in a single spawn context. Bare writes in the pool, guarded read
// outside: guarded+bare.

type pool struct {
	mu   sync.Mutex
	hits int // want `field sharedstate\.pool\.hits is shared across goroutines with inconsistent locksets`
}

func (p *pool) Spin(n int, wg *sync.WaitGroup) {
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			p.hits++
		}()
	}
}

func (p *pool) Hits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

// ---------------------------------------------------------------------
// Silent: every access under the same mutex, including through a
// *Locked helper (the caller holds the guard — mutexguard's contract).

type safe struct {
	mu sync.Mutex
	n  int
}

func (s *safe) Start(done chan struct{}) {
	go s.work(done)
}

func (s *safe) work(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		s.mu.Lock()
		s.bumpLocked()
		s.mu.Unlock()
	}
}

func (s *safe) bumpLocked() {
	s.n++
}

func (s *safe) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// ---------------------------------------------------------------------
// Silent: the field is touched by exactly one goroutine (the spawned
// literal owns it; everyone else talks to it over the channel).

type owner struct {
	out chan int
	cur int
}

func (o *owner) Start(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			o.cur++
			o.out <- o.cur
		}
	}()
}

// ---------------------------------------------------------------------
// Silent: pre-spawn initialization happens-before everything the
// spawned goroutine does; the remaining accesses agree on the mutex.

type warm struct {
	mu    sync.Mutex
	state int
}

func (w *warm) Start(done chan struct{}) {
	w.state = 1 // before the spawn: ordered, not a lockset hole
	go w.run(done)
}

func (w *warm) run(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		w.mu.Lock()
		w.state++
		w.mu.Unlock()
	}
}

func (w *warm) State() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// ---------------------------------------------------------------------
// Silent: a freshly constructed value is not shared yet; the bare
// writes in the constructor never race the guarded accesses later.

func NewSafe(seed int) *safe {
	s := &safe{}
	s.n = seed
	return s
}
