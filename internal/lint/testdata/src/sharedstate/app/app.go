// Package app spawns the goroutine that touches lib.Store.Val bare —
// the access site and its spawn context flow to lib (which runs later
// in the reverse wave) as facts on the field object.
package app

import "sharedstate/lib"

// Run leaks a bare increment into a goroutine; lib.Get reads the same
// field under lib.Store.Mu.
func Run(s *lib.Store, done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			s.Val++
		}
	}()
}
