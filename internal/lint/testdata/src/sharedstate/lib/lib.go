// Package lib declares the shared struct; the spawning happens in the
// dependent package app, so the finding can only exist if app's spawn
// context and bare access crossed the package boundary as facts.
package lib

import "sync"

type Store struct {
	Mu  sync.Mutex
	Val int // want `field lib\.Store\.Val is shared across goroutines with inconsistent locksets: guarded by lib\.Store\.Mu .* but bare`
}

// Get reads under the mutex — locally this package is consistent; the
// bare write arrives from app via FieldAccessesFact.
func (s *Store) Get() int {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	return s.Val
}
