// Package goleak pins the goroutine-leak analyzer: every conventional
// lifecycle mechanism (context, channel operations, WaitGroup, a
// lifecycle-bearing receiver) stays silent, and only the genuinely
// unaccounted spawns are flagged.
package goleak

import (
	"context"
	"sync"
)

type server struct {
	done chan struct{}
}

// watch is accounted: the goroutine references a context.
func watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// run is accounted: the goroutine selects on a channel.
func (s *server) run() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			}
		}
	}()
}

// fanOut is accounted: WaitGroup.Done in the body.
func fanOut(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

// spawnNamed is accounted: a channel flows into the named function.
func spawnNamed(c chan int) {
	go pump(c)
}

func pump(c chan int) {
	for range c {
	}
}

// spawnMethod is accounted: the receiver type visibly carries a done
// channel.
func (s *server) spawnMethod() {
	go s.loop()
}

func (s *server) loop() {
	<-s.done
}

// sendResult is accounted: the goroutine sends its result on a channel.
func sendResult(out chan int) {
	go func() {
		out <- 1
	}()
}

// closer is accounted: closing a channel is a lifecycle handshake.
func closer(ch chan int) {
	go func() {
		close(ch)
	}()
}

// leak has no stop path at all.
func leak() {
	go func() { // want `goroutine has no visible stop path`
		for {
		}
	}()
}

// leakNamed spawns a named function with no lifecycle in its arguments.
func leakNamed(n int) {
	go count(n) // want `goroutine has no visible stop path`
}

func count(n int) {
	for i := 0; i < n; i++ {
	}
}

// justified spawns are suppressed with a reasoned directive.
func justified() {
	//lint:ignore goleak golden: fire-and-forget by design
	go func() {
		_ = 1
	}()
}
