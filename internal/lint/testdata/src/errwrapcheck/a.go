// Package errwrapcheck pins the %w wrapping policy: an error formatted
// into a new error with %v/%s/%q disappears from errors.Is/As.
package errwrapcheck

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrap: " + w.inner.Error() }

func bad(err error) error {
	return fmt.Errorf("load config: %v", err) // want `error formatted with %v.*use %w`
}

func badS(err error) error {
	return fmt.Errorf("load: %s", err) // want `error formatted with %s`
}

func badQ(err error) error {
	return fmt.Errorf("load: %q", err) // want `error formatted with %q`
}

func badMixed(path string, err error) error {
	return fmt.Errorf("read %q: %v", path, err) // want `error formatted with %v`
}

func badConcrete(w *wrapErr) error {
	return fmt.Errorf("outer: %v", w) // want `use %w`
}

func badSentinel() error {
	return fmt.Errorf("during sweep: %v", errSentinel) // want `use %w`
}

func good(err error) error {
	return fmt.Errorf("load config: %w", err)
}

func goodTwo(path string, err error) error {
	return fmt.Errorf("read %q: %w", path, err)
}

func goodType(err error) error {
	return fmt.Errorf("unexpected error type %T", err)
}

func goodNonError(name string, n int) error {
	return fmt.Errorf("no module %q (%d known)", name, n)
}

func goodDynamic(format string, err error) error {
	return fmt.Errorf(format, err) // non-constant format: not checked
}

func goodIndexed(err error) error {
	return fmt.Errorf("%[1]v", err) // explicit index: not checked
}

func goodWidth(x float64, err error) error {
	return fmt.Errorf("x=%6.2f: %w", x, err)
}

func goodStarWidth(w int, x float64, err error) error {
	return fmt.Errorf("x=%*f: %w", w, x, err)
}

func ignored(err error) error {
	//lint:ignore errwrapcheck chain deliberately severed at the API boundary
	return fmt.Errorf("opaque failure: %v", err)
}
