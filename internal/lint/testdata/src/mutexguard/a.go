// Package mutexguard pins the `// guarded by mu` annotation check.
package mutexguard

import "sync"

type counter struct {
	mu        sync.Mutex
	n         int // guarded by mu
	last      int // guarded by mu
	unguarded int
}

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.last = c.n
}

func (c *counter) Bad() int {
	return c.n // want `"n" is guarded by "mu"`
}

func (c *counter) BadWrite(v int) {
	c.last = v // want `"last" is guarded by "mu"`
}

// readLocked follows the caller-holds-the-lock naming convention.
func (c *counter) readLocked() int {
	return c.n
}

func (c *counter) Free() int {
	return c.unguarded
}

// newCounter touches guarded fields of a value it just built: fine.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// rlockRead holds the read lock — RLock counts.
type gauge struct {
	mu sync.RWMutex
	v  float64 // guarded by mu
}

func (g *gauge) Load() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

func (g *gauge) LoadBad() float64 {
	return g.v // want `"v" is guarded by "mu"`
}

var regMu sync.Mutex

// registry of named counters. guarded by regMu
var registry = map[string]*counter{}

func register(name string, c *counter) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = c
}

func lookupBad(name string) *counter {
	return registry[name] // want `"registry" is guarded by "regMu"`
}

func ignoredLookup(name string) *counter {
	//lint:ignore mutexguard snapshot read is racy by design here
	return registry[name]
}
