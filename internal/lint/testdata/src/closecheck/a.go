// Package closecheck is the golden input for the closecheck analyzer.
package closecheck

import "os"

// Bad: a write path that swallows Close and Sync errors.
func swallow(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Sync()  // want `error from f.Sync\(\) is discarded`
	f.Close() // want `error from f.Close\(\) is discarded`
	return nil
}

// Good: every durability-relevant error is observed.
func atomic(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // explicit discard on the error path is fine
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// Good: deferred closes are the idiomatic read path.
func read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// shutdowner stands in for *http.Server (the analyzer is syntactic).
type shutdowner struct{}

func (shutdowner) Shutdown(ctx interface{}) error { return nil }
func (shutdowner) Close() error                   { return nil }

// Bad: the graceful drain's error vanishes — both as a bare statement
// (even with arguments) and deferred (it can never reach a caller).
func drainDropped(srv shutdowner, ctx interface{}) {
	srv.Shutdown(ctx)       // want `error from srv.Shutdown\(\) is discarded`
	defer srv.Shutdown(ctx) // want `error from deferred srv.Shutdown\(\) is discarded`
}

// broadcaster stands in for a fire-and-forget resource: its Close and
// Shutdown return nothing, so there is no error to observe and nothing
// to flag — even deferred.
type broadcaster struct{}

func (broadcaster) Close()    {}
func (broadcaster) Shutdown() {}

func closeVoid(b broadcaster) {
	b.Close() // no diagnostic: Close returns no error
	defer b.Shutdown()
	b.Shutdown()
}

// Good: the drain error is observed (or explicitly discarded).
func drainChecked(srv shutdowner, ctx interface{}) error {
	defer func() {
		if err := srv.Shutdown(ctx); err != nil {
			_ = err // logged in real code
		}
	}()
	_ = srv.Shutdown(ctx)
	return srv.Shutdown(ctx)
}
