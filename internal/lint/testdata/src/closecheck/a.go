// Package closecheck is the golden input for the closecheck analyzer.
package closecheck

import "os"

// Bad: a write path that swallows Close and Sync errors.
func swallow(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Sync()  // want `error from f.Sync\(\) is discarded`
	f.Close() // want `error from f.Close\(\) is discarded`
	return nil
}

// Good: every durability-relevant error is observed.
func atomic(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // explicit discard on the error path is fine
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// Good: deferred closes are the idiomatic read path.
func read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}
