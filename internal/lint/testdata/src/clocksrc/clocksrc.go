// Package clocksrc is a dependency package for the determtaint
// cross-package fact test: it is outside the determinism scope (nothing
// is reported here), but its nondeterministic functions export
// TaintedFacts that the evolution golden package consumes.
package clocksrc

import (
	"os"
	"time"
)

// Stamp derives its result from the wall clock: callers on the seeded
// optimizer path are flagged via the exported fact.
func Stamp() int64 { return time.Now().UnixNano() }

// RunID mixes in the process id — same story.
func RunID() int64 { return int64(os.Getpid()) }

// Fixed is deterministic; calling it is always fine.
func Fixed() int64 { return 42 }

// chained propagates taint through an intra-package call chain before the
// fact crosses the package boundary.
func chained() int64 { return Stamp() + 1 }

// Chained2 is the exported head of the chain.
func Chained2() int64 { return chained() }
