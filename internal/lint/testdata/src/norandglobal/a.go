// Package norandglobal is the golden input for the norandglobal analyzer.
package norandglobal

import (
	mrand "math/rand"
	"os"
	"time"
)

// Bad: top-level functions draw from the process-global stream.
func globals() int {
	mrand.Seed(42)                      // want `process-global math/rand`
	x := mrand.Intn(6)                  // want `process-global math/rand`
	y := mrand.Float64()                // want `process-global math/rand`
	mrand.Shuffle(3, func(i, j int) {}) // want `process-global math/rand`
	return x + int(y)
}

// Bad: wall-clock and process-identity seeds are not reproducible.
func wallClock() *mrand.Rand {
	src := mrand.NewSource(time.Now().UnixNano()) // want `not reproducible`
	_ = mrand.NewSource(int64(os.Getpid()))       // want `not reproducible`
	return mrand.New(src)
}

// Good: an explicitly seeded source, and drawing from an injected stream.
func seeded(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed))
}

func injected(rng *mrand.Rand) int {
	return rng.Intn(6) // methods on an injected *rand.Rand are the policy
}
