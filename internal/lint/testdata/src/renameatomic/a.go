// Package renameatomic is the golden input for the renameatomic analyzer.
package renameatomic

import "os"

// Bad: a hand-rolled temp-file publish that skips the fsync steps.
func publish(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want `direct os.Rename skips the atomic-write protocol`
}

// Good: a suppressed call carries a reasoned directive.
func rotate(old, dir string) error {
	//lint:ignore renameatomic log rotation renames an already-synced file between directories
	return os.Rename(old, dir)
}

// Good: other os calls and Rename methods on non-os values are not the
// analyzer's business.
type mover struct{}

func (mover) Rename(a, b string) error { return nil }

func fine(m mover, path string) error {
	if err := m.Rename(path, path+".bak"); err != nil {
		return err
	}
	return os.Remove(path)
}
