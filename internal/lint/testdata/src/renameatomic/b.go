package renameatomic

import stdos "os"

// Bad: a renamed import does not hide the call.
func publishAliased(tmp, path string) error {
	return stdos.Rename(tmp, path) // want `direct os.Rename skips the atomic-write protocol`
}
