// Package panicpolicy is the golden input for the panicpolicy analyzer.
package panicpolicy

import "errors"

var registry = map[string]int{}

// Good: init-time registration may refuse to start a broken binary.
func init() {
	if len(registry) != 0 {
		panic("panicpolicy: registry already populated")
	}
}

// Good: must-helpers are the blessed invariant escape hatch.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// MustParse is blessed by its Must prefix.
func MustParse(s string) int {
	if s == "" {
		panic("panicpolicy: empty input")
	}
	return len(s)
}

// Good: a must-helper bound as a closure.
func table() {
	mustAdd := func(k string, v int) {
		if _, dup := registry[k]; dup {
			panic("panicpolicy: duplicate " + k)
		}
		registry[k] = v
	}
	mustAdd("a", 1)
}

// Bad: library code must return errors.
func parse(s string) (int, error) {
	if s == "" {
		panic("empty") // want `panic in library code`
	}
	return len(s), nil
}

// Bad: a panic inside an ordinary closure is still library code.
func each(fn func(int)) error {
	wrapped := func(i int) {
		if fn == nil {
			panic("nil fn") // want `panic in library code`
		}
		fn(i)
	}
	wrapped(0)
	return errors.New("unused")
}
