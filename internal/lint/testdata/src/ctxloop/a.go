// Package ctxloop is the golden input for the ctxloop analyzer.
package ctxloop

import "context"

func work(i int) int { return i * i }

// Bad: a sweep loop that can never be interrupted.
func sweep(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `cancellation .* ineffective`
		total += work(i)
	}
	return total
}

// Bad: range loops are covered too; only the outermost loop is reported.
func nested(ctx context.Context, rows [][]int) int {
	total := 0
	for _, row := range rows { // want `cancellation .* ineffective`
		for _, v := range row {
			total += work(v)
		}
	}
	return total
}

// Good: the loop checks ctx.Err each iteration.
func checked(ctx context.Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += work(i)
	}
	return total, nil
}

// Good: passing ctx onward delegates the cancellation check.
func delegated(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += workCtx(ctx, i)
	}
	return total
}

func workCtx(ctx context.Context, i int) int {
	if ctx.Err() != nil {
		return 0
	}
	return work(i)
}

// Good: an inner loop under a ctx-checking outer loop is bounded by the
// outer check.
func innerUnderChecked(ctx context.Context, rows [][]int) int {
	total := 0
	for _, row := range rows {
		if ctx.Err() != nil {
			break
		}
		for _, v := range row {
			total += work(v)
		}
	}
	return total
}

// Good: pure bookkeeping loops need no cancellation point.
func bookkeeping(ctx context.Context, xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	_ = ctx
	return out
}

// Good: a suppressed finding with a reason.
func suppressed(ctx context.Context, n int) int {
	total := 0
	//lint:ignore ctxloop n is bounded by the 8-entry retry table
	for i := 0; i < n; i++ {
		total += work(i)
	}
	return total
}
