// Package lint is the iddqlint analyzer suite: the project-specific
// static checks that guard the invariants the rest of the system rests on.
//
//   - norandglobal: all randomness must flow through an injected, seeded
//     *rand.Rand (the counted stream), or checkpoint resume stops being
//     bit-identical.
//   - panicpolicy: library code under internal/ returns errors; panics are
//     reserved for must()-style invariant helpers and init-time
//     registration.
//   - ctxloop: generation/sweep loops in context-aware functions must
//     observe cancellation, or -timeout and SIGINT handling silently stop
//     working.
//   - closecheck: Close/Sync errors on writers and Shutdown errors on
//     servers must be checked — the atomic-checkpoint guarantee and the
//     debug server's graceful drain depend on them.
//   - renameatomic: files are published with the shared fsx atomic-write
//     helper (temp file + fsync + rename + directory fsync), never with a
//     bare os.Rename that silently skips the fsyncs.
//   - determtaint: types-aware taint analysis; nondeterministic values
//     (wall clock, process identity, global rand, map iteration order,
//     select races) must not flow into the seeded optimizer path or into
//     checkpoint bytes. Taint facts cross package boundaries.
//   - errwrapcheck: errors passed to fmt.Errorf use %w, never %v/%s/%q,
//     so sentinel errors survive wrapping for errors.Is/As.
//   - mutexguard: fields annotated `// guarded by mu` are only accessed
//     by functions that lock mu (or are named *Locked).
//   - hotalloc: call-graph hot-path allocation analysis; functions
//     reachable from //lint:hotpath roots must not allocate (composite
//     literals, make/new, unamortized append, interface boxing, closures,
//     string concatenation) unless each site carries a reasoned ignore.
//     Hot facts propagate caller→callee, against the import direction.
//   - lockorder: lock-acquisition-order cycles (A held while acquiring B,
//     elsewhere B held while acquiring A) — static deadlock risks,
//     expanded through per-function acquisition summaries across packages.
//   - goleak: `go` statements with no visible stop path (no context,
//     channel operation, or WaitGroup) — goroutines that cannot be shut
//     down or awaited.
//   - spanend: trace spans (obs.TraceSpan from Start* producers) that are
//     started but provably never ended — dropped, bound to blank, or
//     assigned and forgotten. An unended span is a silent hole in the
//     causal trace and leaks against the per-trace span cap.
//   - sharedstate: whole-program lockset analysis; struct fields reachable
//     from more than one goroutine (via the shared goroutine inventory and
//     cross-package spawn facts) must be accessed under a *consistent*
//     discipline — flagged when accessed both under and outside a guard,
//     under disjoint locks on different paths, or mixing sync/atomic with
//     plain loads/stores. The dynamic race-soak cross-check (-racecheck)
//     re-attributes GORACE reports to these findings.
//
// The suite runs on a whole-program type-checked view (see the analysis
// package): packages are loaded and type-checked once, analyzers run in
// dependency order in parallel across packages, and facts exported while
// analyzing a dependency are visible to its dependents. A finding can be
// suppressed with a reasoned directive on or above the flagged line:
//
//	//lint:ignore <analyzer> <reason>
//
// The analyzer name must match exactly, and a directive that suppresses
// nothing is itself reported, so stale exemptions cannot linger.
package lint

import (
	"go/ast"
	"strconv"
	"strings"

	"iddqsyn/internal/lint/analysis"
)

// Analyzers returns the full iddqlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoRandGlobal, PanicPolicy, CtxLoop, CloseCheck, RenameAtomic,
		DetermTaint, ErrWrapCheck, MutexGuard,
		HotAlloc, LockOrder, GoLeak, SpanEnd, SharedState,
	}
}

// Names returns the analyzer names in suite order, plus the framework's
// directive-hygiene pseudo-analyzer — the full universe a lint:ignore
// directive may legally name.
func Names() []string {
	names := make([]string, 0, len(Analyzers())+1)
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return append(names, analysis.DirectiveAnalyzer)
}

// ByName resolves one analyzer by name.
func ByName(name string) (*analysis.Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Applies reports whether an analyzer's policy covers the given import
// path. The panic policy governs library code only — commands and examples
// may still panic at top level; renameatomic exempts internal/fsx, the one
// package allowed to call os.Rename (it implements the atomic-write helper
// everyone else must use). The other checks apply everywhere.
func Applies(a *analysis.Analyzer, pkgPath string) bool {
	switch a.Name {
	case PanicPolicy.Name:
		return strings.HasPrefix(pkgPath, "internal/") ||
			strings.Contains(pkgPath, "/internal/")
	case RenameAtomic.Name:
		return pkgPath != "internal/fsx" &&
			!strings.HasSuffix(pkgPath, "/internal/fsx")
	}
	return true
}

// importName returns the local name under which file f imports path, or
// "" if the file does not import it. A dot import returns ".".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		// Default name: the last path element ("math/rand" -> "rand").
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
