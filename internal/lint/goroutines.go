package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"

	"iddqsyn/internal/lint/analysis"
)

// The goroutine inventory is the shared `go`-statement walk behind the
// concurrency analyzers: goleak consumes the Accounted classification
// (does the spawn have a visible stop path?), and sharedstate consumes
// the spawn topology (which functions run on which spawned goroutines,
// and whether a spawn site can produce more than one instance). Both
// analyzers seeing the identical site list is the point — a goroutine
// goleak can prove stoppable but sharedstate never saw (or vice versa)
// would be a hole between two checks that claim to cover the same code.

// SpawnSite is one `go` statement in a package's type-checked files.
type SpawnSite struct {
	// Go is the statement itself; Go.Pos() is the reporting position.
	Go *ast.GoStmt
	// Lit is the spawned function literal (`go func(){...}()`), nil for
	// named spawns.
	Lit *ast.FuncLit
	// Callee is the statically resolved spawned function (`go f(x)`,
	// `go s.run()`), nil for literals and unresolvable calls.
	Callee *types.Func
	// Enclosing is the function declaration containing the statement.
	Enclosing *types.Func
	// InLoop reports that the statement sits inside a for/range statement
	// of its enclosing function: the site can mint many goroutine
	// instances, which may race each other even with no other goroutine
	// in sight.
	InLoop bool
	// Accounted reports a visible stop path: a context, channel
	// operation, or WaitGroup in the spawned body, the call's arguments,
	// or the receiver (goleak's predicate).
	Accounted bool
}

// ID names the spawn site for diagnostics and facts: "file.go:line"
// using the position's base filename. Stable across machines because it
// carries no directory components.
func (s SpawnSite) ID(fset *token.FileSet) string {
	pos := fset.Position(s.Go.Pos())
	return filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
}

// GoroutineInventory walks every non-test file of the package and
// returns its `go` statements in source order, classified.
func GoroutineInventory(pass *analysis.Pass) []SpawnSite {
	var sites []SpawnSite
	for _, f := range pass.Pkg.CheckedFiles {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			enclosing, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			collectSpawns(pass, fd.Body, enclosing, false, &sites)
		}
	}
	return sites
}

// collectSpawns records every GoStmt under n. loops tracks whether the
// walk is currently inside a for/range statement.
func collectSpawns(pass *analysis.Pass, n ast.Node, enclosing *types.Func, inLoop bool, out *[]SpawnSite) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.ForStmt:
			collectSpawns(pass, nn.Body, enclosing, true, out)
			if nn.Init != nil {
				collectSpawns(pass, nn.Init, enclosing, inLoop, out)
			}
			return false
		case *ast.RangeStmt:
			collectSpawns(pass, nn.Body, enclosing, true, out)
			return false
		case *ast.GoStmt:
			site := SpawnSite{
				Go:        nn,
				Enclosing: enclosing,
				InLoop:    inLoop,
				Accounted: goStmtAccounted(pass, nn),
			}
			switch fun := ast.Unparen(nn.Call.Fun).(type) {
			case *ast.FuncLit:
				site.Lit = fun
			default:
				site.Callee = calleeFuncOf(pass, nn.Call)
			}
			*out = append(*out, site)
			// Keep walking: the spawned literal body may itself spawn.
			return true
		}
		return true
	})
}

// goStmtAccounted reports whether the spawned goroutine has a visible
// lifecycle mechanism: in the function literal's body, in the call's
// arguments, or in the receiver/arguments of a named callee.
func goStmtAccounted(pass *analysis.Pass, g *ast.GoStmt) bool {
	// Arguments (and a method call's receiver) carrying a context, channel
	// or WaitGroup account for both literal and named spawns.
	for _, arg := range g.Call.Args {
		if exprCarriesStopPath(pass, arg) {
			return true
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyHasStopPath(pass, fun.Body)
	case *ast.SelectorExpr:
		// go s.run() — the receiver may hold the lifecycle (a struct with
		// a done channel or context). Conservative: a named receiver is
		// trusted only when its type visibly contains a stop mechanism.
		if tv, ok := pass.TypesInfo.Types[fun.X]; ok && typeCarriesStopPath(tv.Type, 0) {
			return true
		}
	}
	return false
}

// bodyHasStopPath scans a goroutine body for any lifecycle mechanism.
func bodyHasStopPath(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[nn.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			}
			if sel, ok := ast.Unparen(nn.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done", "Wait":
					// wg.Done()/wg.Wait(), or ctx.Done() in a select.
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[nn]; obj != nil && typeCarriesStopPath(obj.Type(), 0) {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprCarriesStopPath reports whether an argument expression's type is a
// lifecycle carrier.
func exprCarriesStopPath(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return typeCarriesStopPath(tv.Type, 0)
}

// typeCarriesStopPath reports whether t is a context.Context, a channel,
// a sync.WaitGroup, or a struct containing one of those (one level deep —
// the lifecycle must be near the surface to count as visible).
func typeCarriesStopPath(t types.Type, depth int) bool {
	if t == nil || depth > 1 {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
			if obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Interface:
		// context.Context resolved through an interface alias.
		return u.NumMethods() > 0 && hasMethod(u, "Deadline") && hasMethod(u, "Done")
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeCarriesStopPath(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

func hasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}
