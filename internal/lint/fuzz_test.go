package lint_test

import (
	"strings"
	"testing"

	"iddqsyn/internal/lint"
	"iddqsyn/internal/lint/analysis"
)

// FuzzDirectives fuzzes the two comment-directive parsers the analyzer
// suite depends on: //lint:hotpath (hot-root declaration) and
// //lint:ignore (finding suppression). Malformed input of any shape must
// come back as a clean (ok, malformed) classification — never a panic —
// and the parsed fields must respect the parsers' documented invariants.
func FuzzDirectives(f *testing.F) {
	seeds := []string{
		"",
		"//",
		"/**/",
		"// ordinary comment",
		"//lint:hotpath",
		"//lint:hotpath ",
		"//lint:hotpath descendant evaluation loop",
		"/*lint:hotpath*/",
		"/*lint:hotpath anneal move loop*/",
		"//lint:hotpathological not a directive",
		"//lint:hotpath\treason after tab",
		"//lint:ignore",
		"//lint:ignore hotalloc",
		"//lint:ignore hotalloc pool miss only",
		"//lint:ignore  hotalloc   spaced   reason",
		"//lint:ignoreX smuggled name",
		"// lint:ignore hotalloc leading space form",
		"//lint:ignore hotalloc //lint:ignore hotalloc nested",
		"//lint:hotpath //lint:ignore hotalloc both",
		"//lint:ignore " + strings.Repeat("a", 1<<12) + " long name",
		"//lint:hotpath " + strings.Repeat("λ", 256),
		"//lint:ignore hotalloc \x00\xff not utf-8",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		reason, ok, malformed := lint.ParseHotpath(text)
		if !ok && (reason != "" || malformed) {
			t.Fatalf("ParseHotpath(%q): not a directive but reason=%q malformed=%v", text, reason, malformed)
		}
		if malformed && reason != "" {
			t.Fatalf("ParseHotpath(%q): malformed with non-empty reason %q", text, reason)
		}
		if ok && !malformed {
			if reason == "" {
				t.Fatalf("ParseHotpath(%q): well-formed directive with empty reason", text)
			}
			if reason != strings.TrimSpace(reason) {
				t.Fatalf("ParseHotpath(%q): reason %q not trimmed", text, reason)
			}
		}

		name, ireason, iok, imal := analysis.ParseIgnore(text)
		if !iok && (name != "" || ireason != "" || imal) {
			t.Fatalf("ParseIgnore(%q): not a directive but name=%q reason=%q malformed=%v", text, name, ireason, imal)
		}
		if imal && (name != "" || ireason != "") {
			t.Fatalf("ParseIgnore(%q): malformed with fields name=%q reason=%q", text, name, ireason)
		}
		if iok && !imal {
			if name == "" || ireason == "" {
				t.Fatalf("ParseIgnore(%q): well-formed directive with empty field: name=%q reason=%q", text, name, ireason)
			}
			if strings.ContainsAny(name, " \t\n") {
				t.Fatalf("ParseIgnore(%q): analyzer name %q contains whitespace", text, name)
			}
		}

		// Parsing is deterministic: a second pass must agree exactly.
		r2, ok2, mal2 := lint.ParseHotpath(text)
		if r2 != reason || ok2 != ok || mal2 != malformed {
			t.Fatalf("ParseHotpath(%q): not deterministic", text)
		}
	})
}
