package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"iddqsyn/internal/lint/analysis"
)

// SharedState is the whole-program lockset analysis: it computes which
// struct fields are reachable from more than one goroutine and, for
// every access to such a field, the set of structural mutexes held at
// the access — reporting fields whose locksets are *inconsistent*:
//
//   - accessed both under a guard and bare (a lock that only sometimes
//     protects a field protects nothing);
//   - guarded by disjoint locksets on different paths (two locks that
//     never coincide order nothing);
//   - accessed both through sync/atomic and as a plain load/store (the
//     atomic half promises lock-free readers the plain half breaks).
//
// Goroutine reachability comes from the shared goroutine inventory
// (GoroutineInventory, also behind goleak): `go` statements seed
// goroutine contexts — one per spawn site, loop-spawned sites marked
// multi-instance because their goroutines race each other — and the
// contexts propagate through the package call graph, across package
// boundaries via SpawnedFact in the reverse (dependents-first) wave, so
// a serve-layer `go` statement marks the obs helper it ultimately calls.
// Locksets reuse lockorder's structural mutex identity ("pkg.Type.mu"),
// so the two analyzers name the same lock the same way.
//
// Consistently-unguarded shared fields are deliberately not reported:
// channel handoffs, WaitGroup joins and start-before-spawn ordering are
// real synchronization the analyzer cannot see, and flagging every such
// field would bury the findings that matter. The analyzer's finding is
// *inconsistency* — the cases where the code itself disagrees about
// what protects the field. Accesses before the first `go` statement of
// the spawning function are exempt (ordered by the spawn), as are
// constructor-local values and *Locked functions (guard held by the
// caller, mutexguard's convention).
//
// Findings are reported at the field declaration, one per field, so one
// reasoned //lint:ignore sharedstate <reason> documents the field's
// actual synchronization story. The dynamic cross-check (RaceCheck)
// re-attributes every GORACE report from the race soaks to these
// fields' access sites: a dynamic race with no static candidate means
// this model has a hole.
var SharedState = &analysis.Analyzer{
	Name: "sharedstate",
	Doc: "lockset analysis over goroutine-shared struct fields: flag fields accessed " +
		"both under and outside a guard, under disjoint locks, or mixing sync/atomic " +
		"with plain access — the data-race shapes the race detector needs luck to catch",
	FactTypes: []analysis.Fact{(*SpawnedFact)(nil), (*FieldAccessesFact)(nil)},
	Direction: analysis.Reverse,
	Run:       runSharedState,
}

// MainContext is the context id of the original (non-spawned) goroutine.
const MainContext = "main"

// SpawnedFact marks a function of an imported package as running on a
// spawned goroutine: a dependent package `go`-spawns it directly, calls
// it from a spawned goroutine, or calls it from inside a spawned
// function literal. Exported during the reverse wave, so the defining
// package (analyzed after all its dependents) sees every spawn.
type SpawnedFact struct {
	Sites []string // sorted spawn-site ids ("file.go:line")
	Multi bool     // some spawn site can mint multiple instances
}

// AFact marks SpawnedFact as a framework fact.
func (*SpawnedFact) AFact() {}

func (f *SpawnedFact) String() string {
	s := "spawned at " + strings.Join(f.Sites, ", ")
	if f.Multi {
		s += " (multi)"
	}
	return s
}

// AccessSite is one field access with its computed lockset and
// goroutine contexts. Sites cross package boundaries inside
// FieldAccessesFact and feed the dynamic race cross-check, so they
// carry positions as data rather than token.Pos.
type AccessSite struct {
	File      string // absolute path of the accessing file
	Line      int
	Func      string   // enclosing function name ("" for package init exprs)
	FuncStart int      // enclosing function body line range, for
	FuncEnd   int      // re-attributing dynamic race frames
	Contexts  []string // sorted goroutine contexts ("main" and/or spawn ids)
	Multi     bool     // some context is multi-instance
	Locks     []string // sorted structural mutex ids held at the access
	Atomic    bool     // access through a sync/atomic call
	Write     bool
}

// FieldAccessesFact accumulates the access sites a field collects in
// packages other than its own: dependents run first in the reverse
// wave and merge their sites in; the defining package folds the fact
// into its local sites before judging consistency.
type FieldAccessesFact struct {
	Sites []AccessSite
}

// AFact marks FieldAccessesFact as a framework fact.
func (*FieldAccessesFact) AFact() {}

func (f *FieldAccessesFact) String() string {
	return fmt.Sprintf("%d external access site(s)", len(f.Sites))
}

// SharedField is one field the analyzer flagged, with every access site
// it saw — the static candidate set the dynamic race cross-check
// attributes GORACE reports against. Fields suppressed by an ignore
// directive still appear here: an *explicitly ignored* finding is a
// legal attribution target, an unmodeled race is not.
type SharedField struct {
	Field string // structural id, e.g. "serve.job.phase"
	File  string // declaring file (absolute)
	Line  int    // declaration line
	Kinds []string
	Sites []AccessSite
}

// SharedStateResult is runSharedState's per-package return value,
// collected by RaceCheck through analysis.Options.OnResult.
type SharedStateResult struct {
	Pkg    string
	Fields []SharedField
}

// sharedFactMu serializes the read-merge-write fact updates: sibling
// dependents of one package analyze concurrently, and both may fold
// sites into the same field's fact.
var sharedFactMu sync.Mutex

// Finding kinds.
const (
	KindGuardGap  = "guarded+bare"
	KindDisjoint  = "disjoint-locks"
	KindAtomicMix = "atomic+plain"
)

func runSharedState(pass *analysis.Pass) (interface{}, error) {
	funcs := packageFuncs(pass)
	if len(funcs) == 0 {
		return &SharedStateResult{Pkg: pass.Pkg.Path}, nil
	}
	byObj := make(map[*types.Func]fnInfo, len(funcs))
	for _, fn := range funcs {
		byObj[fn.obj] = fn
	}
	impl := newImplIndex(pass.TypesPkg)

	// Scan every function body once: accesses, lock events, call edges,
	// go-literal subscopes.
	scans := make(map[*types.Func]*fnScan, len(funcs))
	for _, fn := range funcs {
		scans[fn.obj] = scanFunc(pass, fn, impl)
	}

	ctxs, multi := computeContexts(pass, funcs, scans)

	// Resolve every raw access into an AccessSite tagged with the
	// goroutine contexts its enclosing scope runs in.
	accesses := map[*types.Var][]AccessSite{}
	record := func(field *types.Var, site AccessSite) {
		accesses[field] = append(accesses[field], site)
	}
	for _, fn := range funcs {
		sc := scans[fn.obj]
		fnCtx := sortedCtx(ctxs[fn.obj])
		if len(fnCtx) == 0 {
			fnCtx = []string{MainContext}
		}
		fnMulti := anyMulti(ctxs[fn.obj], multi)
		for _, ra := range sc.accesses {
			if ra.spawnID == "" && sc.firstSpawn != token.NoPos && ra.pos < sc.firstSpawn &&
				len(fnCtx) == 1 && fnCtx[0] == MainContext && !fnMulti {
				// Happens-before exemption: an access in the spawning
				// function before its first `go` statement is ordered
				// before everything the spawned goroutines do — the spawn
				// itself is the synchronization.
				continue
			}
			site := ra.site(pass, fn)
			if ra.spawnID != "" {
				// Inside a `go func(){...}` literal: the body runs only on
				// that spawn's goroutine. The literal races itself when the
				// spawn sits in a loop or the spawner runs concurrently.
				site.Contexts = []string{ra.spawnID}
				site.Multi = multi[ra.spawnID] || len(fnCtx) > 1 || fnMulti
			} else {
				site.Contexts = fnCtx
				site.Multi = fnMulti
			}
			record(ra.field, site)
		}
	}

	// Fields declared elsewhere: fold this package's sites into the
	// field's fact for its defining package (which runs later in the
	// reverse wave) and take no further part.
	res := &SharedStateResult{Pkg: pass.Pkg.Path}
	fieldObjs := make([]*types.Var, 0, len(accesses))
	for field := range accesses {
		fieldObjs = append(fieldObjs, field)
	}
	sort.Slice(fieldObjs, func(i, j int) bool { return fieldObjs[i].Pos() < fieldObjs[j].Pos() })
	for _, field := range fieldObjs {
		if field.Pkg() != pass.TypesPkg {
			sharedFactMu.Lock()
			merged := new(FieldAccessesFact)
			pass.ImportObjectFact(field, merged)
			merged.Sites = append(merged.Sites, accesses[field]...)
			sortSites(merged.Sites)
			pass.ExportObjectFact(field, merged)
			sharedFactMu.Unlock()
			continue
		}
		sites := accesses[field]
		ext := new(FieldAccessesFact)
		if pass.ImportObjectFact(field, ext) {
			sites = append(sites, ext.Sites...)
		}
		sortSites(sites)
		kinds := judgeField(sites)
		if len(kinds) == 0 {
			continue
		}
		declPos := pass.Fset.Position(field.Pos())
		id := fieldID(pass, field)
		res.Fields = append(res.Fields, SharedField{
			Field: id, File: declPos.Filename, Line: declPos.Line,
			Kinds: kinds, Sites: sites,
		})
		pass.Reportf(field.Pos(), "%s", fieldMessage(id, kinds, sites))
	}
	return res, nil
}

// judgeField decides whether a field's access sites are inconsistent.
// Preconditions for any finding: the field is reachable from more than
// one goroutine (≥2 distinct contexts, or a multi-instance context) and
// at least one access writes.
func judgeField(sites []AccessSite) []string {
	ctxSet := map[string]bool{}
	sharedByMulti := false
	hasWrite := false
	var atomics, bare, guarded []AccessSite
	for _, s := range sites {
		for _, c := range s.Contexts {
			ctxSet[c] = true
		}
		sharedByMulti = sharedByMulti || s.Multi
		hasWrite = hasWrite || s.Write
		switch {
		case s.Atomic:
			atomics = append(atomics, s)
		case len(s.Locks) == 0:
			bare = append(bare, s)
		default:
			guarded = append(guarded, s)
		}
	}
	if (!sharedByMulti && len(ctxSet) < 2) || !hasWrite {
		return nil
	}
	var kinds []string
	if len(guarded) > 0 && len(bare) > 0 {
		kinds = append(kinds, KindGuardGap)
	}
	if len(bare) == 0 && len(atomics) == 0 && len(guarded) > 1 && lockIntersection(guarded) == 0 {
		kinds = append(kinds, KindDisjoint)
	}
	if len(atomics) > 0 && len(bare)+len(guarded) > 0 {
		kinds = append(kinds, KindAtomicMix)
	}
	return kinds
}

// lockIntersection counts the mutexes held at *every* guarded site.
func lockIntersection(guarded []AccessSite) int {
	common := map[string]int{}
	for _, s := range guarded {
		for _, l := range s.Locks {
			common[l]++
		}
	}
	n := 0
	for _, c := range common {
		if c == len(guarded) {
			n++
		}
	}
	return n
}

// fieldMessage renders the one-per-field diagnostic, naming a concrete
// conflicting pair per kind so the report is actionable without rerun.
func fieldMessage(id string, kinds []string, sites []AccessSite) string {
	var b strings.Builder
	fmt.Fprintf(&b, "field %s is shared across goroutines with inconsistent locksets: ", id)
	var parts []string
	for _, k := range kinds {
		switch k {
		case KindGuardGap:
			g := firstWhere(sites, func(s AccessSite) bool { return !s.Atomic && len(s.Locks) > 0 })
			u := firstWhere(sites, func(s AccessSite) bool { return !s.Atomic && len(s.Locks) == 0 })
			parts = append(parts, fmt.Sprintf("guarded by %s at %s but bare at %s",
				strings.Join(g.Locks, "+"), siteRef(g), siteRef(u)))
		case KindDisjoint:
			a := sites[0]
			var c AccessSite
			for _, s := range sites[1:] {
				if len(s.Locks) > 0 && disjointLocks(a.Locks, s.Locks) {
					c = s
					break
				}
			}
			parts = append(parts, fmt.Sprintf("guarded by disjoint locks %s at %s vs %s at %s",
				strings.Join(a.Locks, "+"), siteRef(a), strings.Join(c.Locks, "+"), siteRef(c)))
		case KindAtomicMix:
			at := firstWhere(sites, func(s AccessSite) bool { return s.Atomic })
			pl := firstWhere(sites, func(s AccessSite) bool { return !s.Atomic })
			parts = append(parts, fmt.Sprintf("atomic at %s but plain at %s",
				siteRef(at), siteRef(pl)))
		}
	}
	b.WriteString(strings.Join(parts, "; "))
	b.WriteString(" — every cross-goroutine access needs one consistent discipline, " +
		"or justify with //lint:ignore sharedstate <reason>")
	return b.String()
}

func firstWhere(sites []AccessSite, ok func(AccessSite) bool) AccessSite {
	for _, s := range sites {
		if ok(s) {
			return s
		}
	}
	return AccessSite{}
}

func disjointLocks(a, b []string) bool {
	set := map[string]bool{}
	for _, l := range a {
		set[l] = true
	}
	for _, l := range b {
		if set[l] {
			return false
		}
	}
	return true
}

func siteRef(s AccessSite) string {
	ref := trimPath(s.File) + ":" + fmt.Sprint(s.Line)
	if s.Func != "" {
		ref += " (" + s.Func + ")"
	}
	return ref
}

func trimPath(p string) string {
	if i := strings.LastIndexAny(p, `/\`); i >= 0 {
		return p[i+1:]
	}
	return p
}

// fieldID names a field structurally, matching lockorder's mutex ids:
// "pkg.Type.field".
func fieldID(pass *analysis.Pass, field *types.Var) string {
	base := pkgBase(pass.Pkg.Path)
	// Find the named type owning the field, if any, by scanning the
	// package scope: struct fields do not link back to their parent.
	scope := pass.TypesPkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return base + "." + tn.Name() + "." + field.Name()
			}
		}
	}
	return base + "." + field.Name()
}

func sortSites(sites []AccessSite) {
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].File != sites[j].File {
			return sites[i].File < sites[j].File
		}
		return sites[i].Line < sites[j].Line
	})
}

func sortedCtx(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func anyMulti(set map[string]bool, multi map[string]bool) bool {
	for c := range set {
		if multi[c] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Per-function body scan.

// rawAccess is one field access before context resolution.
type rawAccess struct {
	field   *types.Var
	pos     token.Pos
	locks   []string // sorted snapshot of the held set
	atomic  bool
	write   bool
	spawnID string // non-empty: inside the `go` literal spawned at this site
}

func (ra rawAccess) site(pass *analysis.Pass, fn fnInfo) AccessSite {
	pos := pass.Fset.Position(ra.pos)
	start := pass.Fset.Position(fn.decl.Pos())
	end := pass.Fset.Position(fn.decl.End())
	return AccessSite{
		File: pos.Filename, Line: pos.Line,
		Func: fn.obj.Name(), FuncStart: start.Line, FuncEnd: end.Line,
		Locks: ra.locks, Atomic: ra.atomic, Write: ra.write,
	}
}

// fnScan is one function's scan result.
type fnScan struct {
	accesses []rawAccess
	// normCalls are in-package call/reference edges on the function's own
	// goroutine (go-literal bodies excluded — their edges carry the
	// literal's spawn context instead).
	normCalls []*types.Func
	// extCalls are the same edges to functions of imported packages.
	extCalls []*types.Func
	// litCalls maps a spawn id to the calls made inside that literal.
	litCalls map[string][]*types.Func
	litExt   map[string][]*types.Func
	// spawns are the `go` statements in the body (literal and named).
	spawns []SpawnSite
	// firstSpawn is the position of the first `go` statement, or NoPos.
	// Accesses before it are ordered before everything the goroutine
	// does (the spawn is a happens-before edge), so they are exempt.
	firstSpawn token.Pos
}

// scanState carries the walk's mutable state.
type scanState struct {
	pass    *analysis.Pass
	fn      fnInfo
	impl    *implIndex
	scan    *fnScan
	writes  map[ast.Node]bool // selector nodes in write position
	locked  bool              // function inherits its guard (*Locked)
	spawnID string            // current go-literal context ("" = main body)
	held    []string          // structural mutex ids currently held
}

// scanFunc walks one function body in source order, tracking the held
// lockset, and collects accesses, call edges and spawns.
func scanFunc(pass *analysis.Pass, fn fnInfo, impl *implIndex) *fnScan {
	sc := &fnScan{litCalls: map[string][]*types.Func{}, litExt: map[string][]*types.Func{}}
	st := &scanState{
		pass: pass, fn: fn, impl: impl, scan: sc,
		writes: map[ast.Node]bool{},
		locked: strings.HasSuffix(fn.obj.Name(), "Locked"),
	}
	st.prepass(fn.decl.Body)
	st.walk(fn.decl.Body)
	return sc
}

// prepass classifies expression positions the main walk cannot judge
// from a single node: write targets.
func (st *scanState) prepass(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range nn.Lhs {
				st.markWrite(lhs)
			}
		case *ast.IncDecStmt:
			st.markWrite(nn.X)
		case *ast.UnaryExpr:
			if nn.Op == token.AND {
				// Address taken: someone may write through the pointer.
				// Atomic calls are recognized separately and recorded as
				// atomic accesses instead.
				st.markWrite(nn.X)
			}
		}
		return true
	})
}

func (st *scanState) markWrite(e ast.Expr) {
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		// *s.p = v writes through the pointer, reads the field itself.
		_ = star
		return
	}
	st.writes[e] = true
}

// walk is the main source-order traversal: a statement walker that
// tracks the held lockset with branch sensitivity where it matters. A
// purely linear scan would treat the ubiquitous early-exit idiom
//
//	mu.Lock()
//	if bad {
//		mu.Unlock()
//		return err
//	}
//	... // still under mu
//
// as unlocked after the if: the held set is therefore snapshotted
// around branches that cannot fall through (return/break/continue/
// panic) — their lock effects are local to the abandoned path. Switch
// and select cases are alternatives, not a sequence, so each is walked
// against the entry lockset.
func (st *scanState) walk(body *ast.BlockStmt) {
	for _, s := range body.List {
		st.stmt(s)
	}
}

func (st *scanState) stmt(s ast.Stmt) {
	switch nn := s.(type) {
	case *ast.BlockStmt:
		st.walk(nn)
	case *ast.LabeledStmt:
		st.stmt(nn.Stmt)
	case *ast.IfStmt:
		if nn.Init != nil {
			st.stmt(nn.Init)
		}
		st.walkExprs(nn.Cond)
		st.branch(nn.Body)
		if nn.Else != nil {
			if blk, ok := nn.Else.(*ast.BlockStmt); ok {
				st.branch(blk)
			} else {
				st.stmt(nn.Else) // else-if chain
			}
		}
	case *ast.ForStmt:
		if nn.Init != nil {
			st.stmt(nn.Init)
		}
		if nn.Cond != nil {
			st.walkExprs(nn.Cond)
		}
		st.walk(nn.Body)
		if nn.Post != nil {
			st.stmt(nn.Post)
		}
	case *ast.RangeStmt:
		st.walkExprs(nn.X)
		if nn.Key != nil {
			st.walkExprs(nn.Key)
		}
		if nn.Value != nil {
			st.walkExprs(nn.Value)
		}
		st.walk(nn.Body)
	case *ast.SwitchStmt:
		if nn.Init != nil {
			st.stmt(nn.Init)
		}
		if nn.Tag != nil {
			st.walkExprs(nn.Tag)
		}
		for _, c := range nn.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				st.walkExprs(e)
			}
			st.alt(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		if nn.Init != nil {
			st.stmt(nn.Init)
		}
		st.stmt(nn.Assign)
		for _, c := range nn.Body.List {
			cc := c.(*ast.CaseClause)
			st.alt(cc.Body)
		}
	case *ast.SelectStmt:
		for _, c := range nn.Body.List {
			cc := c.(*ast.CommClause)
			snap := st.snapshot()
			if cc.Comm != nil {
				st.stmt(cc.Comm)
			}
			for _, s2 := range cc.Body {
				st.stmt(s2)
			}
			st.restore(snap)
		}
	case *ast.DeferStmt:
		// A deferred unlock holds the mutex to function end; walk the
		// deferred call for accesses but ignore its unlocks.
		if recv, op, ok := mutexOp(st.pass, nn.Call); ok {
			if op == "lock" {
				if id := mutexID(st.pass, recv); id != "" {
					st.held = append(st.held, id)
				}
			}
			st.access(recv, false)
			return
		}
		st.walkExprs(nn.Call)
	case *ast.GoStmt:
		st.goStmt(nn)
	default:
		if s != nil {
			st.walkExprs(s)
		}
	}
}

// branch walks one if-arm; when the arm cannot fall through, its
// lockset effects are discarded for the code after the if.
func (st *scanState) branch(body *ast.BlockStmt) {
	snap := st.snapshot()
	st.walk(body)
	if terminates(body.List) {
		st.restore(snap)
	}
}

// alt walks a switch/select alternative against the entry lockset.
func (st *scanState) alt(body []ast.Stmt) {
	snap := st.snapshot()
	for _, s := range body {
		st.stmt(s)
	}
	st.restore(snap)
}

func (st *scanState) snapshot() []string { return append([]string(nil), st.held...) }

func (st *scanState) restore(snap []string) { st.held = snap }

// terminates reports whether a statement list cannot fall through: it
// ends in a return, an unconditional transfer, a panic/exit call, or an
// if whose arms both terminate.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(last.List)
	case *ast.IfStmt:
		blk, ok := last.Else.(*ast.BlockStmt)
		return ok && terminates(last.Body.List) && terminates(blk.List)
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				switch fun.Sel.Name {
				case "Exit", "Goexit", "Fatal", "Fatalf":
					return true
				}
			}
		}
	}
	return false
}

// walkExprs walks a statement or expression subtree that contains no
// block structure of its own — except function literals, whose bodies
// are walked as nested scopes whose lockset effects stay local (a
// callback defined under the lock usually runs under it, e.g. a
// sort.Slice comparator, but its locks must not leak into the linear
// scan of the enclosing body).
func (st *scanState) walkExprs(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			snap := st.snapshot()
			st.walk(nn.Body)
			st.restore(snap)
			return false
		case *ast.CallExpr:
			return st.call(nn)
		case *ast.SelectorExpr:
			st.access(nn, true)
			return false
		}
		return true
	})
}

// goStmt records the spawn and, for literals, walks the body as a fresh
// goroutine scope: empty lockset, context = this spawn site.
func (st *scanState) goStmt(g *ast.GoStmt) {
	site := SpawnSite{Go: g, Enclosing: st.fn.obj, InLoop: inLoop(st.fn.decl.Body, g)}
	if st.scan.firstSpawn == token.NoPos {
		st.scan.firstSpawn = g.Pos()
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		site.Lit = fun
		st.scan.spawns = append(st.scan.spawns, site)
		id := site.ID(st.pass.Fset)
		inner := &scanState{
			pass: st.pass, fn: st.fn, impl: st.impl, scan: st.scan,
			writes: st.writes,
			locked: st.locked, spawnID: id,
		}
		inner.prepass(fun.Body)
		inner.walk(fun.Body)
	default:
		site.Callee = calleeFuncOf(st.pass, g.Call)
		st.scan.spawns = append(st.scan.spawns, site)
	}
	// Arguments are evaluated on the spawning goroutine.
	for _, arg := range g.Call.Args {
		st.walkExprs(arg)
	}
}

// call handles one call expression: mutex ops mutate the held set,
// sync/atomic calls become atomic accesses, everything else becomes a
// call edge. Returns whether Inspect should descend into children.
func (st *scanState) call(call *ast.CallExpr) bool {
	if recv, op, ok := mutexOp(st.pass, call); ok {
		id := mutexID(st.pass, recv)
		if id != "" {
			switch op {
			case "lock":
				st.held = append(st.held, id)
			case "unlock":
				for i := len(st.held) - 1; i >= 0; i-- {
					if st.held[i] == id {
						st.held = append(st.held[:i], st.held[i+1:]...)
						break
					}
				}
			}
		}
		// The receiver chain (s.mu) is itself a selector; sync-typed
		// fields are exempt, but the path to them may read other fields.
		st.access(recv, false)
		return false
	}
	if st.atomicCall(call) {
		return false
	}
	if callee := calleeFuncOf(st.pass, call); callee != nil {
		if isInterfaceMethod(callee) {
			for _, m := range st.impl.implementations(callee) {
				st.edge(m)
			}
		} else {
			st.edge(callee)
		}
	}
	// Descend: arguments may access fields, nested calls, etc.
	for _, arg := range call.Args {
		st.walkExprs(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Method receiver expression: s.jobs[id].phase() reads fields on
		// the way to the method.
		st.walkExprs(sel.X)
	}
	return false
}

// edge records a call/reference edge in the current scope.
func (st *scanState) edge(callee *types.Func) {
	if callee == nil || callee.Pkg() == nil {
		return
	}
	if callee.Pkg() == st.pass.TypesPkg {
		if st.spawnID != "" {
			st.scan.litCalls[st.spawnID] = append(st.scan.litCalls[st.spawnID], callee)
		} else {
			st.scan.normCalls = append(st.scan.normCalls, callee)
		}
		return
	}
	// Only in-module packages matter; stdlib callees are opaque.
	if !strings.HasPrefix(callee.Pkg().Path(), modulePathPrefix(st.pass)) {
		return
	}
	if st.spawnID != "" {
		st.scan.litExt[st.spawnID] = append(st.scan.litExt[st.spawnID], callee)
	} else {
		st.scan.extCalls = append(st.scan.extCalls, callee)
	}
}

// modulePathPrefix derives the module prefix from the package path
// ("iddqsyn/internal/serve" → "iddqsyn/"). Testdata-mode packages have
// single-element paths and get an empty prefix (everything in-module).
func modulePathPrefix(pass *analysis.Pass) string {
	path := pass.Pkg.Path
	if i := strings.Index(path, "/"); i >= 0 {
		return path[:i+1]
	}
	return ""
}

// atomicCall recognizes sync/atomic calls over a field address and
// records them as atomic accesses. Returns true when handled.
func (st *scanState) atomicCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := st.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	name := fn.Name()
	write := strings.HasPrefix(name, "Store") || strings.HasPrefix(name, "Add") ||
		strings.HasPrefix(name, "Swap") || strings.HasPrefix(name, "CompareAndSwap") ||
		strings.HasPrefix(name, "Or") || strings.HasPrefix(name, "And")
	for _, arg := range call.Args {
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
			if target, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
				st.recordAccess(target, true, write)
				st.walkExprs(target.X) // the path to the field still reads
				continue
			}
		}
		st.walkExprs(arg)
	}
	return true
}

// access records a selector chain: the final selector plus every field
// read on the path to it.
func (st *scanState) access(e ast.Expr, descend bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		if descend {
			if inner := ast.Unparen(e); inner != e {
				st.walkExprs(inner)
			}
		}
		return
	}
	st.recordAccess(sel, false, st.writes[sel])
	st.walkExprs(sel.X)
}

// recordAccess appends one raw access if the selector resolves to a
// non-exempt struct field.
func (st *scanState) recordAccess(sel *ast.SelectorExpr, atomic, write bool) {
	field, ok := st.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !field.IsField() || field.Name() == "_" || field.Pkg() == nil {
		return
	}
	if st.locked {
		return // *Locked: the caller holds the guard (mutexguard's contract)
	}
	if syncType(field.Type()) {
		return // mutexes, wait groups, atomic.Int64 & co guard themselves
	}
	if st.constructorLocal(sel.X) {
		return // freshly built value, not shared yet
	}
	if st.valueCopyBase(sel.X) {
		return // field of a by-value parameter/receiver: frame-local copy
	}
	locks := append([]string(nil), st.held...)
	sort.Strings(locks)
	st.scan.accesses = append(st.scan.accesses, rawAccess{
		field: field, pos: sel.Sel.Pos(), locks: locks,
		atomic: atomic, write: write, spawnID: st.spawnID,
	})
}

// constructorLocal reports whether the access base bottoms out in a
// local variable that demonstrably holds a freshly constructed value: a
// composite literal, new(), or a New*/make* constructor call assigned
// inside this function body. A local that aliases shared state (a range
// element, a map lookup, a plain parameter copy) does not count.
func (st *scanState) constructorLocal(base ast.Expr) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := st.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return false
	}
	body := st.fn.decl.Body
	if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
		return false
	}
	fresh := false
	ast.Inspect(body, func(n ast.Node) bool {
		if fresh {
			return false
		}
		switch nn := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range nn.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || st.pass.TypesInfo.Defs[lid] != obj {
					continue
				}
				if i < len(nn.Rhs) && freshExpr(st.pass, nn.Rhs[i]) {
					fresh = true
				} else if len(nn.Rhs) == 1 && freshExpr(st.pass, nn.Rhs[0]) {
					fresh = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range nn.Names {
				if st.pass.TypesInfo.Defs[name] != obj {
					continue
				}
				if i < len(nn.Values) && freshExpr(st.pass, nn.Values[i]) {
					fresh = true
				}
			}
		}
		return true
	})
	return fresh
}

// valueCopyBase reports whether the access base is a by-value
// parameter or receiver of struct type: its fields live in this frame's
// copy, so mutating them (the TracerConfig.withDefaults pattern —
// value receiver, fill in defaults, return the copy) shares nothing.
func (st *scanState) valueCopyBase(base ast.Expr) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := st.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return false
	}
	decl := st.fn.decl
	if obj.Pos() < decl.Pos() || obj.Pos() >= decl.Body.Pos() {
		return false // not declared in the signature
	}
	_, isStruct := obj.Type().Underlying().(*types.Struct)
	return isStruct
}

// freshExpr reports whether the expression constructs a new value.
func freshExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch nn := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if nn.Op == token.AND {
			_, lit := ast.Unparen(nn.X).(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new" || b.Name() == "make"
			}
			if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
				return strings.HasPrefix(fn.Name(), "New") || strings.HasPrefix(fn.Name(), "new")
			}
		}
		if sel, ok := ast.Unparen(nn.Fun).(*ast.SelectorExpr); ok {
			return strings.HasPrefix(sel.Sel.Name, "New") || strings.HasPrefix(sel.Sel.Name, "new")
		}
	}
	return false
}

// syncType reports whether the (dereferenced) type is declared in sync
// or sync/atomic — fields of those types synchronize themselves.
func syncType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// inLoop reports whether pos-bearing node g sits inside a for/range
// statement of body.
func inLoop(body *ast.BlockStmt, g *ast.GoStmt) bool {
	in := false
	var walk func(n ast.Node, loop bool)
	walk = func(n ast.Node, loop bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if in {
				return false
			}
			switch nn := n.(type) {
			case *ast.ForStmt:
				walk(nn.Body, true)
				return false
			case *ast.RangeStmt:
				walk(nn.Body, true)
				return false
			case *ast.GoStmt:
				if nn == g && loop {
					in = true
				}
			}
			return !in
		})
	}
	walk(body, false)
	return in
}

// ---------------------------------------------------------------------
// Goroutine-context propagation.

// computeContexts assigns every package function the set of goroutine
// contexts it may run in: MainContext for functions callable from the
// original goroutine (exported, main/init, or normally referenced), and
// a spawn-site id per `go` statement that reaches it. The sets
// propagate through normal call edges to a fixpoint; cross-package
// spawns arrive via SpawnedFact (imported, from dependents analyzed
// earlier in the reverse wave) and leave via the same fact for
// imported callees.
func computeContexts(pass *analysis.Pass, funcs []fnInfo, scans map[*types.Func]*fnScan) (map[*types.Func]map[string]bool, map[string]bool) {
	ctx := map[*types.Func]map[string]bool{}
	multi := map[string]bool{}
	addCtx := func(fn *types.Func, c string) bool {
		if ctx[fn] == nil {
			ctx[fn] = map[string]bool{}
		}
		if ctx[fn][c] {
			return false
		}
		ctx[fn][c] = true
		return true
	}

	// Which in-package functions are referenced at all, and how.
	referenced := map[*types.Func]bool{}
	for _, sc := range scans {
		for _, callee := range sc.normCalls {
			referenced[callee] = true
		}
		for _, calls := range sc.litCalls {
			for _, callee := range calls {
				referenced[callee] = true
			}
		}
		for _, sp := range sc.spawns {
			if sp.Callee != nil {
				referenced[sp.Callee] = true
			}
		}
	}

	// Seeds.
	for _, fn := range funcs {
		name := fn.obj.Name()
		if ast.IsExported(name) || name == "main" || name == "init" || !referenced[fn.obj] {
			addCtx(fn.obj, MainContext)
		}
		fact := new(SpawnedFact)
		if pass.ImportObjectFact(fn.obj, fact) {
			for _, id := range fact.Sites {
				addCtx(fn.obj, id)
				if fact.Multi {
					multi[id] = true
				}
			}
		}
	}
	for _, fn := range funcs {
		sc := scans[fn.obj]
		for _, sp := range sc.spawns {
			if sp.Callee == nil || sp.Callee.Pkg() != pass.TypesPkg {
				continue
			}
			id := sp.ID(pass.Fset)
			addCtx(sp.Callee, id)
			if sp.InLoop {
				multi[id] = true
			}
		}
		for id := range sc.litCalls {
			// Calls inside a go-literal run in that literal's context.
			for _, callee := range sc.litCalls[id] {
				addCtx(callee, id)
			}
		}
		for _, sp := range sc.spawns {
			if sp.Lit != nil && sp.InLoop {
				multi[sp.ID(pass.Fset)] = true
			}
		}
	}

	// Fixpoint over normal call edges: a callee runs wherever its
	// callers run.
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			from := ctx[fn.obj]
			if len(from) == 0 {
				continue
			}
			for _, callee := range scans[fn.obj].normCalls {
				if callee.Pkg() != pass.TypesPkg {
					continue
				}
				for c := range from {
					if addCtx(callee, c) {
						changed = true
					}
				}
			}
		}
	}

	// Export spawn facts for imported callees: direct spawns, calls from
	// go-literals, and normal calls made while running in a goroutine
	// context. The callee's package runs after this one in the reverse
	// wave and folds the fact into its own seeds.
	export := map[*types.Func]*SpawnedFact{}
	note := func(callee *types.Func, ids []string, m bool) {
		if callee == nil || callee.Pkg() == nil || callee.Pkg() == pass.TypesPkg {
			return
		}
		f := export[callee]
		if f == nil {
			f = &SpawnedFact{}
			export[callee] = f
		}
		f.Sites = append(f.Sites, ids...)
		f.Multi = f.Multi || m
	}
	for _, fn := range funcs {
		sc := scans[fn.obj]
		for _, sp := range sc.spawns {
			if sp.Callee != nil && sp.Callee.Pkg() != pass.TypesPkg {
				id := sp.ID(pass.Fset)
				note(sp.Callee, []string{id}, sp.InLoop || multi[id])
			}
		}
		for id, callees := range sc.litExt {
			for _, callee := range callees {
				note(callee, []string{id}, multi[id])
			}
		}
		goCtx := make([]string, 0, len(ctx[fn.obj]))
		m := false
		for c := range ctx[fn.obj] {
			if c != MainContext {
				goCtx = append(goCtx, c)
				m = m || multi[c]
			}
		}
		if len(goCtx) > 0 {
			for _, callee := range sc.extCalls {
				note(callee, goCtx, m)
			}
		}
	}
	for callee, fact := range export {
		sharedFactMu.Lock()
		merged := new(SpawnedFact)
		pass.ImportObjectFact(callee, merged)
		merged.Sites = dedupSorted(append(merged.Sites, fact.Sites...))
		merged.Multi = merged.Multi || fact.Multi
		pass.ExportObjectFact(callee, merged)
		sharedFactMu.Unlock()
	}
	return ctx, multi
}

func dedupSorted(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
