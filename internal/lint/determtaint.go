package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"iddqsyn/internal/lint/analysis"
)

// DetermTaint statically enforces the determinism contract that
// TestChaosSoak checks dynamically: seeded (μ, λ, χ)-runs must be
// bit-identical across resume, observation and chaos injection, so no
// nondeterministic value may flow into the seeded optimizer path or into
// checkpoint/snapshot bytes.
//
// Taint sources:
//
//   - the wall clock and process identity: time.Now, time.Since,
//     os.Getpid;
//   - the process-global math/rand stream (top-level rand functions —
//     norandglobal flags the call site itself; determtaint additionally
//     tracks the value as it flows through locals, returns and other
//     packages);
//   - map iteration order: a `for range` over a map that appends to an
//     outer slice (unless that slice is subsequently sorted in the same
//     function) or writes loop-derived data through a serializer;
//   - select races: a select with two or more ready-able communication
//     cases (receives on <-ctx.Done()-style cancellation channels are
//     exempt) resolves nondeterministically.
//
// Taint propagates through local assignments, function results and
// stores into non-local memory. A function whose results (or writes
// through parameters/receivers/package variables) derive from a source
// carries a TaintedFact, exported through the framework's fact store, so
// a nondeterministic helper defined in one package is caught when a
// seeded-path function in another package calls it — the analyzers run in
// dependency order, so callee facts always precede caller checks.
//
// The seeded optimizer path ("determinism scope") is every function in
// the optimizer packages (evolution, anneal, hillclimb, estimate,
// partition — package base names, so golden testdata can reproduce the
// layout) plus any function anywhere that takes a *math/rand.Rand
// parameter: accepting the injected seeded stream is the API signal that
// the function participates in the counted-stream contract.
//
// Observability is exempt by design: values consumed by (or produced by)
// the obs package — metrics, spans, structured logs — never feed
// optimization decisions or checkpoint bytes, and the chaos soak verifies
// that observation does not perturb results. Calls into an "obs"
// package are therefore neither taint sources nor taint sinks.
var DetermTaint = &analysis.Analyzer{
	Name: "determtaint",
	Doc: "forbid nondeterministic values (wall clock, process identity, global rand, " +
		"map iteration order, select races) from flowing into the seeded optimizer " +
		"path or checkpoint bytes; the statically checked form of the bit-identical-resume invariant",
	FactTypes: []analysis.Fact{(*TaintedFact)(nil)},
	Run:       runDetermTaint,
}

// TaintedFact marks a function whose results (or writes through escaping
// memory) derive from a nondeterminism source.
type TaintedFact struct {
	Source string // e.g. "time.Now", "map iteration order"
	At     string // file:line of the root source
}

// AFact marks TaintedFact as a framework fact.
func (*TaintedFact) AFact() {}

func (f *TaintedFact) String() string { return fmt.Sprintf("tainted by %s at %s", f.Source, f.At) }

// determScopePackages are the package base names forming the seeded
// optimizer path.
var determScopePackages = map[string]bool{
	"evolution": true, "anneal": true, "hillclimb": true,
	"estimate": true, "partition": true,
}

// exemptPackages are observation-only package base names: calls into them
// are neither sources nor sinks (see the analyzer doc).
var exemptPackages = map[string]bool{"obs": true}

// wallClockFuncs are the per-package nondeterministic value sources.
var wallClockFuncs = map[string]map[string]string{
	"time": {"Now": "time.Now", "Since": "time.Since"},
	"os":   {"Getpid": "os.Getpid"},
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func runDetermTaint(pass *analysis.Pass) (interface{}, error) {
	t := &taintChecker{pass: pass, inScopePkg: determScopePackages[pkgBase(pass.Pkg.Path)]}

	funcs := t.packageFuncs()
	// Fixpoint over the package's own call graph: keep re-deriving
	// function taint until no new fact appears, so helper chains within
	// the package resolve regardless of declaration order. Facts from
	// dependency packages are already in the store (dependency-order
	// scheduling), so cross-package chains need no iteration here.
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if t.deriveFact(fn) {
				changed = true
			}
		}
	}
	// Reporting pass: only functions on the seeded optimizer path.
	for _, fn := range funcs {
		if t.inScope(fn) {
			t.reportFunc(fn)
		}
	}
	return nil, nil
}

type taintChecker struct {
	pass       *analysis.Pass
	inScopePkg bool
}

// fnInfo pairs a declaration with its object.
type fnInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func (t *taintChecker) packageFuncs() []fnInfo {
	var out []fnInfo
	for _, f := range t.pass.Pkg.CheckedFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := t.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			out = append(out, fnInfo{fd, obj})
		}
	}
	return out
}

// inScope reports whether fn participates in the determinism contract.
func (t *taintChecker) inScope(fn fnInfo) bool {
	return t.inScopePkg || takesRand(fn.obj)
}

// takesRand reports whether the function takes a *math/rand.Rand
// parameter — the injected-seeded-stream API signal.
func takesRand(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		ptr, ok := sig.Params().At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok || named.Obj().Name() != "Rand" {
			continue
		}
		if pkg := named.Obj().Pkg(); pkg != nil &&
			(pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
			return true
		}
	}
	return false
}

// taintState is the per-function local analysis result.
type taintState struct {
	t *taintChecker
	// vars maps tainted local objects to their root source.
	vars map[types.Object]*TaintedFact
	// cleansed records objects whose map-order taint a sort call removed.
	// A cleansed object never re-acquires map-order taint: without this,
	// a var deriving map-order taint from another still-tainted var
	// (`out := make(..., len(ids))`) and later sorted would be re-tainted
	// and re-cleansed every round, and the fixpoint would never converge.
	cleansed map[types.Object]bool
}

const mapOrderSource = "map iteration order"

// setVar taints obj with fact, reporting whether the state changed.
// Taint is set-once, and cleansed objects refuse the cleansable
// (map-order) source, which keeps the fixpoint monotone.
func (st *taintState) setVar(obj types.Object, fact *TaintedFact) bool {
	if obj == nil || st.vars[obj] != nil {
		return false
	}
	if st.cleansed[obj] && fact.Source == mapOrderSource {
		return false
	}
	st.vars[obj] = fact
	return true
}

// analyzeLocals runs the local taint propagation to a fixpoint: local
// assignments carry taint forward; sort calls cleanse map-order taint;
// map-range appends introduce it.
func (t *taintChecker) analyzeLocals(fn fnInfo) *taintState {
	st := &taintState{
		t:        t,
		vars:     map[types.Object]*TaintedFact{},
		cleansed: map[types.Object]bool{},
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.AssignStmt:
				if len(nn.Rhs) == 1 && len(nn.Lhs) >= 1 {
					if fact := st.exprTaint(nn.Rhs[0]); fact != nil {
						for _, lhs := range nn.Lhs {
							if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
								if st.setVar(st.objOf(id), fact) {
									changed = true
								}
							}
						}
					}
				} else {
					for i := range nn.Rhs {
						if i >= len(nn.Lhs) {
							break
						}
						if fact := st.exprTaint(nn.Rhs[i]); fact != nil {
							if id, ok := nn.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
								if st.setVar(st.objOf(id), fact) {
									changed = true
								}
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range nn.Values {
					if i >= len(nn.Names) {
						break
					}
					if fact := st.exprTaint(v); fact != nil {
						if st.setVar(t.pass.TypesInfo.Defs[nn.Names[i]], fact) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if st.isMapRange(nn) {
					if tgt := st.unsortedAppendTarget(fn.decl.Body, nn); tgt != nil {
						fact := &TaintedFact{
							Source: mapOrderSource,
							At:     st.t.posOf(nn.Pos()),
						}
						if st.setVar(tgt, fact) {
							changed = true
						}
					}
				}
			case *ast.CallExpr:
				if obj := st.sortTarget(nn); obj != nil && st.vars[obj] != nil &&
					st.vars[obj].Source == mapOrderSource {
					delete(st.vars, obj)
					st.cleansed[obj] = true
					// Not flagged as "changed": the cleansed set makes
					// re-tainting impossible, so deletion converges.
				}
			}
			return true
		})
	}
	return st
}

func (st *taintState) objOf(id *ast.Ident) types.Object {
	if obj := st.t.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return st.t.pass.TypesInfo.Uses[id]
}

// exprTaint returns the root fact when expr's value derives from a
// nondeterminism source: a source call, a call to a function with a
// TaintedFact, or a tainted local. Arguments of exempt (observation)
// calls are not inspected — their consumption is allowed — and the value
// an exempt call returns is considered clean.
func (st *taintState) exprTaint(expr ast.Expr) *TaintedFact {
	if expr == nil {
		return nil
	}
	var found *TaintedFact
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch nn := n.(type) {
		case *ast.CallExpr:
			callee := st.t.calleeOf(nn)
			if st.t.isExempt(callee) {
				return false // observation sink/source: prune
			}
			if fact := st.t.sourceFact(callee, nn.Pos()); fact != nil {
				found = fact
				return false
			}
			if fact := st.t.calleeFact(callee); fact != nil {
				found = fact
				return false
			}
		case *ast.Ident:
			if obj := st.objOf(nn); obj != nil {
				if fact := st.vars[obj]; fact != nil {
					found = fact
					return false
				}
			}
		case *ast.FuncLit:
			return false // separate activation; handled when called
		}
		return true
	})
	return found
}

// isMapRange reports whether the range statement iterates a map.
func (st *taintState) isMapRange(r *ast.RangeStmt) bool {
	tv, ok := st.t.pass.TypesInfo.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	typ := tv.Type
	if ptr, ok := typ.Underlying().(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	_, isMap := typ.Underlying().(*types.Map)
	return isMap
}

// unsortedAppendTarget finds `x = append(x, ...)` inside a map-range body
// where x is declared outside the loop and never passed to sort.* or
// slices.Sort* later in the enclosing function; the append bakes the map's
// iteration order into x. Returns x's object, or nil.
func (st *taintState) unsortedAppendTarget(funcBody *ast.BlockStmt, r *ast.RangeStmt) types.Object {
	var target types.Object
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if target != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			return true
		}
		obj := st.objOf(id)
		if obj == nil {
			return true
		}
		// Declared inside the loop body? Then the order never escapes the
		// iteration and is harmless.
		if obj.Pos() >= r.Body.Pos() && obj.Pos() <= r.Body.End() {
			return true
		}
		target = obj
		return false
	})
	if target == nil {
		return nil
	}
	// A subsequent sort re-establishes a canonical order.
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < r.End() {
			return true
		}
		if obj := st.sortTarget(call); obj == target {
			sorted = true
			return false
		}
		return true
	})
	if sorted {
		return nil
	}
	return target
}

// sortTarget returns the object of the first argument of a sort.* /
// slices.Sort* call (the slice being sorted), or nil.
func (st *taintState) sortTarget(call *ast.CallExpr) types.Object {
	callee := st.t.calleeOf(call)
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	switch callee.Pkg().Path() {
	case "sort":
	case "slices":
		if !strings.HasPrefix(callee.Name(), "Sort") {
			return nil
		}
	default:
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return st.objOf(id)
	}
	return nil
}

// calleeOf resolves a call's static callee object (nil for indirect
// calls, builtins and type conversions).
func (t *taintChecker) calleeOf(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := t.pass.TypesInfo.Uses[fun]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := t.pass.TypesInfo.Selections[fun]; ok {
			return sel.Obj()
		}
		if obj := t.pass.TypesInfo.Uses[fun.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

// isExempt reports whether the callee belongs to an observation package.
func (t *taintChecker) isExempt(callee types.Object) bool {
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	return exemptPackages[pkgBase(callee.Pkg().Path())]
}

// sourceFact classifies a callee as a primary nondeterminism source.
func (t *taintChecker) sourceFact(callee types.Object, pos token.Pos) *TaintedFact {
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	path := callee.Pkg().Path()
	if m := wallClockFuncs[path]; m != nil {
		if desc, ok := m[callee.Name()]; ok {
			return &TaintedFact{Source: desc, At: t.posOf(pos)}
		}
	}
	if path == "math/rand" || path == "math/rand/v2" {
		// Package-level stream functions only: methods on an injected
		// *rand.Rand are exactly the policy, and the New*/NewSource
		// constructors BUILD the seeded stream from an explicit seed —
		// they are how determinism is achieved, not how it is lost.
		if fn, ok := callee.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil &&
			!strings.HasPrefix(callee.Name(), "New") {
			return &TaintedFact{Source: "global math/rand." + callee.Name(), At: t.posOf(pos)}
		}
	}
	return nil
}

// calleeFact looks up a TaintedFact for the callee, from this package's
// in-progress analysis or from a dependency's exported facts.
func (t *taintChecker) calleeFact(callee types.Object) *TaintedFact {
	if callee == nil || t.isExempt(callee) {
		return nil
	}
	fact := new(TaintedFact)
	if t.pass.ImportObjectFact(callee, fact) {
		qual := callee.Name()
		if callee.Pkg() != nil && callee.Pkg() != t.pass.TypesPkg {
			qual = pkgBase(callee.Pkg().Path()) + "." + callee.Name()
		}
		return &TaintedFact{
			Source: fmt.Sprintf("%s (via %s)", fact.Source, qual),
			At:     fact.At,
		}
	}
	return nil
}

func (t *taintChecker) posOf(pos token.Pos) string {
	p := t.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename[strings.LastIndex(p.Filename, "/")+1:], p.Line)
}

// deriveFact classifies one function: if a tainted value reaches a return
// statement or a store into non-local memory, the function earns a
// TaintedFact. Returns true when a new fact was exported this round.
func (t *taintChecker) deriveFact(fn fnInfo) bool {
	already := new(TaintedFact)
	if t.pass.ImportObjectFact(fn.obj, already) {
		return false
	}
	st := t.analyzeLocals(fn)
	var fact *TaintedFact
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if fact != nil {
			return false
		}
		switch nn := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range nn.Results {
				if f := st.exprTaint(res); f != nil {
					fact = f
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range nn.Lhs {
				if !st.nonLocalLValue(lhs) {
					continue
				}
				rhs := nn.Rhs[0]
				if len(nn.Rhs) == len(nn.Lhs) {
					rhs = nn.Rhs[i]
				}
				if f := st.exprTaint(rhs); f != nil {
					fact = f
					return false
				}
			}
		}
		return true
	})
	if fact == nil {
		return false
	}
	t.pass.ExportObjectFact(fn.obj, fact)
	return true
}

// nonLocalLValue reports whether assigning to expr stores outside the
// current activation: package variables, and anything reached through a
// selector, dereference or index (fields of receivers/parameters, heap
// objects handed in by callers).
func (st *taintState) nonLocalLValue(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := st.objOf(e)
		if v, ok := obj.(*types.Var); ok {
			return v.Parent() == v.Pkg().Scope() // package-level variable
		}
		return false
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// reportFunc reports every use of a tainted value inside a seeded-path
// function that is not consumed by observation: source calls and
// tainted-callee calls that feed anything except an exempt call or a
// plain local assignment, plus order-dependent map ranges and racy
// selects.
func (t *taintChecker) reportFunc(fn fnInfo) {
	if t.pass.IsTestFile(fileOf(t.pass, fn.decl)) {
		return
	}
	st := t.analyzeLocals(fn)
	seen := map[token.Pos]bool{}

	var walk func(n ast.Node, path []ast.Node)
	walk = func(n ast.Node, path []ast.Node) {
		ast.Inspect(n, func(node ast.Node) bool {
			if node == nil {
				return false
			}
			switch nn := node.(type) {
			case *ast.CallExpr:
				callee := t.calleeOf(nn)
				if t.isExempt(callee) {
					return false // observation consumption: prune args
				}
				var fact *TaintedFact
				if f := t.sourceFact(callee, nn.Pos()); f != nil {
					fact = f
				} else if f := t.calleeFact(callee); f != nil {
					fact = f
				}
				if fact != nil && !seen[nn.Pos()] && !st.locallyAbsorbed(fn.decl.Body, nn) {
					seen[nn.Pos()] = true
					t.pass.Reportf(nn.Pos(),
						"nondeterministic value (%s, from %s) flows into the seeded optimizer path; "+
							"derive it from the injected seeded *rand.Rand or from configuration",
						fact.Source, fact.At)
				}
			case *ast.RangeStmt:
				t.reportMapRange(st, fn, nn)
			case *ast.SelectStmt:
				t.reportSelect(nn)
			}
			return true
		})
	}
	walk(fn.decl.Body, nil)

	// Tainted locals consumed outside exempt calls and local assignments.
	t.reportTaintedUses(st, fn)
}

// locallyAbsorbed reports whether the call's value flows only into a
// plain local assignment (`t0 := time.Now()`): the taint is then tracked
// through the local and reported at its eventual escaping use instead,
// so observation-only patterns like `t0 := time.Now();
// hist.ObserveSince(t0)` stay silent.
func (st *taintState) locallyAbsorbed(body *ast.BlockStmt, call *ast.CallExpr) bool {
	absorbed := false
	ast.Inspect(body, func(n ast.Node) bool {
		if absorbed {
			return false
		}
		switch as := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range as.Rhs {
				if rhs == ast.Expr(call) {
					all := true
					for _, lhs := range as.Lhs {
						if _, ok := lhs.(*ast.Ident); !ok {
							all = false
						} else if st.nonLocalLValue(lhs) {
							all = false
						}
					}
					absorbed = all
				}
			}
		case *ast.ValueSpec:
			for _, v := range as.Values {
				if v == ast.Expr(call) {
					absorbed = true
				}
			}
		}
		return true
	})
	return absorbed
}

// reportTaintedUses flags identifiers bound to tainted locals wherever
// they escape: returns, non-local stores, arguments of non-exempt calls.
func (t *taintChecker) reportTaintedUses(st *taintState, fn fnInfo) {
	if len(st.vars) == 0 {
		return
	}
	seen := map[token.Pos]bool{}
	report := func(id *ast.Ident, fact *TaintedFact, how string) {
		if seen[id.Pos()] {
			return
		}
		seen[id.Pos()] = true
		t.pass.Reportf(id.Pos(),
			"%q carries a nondeterministic value (%s, from %s) %s in the seeded optimizer path",
			id.Name, fact.Source, fact.At, how)
	}
	taintedIn := func(expr ast.Expr) (*ast.Ident, *TaintedFact) {
		var rid *ast.Ident
		var rfact *TaintedFact
		ast.Inspect(expr, func(n ast.Node) bool {
			if rid != nil {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && t.isExempt(t.calleeOf(call)) {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := st.objOf(id); obj != nil {
					// Map-order taint is already reported at the range
					// statement itself; re-flagging every escape of the
					// slice would be noise.
					if f := st.vars[obj]; f != nil && f.Source != "map iteration order" {
						rid, rfact = id, f
					}
				}
			}
			return true
		})
		return rid, rfact
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			if t.isExempt(t.calleeOf(nn)) {
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range nn.Results {
				if id, f := taintedIn(res); id != nil {
					report(id, f, "into a return value")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range nn.Lhs {
				if !st.nonLocalLValue(lhs) {
					continue
				}
				rhs := nn.Rhs[0]
				if len(nn.Rhs) == len(nn.Lhs) {
					rhs = nn.Rhs[i]
				}
				if id, f := taintedIn(rhs); id != nil {
					report(id, f, "into escaping memory")
				}
			}
		}
		return true
	})
}

// reportMapRange flags map iterations whose order reaches bytes: an
// unsorted outer append (checkpoint/snapshot serialization built from a
// map) or a direct write of loop-derived data through a serializer.
func (t *taintChecker) reportMapRange(st *taintState, fn fnInfo, r *ast.RangeStmt) {
	if !st.isMapRange(r) {
		return
	}
	if tgt := st.unsortedAppendTarget(fn.decl.Body, r); tgt != nil {
		t.pass.Reportf(r.Pos(),
			"map iteration order is nondeterministic: %q accumulates it and is never sorted; "+
				"sort the slice (sort.* / slices.Sort*) before it reaches optimizer state or checkpoint bytes",
			tgt.Name())
		return
	}
	if call := st.serializingCall(r); call != nil {
		t.pass.Reportf(call.Pos(),
			"map iteration order is nondeterministic and this call serializes loop-dependent data; "+
				"iterate sorted keys so checkpoint/snapshot bytes are bit-identical")
	}
}

// serializerNames are method/function names that emit bytes in call
// order.
var serializerNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Encode": true, "Marshal": true, "Sum": true, "Sum64": true, "Sum32": true,
}

// serializingCall finds a serializer call inside the loop body that
// references a loop variable.
func (st *taintState) serializingCall(r *ast.RangeStmt) *ast.CallExpr {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := st.objOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	if len(loopVars) == 0 {
		return nil
	}
	var found *ast.CallExpr
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		if !serializerNames[name] || st.t.isExempt(st.t.calleeOf(call)) {
			return true
		}
		uses := false
		ast.Inspect(call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := st.objOf(id); obj != nil && loopVars[obj] {
					uses = true
				}
			}
			return !uses
		})
		if uses {
			found = call
		}
		return true
	})
	return found
}

// reportSelect flags selects that can resolve between two or more
// ready-able communications: the runtime picks uniformly at random, which
// is exactly the race the determinism contract forbids. Receives from a
// Done()-style cancellation channel and default cases are exempt — a
// cancellation check plus one real communication is the blessed pattern.
func (t *taintChecker) reportSelect(sel *ast.SelectStmt) {
	racy := 0
	for _, c := range sel.Body.List {
		comm, ok := c.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue // default case
		}
		if isDoneRecv(comm.Comm) {
			continue
		}
		racy++
	}
	if racy >= 2 {
		t.pass.Reportf(sel.Pos(),
			"select with %d competing communications resolves nondeterministically in the seeded "+
				"optimizer path; sequence the channels or move the race outside the counted stream", racy)
	}
}

// isDoneRecv matches `case <-x.Done():` and `case <-done:` cancellation
// receives.
func isDoneRecv(stmt ast.Stmt) bool {
	var expr ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	switch x := ast.Unparen(un.X).(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
	case *ast.Ident:
		return strings.Contains(strings.ToLower(x.Name), "done") ||
			strings.Contains(strings.ToLower(x.Name), "cancel")
	}
	return false
}

// fileOf returns the *ast.File containing the declaration.
func fileOf(pass *analysis.Pass, decl ast.Node) *ast.File {
	for _, f := range pass.Files {
		if f.Pos() <= decl.Pos() && decl.Pos() <= f.End() {
			return f
		}
	}
	return pass.Files[0]
}
