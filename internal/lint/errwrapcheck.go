package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"iddqsyn/internal/lint/analysis"
)

// ErrWrapCheck enforces error wrapping with %w: a fmt.Errorf whose
// arguments include an error formatted with %v, %s or %q builds a new
// error that hides the old one from errors.Is/errors.As. The repo's
// sentinel errors — core.ErrNonFinite, evolution.ErrCorruptCheckpoint,
// runctl.ErrCanceled — must survive every wrapping layer so callers can
// branch on them; a single %v in the chain silently breaks that contract.
//
// %T (printing the error's type) and %p are deliberate formatting, not
// wrapping, and are not flagged. Deliberately severing an error chain is
// rare enough to deserve an explicit //lint:ignore errwrapcheck with a
// reason.
var ErrWrapCheck = &analysis.Analyzer{
	Name: "errwrapcheck",
	Doc: "errors passed to fmt.Errorf must use %w, not %v/%s/%q, so sentinel errors " +
		"(ErrNonFinite, ErrCorruptCheckpoint) stay visible to errors.Is/As through every layer",
	Run: runErrWrapCheck,
}

func runErrWrapCheck(pass *analysis.Pass) (interface{}, error) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Pkg.CheckedFiles {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFmtErrorf(pass, call) || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true // non-constant format: nothing to parse
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			verbs, ok := formatVerbs(format)
			if !ok || len(verbs) != len(call.Args)-1 {
				return true // indexed args or arg-count mismatch: stay quiet
			}
			for i, v := range verbs {
				if v == 'w' || v == 'T' || v == 'p' {
					continue
				}
				arg := call.Args[1+i]
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if types.Implements(tv.Type, errIface) {
					pass.Reportf(arg.Pos(),
						"error formatted with %%%c loses its identity: use %%w so errors.Is/As can unwrap it "+
							"(or //lint:ignore errwrapcheck if severing the chain is intended)", v)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isFmtErrorf reports whether the call is fmt.Errorf.
func isFmtErrorf(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Name() != "Errorf" {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Path() == "fmt"
}

// formatVerbs extracts the argument-consuming verbs of a Printf format
// string in order, expanding '*' width/precision into their own pseudo
// verb '*'. Returns ok=false for explicit argument indexes ("%[1]v"),
// which the caller cannot map positionally.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue // literal %%
		}
		// flags
		for i < len(format) {
			switch format[i] {
			case '+', '-', '#', ' ', '0':
				i++
				continue
			}
			break
		}
		// width / precision, each possibly '*'
		for pass := 0; pass < 2; pass++ {
			if i < len(format) && format[i] == '*' {
				verbs = append(verbs, '*')
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
			if pass == 0 && i < len(format) && format[i] == '.' {
				i++
				continue
			}
			break
		}
		if i < len(format) && format[i] == '[' {
			return nil, false // explicit argument index
		}
		if i >= len(format) {
			break
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}
