package lint_test

import (
	"sort"
	"strings"
	"testing"

	"iddqsyn/internal/lint"
)

// sampleGorace is a realistic two-report `go test -race` transcript:
// the first report races a bare read in Peek against a guarded write in
// the Spin goroutine; the second is a write/write pair with a creation
// stack. Paths and offsets mirror the detector's real output shape.
const sampleGorace = `=== RUN   TestSeededRaces
==================
WARNING: DATA RACE
Read at 0x00c000132080 by goroutine 9:
  iddqsyn/internal/lint/testdata/src/raceseeds.(*UnguardedCounter).Peek()
      /root/repo/internal/lint/testdata/src/raceseeds/races.go:57 +0x3c
  raceseeds.TestSeededRaces.func1()
      /root/repo/internal/lint/testdata/src/raceseeds/races_test.go:32 +0x9c

Previous write at 0x00c000132080 by goroutine 8:
  iddqsyn/internal/lint/testdata/src/raceseeds.(*UnguardedCounter).Spin.func1()
      /root/repo/internal/lint/testdata/src/raceseeds/races.go:48 +0x64
==================
--- FAIL: TestSeededRaces (0.06s)
==================
WARNING: DATA RACE
Write at 0x00c000132090 by goroutine 11:
  example.com/widget.(*Ring).push()
      /root/repo/internal/widget/ring.go:40 +0x11
  example.com/widget.Run.func2()
      /root/repo/internal/widget/run.go:90 +0x22

Previous write at 0x00c000132090 by goroutine 12:
  example.com/widget.(*Ring).push()
      /root/repo/internal/widget/ring.go:41 +0x33

Goroutine 11 (running) created at:
  example.com/widget.Run()
      /root/repo/internal/widget/run.go:80 +0x44
==================
FAIL
`

func TestParseGorace(t *testing.T) {
	reports := lint.ParseGorace(sampleGorace)
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	r := reports[0]
	if !strings.HasPrefix(r.Summary, "Read at ") {
		t.Errorf("summary = %q, want a Read operation line", r.Summary)
	}
	if len(r.Frames) != 3 {
		t.Fatalf("report 0: got %d frames, want 3: %+v", len(r.Frames), r.Frames)
	}
	first := r.Frames[0]
	if first.Line != 57 || !strings.HasSuffix(first.File, "raceseeds/races.go") {
		t.Errorf("frame 0 = %+v, want races.go:57", first)
	}
	if !strings.Contains(first.Func, "Peek") {
		t.Errorf("frame 0 func = %q, want the Peek frame", first.Func)
	}
	// The creation stack's frames are kept too (last report: two write
	// stacks of 2+1 frames plus the creation frame).
	if n := len(reports[1].Frames); n != 4 {
		t.Errorf("report 1: got %d frames, want 4 (incl. creation stack)", n)
	}
}

func TestParseGoraceTruncated(t *testing.T) {
	cut := sampleGorace[:strings.LastIndex(sampleGorace, "==========")]
	reports := lint.ParseGorace(cut)
	if len(reports) != 2 {
		t.Fatalf("truncated transcript: got %d reports, want 2", len(reports))
	}
}

func TestParseGoraceCleanRun(t *testing.T) {
	if got := lint.ParseGorace("ok  \tiddqsyn/internal/chaos\t2.1s\n"); len(got) != 0 {
		t.Fatalf("clean run parsed as %d reports", len(got))
	}
}

// attributionCandidates mirrors what sharedstate records for the corpus'
// UnguardedCounter.N seed: the bare Peek read at races.go:57 and the
// guarded write inside Spin's goroutine literal.
func attributionCandidates() []lint.SharedField {
	return []lint.SharedField{{
		Field: "raceseeds.UnguardedCounter.N",
		File:  "/root/repo/internal/lint/testdata/src/raceseeds/races.go",
		Line:  32,
		Kinds: []string{"guarded+bare"},
		Sites: []lint.AccessSite{
			{
				File: "/root/repo/internal/lint/testdata/src/raceseeds/races.go",
				Line: 57, Func: "Peek", FuncStart: 56, FuncEnd: 58,
				Contexts: []string{"main"},
			},
			{
				File: "/root/repo/internal/lint/testdata/src/raceseeds/races.go",
				Line: 48, Func: "Spin", FuncStart: 36, FuncEnd: 53,
				Contexts: []string{"races.go:39"}, Locks: []string{"raceseeds.UnguardedCounter.Mu"},
				Write: true,
			},
		},
	}}
}

func TestAttributeRaceExactLine(t *testing.T) {
	reports := lint.ParseGorace(sampleGorace)
	field, frame, ok := lint.AttributeRace(reports[0], attributionCandidates())
	if !ok {
		t.Fatal("report 0 did not attribute")
	}
	if field.Field != "raceseeds.UnguardedCounter.N" {
		t.Errorf("attributed to %q", field.Field)
	}
	if frame.Line != 57 {
		t.Errorf("matched frame line %d, want the exact access site 57", frame.Line)
	}
}

// A frame inside the enclosing function body but not on a recorded
// access line still attributes — inlining and statement rewriting move
// report lines off the analyzer's exact site.
func TestAttributeRaceFunctionRange(t *testing.T) {
	rep := lint.GoraceReport{
		Summary: "Write at 0x0 by goroutine 7:",
		Frames: []lint.GoraceFrame{{
			Func: "raceseeds.(*UnguardedCounter).Spin.func1",
			File: "/root/repo/internal/lint/testdata/src/raceseeds/races.go",
			Line: 50, // inside Spin's body, not an access line
		}},
	}
	field, _, ok := lint.AttributeRace(rep, attributionCandidates())
	if !ok || field.Field != "raceseeds.UnguardedCounter.N" {
		t.Fatalf("range attribution failed: ok=%v field=%+v", ok, field)
	}
}

func TestAttributeRaceUnexplained(t *testing.T) {
	reports := lint.ParseGorace(sampleGorace)
	if _, _, ok := lint.AttributeRace(reports[1], attributionCandidates()); ok {
		t.Fatal("widget report attributed to the raceseeds candidate")
	}
}

// TestRaceSeedCorpusFullyFlagged is the zero-false-negative assertion:
// sharedstate over the seeded corpus must flag exactly the manifest —
// every planted race (no seed escapes the static net) and nothing else
// (the corpus stays minimal and intentional).
func TestRaceSeedCorpusFullyFlagged(t *testing.T) {
	fields, err := lint.SeedCorpusFindings("../..")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]string{}
	for _, f := range fields {
		got[f.Field] = f.Kinds
	}
	var missing []string
	for id, kind := range lint.RaceSeedFields {
		kinds, ok := got[id]
		if !ok {
			missing = append(missing, id)
			continue
		}
		found := false
		for _, k := range kinds {
			if k == kind {
				found = true
			}
		}
		if !found {
			t.Errorf("seed %s flagged as %v, want kind %q", id, kinds, kind)
		}
		delete(got, id)
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("false negatives — seeds the analyzer missed: %v", missing)
	}
	for id := range got {
		t.Errorf("unplanned corpus finding %s (extend RaceSeedFields or fix the corpus)", id)
	}
}
