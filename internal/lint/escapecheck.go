package lint

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"iddqsyn/internal/lint/analysis"
)

// The escape cross-check validates the hotalloc analyzer against the
// compiler's own escape analysis: every heap allocation the compiler
// diagnoses (`-gcflags=-m=1`) inside a hot function body must correspond
// to an allocation site the analyzer recorded — reported, justified with
// //lint:ignore, or discounted as cold, but *seen*. A compiler diagnostic
// with no analyzer site is a false negative: the analyzer's allocation
// model has a hole, and a real hot-path allocation could ship unreviewed.
//
// The reverse direction (analyzer site with no compiler diagnostic) is
// not an error: the analyzer is deliberately pessimistic about sites the
// compiler can stack-allocate (non-escaping closures, small composite
// literals), because whether they escape depends on inlining decisions
// that change across compiler versions.

// EscapeDiag is one compiler heap diagnostic inside a hot function body
// that the hotalloc analyzer has no allocation site for.
type EscapeDiag struct {
	File    string // slash path relative to the module root
	Line    int
	Message string // the compiler's text, e.g. `&pair{...} escapes to heap`
	Func    string // enclosing hot function
	Root    string // the //lint:hotpath root the function is reachable from
}

func (d EscapeDiag) String() string {
	return fmt.Sprintf("%s:%d: compiler: %s (in hot func %s, root %s) — not in the hotalloc model",
		d.File, d.Line, d.Message, d.Func, d.Root)
}

// EscapeReport summarises one cross-check run.
type EscapeReport struct {
	HotFuncs       int          // hot function bodies scanned
	AnalyzerSites  int          // alloc sites the analyzer recorded (incl. cold/ignored)
	CompilerDiags  int          // compiler heap diagnostics inside hot bodies
	Matched        int          // diagnostics covered by an analyzer site
	FalseNegatives []EscapeDiag // diagnostics the analyzer missed
}

// EscapeCheck runs hotalloc over the module at root, then `go build
// -gcflags=-m=1` over the same patterns, and diffs the compiler's
// `escapes to heap` / `moved to heap` diagnostics against the analyzer's
// recorded allocation sites inside hot function bodies.
//
// Matching is per-line for `escapes to heap` (the diagnostic points at
// the allocating expression). `moved to heap: x` names a variable whose
// declaration position rarely coincides with the allocation the analyzer
// models (the closure or &x that caused the move), so it is matched
// leniently: any analyzer site inside the same hot function body covers
// it.
func EscapeCheck(root string, patterns []string) (*EscapeReport, error) {
	prog, err := analysis.LoadModule(root, patterns)
	if err != nil {
		return nil, err
	}
	if len(prog.Roots) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %s", strings.Join(patterns, " "))
	}

	var (
		mu      sync.Mutex
		results []*HotAllocResult
	)
	opts := analysis.Options{
		Applies:        Applies,
		KnownAnalyzers: Names(),
		RootsOnly:      true,
		OnResult: func(pkg *analysis.Package, a *analysis.Analyzer, result interface{}) {
			if r, ok := result.(*HotAllocResult); ok && r != nil {
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		},
	}
	if _, err := prog.Run([]*analysis.Analyzer{HotAlloc}, opts); err != nil {
		return nil, err
	}

	rep := &EscapeReport{}
	// Index hot function ranges and alloc-site lines by root-relative path.
	// All ranges are indexed before any site, because a site can fall in a
	// hot body reported by a different package's result.
	type hotRange struct {
		start, end int
		name, root string
		hasSite    bool
	}
	ranges := map[string][]*hotRange{} // body ranges by file
	byDecl := map[string]*hotRange{}   // "file:declline" → hot func
	callsAt := map[string][]string{}   // "file:callline" → callee decl keys
	siteAt := map[string]bool{}        // "file:line" of every analyzer site
	for _, r := range results {
		for _, hf := range r.HotFuncs {
			rel := relSlash(root, hf.File)
			hr := &hotRange{start: hf.StartLine, end: hf.EndLine, name: hf.Name, root: hf.Root}
			ranges[rel] = append(ranges[rel], hr)
			byDecl[rel+":"+strconv.Itoa(hf.DeclLine)] = hr
			rep.HotFuncs++
		}
		for _, cs := range r.CallSites {
			key := relSlash(root, cs.File) + ":" + strconv.Itoa(cs.Line)
			callsAt[key] = append(callsAt[key],
				relSlash(root, cs.CalleeFile)+":"+strconv.Itoa(cs.CalleeLine))
		}
	}
	for _, r := range results {
		for _, s := range r.Allocs {
			rel := relSlash(root, s.File)
			siteAt[rel+":"+strconv.Itoa(s.Line)] = true
			rep.AnalyzerSites++
			for _, hr := range ranges[rel] {
				if s.Line >= hr.start && s.Line <= hr.end {
					hr.hasSite = true
				}
			}
		}
	}

	diags, err := compilerHeapDiags(root, patterns)
	if err != nil {
		return nil, err
	}
	for _, d := range diags {
		var enclosing *hotRange
		for _, hr := range ranges[d.file] {
			if d.line >= hr.start && d.line <= hr.end {
				enclosing = hr
				break
			}
		}
		if enclosing == nil {
			continue // cold code: the analyzer has no obligations there
		}
		rep.CompilerDiags++
		matched := siteAt[d.file+":"+strconv.Itoa(d.line)]
		if !matched {
			// Inlining re-attributes a callee's allocations to the call
			// line in the caller: credit the diag to the callee's own
			// sites when the line calls a hot function that has some.
			for _, calleeKey := range callsAt[d.file+":"+strconv.Itoa(d.line)] {
				if hr := byDecl[calleeKey]; hr != nil && hr.hasSite {
					matched = true
					break
				}
			}
		}
		if !matched && d.moved {
			matched = enclosing.hasSite
		}
		if matched {
			rep.Matched++
			continue
		}
		rep.FalseNegatives = append(rep.FalseNegatives, EscapeDiag{
			File: d.file, Line: d.line, Message: d.msg,
			Func: enclosing.name, Root: enclosing.root,
		})
	}
	sort.Slice(rep.FalseNegatives, func(i, j int) bool {
		a, b := rep.FalseNegatives[i], rep.FalseNegatives[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return rep, nil
}

// heapDiag is one parsed compiler escape diagnostic.
type heapDiag struct {
	file  string // slash path relative to the module root
	line  int
	msg   string
	moved bool // `moved to heap: x` (vs `... escapes to heap`)
}

// compilerHeapDiags builds the patterns with -gcflags=-m=1 and parses the
// escape diagnostics from stderr. Cached packages replay their
// diagnostics from the build cache, so a warm cache is fine; a run that
// produces no diagnostics at all is reported as an error, since an empty
// diff would vacuously "pass" the cross-check.
func compilerHeapDiags(root string, patterns []string) ([]heapDiag, error) {
	args := append([]string{"build", "-gcflags=-m=1"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	var diags []heapDiag
	for _, line := range strings.Split(string(out), "\n") {
		moved := strings.Contains(line, "moved to heap:")
		if !moved && !strings.HasSuffix(line, "escapes to heap") {
			continue
		}
		// internal/foo/foo.go:12:6: x escapes to heap
		parts := strings.SplitN(line, ":", 4)
		if len(parts) < 4 {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		diags = append(diags, heapDiag{
			file:  filepath.ToSlash(parts[0]),
			line:  ln,
			msg:   strings.TrimSpace(parts[3]),
			moved: moved,
		})
	}
	if len(diags) == 0 {
		return nil, fmt.Errorf("lint: go build -gcflags=-m=1 produced no escape diagnostics; the build cache may be stale — run `go clean -cache` and retry")
	}
	return diags, nil
}

func relSlash(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}
