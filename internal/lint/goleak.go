package lint

import (
	"iddqsyn/internal/lint/analysis"
)

// GoLeak flags `go` statements with no visible stop path. A goroutine the
// serve layer spawns must be stoppable and awaitable — the crash-safety
// story depends on Shutdown actually draining everything — and the leak
// only shows up as slow memory growth in production, never in a unit test
// that exits before the goroutine matters.
//
// A spawned goroutine counts as accounted-for when the analyzer can see
// any of the conventional lifecycle mechanisms in its body (for a `go
// func(){...}()` literal) or flowing into it (for `go f(args)`):
//
//   - a context.Context reference (cancellation);
//   - a channel operation — send, receive, close, select, or range over a
//     channel (the goroutine blocks on, or is drained through, a channel
//     someone else controls);
//   - a sync.WaitGroup interaction (wg.Done / wg.Wait / passed *WaitGroup).
//
// Anything else is reported. The check is a heuristic, deliberately
// shallow: it looks one call deep at most, because a stop path that is
// not visible near the `go` statement is invisible to the next
// maintainer too. False positives are justified with
// //lint:ignore goleak <reason> — which documents the actual lifecycle.
//
// The `go`-statement discovery itself lives in the shared goroutine
// inventory (GoroutineInventory): goleak judges each spawn's stop path,
// sharedstate judges what the spawned goroutines touch, and both see the
// identical site list.
var GoLeak = &analysis.Analyzer{
	Name: "goleak",
	Doc: "flag goroutines with no visible stop path (no context, channel operation, " +
		"or WaitGroup); unstoppable goroutines leak and make graceful shutdown impossible",
	Run: runGoLeak,
}

func runGoLeak(pass *analysis.Pass) (interface{}, error) {
	for _, site := range GoroutineInventory(pass) {
		if site.Accounted {
			continue
		}
		pass.Reportf(site.Go.Pos(),
			"goroutine has no visible stop path (no context, channel operation, or WaitGroup); "+
				"it cannot be shut down or awaited — thread a context or channel through it, "+
				"or justify with //lint:ignore goleak <reason>")
	}
	return nil, nil
}
