package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"iddqsyn/internal/lint/analysis"
)

// GoLeak flags `go` statements with no visible stop path. A goroutine the
// serve layer spawns must be stoppable and awaitable — the crash-safety
// story depends on Shutdown actually draining everything — and the leak
// only shows up as slow memory growth in production, never in a unit test
// that exits before the goroutine matters.
//
// A spawned goroutine counts as accounted-for when the analyzer can see
// any of the conventional lifecycle mechanisms in its body (for a `go
// func(){...}()` literal) or flowing into it (for `go f(args)`):
//
//   - a context.Context reference (cancellation);
//   - a channel operation — send, receive, close, select, or range over a
//     channel (the goroutine blocks on, or is drained through, a channel
//     someone else controls);
//   - a sync.WaitGroup interaction (wg.Done / wg.Wait / passed *WaitGroup).
//
// Anything else is reported. The check is a heuristic, deliberately
// shallow: it looks one call deep at most, because a stop path that is
// not visible near the `go` statement is invisible to the next
// maintainer too. False positives are justified with
// //lint:ignore goleak <reason> — which documents the actual lifecycle.
var GoLeak = &analysis.Analyzer{
	Name: "goleak",
	Doc: "flag goroutines with no visible stop path (no context, channel operation, " +
		"or WaitGroup); unstoppable goroutines leak and make graceful shutdown impossible",
	Run: runGoLeak,
}

func runGoLeak(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Pkg.CheckedFiles {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goStmtAccounted(pass, g) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine has no visible stop path (no context, channel operation, or WaitGroup); "+
					"it cannot be shut down or awaited — thread a context or channel through it, "+
					"or justify with //lint:ignore goleak <reason>")
			return true
		})
	}
	return nil, nil
}

// goStmtAccounted reports whether the spawned goroutine has a visible
// lifecycle mechanism: in the function literal's body, in the call's
// arguments, or in the receiver/arguments of a named callee.
func goStmtAccounted(pass *analysis.Pass, g *ast.GoStmt) bool {
	// Arguments (and a method call's receiver) carrying a context, channel
	// or WaitGroup account for both literal and named spawns.
	for _, arg := range g.Call.Args {
		if exprCarriesStopPath(pass, arg) {
			return true
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyHasStopPath(pass, fun.Body)
	case *ast.SelectorExpr:
		// go s.run() — the receiver may hold the lifecycle (a struct with
		// a done channel or context). Conservative: a named receiver is
		// trusted only when its type visibly contains a stop mechanism.
		if tv, ok := pass.TypesInfo.Types[fun.X]; ok && typeCarriesStopPath(tv.Type, 0) {
			return true
		}
	}
	return false
}

// bodyHasStopPath scans a goroutine body for any lifecycle mechanism.
func bodyHasStopPath(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[nn.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			}
			if sel, ok := ast.Unparen(nn.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done", "Wait":
					// wg.Done()/wg.Wait(), or ctx.Done() in a select.
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[nn]; obj != nil && typeCarriesStopPath(obj.Type(), 0) {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprCarriesStopPath reports whether an argument expression's type is a
// lifecycle carrier.
func exprCarriesStopPath(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return typeCarriesStopPath(tv.Type, 0)
}

// typeCarriesStopPath reports whether t is a context.Context, a channel,
// a sync.WaitGroup, or a struct containing one of those (one level deep —
// the lifecycle must be near the surface to count as visible).
func typeCarriesStopPath(t types.Type, depth int) bool {
	if t == nil || depth > 1 {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
			if obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Interface:
		// context.Context resolved through an interface alias.
		return u.NumMethods() > 0 && hasMethod(u, "Deadline") && hasMethod(u, "Done")
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeCarriesStopPath(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

func hasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}
