// Package analysistest is a miniature clone of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over a
// golden package under testdata/src and compares the diagnostics against
// `// want "..."` comments.
//
// A want comment expects, on its own line, at least one diagnostic whose
// message matches the quoted regular expression:
//
//	rand.Intn(6) // want `process-global math/rand`
//
// Both `...` and "..." quoting are accepted. Every want must be matched by
// a diagnostic on its line, and every diagnostic must be covered by a
// want, or the test fails — the golden packages therefore pin both the
// positives and the non-findings of each analyzer.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"iddqsyn/internal/lint/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// Run loads testdata/src/<pkg> for every named package and checks the
// analyzer's findings against the want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkgName := range pkgs {
		dir := filepath.Join(testdata, "src", pkgName)
		pkg, err := analysis.LoadDir(dir, pkgName)
		if err != nil {
			t.Fatalf("%s: %v", pkgName, err)
		}
		if pkg == nil {
			t.Fatalf("%s: no Go files in %s", pkgName, dir)
		}
		findings, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
		if err != nil {
			t.Fatalf("%s: %v", pkgName, err)
		}
		checkWants(t, pkg, a.Name, findings)
	}
}

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, pkg *analysis.Package, analyzer string, findings []analysis.Finding) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, f := range findings {
		covered := false
		for _, w := range wants {
			if w.file == f.Position.Filename && w.line == f.Position.Line &&
				w.pattern.MatchString(f.Message) {
				w.matched = true
				covered = true
			}
		}
		if !covered {
			t.Errorf("%s: unexpected diagnostic: %s", analyzer, f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				analyzer, w.file, w.line, w.pattern)
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					raw := m[1]
					var pat string
					if strings.HasPrefix(raw, "`") {
						pat = strings.Trim(raw, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(raw)
						if err != nil {
							t.Fatalf("bad want comment %q: %v", c.Text, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", pat, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}
