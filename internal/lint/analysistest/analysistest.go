// Package analysistest is a miniature clone of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over
// golden packages under testdata/src and compares the diagnostics against
// `// want "..."` comments.
//
// A want comment expects, on its own line, at least one diagnostic whose
// message matches the quoted regular expression:
//
//	rand.Intn(6) // want `process-global math/rand`
//
// Both `...` and "..." quoting are accepted. Every want must be matched by
// a diagnostic on its line, and every diagnostic must be covered by a
// want, or the test fails — the golden packages therefore pin both the
// positives and the non-findings of each analyzer.
//
// Golden packages are loaded through the same types-aware Program loader
// the real driver uses, so they must type-check, may import the standard
// library, and may import each other by their path under testdata/src —
// which is how the cross-package fact tests exercise dependency-order
// fact flow: the analyzer runs over the named package's dependencies
// first (facts exported), then over the named package (facts consumed);
// wants are checked in the named packages only.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"iddqsyn/internal/lint/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// Run loads testdata/src/<pkg> for every named package (plus any testdata
// packages they import) and checks the analyzer's findings against the
// want comments in the named packages.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	RunWithSuite(t, testdata, a, nil, pkgs...)
}

// RunWithSuite is Run with an explicit "known analyzer names" universe,
// for goldens that exercise the framework's directive hygiene findings
// (analyzer "lintdirective"): a directive naming any analyzer in known is
// legal but possibly unused, one naming anything else is unknown.
func RunWithSuite(t *testing.T, testdata string, a *analysis.Analyzer, known []string, pkgs ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.Load(analysis.Config{Root: abs, Patterns: pkgs})
	if err != nil {
		t.Fatalf("load %v: %v", pkgs, err)
	}
	if len(prog.Roots) != len(pkgs) {
		t.Fatalf("load %v: matched %d packages", pkgs, len(prog.Roots))
	}
	findings, err := prog.Run([]*analysis.Analyzer{a}, analysis.Options{
		RootsOnly:      true,
		KnownAnalyzers: known,
	})
	if err != nil {
		t.Fatalf("run %s on %v: %v", a.Name, pkgs, err)
	}
	checkWants(t, prog, a.Name, findings)
}

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, prog *analysis.Program, analyzer string, findings []analysis.Finding) {
	t.Helper()
	wants := collectWants(t, prog)
	for _, f := range findings {
		covered := false
		for _, w := range wants {
			if w.file == f.Position.Filename && w.line == f.Position.Line &&
				w.pattern.MatchString(f.Message) {
				w.matched = true
				covered = true
			}
		}
		if !covered {
			t.Errorf("%s: unexpected diagnostic: %s", analyzer, f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				analyzer, w.file, w.line, w.pattern)
		}
	}
}

func collectWants(t *testing.T, prog *analysis.Program) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range prog.Roots {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						raw := m[1]
						var pat string
						if strings.HasPrefix(raw, "`") {
							pat = strings.Trim(raw, "`")
						} else {
							var err error
							pat, err = strconv.Unquote(raw)
							if err != nil {
								t.Fatalf("bad want comment %q: %v", c.Text, err)
							}
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", pat, err)
						}
						pos := pkg.Fset.Position(c.Pos())
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}
