package lint_test

import (
	"testing"

	"iddqsyn/internal/lint"
	"iddqsyn/internal/lint/analysis"
)

// BenchmarkLintRepo times a full lint of this repository — load,
// type-check, and the complete analyzer suite — which is what every CI
// run and pre-commit hook pays. CI holds the wall-clock for one pass
// under 30s (scripts/check.sh); this benchmark is how a regression in
// the loader or an analyzer shows up locally before tripping that gate.
func BenchmarkLintRepo(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := analysis.LoadModule("../..", []string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		findings, err := prog.Run(lint.Analyzers(), analysis.Options{
			Applies:        lint.Applies,
			KnownAnalyzers: lint.Names(),
			RootsOnly:      true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) > 0 {
			b.Fatalf("repo should lint clean, got %d findings (first: %s)", len(findings), findings[0])
		}
	}
}
