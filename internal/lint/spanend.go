package lint

import (
	"go/ast"
	"go/types"

	"iddqsyn/internal/lint/analysis"
)

// SpanEnd flags trace spans that are started and provably never ended.
// A *obs.TraceSpan is recorded only when End runs: a dropped span is a
// hole in the causal trace at exactly the point someone bothered to
// instrument, and it still counts against the trace's span cap — enough
// leaks and the trace silently truncates (DroppedSpans) while looking
// armed. The failure is invisible in tests (nothing panics, nothing
// errors); only the /tracez output quietly loses the stretch of latency
// the span was supposed to explain.
//
// The analysis is function-local and syntactic over type-checked code.
// A "span producer" is a call whose name starts with Start and whose
// result (or one result of its tuple) is a *TraceSpan/*Span named type
// from a package named "obs" — StartRoot, StartChild, StartTraceSpan.
// Retrieval helpers (SpanFromContext) are not producers: the retriever
// does not own the span's End.
//
// Flagged:
//   - a producer call as a bare statement — the span is unreachable and
//     can never be ended;
//   - a producer result bound to the blank identifier;
//   - a producer result bound to a local variable that is never used
//     again — started, then forgotten.
//
// Not flagged: spans that escape the function (passed to a call, stored
// in a field, returned, sent, appended) — ownership legitimately moves,
// as with the queue-wait span ended by the worker that claims the job —
// and any span with a visible .End use, including inside a deferred
// closure or as a method value. Calling another method on the span
// (StartChild, Trace) is a use but neither ends it nor hands it off, so
// a parent that only ever spawns children is still flagged.
// Cross-goroutine End is safe by design (End is idempotent), so escape
// analysis stays deliberately generous; the analyzer only reports spans
// that provably cannot be ended by anyone.
var SpanEnd = &analysis.Analyzer{
	Name: "spanend",
	Doc: "flag trace spans that are started but provably never ended; an " +
		"unended span is a silent hole in the causal trace and leaks " +
		"against the per-trace span cap (end it, defer End, or hand it off)",
	Run: runSpanEnd,
}

func runSpanEnd(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanEnds(pass, fn.Body)
		}
	}
	return nil, nil
}

// checkSpanEnds runs the per-function analysis: find span producers,
// classify each binding, then audit every locally bound span's uses.
// The whole FuncDecl body is one scope — uses inside nested function
// literals (a deferred closure calling End) count.
func checkSpanEnds(pass *analysis.Pass, body *ast.BlockStmt) {
	// owned maps a locally bound span variable to the position of the
	// producer call that created it.
	owned := map[types.Object]*ast.CallExpr{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && isSpanProducer(pass, call) {
				pass.Reportf(call.Pos(),
					"span from %s is dropped; it can never be ended — assign it and call End (or defer End)",
					exprString(call.Fun))
			}
		case *ast.AssignStmt:
			for obj, call := range spanBindings(pass, stmt) {
				if obj == nil {
					pass.Reportf(call.Pos(),
						"span from %s is bound to _; it can never be ended — assign it and call End (or defer End)",
						exprString(call.Fun))
					continue
				}
				owned[obj] = call
			}
		}
		return true
	})
	if len(owned) == 0 {
		return
	}

	// Audit uses with their parent node: a .End selector ends the span;
	// a use that can alias or export the value (call argument, return,
	// RHS of a real assignment, composite literal, &, send) hands it
	// off; everything else (other span methods, comparisons, blank
	// assigns, being an assignment target) is neutral.
	ended := map[types.Object]bool{}
	escaped := map[types.Object]bool{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if _, tracked := owned[obj]; !tracked {
			return true
		}
		var parent ast.Node
		if len(stack) >= 2 {
			parent = stack[len(stack)-2]
		}
		switch classifyUse(id, parent) {
		case useEnd:
			ended[obj] = true
		case useEscape:
			escaped[obj] = true
		}
		return true
	})
	for obj, call := range owned {
		if ended[obj] || escaped[obj] {
			continue
		}
		pass.Reportf(call.Pos(),
			"span %s is started but never ended; call %s.End() (or defer it), or hand the span off",
			obj.Name(), obj.Name())
	}
}

// spanBindings maps each span-producing result of stmt's RHS to the
// local variable object it is bound to, or to nil for a blank binding.
// Non-ident LHS (a struct field, an index expression) means the span
// escapes at birth and is not tracked.
func spanBindings(pass *analysis.Pass, stmt *ast.AssignStmt) map[types.Object]*ast.CallExpr {
	out := map[types.Object]*ast.CallExpr{}
	bind := func(lhs ast.Expr, call *ast.CallExpr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return // field/index store: escapes at birth
		}
		if id.Name == "_" {
			out[nil] = call
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id] // plain `=` to an existing var
		}
		if obj != nil {
			out[obj] = call
		}
	}
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		// ctx, sp := obs.StartTraceSpan(ctx, "x") — one call, a tuple.
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok || !isStartCall(call) {
			return out
		}
		tup, ok := pass.TypesInfo.TypeOf(call).(*types.Tuple)
		if !ok || tup.Len() != len(stmt.Lhs) {
			return out
		}
		for i := 0; i < tup.Len(); i++ {
			if isSpanType(tup.At(i).Type()) {
				bind(stmt.Lhs[i], call)
			}
		}
		return out
	}
	for i, rhs := range stmt.Rhs {
		if i >= len(stmt.Lhs) {
			break
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isSpanProducer(pass, call) {
			bind(stmt.Lhs[i], call)
		}
	}
	return out
}

// useKind is the effect one use of a span identifier has on ownership.
type useKind int

const (
	useNeutral useKind = iota // seen, but neither ends nor hands off
	useEnd                    // receiver of an End selector
	useEscape                 // the value may leave the function's hands
)

// classifyUse decides what one occurrence of the span identifier does,
// from its immediate parent node.
func classifyUse(id *ast.Ident, parent ast.Node) useKind {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == id && p.Sel.Name == "End" {
			return useEnd
		}
		if p.X == id {
			// Another method or field on the span: a use, not a handoff.
			return useNeutral
		}
		return useEscape
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == id {
				// Being the assignment target is not a handoff.
				return useNeutral
			}
		}
		// On the RHS: `other = sp` aliases the span away — unless every
		// target is blank (`_ = sp`), which goes nowhere.
		for _, lhs := range p.Lhs {
			if bid, ok := lhs.(*ast.Ident); !ok || bid.Name != "_" {
				return useEscape
			}
		}
		return useNeutral
	case *ast.BinaryExpr:
		// Comparisons (sp != nil) read the pointer, nothing more.
		return useNeutral
	default:
		// Call argument, return operand, composite literal, &sp, channel
		// send, index — all can carry the span out of the function.
		return useEscape
	}
}

// isSpanProducer reports whether call starts a span the caller owns: a
// Start* call producing a span value (directly or in a tuple).
func isSpanProducer(pass *analysis.Pass, call *ast.CallExpr) bool {
	if !isStartCall(call) {
		return false
	}
	switch t := pass.TypesInfo.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isSpanType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isSpanType(t)
	}
}

// isStartCall reports whether the callee's name starts with "Start" —
// the producer naming convention that separates span creation
// (StartRoot, StartChild, StartTraceSpan) from span retrieval
// (SpanFromContext), whose result the caller does not own.
func isStartCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	return len(name) >= 5 && name[:5] == "Start"
}

// isSpanType reports whether t is (a pointer to) a named span type —
// TraceSpan or Span — declared in a package whose name is "obs".
func isSpanType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return false
	}
	return obj.Name() == "TraceSpan" || obj.Name() == "Span"
}
