package lint

import (
	"go/ast"

	"iddqsyn/internal/lint/analysis"
)

// CloseCheck flags statements that discard the error of a Close or Sync
// call. The crash-safe checkpoint protocol (write temp file, Sync, Close,
// rename) is only atomic if every one of those errors is observed: a
// full disk surfaces at Sync/Close time, and swallowing it turns "the old
// checkpoint is intact" into "the new checkpoint is silently truncated".
//
// Without type information the check cannot distinguish a writable file
// from a read-only one, so it flags every bare `x.Close()` / `x.Sync()`
// expression statement. Read-side closes where the error is genuinely
// irrelevant state that explicitly with `_ = f.Close()`; deferred closes
// are left to the author (the idiomatic read-path `defer f.Close()` is
// fine, and write paths in this codebase close explicitly before rename).
var CloseCheck = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "flag Close/Sync calls whose error is silently discarded; atomic " +
		"checkpoint writes depend on observing them (use `_ = f.Close()` to " +
		"discard deliberately on read-only paths)",
	Run: runCloseCheck,
}

func runCloseCheck(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name := sel.Sel.Name; name == "Close" || name == "Sync" {
				pass.Reportf(stmt.Pos(),
					"error from %s() is discarded; check it, or discard explicitly with `_ =` on read-only paths",
					exprString(sel))
			}
			return true
		})
	}
	return nil, nil
}

// exprString renders a selector chain like "f.Close" for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	}
	return "expr"
}
