package lint

import (
	"go/ast"
	"go/types"

	"iddqsyn/internal/lint/analysis"
)

// CloseCheck flags statements that discard the error of a Close, Sync or
// Shutdown call. The crash-safe checkpoint protocol (write temp file,
// Sync, Close, rename) is only atomic if every one of those errors is
// observed: a full disk surfaces at Sync/Close time, and swallowing it
// turns "the old checkpoint is intact" into "the new checkpoint is
// silently truncated". Shutdown is the same discipline for servers — the
// debug HTTP server's graceful drain reports its failure (a hung
// connection, an expired context) through the Shutdown error, and a
// dropped one hides that the process exited with requests on the floor.
//
// Type information cannot distinguish a writable file from a read-only
// one, so the check flags every bare `x.Close()` / `x.Sync()` expression
// statement whose callee actually returns something, and `x.Shutdown(...)`
// with any argument count. Callees that return no values (a broadcaster's
// fire-and-forget Close, a queue shutdown) have no error to observe and
// are skipped. Read-side closes where the error is genuinely irrelevant
// state that explicitly with `_ = f.Close()`; deferred closes are left to
// the author (the idiomatic read-path `defer f.Close()` is fine, and
// write paths in this codebase close explicitly before rename) — but a
// deferred Shutdown is flagged, because its error can never reach a
// caller.
var CloseCheck = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "flag Close/Sync/Shutdown calls whose error is silently discarded; " +
		"atomic checkpoint writes and graceful server drains depend on " +
		"observing them (use `_ =` to discard deliberately on read-only paths)",
	Run: runCloseCheck,
}

func runCloseCheck(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if sel, ok := discardedCall(stmt.X); ok && returnsValue(pass, sel) {
					pass.Reportf(stmt.Pos(),
						"error from %s() is discarded; check it, or discard explicitly with `_ =` on read-only paths",
						exprString(sel))
				}
			case *ast.DeferStmt:
				// Only Shutdown: a deferred Close is the idiomatic read
				// path, but a deferred Shutdown drops the drain error with
				// no way to observe it.
				if sel, ok := callSelector(stmt.Call); ok && sel.Sel.Name == "Shutdown" &&
					returnsValue(pass, sel) {
					pass.Reportf(stmt.Pos(),
						"error from deferred %s() is discarded; shut down explicitly (or in a deferred func) and check the error",
						exprString(sel))
				}
			}
			return true
		})
	}
	return nil, nil
}

// discardedCall reports whether expr is a call whose error closecheck
// considers discarded when used as a bare statement: Close/Sync with no
// arguments, or Shutdown with any (it typically takes a context).
func discardedCall(expr ast.Expr) (*ast.SelectorExpr, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	switch sel.Sel.Name {
	case "Close", "Sync":
		return sel, len(call.Args) == 0
	case "Shutdown":
		return sel, true
	}
	return nil, false
}

// returnsValue reports whether the selected callee returns at least one
// value. A Close/Shutdown that returns nothing has no error to discard.
// Missing type info (a broken package under analysis) defaults to true,
// preserving the analyzer's old syntactic behavior.
func returnsValue(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if pass.TypesInfo == nil {
		return true
	}
	sig, ok := pass.TypesInfo.TypeOf(sel).(*types.Signature)
	if !ok {
		return true
	}
	return sig.Results().Len() > 0
}

// callSelector unwraps a call's selector function, if it has one.
func callSelector(call *ast.CallExpr) (*ast.SelectorExpr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return sel, ok
}

// exprString renders a selector chain like "f.Close" for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	}
	return "expr"
}
