package lint

import (
	"go/ast"
	"strings"

	"iddqsyn/internal/lint/analysis"
)

// PanicPolicy forbids panic in library code. The blessed exceptions are
// invariant helpers — functions whose name starts with "must"/"Must",
// following the stdlib convention that a must-function converts an
// impossible error into a crash — and init functions, where registration
// of static tables may legitimately refuse to start a broken binary.
// Everything else must return an error: the optimizer worker pools contain
// panics, but a panic that crosses a library API boundary kills hours of
// optimization work.
//
// The check is scoped to internal/... packages by the driver (see
// Applies); commands and examples may panic at top level.
var PanicPolicy = &analysis.Analyzer{
	Name: "panicpolicy",
	Doc: "forbid panic in internal/... library code except inside must()-style " +
		"invariant helpers and init functions; library failures are returned errors",
	Run: runPanicPolicy,
}

func runPanicPolicy(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		litNames := funcLitNames(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPanics(pass, fd.Body, blessedName(fd.Name.Name), litNames)
		}
	}
	return nil, nil
}

// blessedName reports whether a function name may contain panics.
func blessedName(name string) bool {
	return name == "init" ||
		strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must")
}

// funcLitNames maps function literals to the identifier they are bound to
// (`mustAdd := func(...) {...}` or `var mustAdd = func(...) {...}`), so a
// must-helper written as a closure is recognised too.
func funcLitNames(f *ast.File) map[*ast.FuncLit]string {
	out := map[*ast.FuncLit]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						if lit, ok := st.Rhs[i].(*ast.FuncLit); ok {
							out[lit] = id.Name
						}
					}
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					if lit, ok := st.Values[i].(*ast.FuncLit); ok {
						out[lit] = st.Names[i].Name
					}
				}
			}
		}
		return true
	})
	return out
}

// checkPanics walks a function body, reporting panic calls unless the
// lexically innermost function (declaration or bound literal) is blessed.
func checkPanics(pass *analysis.Pass, body ast.Node, blessed bool, litNames map[*ast.FuncLit]string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			// Recurse with the literal's own blessing; prune this subtree
			// from the current walk.
			checkPanics(pass, nn.Body, blessedName(litNames[nn]), litNames)
			return false
		case *ast.CallExpr:
			if id, ok := nn.Fun.(*ast.Ident); ok && id.Name == "panic" && !blessed {
				pass.Reportf(nn.Pos(),
					"panic in library code: return an error, or move the invariant behind a must() helper")
			}
		}
		return true
	})
}
