package lint

import (
	"go/ast"

	"iddqsyn/internal/lint/analysis"
)

// RenameAtomic forbids direct os.Rename calls outside internal/fsx. The
// project's durability story — checkpoints and run snapshots that survive
// a crash at any instant — rests on one shared protocol: write to a temp
// file, fsync it, close it, rename it into place, fsync the directory
// (fsx.WriteAtomic / fsx.WriteAtomicRetry). A hand-rolled os.Rename
// almost always skips one of those steps (most often the fsyncs), which
// produces files that look atomic in tests and lose data on power loss.
// The check is syntactic: it flags every os.Rename selector call in
// non-test code; fsx itself (the one legitimate call site) is exempted
// through Applies, and a reasoned //lint:ignore renameatomic directive
// suppresses deliberate exceptions.
var RenameAtomic = &analysis.Analyzer{
	Name: "renameatomic",
	Doc: "forbid direct os.Rename outside internal/fsx: files must be published with " +
		"fsx.WriteAtomic/WriteAtomicRetry (temp file + fsync + rename + dir fsync) " +
		"so a crash can never expose a truncated or missing file",
	Run: runRenameAtomic,
}

func runRenameAtomic(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		osName := importName(f, "os")
		if osName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != osName || sel.Sel.Name != "Rename" {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct os.Rename skips the atomic-write protocol; publish the file with fsx.WriteAtomic or fsx.WriteAtomicRetry (or rename through an fsx.FS)")
			return true
		})
	}
	return nil, nil
}
