package lint_test

import (
	"testing"

	"iddqsyn/internal/lint"
	"iddqsyn/internal/lint/analysistest"
)

func TestNoRandGlobal(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoRandGlobal, "norandglobal")
}

func TestPanicPolicy(t *testing.T) {
	analysistest.Run(t, "testdata", lint.PanicPolicy, "panicpolicy")
}

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CtxLoop, "ctxloop")
}

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CloseCheck, "closecheck")
}

func TestRenameAtomic(t *testing.T) {
	analysistest.Run(t, "testdata", lint.RenameAtomic, "renameatomic")
}

// TestDetermTaint covers the determinism-scope package (base name
// "evolution", with cross-package facts from clocksrc and the obs
// exemption) and the *rand.Rand-parameter contract (package atpglike).
func TestDetermTaint(t *testing.T) {
	analysistest.Run(t, "testdata", lint.DetermTaint, "determtaint/evolution", "atpglike")
}

func TestErrWrapCheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.ErrWrapCheck, "errwrapcheck")
}

func TestMutexGuard(t *testing.T) {
	analysistest.Run(t, "testdata", lint.MutexGuard, "mutexguard")
}

// TestHotAlloc covers the reverse-wave call-graph analysis: the driver
// package declares the hotpath roots and dispatches through an interface;
// the kernel package becomes hot purely through facts exported by the
// driver, which is analyzed first because it is the dependent.
func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "hotalloc/driver", "hotalloc/kernel")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockOrder, "lockorder")
}

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, "testdata", lint.GoLeak, "goleak")
}

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SpanEnd, "spanend")
}

// TestSharedState covers the lockset analyzer's four finding shapes
// (guarded+bare, disjoint locks, atomic+plain, loop-spawned pool) and
// its silences (consistent guarding, single-owner fields, pre-spawn
// initialization, constructor locals, *Locked helpers).
func TestSharedState(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SharedState, "sharedstate")
}

// TestSharedStateCrossPackage pins the reverse-wave fact flow: app (the
// dependent, analyzed first) spawns a goroutine writing lib.Store.Val
// bare; lib sees only consistent guarded access locally and can flag
// the field only because app's access sites arrived as facts.
func TestSharedStateCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SharedState, "sharedstate/lib", "sharedstate/app")
}

// TestSharedStateRaceSeeds pins the analyzer to the seeded-race corpus
// at golden precision: every planted field carries a line-anchored want
// comment (the loader parses the corpus despite its raceseeds build
// tag). The coarser manifest-level assertion is
// TestRaceSeedCorpusFullyFlagged in racecheck_test.go.
func TestSharedStateRaceSeeds(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SharedState, "raceseeds")
}

func TestApplies(t *testing.T) {
	cases := []struct {
		analyzer string
		path     string
		want     bool
	}{
		{"panicpolicy", "iddqsyn/internal/atpg", true},
		{"panicpolicy", "iddqsyn/cmd/iddqpart", false},
		{"panicpolicy", "internal/lint", true},
		{"norandglobal", "iddqsyn/cmd/iddqsim", true},
		{"ctxloop", "iddqsyn/examples/sweep", true},
		{"closecheck", "iddqsyn/cmd/table1", true},
		{"renameatomic", "iddqsyn/internal/fsx", false},
		{"renameatomic", "internal/fsx", false},
		{"renameatomic", "iddqsyn/internal/evolution", true},
		{"renameatomic", "iddqsyn/cmd/iddqpart", true},
	}
	for _, c := range cases {
		a, ok := lint.ByName(c.analyzer)
		if !ok {
			t.Fatalf("unknown analyzer %q", c.analyzer)
		}
		if got := lint.Applies(a, c.path); got != c.want {
			t.Errorf("Applies(%s, %s) = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := lint.ByName("nosuch"); ok {
		t.Fatal("ByName(nosuch) succeeded")
	}
	if len(lint.Analyzers()) != 13 {
		t.Fatalf("expected 13 analyzers, got %d", len(lint.Analyzers()))
	}
	names := lint.Names()
	if len(names) != 14 || names[len(names)-1] != "lintdirective" {
		t.Fatalf("Names() = %v, want 13 analyzers plus lintdirective", names)
	}
}
