package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"iddqsyn/internal/lint/analysis"
)

// HotpathDirective is the comment prefix that declares a hot root:
//
//	//lint:hotpath <reason>
//
// in the doc comment of a function or method declaration. The reason is
// mandatory — it documents *why* the function's transitive callees must
// stay allocation-lean (e.g. "descendant evaluation loop, runs millions
// of times per optimization"). The hotalloc analyzer propagates a Hot
// fact from these roots over a conservative static call graph.
const HotpathDirective = "lint:hotpath"

// ParseHotpath parses one comment's text (with or without the leading
// //). It returns ok=false when the comment is not a hotpath directive at
// all, and malformed=true when it is one but carries no reason.
func ParseHotpath(text string) (reason string, ok, malformed bool) {
	text = strings.TrimPrefix(text, "//")
	if strings.HasPrefix(text, "/*") {
		text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
	}
	text = strings.TrimSpace(text)
	rest, isDir := strings.CutPrefix(text, HotpathDirective)
	if !isDir {
		return "", false, false
	}
	// Reject "lint:hotpathological": the directive must be followed by
	// whitespace (or nothing, which is the malformed case).
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false, false
	}
	reason = strings.TrimSpace(rest)
	if reason == "" {
		return "", true, true
	}
	return reason, true, false
}

// hotRoot is one function annotated //lint:hotpath.
type hotRoot struct {
	fn     fnInfo
	reason string
}

// collectHotRoots finds every hotpath-annotated function declaration in
// the package and reports directive hygiene violations: a directive with
// no reason, or one not attached to a function declaration.
func collectHotRoots(pass *analysis.Pass, funcs []fnInfo) []hotRoot {
	// Directives legitimately attached to a declaration's doc comment.
	attached := map[*ast.Comment]bool{}
	var roots []hotRoot
	for _, fn := range funcs {
		if fn.decl.Doc == nil {
			continue
		}
		for _, c := range fn.decl.Doc.List {
			reason, ok, malformed := ParseHotpath(c.Text)
			if !ok {
				continue
			}
			attached[c] = true
			if malformed {
				pass.Reportf(c.Pos(),
					"hotpath directive requires a reason: //lint:hotpath <why this call tree is performance-critical>")
				continue
			}
			roots = append(roots, hotRoot{fn: fn, reason: reason})
		}
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, ok, _ := ParseHotpath(c.Text); ok && !attached[c] {
					pass.Reportf(c.Pos(),
						"hotpath directive must be in the doc comment of a function or method declaration")
				}
			}
		}
	}
	return roots
}

// callees resolves the conservative static callee set of one function
// body: direct calls (functions and methods), interface-dispatch calls
// (resolved to every concrete implementation visible from the caller's
// package), and function values referenced without being called (they may
// be invoked by whatever they are passed to). Function literals are not
// edges — their bodies belong to the enclosing function and are walked
// in place by the caller's analysis.
func callees(pass *analysis.Pass, body ast.Node, impl *implIndex) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	// Funs of direct calls, so bare references can be told apart.
	calledFuns := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok {
			calledFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			callee := calleeFuncOf(pass, nn)
			if callee == nil {
				return true
			}
			if isInterfaceMethod(callee) {
				for _, m := range impl.implementations(callee) {
					add(m)
				}
				return true
			}
			add(callee)
		case *ast.Ident:
			if calledFuns[ast.Expr(nn)] {
				return true
			}
			if fn, ok := pass.TypesInfo.Uses[nn].(*types.Func); ok {
				add(fn) // function value escapes: assume it gets called
			}
		case *ast.SelectorExpr:
			if calledFuns[ast.Expr(nn)] {
				return true
			}
			if sel, ok := pass.TypesInfo.Selections[nn]; ok {
				if fn, ok := sel.Obj().(*types.Func); ok {
					add(fn) // method value: assume it gets called
				}
			}
		}
		return true
	})
	return out
}

// calleeFuncOf resolves a call's static callee as a *types.Func (nil for
// builtins, conversions and calls of function-typed values).
func calleeFuncOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
	return isIface
}

// implIndex resolves interface methods to the concrete methods
// implementing them, over every named type visible from the analyzed
// package: its own scope plus the scopes of its (transitively) imported
// packages. Implementations defined in packages that *depend on* the
// analyzed one are invisible — the conservative gap of a non-whole-program
// call graph — which is acceptable here because hot roots and the
// interfaces they dispatch through live in the same import subtree.
type implIndex struct {
	named []*types.Named
	cache map[*types.Func][]*types.Func
}

func newImplIndex(pkg *types.Package) *implIndex {
	idx := &implIndex{cache: map[*types.Func][]*types.Func{}}
	seen := map[*types.Package]bool{}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok && named.NumMethods() > 0 {
				idx.named = append(idx.named, named)
			}
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	visit(pkg)
	return idx
}

// implementations returns the concrete methods that an interface-method
// call could dispatch to.
func (idx *implIndex) implementations(ifaceMethod *types.Func) []*types.Func {
	if ms, ok := idx.cache[ifaceMethod]; ok {
		return ms
	}
	iface, _ := ifaceMethod.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	var out []*types.Func
	if iface != nil {
		for _, named := range idx.named {
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, ifaceMethod.Pkg(), ifaceMethod.Name())
			if m, ok := obj.(*types.Func); ok {
				out = append(out, m)
			}
		}
	}
	idx.cache[ifaceMethod] = out
	return out
}
