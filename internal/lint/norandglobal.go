package lint

import (
	"go/ast"

	"iddqsyn/internal/lint/analysis"
)

// randGlobals lists the math/rand (and math/rand/v2) package-level
// functions that consume or mutate the process-global generator state, or
// that draw from a stream the caller did not construct. Using any of them
// in non-test code breaks the determinism contract: every random decision
// must come from an injected *rand.Rand built on a seeded (and, in the
// optimizer, counted) source, or checkpoint resume stops being
// bit-identical.
var randGlobals = map[string]bool{
	// math/rand top-level functions.
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true,
}

// wallClockSeeds are selector calls that, used as a rand seed, make the
// stream unreproducible.
var wallClockSeeds = map[string]map[string]bool{
	"time": {"Now": true},
	"os":   {"Getpid": true},
}

// NoRandGlobal forbids the process-global math/rand stream and
// wall-clock-seeded sources in non-test code.
var NoRandGlobal = &analysis.Analyzer{
	Name: "norandglobal",
	Doc: "forbid math/rand top-level functions and time-seeded sources in non-test code: " +
		"all randomness must flow through an injected, explicitly seeded *rand.Rand " +
		"(the optimizer's counted stream) so interrupted runs resume bit-identically",
	Run: runNoRandGlobal,
}

func runNoRandGlobal(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		randName := importName(f, "math/rand")
		if randName == "" {
			randName = importName(f, "math/rand/v2")
		}
		timeName := importName(f, "time")
		osName := importName(f, "os")
		if randName == "" {
			continue
		}
		if randName == "." {
			pass.Reportf(f.Pos(), "dot-import of math/rand hides global stream use; import it by name")
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != randName {
				return true
			}
			if randGlobals[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the process-global math/rand stream; use an injected seeded *rand.Rand instead",
					randName, sel.Sel.Name)
			}
			return true
		})
		// Seed expressions of rand.NewSource / rand.NewPCG / rand.New must
		// not be derived from the wall clock or the process identity.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != randName {
				return true
			}
			switch sel.Sel.Name {
			case "NewSource", "NewPCG", "NewChaCha8":
			default:
				return true
			}
			for _, arg := range call.Args {
				if bad := findWallClock(arg, timeName, osName); bad != "" {
					pass.Reportf(call.Pos(),
						"rand source seeded from %s is not reproducible; derive the seed from configuration",
						bad)
				}
			}
			return true
		})
	}
	return nil, nil
}

// findWallClock reports the first wall-clock/process-identity call inside
// expr ("" if none).
func findWallClock(expr ast.Expr, timeName, osName string) string {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch {
		case pkg.Name == timeName && wallClockSeeds["time"][sel.Sel.Name]:
			found = "time." + sel.Sel.Name + "()"
		case pkg.Name == osName && wallClockSeeds["os"][sel.Sel.Name]:
			found = "os." + sel.Sel.Name + "()"
		}
		return found == ""
	})
	return found
}
