package fsx

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWriteAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	want := []byte(`{"hello":"world"}`)
	if err := WriteAtomic(nil, path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("read back %q, want %q", got, want)
	}
	// Overwrite: the previous content must be fully replaced.
	want2 := []byte(`{"v":2}`)
	if err := WriteAtomic(nil, path, want2); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != string(want2) {
		t.Errorf("after overwrite read %q, want %q", got, want2)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want only the destination", len(entries))
	}
}

// failFS injects an error on the nth call of one operation, leaving every
// other operation real.
type failFS struct {
	OS
	op    string
	calls int
	at    int
}

func (f *failFS) hit(op string) bool {
	if op != f.op {
		return false
	}
	f.calls++
	return f.calls == f.at
}

func (f *failFS) CreateTemp(dir, pattern string) (File, error) {
	if f.hit("create") {
		return nil, errors.New("injected create failure")
	}
	return f.OS.CreateTemp(dir, pattern)
}

func (f *failFS) Rename(o, n string) error {
	if f.hit("rename") {
		return errors.New("injected rename failure")
	}
	return f.OS.Rename(o, n)
}

func (f *failFS) SyncDir(dir string) error {
	if f.hit("syncdir") {
		return errors.New("injected dir-sync failure")
	}
	return f.OS.SyncDir(dir)
}

func TestWriteAtomicFailureLeavesDestinationIntact(t *testing.T) {
	for _, op := range []string{"create", "rename", "syncdir"} {
		t.Run(op, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.bin")
			prev := []byte("previous good content")
			if err := os.WriteFile(path, prev, 0o644); err != nil {
				t.Fatal(err)
			}
			err := WriteAtomic(&failFS{op: op, at: 1}, path, []byte("new content"))
			if err == nil {
				t.Fatal("injected failure must surface")
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			// A syncdir failure happens after the rename landed; every
			// earlier failure must leave the previous content visible.
			if op != "syncdir" && string(got) != string(prev) {
				t.Errorf("destination changed to %q on a failed write", got)
			}
			// No orphaned temp files in either case.
			entries, _ := os.ReadDir(dir)
			for _, e := range entries {
				if strings.Contains(e.Name(), ".tmp") {
					t.Errorf("orphaned temp file %s", e.Name())
				}
			}
		})
	}
}

func TestWriteAtomicRetryMasksTransientFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	var retries []int
	var slept []time.Duration
	pol := &RetryPolicy{
		Attempts:  3,
		BaseDelay: time.Millisecond,
		Sleep:     func(d time.Duration) { slept = append(slept, d) },
		OnRetry:   func(attempt int, err error) { retries = append(retries, attempt) },
	}
	err := WriteAtomicRetry(&failFS{op: "rename", at: 1}, path, []byte("ok"), pol)
	if err != nil {
		t.Fatalf("one transient fault under 3 attempts must succeed: %v", err)
	}
	if len(retries) != 1 || retries[0] != 2 {
		t.Errorf("OnRetry calls = %v, want [2]", retries)
	}
	if len(slept) != 1 || slept[0] != time.Millisecond {
		t.Errorf("slept = %v, want [1ms]", slept)
	}
	if got, _ := os.ReadFile(path); string(got) != "ok" {
		t.Errorf("destination = %q after masked fault", got)
	}
}

func TestWriteAtomicRetryExhaustsAndNamesAttempts(t *testing.T) {
	dir := t.TempDir()
	pol := &RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond, Sleep: func(time.Duration) {}}
	// Persistent fault: every create fails.
	fs := &persistentFailFS{}
	err := WriteAtomicRetry(fs, filepath.Join(dir, "x"), []byte("x"), pol)
	if err == nil {
		t.Fatal("persistent fault must exhaust the retries")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error %q should name the attempt count", err)
	}
	if fs.calls != 3 {
		t.Errorf("made %d attempts, want 3", fs.calls)
	}
}

type persistentFailFS struct {
	OS
	calls int
}

func (f *persistentFailFS) CreateTemp(dir, pattern string) (File, error) {
	f.calls++
	return nil, fmt.Errorf("injected persistent failure %d", f.calls)
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	pol := &RetryPolicy{BaseDelay: 2 * time.Millisecond, MaxDelay: 5 * time.Millisecond}
	if d := pol.backoff(2); d != 2*time.Millisecond {
		t.Errorf("backoff(2) = %v, want 2ms", d)
	}
	if d := pol.backoff(3); d != 4*time.Millisecond {
		t.Errorf("backoff(3) = %v, want 4ms", d)
	}
	if d := pol.backoff(4); d != 5*time.Millisecond {
		t.Errorf("backoff(4) = %v, want the 5ms cap", d)
	}
}

// SweepTemp must remove stranded atomic-write temps (old mtime, or any
// age when olderThan is zero) and must never touch a live temp — one
// young enough that a concurrent WriteAtomic could still be writing it.
func TestSweepTempRemovesStrandedKeepsLive(t *testing.T) {
	dir := t.TempDir()
	stale := time.Now().Add(-time.Hour)
	stranded := []string{"journal.json.tmp123", "result-ab.json.tmp9"}
	for _, name := range stranded {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, stale, stale); err != nil {
			t.Fatal(err)
		}
	}
	live := filepath.Join(dir, "spec-cd.json.tmp42")
	if err := os.WriteFile(live, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "journal-00000001.seg")
	if err := os.WriteFile(keep, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(keep, stale, stale); err != nil {
		t.Fatal(err)
	}

	removed, err := SweepTemp(nil, dir, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(stranded) {
		t.Fatalf("removed %d temps, want %d", removed, len(stranded))
	}
	for _, name := range stranded {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stranded temp %s survived the sweep", name)
		}
	}
	if _, err := os.Stat(live); err != nil {
		t.Errorf("live temp removed: %v", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("non-temp file removed: %v", err)
	}

	// olderThan zero is the startup sweep: no writer can be live, so
	// every temp goes, however young.
	removed, err = SweepTemp(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("startup sweep removed %d, want 1", removed)
	}
	if _, err := os.Stat(live); !errors.Is(err, os.ErrNotExist) {
		t.Error("startup sweep left the remaining temp behind")
	}
}

// OpenAppend must append across separate opens — the journal's active
// segment reopens after every restart.
func TestOpenAppendAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	for _, chunk := range []string{"one", "two"} {
		f, err := OpenAppend(nil, path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "onetwo" {
		t.Fatalf("appended content %q, want %q", got, "onetwo")
	}
}
