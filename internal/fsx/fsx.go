// Package fsx is the shared crash-safe file-publication layer of iddqsyn.
// Every durable artifact of a run — optimizer checkpoints, -metrics run
// snapshots, study reports — is published through WriteAtomic, which
// implements the full atomic-write protocol: write a sibling temp file,
// fsync it, close it, rename it over the destination, and fsync the
// directory so the rename itself is durable. A crash at any point leaves
// either the previous file or the new one visible, never a truncated or
// empty hybrid (without the file fsync, ext4-style delayed allocation can
// expose a zero-length destination after a crash; without the directory
// fsync, the rename may be lost entirely).
//
// The protocol runs over a small FS interface instead of package os
// directly, so the chaos fault-injection framework (internal/chaos) can
// interpose short writes, fsync failures and torn renames on exactly the
// operations the protocol depends on. Production code passes nil (the
// real filesystem); nothing else changes.
//
// WriteAtomicRetry adds bounded retry with exponential, optionally
// jittered backoff: the whole WriteAtomic sequence is idempotent (each
// attempt uses a fresh temp file and the destination only changes on a
// completed rename), so transient I/O errors — a full disk being cleaned
// up, a flaky network filesystem — are retried as a unit.
//
// The renameatomic lint analyzer (cmd/iddqlint) flags any os.Rename
// outside this package, so no file-publication path can silently bypass
// the protocol.
package fsx

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// File is the writable temp-file surface WriteAtomic needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem surface of the atomic-write protocol. A nil FS
// everywhere in this package means OS{} — the real filesystem.
type FS interface {
	// CreateTemp creates a new temp file in dir (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (cleanup of orphaned temp files).
	Remove(name string) error
	// SyncDir makes a completed rename in dir durable (fsync the
	// directory). Filesystems that do not support directory fsync report
	// success.
	SyncDir(dir string) error
}

// AppendFS is the optional append surface of an FS. The segmented job
// journal (internal/serve) appends records to an active segment file
// with an fsync per record — a different durability shape than the
// whole-file atomic-write protocol, but with the same need for fault
// injection, so chaos filesystems implement this too. An FS that does
// not implement AppendFS falls back to the real filesystem.
type AppendFS interface {
	// OpenAppend opens name for appending, creating it (0o644) if needed.
	OpenAppend(name string) (File, error)
}

// OpenAppend opens path for appending through fs when it implements
// AppendFS, and through the real filesystem otherwise.
func OpenAppend(fs FS, path string) (File, error) {
	if a, ok := orOS(fs).(AppendFS); ok {
		return a.OpenAppend(path)
	}
	return OS{}.OpenAppend(path)
}

// OS is the real filesystem.
type OS struct{}

// CreateTemp creates a temp file with os.CreateTemp.
func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenAppend opens with os.OpenFile in append mode.
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Rename renames with os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes with os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// SyncDir opens dir and fsyncs it, making renames inside it durable.
// Filesystems that refuse directory fsync (EINVAL/ENOTSUP) are treated as
// success — there is nothing more the protocol can do on them.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}

// orOS resolves a nil FS to the real filesystem.
func orOS(fs FS) FS {
	if fs == nil {
		return OS{}
	}
	return fs
}

// WriteAtomic publishes data at path via the crash-safe protocol: temp
// file in the destination directory, write, fsync, close, rename over
// path, fsync the directory. On any error the destination is untouched
// (the previous content, if any, stays visible) and the temp file is
// removed on a best-effort basis.
func WriteAtomic(fs FS, path string, data []byte) error {
	fs = orOS(fs)
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fsx: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	renamed := false
	defer func() {
		if !renamed {
			_ = fs.Remove(tmpName) // best-effort cleanup; the write error is the one worth reporting
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // the write error is the one worth reporting
		return fmt.Errorf("fsx: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // the sync error is the one worth reporting
		return fmt.Errorf("fsx: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fsx: close %s: %w", path, err)
	}
	if err := fs.Rename(tmpName, path); err != nil {
		return fmt.Errorf("fsx: rename %s over %s: %w", tmpName, path, err)
	}
	renamed = true
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("fsx: sync dir %s: %w", dir, err)
	}
	return nil
}

// Default retry-policy values (see RetryPolicy).
const (
	DefaultAttempts  = 3
	DefaultBaseDelay = 2 * time.Millisecond
	DefaultMaxDelay  = 100 * time.Millisecond
)

// RetryPolicy bounds the retries of WriteAtomicRetry. The zero value (or
// a nil policy) selects the defaults: 3 attempts, exponential backoff
// from 2ms capped at 100ms, no jitter, real sleeps.
type RetryPolicy struct {
	// Attempts is the total number of attempts including the first
	// (<= 0 selects DefaultAttempts).
	Attempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry (<= 0 selects DefaultBaseDelay).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (<= 0 selects DefaultMaxDelay).
	MaxDelay time.Duration
	// Jitter, if non-nil, spreads each backoff uniformly over
	// [d/2, 3d/2) to decorrelate concurrent retriers. It is an injected,
	// seeded source (the norandglobal lint bans ambient randomness), and
	// it must not be shared across goroutines without the caller's own
	// locking.
	Jitter *rand.Rand
	// Sleep replaces time.Sleep (tests; nil = time.Sleep).
	Sleep func(time.Duration)
	// OnRetry, if non-nil, observes every retry: the attempt about to run
	// (2-based) and the error that failed the previous one.
	OnRetry func(attempt int, err error)
}

func (p *RetryPolicy) attempts() int {
	if p == nil || p.Attempts <= 0 {
		return DefaultAttempts
	}
	return p.Attempts
}

// backoff returns the delay before attempt (2-based: backoff(2) precedes
// the first retry).
func (p *RetryPolicy) backoff(attempt int) time.Duration {
	base, max := DefaultBaseDelay, DefaultMaxDelay
	if p != nil && p.BaseDelay > 0 {
		base = p.BaseDelay
	}
	if p != nil && p.MaxDelay > 0 {
		max = p.MaxDelay
	}
	d := base
	for i := 2; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p != nil && p.Jitter != nil && d > 0 {
		d = d/2 + time.Duration(p.Jitter.Int63n(int64(d)))
	}
	return d
}

func (p *RetryPolicy) sleep(d time.Duration) {
	if p != nil && p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// SweepTemp removes stranded atomic-write temp files from dir: files
// whose name matches the WriteAtomic temp pattern (*.tmp*) and whose
// modification time is at least olderThan in the past. WriteAtomic
// removes its own temp on failure, but a crash between create and
// rename — or a Remove that itself fails — strands the temp forever;
// startup paths call this with olderThan zero (no concurrent writer can
// exist yet), periodic sweeps pass a conservative age so a temp another
// goroutine is actively writing is never removed. Returns the number of
// temps removed; the error, if any, is the first removal failure (the
// sweep keeps going — one stuck temp must not shield the rest).
func SweepTemp(fs FS, dir string, olderThan time.Duration) (int, error) {
	fs = orOS(fs)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("fsx: sweep %s: %w", dir, err)
	}
	cutoff := time.Now().Add(-olderThan)
	removed := 0
	var first error
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if ok, _ := filepath.Match("*.tmp*", e.Name()); !ok {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue // raced with its own removal
		}
		if olderThan > 0 && info.ModTime().After(cutoff) {
			continue // young enough to be live — leave it
		}
		if rerr := fs.Remove(filepath.Join(dir, e.Name())); rerr != nil {
			if first == nil && !errors.Is(rerr, os.ErrNotExist) {
				first = fmt.Errorf("fsx: sweep %s: %w", dir, rerr)
			}
			continue
		}
		removed++
	}
	return removed, first
}

// Do runs op under the policy's bounded retry (nil receiver = the
// defaults): every error is treated as transient until the attempt
// budget is spent. op must be idempotent-on-failure — each retry re-runs
// it whole. The returned error wraps the last failure and names the
// attempt count. WriteAtomicRetry is Do over WriteAtomic; the segmented
// journal uses Do around its append+fsync sequence, whose failure
// handler truncates the segment back so a retry starts clean.
func (p *RetryPolicy) Do(op func() error) error {
	n := p.attempts()
	var last error
	for attempt := 1; attempt <= n; attempt++ {
		if attempt > 1 {
			if p != nil && p.OnRetry != nil {
				p.OnRetry(attempt, last)
			}
			p.sleep(p.backoff(attempt))
		}
		if last = op(); last == nil {
			return nil
		}
	}
	return fmt.Errorf("fsx: failed after %d attempts: %w", n, last)
}

// WriteAtomicRetry is WriteAtomic with bounded retry: every error is
// treated as transient and the whole protocol is re-run (it is idempotent
// — the destination only ever changes on a completed rename). The
// returned error, after the final attempt, wraps the last failure and
// names the attempt count.
func WriteAtomicRetry(fs FS, path string, data []byte, pol *RetryPolicy) error {
	n := pol.attempts()
	var last error
	for attempt := 1; attempt <= n; attempt++ {
		if attempt > 1 {
			if pol != nil && pol.OnRetry != nil {
				pol.OnRetry(attempt, last)
			}
			pol.sleep(pol.backoff(attempt))
		}
		if last = WriteAtomic(fs, path, data); last == nil {
			return nil
		}
	}
	return fmt.Errorf("fsx: write %s failed after %d attempts: %w", path, n, last)
}
