// Package partcheck statically verifies PART-IDDQ partitions: given a
// netlist and a grouping of its logic gates into modules, it checks —
// without running any simulation — that the grouping is an exact cover,
// that the netlist it refers to is a consistent DAG, and that every
// module satisfies the estimator-derived feasibility bounds of §2/§3
// (discriminability against IDDQ,th, settling time, sensor area, peak
// current, and the Rs = r*/îDD,max rail-perturbation sizing identity).
//
// The checks deliberately do not trust the bookkeeping of package
// partition: the cover check re-counts gates from the raw groups, and
// the DAG check runs its own Kahn walk instead of the circuit's cached
// topological order. partcheck is the independent auditor that optimizer
// results, checkpoints and experiment reports are validated against, so
// it must not share failure modes with the code it audits.
package partcheck

import (
	"fmt"
	"math"
	"strings"

	"iddqsyn/internal/circuit"
	"iddqsyn/internal/estimate"
)

// Named constraints, reported in Violation.Constraint. Every violation
// names exactly one of these so that callers can fail loudly with the
// violated constraint spelled out.
const (
	ConstraintCover            = "gate-cover"        // exact cover of the logic-gate set
	ConstraintAdjacency        = "fanin-fanout"      // fanin/fanout cross-consistency
	ConstraintAcyclic          = "acyclic"           // netlist must be a DAG
	ConstraintDiscriminability = "discriminability"  // d(M) = IDDQ,th/IDDQ,nd ≥ d
	ConstraintSettle           = "settling-time"     // Δ(τ) ≤ limit
	ConstraintSensorArea       = "sensor-area"       // A0 + A1/Rs ≤ limit
	ConstraintPeakCurrent      = "peak-current"      // îDD,max ≤ limit
	ConstraintRailSizing       = "rail-perturbation" // Rs·îDD,max = r* identity
	ConstraintStaleEstimate    = "stale-estimate"    // cached estimates match recomputation
)

// Violation is one named constraint failure.
type Violation struct {
	Constraint string // one of the Constraint* names
	Module     int    // module index, or -1 for circuit/cover-level violations
	Detail     string // human-readable specifics
}

// String renders "constraint: detail" with the module named when known.
func (v Violation) String() string {
	if v.Module >= 0 {
		return fmt.Sprintf("%s: module %d: %s", v.Constraint, v.Module, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Constraint, v.Detail)
}

// Limits bounds the per-module estimates. A zero value disables that
// bound, so the zero Limits checks structure only.
type Limits struct {
	MinDiscriminability float64 // require d(M) ≥ this
	MaxSettle           float64 // require Δ(τ) ≤ this, s
	MaxSensorArea       float64 // require per-module sensor area ≤ this
	MaxPeakCurrent      float64 // require îDD,max ≤ this, A
}

// StructureOnly returns limits that check cover and netlist consistency
// but no estimator-derived bound — the right setting for checkpoint
// loads, where a mid-run population may legitimately hold infeasible
// individuals.
func StructureOnly() Limits { return Limits{} }

// Feasibility returns the limits matching the optimizer's feasibility
// constraint Γ(Π): minimum discriminability d, everything else
// unbounded — the right setting for final results.
func Feasibility(minDiscriminability float64) Limits {
	return Limits{MinDiscriminability: minDiscriminability}
}

// Report collects every violation found in one Verify run.
type Report struct {
	Circuit    string
	Modules    int
	Violations []Violation
}

// OK reports whether no constraint was violated.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, otherwise an error naming
// the first violated constraint and the total violation count.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	if len(r.Violations) == 1 {
		return fmt.Errorf("partcheck: %s: %s", r.Circuit, r.Violations[0])
	}
	return fmt.Errorf("partcheck: %s: %s (and %d more violations)",
		r.Circuit, r.Violations[0], len(r.Violations)-1)
}

// String renders the full violation list, one per line.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("partcheck: %s: %d modules, all constraints hold", r.Circuit, r.Modules)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "partcheck: %s: %d violations\n", r.Circuit, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "  %s\n", v)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// Verify checks groups against the circuit and, when e is non-nil and a
// bound in lim is set, against the per-module estimates. Structural
// violations (inconsistent netlist, non-cover grouping) suppress the
// module checks, because estimates over a broken grouping are
// meaningless.
func Verify(c *circuit.Circuit, groups [][]int, e *estimate.Estimator, lim Limits) *Report {
	r := &Report{Circuit: c.Name, Modules: len(groups)}
	checkAdjacency(c, r)
	checkAcyclic(c, r)
	checkCover(c, groups, r)
	if !r.OK() || e == nil {
		return r
	}
	for mi, gates := range groups {
		checkModule(e, mi, gates, lim, r)
	}
	return r
}

// VerifyStructure is Verify without estimator bounds.
func VerifyStructure(c *circuit.Circuit, groups [][]int) *Report {
	return Verify(c, groups, nil, StructureOnly())
}

// checkAdjacency validates the netlist's own bookkeeping: IDs match
// slice positions, every fanin/fanout reference is in range, primary
// inputs have no fanin, and the fanin and fanout lists mirror each
// other exactly (g drives h iff h lists g as a driver).
func checkAdjacency(c *circuit.Circuit, r *Report) {
	n := len(c.Gates)
	bad := func(format string, args ...interface{}) {
		r.Violations = append(r.Violations, Violation{
			Constraint: ConstraintAdjacency, Module: -1,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.ID != i {
			bad("gate at index %d carries ID %d", i, g.ID)
			return // indices are untrustworthy; stop before using them
		}
		if g.Type == circuit.Input && len(g.Fanin) > 0 {
			bad("primary input %s has %d fanin", g.Name, len(g.Fanin))
		}
		if g.Type != circuit.Input && len(g.Fanin) == 0 {
			bad("logic gate %s has no fanin", g.Name)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= n {
				bad("gate %s fanin %d out of range [0,%d)", g.Name, f, n)
				continue
			}
			if !contains(c.Gates[f].Fanout, i) {
				bad("gate %s lists %s as driver, but %s's fanout omits it",
					g.Name, c.Gates[f].Name, c.Gates[f].Name)
			}
		}
		for _, f := range g.Fanout {
			if f < 0 || f >= n {
				bad("gate %s fanout %d out of range [0,%d)", g.Name, f, n)
				continue
			}
			if !contains(c.Gates[f].Fanin, i) {
				bad("gate %s lists %s in fanout, but %s's fanin omits it",
					g.Name, c.Gates[f].Name, c.Gates[f].Name)
			}
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// checkAcyclic runs an independent Kahn walk over the fanin edges. It
// does not call Circuit.TopoOrder, which panics on cycles and caches its
// result — an auditor must be able to report a cyclic netlist.
func checkAcyclic(c *circuit.Circuit, r *Report) {
	n := len(c.Gates)
	indeg := make([]int, n)
	for i := range c.Gates {
		for _, f := range c.Gates[i].Fanin {
			if f >= 0 && f < n {
				indeg[i]++
			}
		}
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	visited := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		visited++
		for _, f := range c.Gates[id].Fanout {
			if f < 0 || f >= n {
				continue
			}
			indeg[f]--
			if indeg[f] == 0 {
				queue = append(queue, f)
			}
		}
	}
	if visited != n {
		var cyc []string
		for i, d := range indeg {
			if d > 0 && len(cyc) < 8 {
				cyc = append(cyc, c.Gates[i].Name)
			}
		}
		r.Violations = append(r.Violations, Violation{
			Constraint: ConstraintAcyclic, Module: -1,
			Detail: fmt.Sprintf("%d gates on cycles (e.g. %s)", n-visited, strings.Join(cyc, ", ")),
		})
	}
}

// checkCover verifies the grouping is an exact cover of the logic-gate
// set: every referenced ID is a real logic gate, no gate appears twice,
// no module is empty, and no logic gate is left out.
func checkCover(c *circuit.Circuit, groups [][]int, r *Report) {
	bad := func(mi int, format string, args ...interface{}) {
		r.Violations = append(r.Violations, Violation{
			Constraint: ConstraintCover, Module: mi,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	owner := make(map[int]int, c.NumLogicGates())
	for mi, gates := range groups {
		if len(gates) == 0 {
			bad(mi, "empty module")
			continue
		}
		for _, g := range gates {
			if g < 0 || g >= len(c.Gates) {
				bad(mi, "gate ID %d out of range [0,%d)", g, len(c.Gates))
				continue
			}
			if c.Gates[g].Type == circuit.Input {
				bad(mi, "primary input %s grouped as a logic gate", c.Gates[g].Name)
				continue
			}
			if prev, dup := owner[g]; dup {
				bad(mi, "gate %s already in module %d", c.Gates[g].Name, prev)
				continue
			}
			owner[g] = mi
		}
	}
	if missing := c.NumLogicGates() - len(owner); missing > 0 {
		var names []string
		for _, id := range c.LogicGates() {
			if _, ok := owner[id]; !ok && len(names) < 8 {
				names = append(names, c.Gates[id].Name)
			}
		}
		bad(-1, "%d of %d logic gates unassigned (e.g. %s)",
			missing, c.NumLogicGates(), strings.Join(names, ", "))
	}
}

// checkModule evaluates one module's estimates and tests each enabled
// bound, plus the Rs·îDD,max = r* sizing identity whenever the module
// draws current at all.
func checkModule(e *estimate.Estimator, mi int, gates []int, lim Limits, r *Report) {
	m := e.EvalModule(gates)
	bad := func(constraint, format string, args ...interface{}) {
		r.Violations = append(r.Violations, Violation{
			Constraint: constraint, Module: mi,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	if lim.MinDiscriminability > 0 {
		if d := m.Discriminability(e.P.IDDQth); d < lim.MinDiscriminability {
			bad(ConstraintDiscriminability,
				"d(M) = IDDQ,th/IDDQ,nd = %.3g/%.3g = %.3g < required %.3g",
				e.P.IDDQth, m.LeakND, d, lim.MinDiscriminability)
		}
	}
	if lim.MaxSettle > 0 && m.Settle > lim.MaxSettle {
		bad(ConstraintSettle, "Δ(τ) = %.3gs > limit %.3gs", m.Settle, lim.MaxSettle)
	}
	if lim.MaxSensorArea > 0 && m.SensorArea > lim.MaxSensorArea {
		bad(ConstraintSensorArea, "A0 + A1/Rs = %.4g > limit %.4g", m.SensorArea, lim.MaxSensorArea)
	}
	if lim.MaxPeakCurrent > 0 && m.IDDMax > lim.MaxPeakCurrent {
		bad(ConstraintPeakCurrent, "îDD,max = %.3gA > limit %.3gA", m.IDDMax, lim.MaxPeakCurrent)
	}
}

// CompareEstimate audits a caller-held module estimate — a partition's
// incrementally maintained cache, or figures deserialised from a report —
// against a fresh evaluation of the same gate set. It returns stale-value
// violations plus a check of the Rs·îDD,max = r* sizing identity, which
// is exact in the model: any drift means the cached estimates no longer
// describe the module they claim to.
func CompareEstimate(e *estimate.Estimator, mi int, got *estimate.Module) []Violation {
	var out []Violation
	bad := func(constraint, format string, args ...interface{}) {
		out = append(out, Violation{
			Constraint: constraint, Module: mi,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	if got.IDDMax > 0 && got.Rs > 0 {
		if rel := math.Abs(got.Rs*got.IDDMax-e.P.RailLimit) / e.P.RailLimit; rel > 1e-9 {
			bad(ConstraintRailSizing,
				"Rs·îDD,max = %.6g V, want r* = %.6g V (relative error %.2g)",
				got.Rs*got.IDDMax, e.P.RailLimit, rel)
		}
	}
	fresh := e.EvalModule(got.Gates)
	cmp := func(name string, gotV, want float64) {
		if !closeTo(gotV, want) {
			bad(ConstraintStaleEstimate, "%s = %.6g, recomputed %.6g", name, gotV, want)
		}
	}
	cmp("îDD,max", got.IDDMax, fresh.IDDMax)
	cmp("Rs", got.Rs, fresh.Rs)
	cmp("IDDQ,nd", got.LeakND, fresh.LeakND)
	cmp("sensor area", got.SensorArea, fresh.SensorArea)
	cmp("Δ(τ)", got.Settle, fresh.Settle)
	return out
}

// closeTo compares within float-noise relative tolerance.
func closeTo(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}
