package partcheck

import (
	"strings"
	"testing"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/partition"
)

func c17Estimator(t *testing.T) (*circuit.Circuit, *estimate.Estimator) {
	t.Helper()
	c := circuits.C17()
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		t.Fatal(err)
	}
	return c, estimate.New(a, estimate.DefaultParams())
}

// ids maps gate names to IDs.
func ids(t *testing.T, c *circuit.Circuit, names ...string) []int {
	t.Helper()
	out := make([]int, len(names))
	for i, n := range names {
		g, ok := c.GateByName(n)
		if !ok {
			t.Fatalf("no gate %q in %s", n, c.Name)
		}
		out[i] = g.ID
	}
	return out
}

func wantConstraint(t *testing.T, r *Report, constraint string) {
	t.Helper()
	if r.OK() {
		t.Fatalf("report unexpectedly clean, want %s violation", constraint)
	}
	for _, v := range r.Violations {
		if v.Constraint == constraint {
			return
		}
	}
	t.Errorf("no %s violation in report:\n%s", constraint, r)
}

func TestVerifyAcceptsPaperPartition(t *testing.T) {
	c, e := c17Estimator(t)
	groups := [][]int{
		ids(t, c, "g1", "g3", "g5"),
		ids(t, c, "g2", "g4", "g6"),
	}
	r := VerifyStructure(c, groups)
	if !r.OK() {
		t.Fatalf("paper partition rejected:\n%s", r)
	}
	if err := r.Err(); err != nil {
		t.Errorf("Err() = %v on a clean report", err)
	}
	// The same grouping with estimator bounds at the module's actual
	// values must also pass.
	d := e.EvalModule(groups[0]).Discriminability(e.P.IDDQth)
	if r := Verify(c, groups, e, Feasibility(d*0.9)); !r.OK() {
		t.Errorf("feasible partition rejected:\n%s", r)
	}
}

func TestVerifyRejectsOverlap(t *testing.T) {
	c, _ := c17Estimator(t)
	groups := [][]int{
		ids(t, c, "g1", "g3", "g5"),
		ids(t, c, "g2", "g4", "g6", "g1"), // g1 twice
	}
	r := VerifyStructure(c, groups)
	wantConstraint(t, r, ConstraintCover)
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), ConstraintCover) {
		t.Errorf("Err() = %v, want it to name %s", err, ConstraintCover)
	}
}

func TestVerifyRejectsMissingGate(t *testing.T) {
	c, _ := c17Estimator(t)
	groups := [][]int{
		ids(t, c, "g1", "g3", "g5"),
		ids(t, c, "g2", "g4"), // g6 unassigned
	}
	r := VerifyStructure(c, groups)
	wantConstraint(t, r, ConstraintCover)
	if !strings.Contains(r.String(), "g6") {
		t.Errorf("missing-gate report should name g6:\n%s", r)
	}
}

func TestVerifyRejectsBadGroupContents(t *testing.T) {
	c, _ := c17Estimator(t)
	full := [][]int{
		ids(t, c, "g1", "g2", "g3", "g4", "g5", "g6"),
	}
	for _, tc := range []struct {
		name   string
		groups [][]int
	}{
		{"empty module", append(full, []int{})},
		{"out of range", append(full, []int{999})},
		{"negative", append(full, []int{-1})},
		{"primary input", append(full, ids(t, c, "I1"))},
	} {
		r := VerifyStructure(c, tc.groups)
		if r.OK() {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		wantConstraint(t, r, ConstraintCover)
	}
}

// twoGateRing returns a hand-built netlist whose two NAND gates feed
// each other — adjacency-consistent but cyclic.
func twoGateRing() *circuit.Circuit {
	return &circuit.Circuit{
		Name: "ring",
		Gates: []circuit.Gate{
			{ID: 0, Name: "in", Type: circuit.Input, Fanout: []int{1}},
			{ID: 1, Name: "g1", Type: circuit.Nand, Fanin: []int{0, 2}, Fanout: []int{2}},
			{ID: 2, Name: "g2", Type: circuit.Nand, Fanin: []int{1}, Fanout: []int{1}},
		},
		Inputs:  []int{0},
		Outputs: []int{2},
	}
}

func TestVerifyRejectsCyclicNetlist(t *testing.T) {
	c := twoGateRing()
	r := VerifyStructure(c, [][]int{{1, 2}})
	wantConstraint(t, r, ConstraintAcyclic)
}

func TestVerifyRejectsInconsistentAdjacency(t *testing.T) {
	c := &circuit.Circuit{
		Name: "broken",
		Gates: []circuit.Gate{
			{ID: 0, Name: "in", Type: circuit.Input}, // fanout omits g1
			{ID: 1, Name: "g1", Type: circuit.Not, Fanin: []int{0}},
		},
		Inputs:  []int{0},
		Outputs: []int{1},
	}
	r := VerifyStructure(c, [][]int{{1}})
	wantConstraint(t, r, ConstraintAdjacency)

	c2 := &circuit.Circuit{
		Name: "badid",
		Gates: []circuit.Gate{
			{ID: 0, Name: "in", Type: circuit.Input, Fanout: []int{1}},
			{ID: 7, Name: "g1", Type: circuit.Not, Fanin: []int{0}}, // ID != index
		},
		Inputs:  []int{0},
		Outputs: []int{1},
	}
	r2 := VerifyStructure(c2, [][]int{{1}})
	wantConstraint(t, r2, ConstraintAdjacency)
}

func TestVerifyNamesInfeasibleDiscriminability(t *testing.T) {
	c, e := c17Estimator(t)
	groups := [][]int{ids(t, c, "g1", "g2", "g3", "g4", "g5", "g6")}
	d := e.EvalModule(groups[0]).Discriminability(e.P.IDDQth)
	r := Verify(c, groups, e, Feasibility(d*2))
	wantConstraint(t, r, ConstraintDiscriminability)
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), ConstraintDiscriminability) {
		t.Errorf("Err() = %v, want it to name %s", err, ConstraintDiscriminability)
	}
}

func TestVerifyModuleBounds(t *testing.T) {
	c, e := c17Estimator(t)
	groups := [][]int{ids(t, c, "g1", "g2", "g3", "g4", "g5", "g6")}
	m := e.EvalModule(groups[0])
	for _, tc := range []struct {
		constraint string
		lim        Limits
	}{
		{ConstraintSettle, Limits{MaxSettle: m.Settle / 2}},
		{ConstraintSensorArea, Limits{MaxSensorArea: m.SensorArea / 2}},
		{ConstraintPeakCurrent, Limits{MaxPeakCurrent: m.IDDMax / 2}},
	} {
		r := Verify(c, groups, e, tc.lim)
		wantConstraint(t, r, tc.constraint)
		// The same bound relaxed past the actual value must pass.
		relaxed := Limits{
			MaxSettle:      tc.lim.MaxSettle * 4,
			MaxSensorArea:  tc.lim.MaxSensorArea * 4,
			MaxPeakCurrent: tc.lim.MaxPeakCurrent * 4,
		}
		if r := Verify(c, groups, e, relaxed); !r.OK() {
			t.Errorf("%s: relaxed bound still rejected:\n%s", tc.constraint, r)
		}
	}
}

func TestCompareEstimateDetectsTampering(t *testing.T) {
	c, e := c17Estimator(t)
	m := e.EvalModule(ids(t, c, "g1", "g3", "g5"))
	if vs := CompareEstimate(e, 0, m); len(vs) != 0 {
		t.Fatalf("fresh estimate flagged: %v", vs)
	}
	tampered := *m
	tampered.Rs *= 1.5 // breaks Rs·îDD,max = r* and the recompute match
	vs := CompareEstimate(e, 0, &tampered)
	var gotRail, gotStale bool
	for _, v := range vs {
		switch v.Constraint {
		case ConstraintRailSizing:
			gotRail = true
		case ConstraintStaleEstimate:
			gotStale = true
		}
	}
	if !gotRail || !gotStale {
		t.Errorf("tampered Rs: rail=%v stale=%v, want both; got %v", gotRail, gotStale, vs)
	}
}

func TestVerifyPartitionAuditsLiveOptimizerState(t *testing.T) {
	c, e := c17Estimator(t)
	p, err := partition.New(e, [][]int{
		ids(t, c, "g1", "g3", "g5"),
		ids(t, c, "g2", "g4", "g6"),
	}, partition.PaperWeights(), partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if r := VerifyPartition(p, StructureOnly()); !r.OK() {
		t.Fatalf("fresh partition rejected:\n%s", r)
	}
	// Exercise the incremental-update path: move a gate and re-audit.
	g2 := ids(t, c, "g2")[0]
	if _, err := p.MoveGates([]int{g2}, 1, 0); err != nil {
		t.Fatal(err)
	}
	if r := VerifyPartition(p, StructureOnly()); !r.OK() {
		t.Fatalf("partition after MoveGates rejected:\n%s", r)
	}
	// Feasibility-limit verification must agree with the partition's own
	// feasibility predicate.
	lim := Feasibility(p.Cons.MinDiscriminability)
	if got := VerifyPartition(p, lim).OK(); got != p.Feasible() {
		t.Errorf("partcheck feasibility %v != partition.Feasible() %v", got, p.Feasible())
	}
}
