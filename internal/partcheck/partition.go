package partcheck

import (
	"iddqsyn/internal/partition"
)

// VerifyPartition audits a live Partition end to end: the netlist and
// exact-cover structure, the estimator-derived bounds in lim, and the
// partition's incrementally maintained module-estimate cache (which a
// long optimizer run updates thousands of times and must still agree
// with a from-scratch evaluation).
func VerifyPartition(p *partition.Partition, lim Limits) *Report {
	c := p.E.A.Circuit
	r := Verify(c, p.Groups(), p.E, lim)
	if !r.OK() {
		return r
	}
	for mi := 0; mi < p.NumModules(); mi++ {
		r.Violations = append(r.Violations, CompareEstimate(p.E, mi, p.ModuleEstimate(mi))...)
	}
	return r
}
