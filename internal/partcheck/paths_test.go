package partcheck

import (
	"strings"
	"testing"

	"iddqsyn/internal/partition"
)

// TestFailurePathNames is the table test over the auditor's failure
// classes: every one must surface its exact Constraint* name in both the
// violation list and the rendered error, because downstream consumers —
// ResumeContext's checkpoint rejection and iddqpart -verify's exit
// message — grep for these names verbatim.
func TestFailurePathNames(t *testing.T) {
	c, e := c17Estimator(t)
	all := ids(t, c, "g1", "g2", "g3", "g4", "g5", "g6")

	cases := []struct {
		name       string
		constraint string
		report     func(t *testing.T) *Report
	}{
		{
			name:       "gate-cover gap (dropped gate)",
			constraint: ConstraintCover,
			report: func(t *testing.T) *Report {
				return Verify(c, [][]int{all[:len(all)-1]}, e, StructureOnly())
			},
		},
		{
			name:       "gate-cover gap (duplicated gate)",
			constraint: ConstraintCover,
			report: func(t *testing.T) *Report {
				return Verify(c, [][]int{all, all[:1]}, e, StructureOnly())
			},
		},
		{
			name:       "gate-cover gap (unknown gate id)",
			constraint: ConstraintCover,
			report: func(t *testing.T) *Report {
				bad := append(append([]int(nil), all...), 9999)
				return Verify(c, [][]int{bad}, e, StructureOnly())
			},
		},
		{
			name:       "cycle in the netlist",
			constraint: ConstraintAcyclic,
			report: func(t *testing.T) *Report {
				ring := twoGateRing()
				return VerifyStructure(ring, [][]int{{1, 2}})
			},
		},
		{
			name:       "discriminability below target",
			constraint: ConstraintDiscriminability,
			report: func(t *testing.T) *Report {
				d := e.EvalModule(all).Discriminability(e.P.IDDQth)
				return Verify(c, [][]int{all}, e, Feasibility(d*2))
			},
		},
		{
			name:       "rail identity broken (tampered Rs)",
			constraint: ConstraintRailSizing,
			report: func(t *testing.T) *Report {
				m := e.EvalModule(ids(t, c, "g1", "g3", "g5"))
				tampered := *m
				tampered.Rs *= 1.5
				return &Report{Violations: CompareEstimate(e, 0, &tampered)}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.report(t)
			wantConstraint(t, r, tc.constraint)
			err := r.Err()
			if err == nil {
				t.Fatalf("Err() = nil, want an error naming %s", tc.constraint)
			}
			if !strings.Contains(err.Error(), tc.constraint) {
				t.Errorf("Err() = %q, want the exact constraint name %q", err, tc.constraint)
			}
			if !strings.Contains(r.String(), tc.constraint) {
				t.Errorf("String() = %q, want the exact constraint name %q", r, tc.constraint)
			}
		})
	}
}

// TestVerifyPartitionSurfacesDiscriminability walks the exact chain
// iddqpart -verify uses: the optimizer's live Partition goes through
// VerifyPartition with Feasibility(d), and the command's exit error is
// Report.Err() — so the constraint name must survive end to end.
func TestVerifyPartitionSurfacesDiscriminability(t *testing.T) {
	c, e := c17Estimator(t)
	p, err := partition.New(e, [][]int{
		ids(t, c, "g1", "g3", "g5"),
		ids(t, c, "g2", "g4", "g6"),
	}, partition.PaperWeights(), partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	r := VerifyPartition(p, Feasibility(p.WorstDiscriminability()*4))
	wantConstraint(t, r, ConstraintDiscriminability)
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), ConstraintDiscriminability) {
		t.Errorf("iddqpart -verify would report %v, want it to name %q", err, ConstraintDiscriminability)
	}
}
