package circuit

import (
	"fmt"
	"sort"
)

// Builder assembles a Circuit incrementally. Gates may be declared in any
// order; fanins are resolved by name at Build time, so forward references
// are allowed (the ISCAS85 format has them).
type Builder struct {
	name    string
	gates   []protoGate
	outputs []string
	byName  map[string]int
	err     error
}

type protoGate struct {
	name  string
	typ   GateType
	fanin []string
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]int)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("circuit %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// AddInput declares a primary input net.
func (b *Builder) AddInput(name string) *Builder {
	return b.add(name, Input, nil)
}

// AddGate declares a logic gate computing typ over the named fanin nets.
func (b *Builder) AddGate(name string, typ GateType, fanin ...string) *Builder {
	if typ == Input {
		b.fail("gate %q: use AddInput for primary inputs", name)
		return b
	}
	if len(fanin) == 0 {
		b.fail("gate %q: no fanin", name)
		return b
	}
	switch typ {
	case Buf, Not:
		if len(fanin) != 1 {
			b.fail("gate %q: %v takes exactly one fanin, got %d", name, typ, len(fanin))
			return b
		}
	default:
		if len(fanin) < 2 {
			b.fail("gate %q: %v takes at least two fanins, got %d", name, typ, len(fanin))
			return b
		}
	}
	return b.add(name, typ, fanin)
}

func (b *Builder) add(name string, typ GateType, fanin []string) *Builder {
	if b.err != nil {
		return b
	}
	if name == "" {
		b.fail("empty gate name")
		return b
	}
	if _, dup := b.byName[name]; dup {
		b.fail("duplicate gate %q", name)
		return b
	}
	b.byName[name] = len(b.gates)
	b.gates = append(b.gates, protoGate{name: name, typ: typ, fanin: fanin})
	return b
}

// MarkOutput declares an existing (or yet to be declared) net as a primary
// output. Marking the same net twice is an error.
func (b *Builder) MarkOutput(name string) *Builder {
	if b.err != nil {
		return b
	}
	for _, o := range b.outputs {
		if o == name {
			b.fail("duplicate output %q", name)
			return b
		}
	}
	b.outputs = append(b.outputs, name)
	return b
}

// Build resolves names, validates the netlist (known fanins, at least one
// input and one output, acyclic, no floating logic gate driving nothing
// and driven by nothing) and returns the immutable Circuit.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.gates) == 0 {
		return nil, fmt.Errorf("circuit %q: no gates", b.name)
	}
	c := &Circuit{
		Name:   b.name,
		Gates:  make([]Gate, len(b.gates)),
		byName: make(map[string]int, len(b.gates)),
	}
	for id, pg := range b.gates {
		c.byName[pg.name] = id
		c.Gates[id] = Gate{ID: id, Name: pg.name, Type: pg.typ}
		if pg.typ == Input {
			c.Inputs = append(c.Inputs, id)
		}
	}
	for id, pg := range b.gates {
		for _, fn := range pg.fanin {
			fid, ok := c.byName[fn]
			if !ok {
				return nil, fmt.Errorf("circuit %q: gate %q: unknown fanin %q", b.name, pg.name, fn)
			}
			if fid == id {
				return nil, fmt.Errorf("circuit %q: gate %q drives itself", b.name, pg.name)
			}
			c.Gates[id].Fanin = append(c.Gates[id].Fanin, fid)
			c.Gates[fid].Fanout = append(c.Gates[fid].Fanout, id)
		}
	}
	for id := range c.Gates {
		sort.Ints(c.Gates[id].Fanout)
		c.Gates[id].Fanout = dedupSorted(c.Gates[id].Fanout)
	}
	for _, on := range b.outputs {
		oid, ok := c.byName[on]
		if !ok {
			return nil, fmt.Errorf("circuit %q: OUTPUT names unknown net %q", b.name, on)
		}
		c.Outputs = append(c.Outputs, oid)
	}
	if len(c.Inputs) == 0 {
		return nil, fmt.Errorf("circuit %q: no primary inputs", b.name)
	}
	if len(c.Outputs) == 0 {
		return nil, fmt.Errorf("circuit %q: no primary outputs", b.name)
	}
	if err := c.checkAcyclic(); err != nil {
		return nil, err
	}
	return c, nil
}

// checkAcyclic verifies the netlist is a DAG via Kahn's algorithm and
// names one gate on a cycle if not.
func (c *Circuit) checkAcyclic() error {
	indeg := make([]int, len(c.Gates))
	for i := range c.Gates {
		indeg[i] = len(c.Gates[i].Fanin)
	}
	queue := make([]int, 0, len(c.Gates))
	for i := range c.Gates {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		seen++
		for _, f := range c.Gates[g].Fanout {
			indeg[f]--
			if indeg[f] == 0 {
				queue = append(queue, f)
			}
		}
	}
	if seen != len(c.Gates) {
		for i := range c.Gates {
			if indeg[i] > 0 {
				return fmt.Errorf("circuit %q: combinational cycle through gate %q", c.Name, c.Gates[i].Name)
			}
		}
	}
	return nil
}
