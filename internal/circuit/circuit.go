// Package circuit provides the gate-level netlist representation used by
// every other package in iddqsyn.
//
// A Circuit is a directed acyclic graph of gates. Primary inputs are
// modelled as gates of type Input with no fanin; every other gate computes
// a Boolean function of its fanins. Primary outputs are ordinary gates
// additionally listed in Circuit.Outputs, following the ISCAS85 convention
// where OUTPUT(n) names an existing net.
//
// The partitioning problem of the paper (PART-IDDQ) is defined over the
// logic gates only: primary inputs consume no supply current and are never
// assigned to a BIC-sensor module.
package circuit

import (
	"fmt"
	"sort"
)

// GateType enumerates the Boolean functions supported by the netlist.
// The set matches what the ISCAS85 benchmark format uses.
type GateType int

// Supported gate types.
const (
	Input GateType = iota // primary input (no fanin)
	Buf                   // identity
	Not                   // inverter
	And
	Nand
	Or
	Nor
	Xor
	Xnor
)

var gateTypeNames = [...]string{
	Input: "INPUT",
	Buf:   "BUF",
	Not:   "NOT",
	And:   "AND",
	Nand:  "NAND",
	Or:    "OR",
	Nor:   "NOR",
	Xor:   "XOR",
	Xnor:  "XNOR",
}

// String returns the ISCAS85 keyword for the gate type.
func (t GateType) String() string {
	if t < 0 || int(t) >= len(gateTypeNames) {
		return fmt.Sprintf("GateType(%d)", int(t))
	}
	return gateTypeNames[t]
}

// ParseGateType converts an ISCAS85 keyword (case-insensitive) to a
// GateType. The second result reports whether the keyword was recognised.
func ParseGateType(s string) (GateType, bool) {
	switch normalizeKeyword(s) {
	case "INPUT":
		return Input, true
	case "BUF", "BUFF":
		return Buf, true
	case "NOT", "INV":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR":
		return Xnor, true
	}
	return 0, false
}

func normalizeKeyword(s string) string {
	b := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		b[i] = c
	}
	return string(b)
}

// Eval computes the gate function over the fanin values. It panics for
// Input gates, which have no function. A Buf or Not gate uses only the
// first fanin value.
func (t GateType) Eval(in []bool) bool {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, x := range in {
			v = v || x
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, x := range in {
			v = v != x
		}
		if t == Xnor {
			return !v
		}
		return v
	}
	return mustEval(t)
}

// mustEval rejects an Eval call on a gate type with no Boolean function
// (Input, or a corrupted GateType value) — a caller invariant violation,
// not an input condition, so it panics per the project's panic policy.
func mustEval(t GateType) bool {
	panic("circuit: Eval on " + t.String())
}

// Inverting reports whether the gate output is the complement of the
// underlying monotone function (NAND, NOR, NOT, XNOR). It is used by the
// cell library to pick the pull-down network model.
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// Gate is one vertex of the netlist graph. Gates are identified by their
// dense integer ID, which doubles as the index into Circuit.Gates.
type Gate struct {
	ID     int
	Name   string
	Type   GateType
	Fanin  []int // driving gate IDs, in declaration order
	Fanout []int // driven gate IDs, sorted ascending
}

// Circuit is an immutable gate-level netlist. Construct one with a
// Builder; the zero value is an empty circuit.
type Circuit struct {
	Name    string
	Gates   []Gate // indexed by gate ID
	Inputs  []int  // IDs of primary-input gates, in declaration order
	Outputs []int  // IDs of gates observed as primary outputs

	byName map[string]int
	levels []int   // levelisation cache: longest path from any input
	order  []int   // topological order cache
	nbrs   [][]int // undirected logic-graph adjacency cache
}

// NumGates returns the total number of vertices including primary inputs.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumLogicGates returns the number of gates excluding primary inputs —
// the n of the paper, i.e. the objects being partitioned.
func (c *Circuit) NumLogicGates() int { return len(c.Gates) - len(c.Inputs) }

// LogicGates returns the IDs of all non-input gates in ascending order.
func (c *Circuit) LogicGates() []int {
	ids := make([]int, 0, c.NumLogicGates())
	for i := range c.Gates {
		if c.Gates[i].Type != Input {
			ids = append(ids, i)
		}
	}
	return ids
}

// GateByName looks a gate up by its netlist name.
func (c *Circuit) GateByName(name string) (*Gate, bool) {
	id, ok := c.byName[name]
	if !ok {
		return nil, false
	}
	return &c.Gates[id], true
}

// IsOutput reports whether gate id is observed as a primary output.
func (c *Circuit) IsOutput(id int) bool {
	for _, o := range c.Outputs {
		if o == id {
			return true
		}
	}
	return false
}

// TopoOrder returns a topological order of all gate IDs (inputs first).
// The slice is shared; callers must not modify it.
func (c *Circuit) TopoOrder() []int {
	if c.order != nil {
		return c.order
	}
	//lint:ignore hotalloc lazy cache: built once per circuit, every later hot-path call returns the cached slice
	indeg := make([]int, len(c.Gates))
	for i := range c.Gates {
		indeg[i] = len(c.Gates[i].Fanin)
	}
	//lint:ignore hotalloc lazy cache: built once per circuit
	queue := make([]int, 0, len(c.Gates))
	for i := range c.Gates {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	//lint:ignore hotalloc lazy cache: built once per circuit
	order := make([]int, 0, len(c.Gates))
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		order = append(order, g)
		for _, f := range c.Gates[g].Fanout {
			indeg[f]--
			if indeg[f] == 0 {
				queue = append(queue, f)
			}
		}
	}
	mustAcyclic(len(order) == len(c.Gates))
	c.order = order
	return order
}

// mustAcyclic asserts the levelisation invariant: a Circuit only exists
// after Builder validation proved it acyclic, so an incomplete topological
// order here means memory corruption or a bypassed Builder — an invariant
// violation, not an input condition.
func mustAcyclic(ok bool) {
	if !ok {
		panic("circuit: cycle in validated circuit")
	}
}

// Levels returns, for every gate, the length in gate stages of the longest
// path from any primary input (inputs are level 0). This is the unit-delay
// time grid of the paper's estimators. The slice is shared; callers must
// not modify it.
func (c *Circuit) Levels() []int {
	if c.levels != nil {
		return c.levels
	}
	//lint:ignore hotalloc lazy cache: built once per circuit, hot-path calls return the cached slice
	lv := make([]int, len(c.Gates))
	for _, g := range c.TopoOrder() {
		max := -1
		for _, f := range c.Gates[g].Fanin {
			if lv[f] > max {
				max = lv[f]
			}
		}
		lv[g] = max + 1
	}
	c.levels = lv
	return lv
}

// Depth returns the number of logic levels on the longest input→output
// path (the level of the deepest gate).
func (c *Circuit) Depth() int {
	d := 0
	for _, l := range c.Levels() {
		if l > d {
			d = l
		}
	}
	return d
}

// Neighbors returns the undirected neighbourhood of gate id restricted to
// logic gates (primary inputs are excluded, since the separation parameter
// of §3.3 is defined on the circuit graph being partitioned). The result
// is sorted and deduplicated; it is a shared cache entry, so callers must
// not modify it. Like the other lazy caches the whole table is built on
// first use — before the circuit is shared across optimizer goroutines —
// so the optimizers' move loops (which query neighbourhoods once per
// attempted mutation) read it without allocating.
func (c *Circuit) Neighbors(id int) []int {
	if c.nbrs == nil {
		//lint:ignore hotalloc lazy cache: the whole table is built on first use, then every move-loop query is allocation-free
		nbrs := make([][]int, len(c.Gates))
		for g := range c.Gates {
			nbrs[g] = c.neighborsOf(g)
		}
		c.nbrs = nbrs
	}
	return c.nbrs[id]
}

func (c *Circuit) neighborsOf(id int) []int {
	g := &c.Gates[id]
	//lint:ignore hotalloc runs only while Neighbors builds its one-time cache table
	out := make([]int, 0, len(g.Fanin)+len(g.Fanout))
	for _, f := range g.Fanin {
		if c.Gates[f].Type != Input {
			out = append(out, f)
		}
	}
	out = append(out, g.Fanout...)
	sort.Ints(out)
	return dedupSorted(out)
}

func dedupSorted(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}

// BoundedDistances runs a breadth-first search in the undirected logic
// graph from gate src and returns hop distances to every logic gate
// reachable within maxHops. Unreached gates are absent from the map.
// This implements the separation parameter S(gi, gj) of §3.3 before the
// cap ρ is applied.
func (c *Circuit) BoundedDistances(src, maxHops int) map[int]int {
	dist := map[int]int{src: 0}
	frontier := []int{src}
	for d := 1; d <= maxHops && len(frontier) > 0; d++ {
		var next []int
		for _, g := range frontier {
			for _, nb := range c.Neighbors(g) {
				if _, seen := dist[nb]; !seen {
					dist[nb] = d
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	return dist
}

// FaninCone returns the set of gate IDs (including primary inputs and g
// itself) that can reach gate g. It is used for cone extraction and for
// ATPG reasoning.
func (c *Circuit) FaninCone(g int) map[int]bool {
	cone := map[int]bool{g: true}
	stack := []int{g}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[x].Fanin {
			if !cone[f] {
				cone[f] = true
				stack = append(stack, f)
			}
		}
	}
	return cone
}

// Stats summarises a circuit for reports and generator validation.
type Stats struct {
	Name       string
	Inputs     int
	Outputs    int
	LogicGates int
	Depth      int
	ByType     map[GateType]int
	MaxFanin   int
	MaxFanout  int
}

// ComputeStats gathers the structural statistics of the circuit.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{
		Name:    c.Name,
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		ByType:  make(map[GateType]int),
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Type == Input {
			continue
		}
		s.LogicGates++
		s.ByType[g.Type]++
		if len(g.Fanin) > s.MaxFanin {
			s.MaxFanin = len(g.Fanin)
		}
	}
	for i := range c.Gates {
		if n := len(c.Gates[i].Fanout); n > s.MaxFanout {
			s.MaxFanout = n
		}
	}
	s.Depth = c.Depth()
	return s
}

// String implements fmt.Stringer with a one-line summary.
func (c *Circuit) String() string {
	return fmt.Sprintf("%s: %d inputs, %d outputs, %d gates, depth %d",
		c.Name, len(c.Inputs), len(c.Outputs), c.NumLogicGates(), c.Depth())
}
