package circuit

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildC17 constructs the ISCAS85 C17 circuit used throughout the paper's
// running example (figures 3-5): six NAND gates g1..g6, inputs I1..I5.
func buildC17(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("c17")
	for _, in := range []string{"I1", "I2", "I3", "I4", "I5"} {
		b.AddInput(in)
	}
	b.AddGate("g1", Nand, "I1", "I3")
	b.AddGate("g2", Nand, "I3", "I4")
	b.AddGate("g3", Nand, "I2", "g2")
	b.AddGate("g4", Nand, "g2", "I5")
	b.AddGate("g5", Nand, "g1", "g3")
	b.AddGate("g6", Nand, "g3", "g4")
	b.MarkOutput("g5").MarkOutput("g6")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestBuildC17(t *testing.T) {
	c := buildC17(t)
	if got := c.NumGates(); got != 11 {
		t.Errorf("NumGates = %d, want 11", got)
	}
	if got := c.NumLogicGates(); got != 6 {
		t.Errorf("NumLogicGates = %d, want 6", got)
	}
	if got := len(c.Inputs); got != 5 {
		t.Errorf("len(Inputs) = %d, want 5", got)
	}
	if got := len(c.Outputs); got != 2 {
		t.Errorf("len(Outputs) = %d, want 2", got)
	}
	g5, ok := c.GateByName("g5")
	if !ok {
		t.Fatal("g5 not found")
	}
	if !c.IsOutput(g5.ID) {
		t.Error("g5 should be a primary output")
	}
	g1, _ := c.GateByName("g1")
	if c.IsOutput(g1.ID) {
		t.Error("g1 should not be a primary output")
	}
}

func TestGateTypeEval(t *testing.T) {
	cases := []struct {
		typ  GateType
		in   []bool
		want bool
	}{
		{Buf, []bool{true}, true},
		{Buf, []bool{false}, false},
		{Not, []bool{true}, false},
		{Not, []bool{false}, true},
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{Nand, []bool{true, true}, false},
		{Nand, []bool{false, true}, true},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Nor, []bool{true, false}, false},
		{Xor, []bool{true, false}, true},
		{Xor, []bool{true, true}, false},
		{Xor, []bool{true, true, true}, true},
		{Xnor, []bool{true, false}, false},
		{Xnor, []bool{true, true}, true},
		{And, []bool{true, true, true, false}, false},
		{Or, []bool{false, false, false, true}, true},
	}
	for _, tc := range cases {
		if got := tc.typ.Eval(tc.in); got != tc.want {
			t.Errorf("%v.Eval(%v) = %v, want %v", tc.typ, tc.in, got, tc.want)
		}
	}
}

func TestGateTypeString(t *testing.T) {
	for typ, want := range map[GateType]string{
		Input: "INPUT", Nand: "NAND", Xnor: "XNOR", Buf: "BUF",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(typ), got, want)
		}
	}
	if got := GateType(99).String(); got != "GateType(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestParseGateType(t *testing.T) {
	for s, want := range map[string]GateType{
		"NAND": Nand, "nand": Nand, "Nor": Nor, "BUFF": Buf, "buf": Buf,
		"inv": Not, "NOT": Not, "and": And, "or": Or, "xor": Xor, "XNOR": Xnor,
		"input": Input,
	} {
		got, ok := ParseGateType(s)
		if !ok || got != want {
			t.Errorf("ParseGateType(%q) = %v,%v, want %v,true", s, got, ok, want)
		}
	}
	if _, ok := ParseGateType("MUX"); ok {
		t.Error("ParseGateType(MUX) should fail")
	}
}

func TestInverting(t *testing.T) {
	inverting := map[GateType]bool{
		Not: true, Nand: true, Nor: true, Xnor: true,
		Buf: false, And: false, Or: false, Xor: false, Input: false,
	}
	for typ, want := range inverting {
		if got := typ.Inverting(); got != want {
			t.Errorf("%v.Inverting() = %v, want %v", typ, got, want)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	c := buildC17(t)
	order := c.TopoOrder()
	if len(order) != c.NumGates() {
		t.Fatalf("order length %d, want %d", len(order), c.NumGates())
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for i := range c.Gates {
		for _, f := range c.Gates[i].Fanin {
			if pos[f] >= pos[i] {
				t.Errorf("gate %s at %d before fanin %s at %d",
					c.Gates[i].Name, pos[i], c.Gates[f].Name, pos[f])
			}
		}
	}
}

func TestLevels(t *testing.T) {
	c := buildC17(t)
	lv := c.Levels()
	want := map[string]int{
		"I1": 0, "I2": 0, "I3": 0, "I4": 0, "I5": 0,
		"g1": 1, "g2": 1, "g3": 2, "g4": 2, "g5": 3, "g6": 3,
	}
	for name, wl := range want {
		g, _ := c.GateByName(name)
		if lv[g.ID] != wl {
			t.Errorf("level(%s) = %d, want %d", name, lv[g.ID], wl)
		}
	}
	if d := c.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
}

func TestNeighbors(t *testing.T) {
	c := buildC17(t)
	// g3 fans in from I2 (input, excluded) and g2; fans out to g5, g6.
	g3, _ := c.GateByName("g3")
	g2, _ := c.GateByName("g2")
	g5, _ := c.GateByName("g5")
	g6, _ := c.GateByName("g6")
	got := c.Neighbors(g3.ID)
	want := []int{g2.ID, g5.ID, g6.ID}
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(g3) = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(g3) = %v, want %v", got, want)
		}
	}
}

func TestBoundedDistances(t *testing.T) {
	c := buildC17(t)
	g1, _ := c.GateByName("g1")
	g6, _ := c.GateByName("g6")
	dist := c.BoundedDistances(g1.ID, 10)
	// g1 -> g5 (1 hop), g5 -> g3 (2), g3 -> g2,g6 (3)
	g5, _ := c.GateByName("g5")
	g3, _ := c.GateByName("g3")
	if dist[g5.ID] != 1 {
		t.Errorf("dist(g1,g5) = %d, want 1", dist[g5.ID])
	}
	if dist[g3.ID] != 2 {
		t.Errorf("dist(g1,g3) = %d, want 2", dist[g3.ID])
	}
	if dist[g6.ID] != 3 {
		t.Errorf("dist(g1,g6) = %d, want 3", dist[g6.ID])
	}
	// With a tight cap, far gates must be absent.
	dist1 := c.BoundedDistances(g1.ID, 1)
	if _, ok := dist1[g6.ID]; ok {
		t.Error("g6 should be unreachable within 1 hop of g1")
	}
	if dist1[g1.ID] != 0 {
		t.Error("distance to self should be 0")
	}
}

func TestFaninCone(t *testing.T) {
	c := buildC17(t)
	g5, _ := c.GateByName("g5")
	cone := c.FaninCone(g5.ID)
	for _, name := range []string{"g5", "g1", "g3", "g2", "I1", "I2", "I3", "I4"} {
		g, _ := c.GateByName(name)
		if !cone[g.ID] {
			t.Errorf("%s should be in fanin cone of g5", name)
		}
	}
	for _, name := range []string{"I5", "g4", "g6"} {
		g, _ := c.GateByName(name)
		if cone[g.ID] {
			t.Errorf("%s should not be in fanin cone of g5", name)
		}
	}
}

func TestComputeStats(t *testing.T) {
	c := buildC17(t)
	s := c.ComputeStats()
	if s.LogicGates != 6 || s.Inputs != 5 || s.Outputs != 2 || s.Depth != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByType[Nand] != 6 {
		t.Errorf("ByType[Nand] = %d, want 6", s.ByType[Nand])
	}
	if s.MaxFanin != 2 {
		t.Errorf("MaxFanin = %d, want 2", s.MaxFanin)
	}
	// I3 drives g1 and g2; g2 drives g3 and g4; g3 drives g5 and g6.
	if s.MaxFanout != 2 {
		t.Errorf("MaxFanout = %d, want 2", s.MaxFanout)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate gate", func(t *testing.T) {
		_, err := NewBuilder("x").AddInput("a").AddInput("a").Build()
		if err == nil {
			t.Error("want error for duplicate gate")
		}
	})
	t.Run("unknown fanin", func(t *testing.T) {
		_, err := NewBuilder("x").AddInput("a").
			AddGate("g", Not, "missing").MarkOutput("g").Build()
		if err == nil {
			t.Error("want error for unknown fanin")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		_, err := NewBuilder("x").AddInput("a").
			AddGate("g", Nand, "a", "g").MarkOutput("g").Build()
		if err == nil {
			t.Error("want error for self loop")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		_, err := NewBuilder("x").AddInput("a").
			AddGate("g1", Nand, "a", "g2").
			AddGate("g2", Nand, "a", "g1").
			MarkOutput("g1").Build()
		if err == nil {
			t.Error("want error for combinational cycle")
		}
	})
	t.Run("no outputs", func(t *testing.T) {
		_, err := NewBuilder("x").AddInput("a").AddGate("g", Not, "a").Build()
		if err == nil {
			t.Error("want error for missing outputs")
		}
	})
	t.Run("no inputs", func(t *testing.T) {
		_, err := NewBuilder("x").Build()
		if err == nil {
			t.Error("want error for empty circuit")
		}
	})
	t.Run("output names unknown net", func(t *testing.T) {
		_, err := NewBuilder("x").AddInput("a").AddGate("g", Not, "a").
			MarkOutput("nope").Build()
		if err == nil {
			t.Error("want error for unknown output net")
		}
	})
	t.Run("duplicate output", func(t *testing.T) {
		_, err := NewBuilder("x").AddInput("a").AddGate("g", Not, "a").
			MarkOutput("g").MarkOutput("g").Build()
		if err == nil {
			t.Error("want error for duplicate output")
		}
	})
	t.Run("input as gate", func(t *testing.T) {
		b := NewBuilder("x")
		b.AddGate("g", Input, "a")
		if _, err := b.Build(); err == nil {
			t.Error("want error for AddGate(Input)")
		}
	})
	t.Run("not with two fanins", func(t *testing.T) {
		_, err := NewBuilder("x").AddInput("a").AddInput("b").
			AddGate("g", Not, "a", "b").MarkOutput("g").Build()
		if err == nil {
			t.Error("want error for NOT with 2 fanins")
		}
	})
	t.Run("and with one fanin", func(t *testing.T) {
		_, err := NewBuilder("x").AddInput("a").
			AddGate("g", And, "a").MarkOutput("g").Build()
		if err == nil {
			t.Error("want error for AND with 1 fanin")
		}
	})
	t.Run("empty name", func(t *testing.T) {
		_, err := NewBuilder("x").AddInput("").Build()
		if err == nil {
			t.Error("want error for empty name")
		}
	})
}

// randomDAG builds a random valid circuit for property tests.
func randomDAG(rng *rand.Rand, nIn, nGates int) *Circuit {
	b := NewBuilder("rand")
	names := make([]string, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		n := "i" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddInput(n)
		names = append(names, n)
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not, Buf}
	for i := 0; i < nGates; i++ {
		n := "g" + itoa(i)
		typ := types[rng.Intn(len(types))]
		k := 2
		if typ == Not || typ == Buf {
			k = 1
		} else if rng.Intn(3) == 0 {
			k = 3
		}
		if k > len(names) {
			k = len(names)
			if k > 1 && (typ == Not || typ == Buf) {
				k = 1
			}
		}
		fan := make([]string, 0, k)
		seen := map[string]bool{}
		for len(fan) < k {
			cand := names[rng.Intn(len(names))]
			if !seen[cand] {
				seen[cand] = true
				fan = append(fan, cand)
			}
		}
		if (typ == Not || typ == Buf) && len(fan) != 1 {
			fan = fan[:1]
		}
		if typ != Not && typ != Buf && len(fan) < 2 {
			typ = Buf
			fan = fan[:1]
		}
		b.AddGate(n, typ, fan...)
		names = append(names, n)
	}
	b.MarkOutput("g" + itoa(nGates-1))
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// Property: in any randomly generated circuit, levels respect fanin order
// and topological order contains each gate exactly once.
func TestRandomCircuitInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomDAG(rng, 3+rng.Intn(5), 5+rng.Intn(40))
		lv := c.Levels()
		for i := range c.Gates {
			for _, f := range c.Gates[i].Fanin {
				if lv[f] >= lv[i] {
					return false
				}
			}
		}
		seen := map[int]bool{}
		for _, id := range c.TopoOrder() {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(seen) == c.NumGates()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: BoundedDistances is symmetric (undirected graph) for random
// gate pairs.
func TestBoundedDistancesSymmetric(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomDAG(rng, 4, 10+rng.Intn(30))
		logic := c.LogicGates()
		a := logic[rng.Intn(len(logic))]
		b := logic[rng.Intn(len(logic))]
		da := c.BoundedDistances(a, c.NumGates())
		db := c.BoundedDistances(b, c.NumGates())
		va, oka := da[b]
		vb, okb := db[a]
		if oka != okb {
			return false
		}
		return !oka || va == vb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStringSummary(t *testing.T) {
	c := buildC17(t)
	want := "c17: 5 inputs, 2 outputs, 6 gates, depth 3"
	if got := c.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
