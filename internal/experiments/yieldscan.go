package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"iddqsyn/internal/atpg"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/seq"
	"iddqsyn/internal/yield"
)

// YieldPoint re-exports yield.Point for consumers of the study results
// (e.g. package report) that do not need the yield machinery itself.
type YieldPoint = yield.Point

// YieldStudy runs the Monte-Carlo threshold sweep on a synthesized chip:
// escape and overkill rates over a geometric IDDQ,th ladder, plus the
// smallest zero-overkill threshold of the simulated fault-free
// population. It quantifies the §2 choice d = 10 and IDDQ,th = 1 µA.
func YieldStudy(ctx context.Context, name string, eprm evolution.Params) ([]yield.Point, float64, error) {
	c, err := circuits.ISCAS85Like(name)
	if err != nil {
		return nil, 0, err
	}
	res, err := core.SynthesizeContext(ctx, c, core.Options{Evolution: &eprm})
	if err != nil {
		return nil, 0, err
	}
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 300
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(eprm.Seed)))
	gen, err := atpg.Generate(c, list, atpg.DefaultOptions())
	if err != nil {
		return nil, 0, err
	}
	st, err := yield.Build(res.Chip, gen.Vectors, list, yield.DefaultConfig())
	if err != nil {
		return nil, 0, err
	}
	points, err := st.Sweep(1e-9, 1e-2, 22)
	if err != nil {
		return nil, 0, err
	}
	return points, st.ZeroOverkillThreshold(), nil
}

// FormatYield renders the threshold sweep.
func FormatYield(points []yield.Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%12s %10s %10s\n", "IDDQ,th (A)", "escape", "overkill")
	for _, p := range points {
		fmt.Fprintf(&sb, "%12.3g %9.2f%% %9.2f%%\n", p.Threshold, 100*p.Escape, 100*p.Overkill)
	}
	return sb.String()
}

// ScanRow is one sequential benchmark's scan-chain and test-time summary.
type ScanRow struct {
	Circuit     string
	FFs         int
	Gates       int
	DeclaredLen int     // scan wiring, declaration order
	OrderedLen  int     // scan wiring, nearest-neighbour order
	TestTime    float64 // 100 scan vectors, s
}

// ScanStudy evaluates scan-chain ordering and scan test time over the
// ISCAS89-like benchmark set: the full-scan extension of the §3.3 wiring
// and §3.4 test-time costs.
func ScanStudy() ([]ScanRow, error) {
	var rows []ScanRow
	for _, name := range seq.Names89() {
		s, err := seq.ISCAS89Like(name)
		if err != nil {
			return nil, err
		}
		opt, decl := seq.OrderScanChain(s, 6)
		// Scan clock 10 ns, settled-logic window 50 ns, sensing 20 ns —
		// representative of the paper's technology.
		total, err := seq.ScanTestTime(100, s.NumFFs(), 10e-9, 50e-9, 20e-9)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScanRow{
			Circuit:     name,
			FFs:         s.NumFFs(),
			Gates:       s.Comb.NumLogicGates(),
			DeclaredLen: decl.Length,
			OrderedLen:  opt.Length,
			TestTime:    total,
		})
	}
	return rows, nil
}

// FormatScan renders the scan study.
func FormatScan(rows []ScanRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %6s %7s %14s %13s %12s\n",
		"circuit", "FFs", "gates", "wire(declared)", "wire(ordered)", "t(100 vec)")
	for _, r := range rows {
		saved := 0.0
		if r.DeclaredLen > 0 {
			saved = 100 * (1 - float64(r.OrderedLen)/float64(r.DeclaredLen))
		}
		fmt.Fprintf(&sb, "%-8s %6d %7d %14d %9d -%2.0f%% %11.3gs\n",
			r.Circuit, r.FFs, r.Gates, r.DeclaredLen, r.OrderedLen, saved, r.TestTime)
	}
	return sb.String()
}
