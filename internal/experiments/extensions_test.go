package experiments

import (
	"context"
	"strings"
	"testing"

	"iddqsyn/internal/bic"
	"iddqsyn/internal/techmap"
)

func TestOptimizerComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("optimizer comparison in short mode")
	}
	prm := fastEvolution()
	prm.Mu = 8
	prm.Lambda = 4
	prm.Chi = 2
	prm.MaxGenerations = 150
	prm.StallGenerations = 150
	rows, err := OptimizerComparison(context.Background(), "c432", 8, prm)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]OptimizerRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
		if r.FinalCost <= 0 || r.Modules < 1 {
			t.Errorf("%s: degenerate row %+v", r.Algorithm, r)
		}
		if !r.Feasible {
			t.Errorf("%s: infeasible result", r.Algorithm)
		}
	}
	// All three optimizers descend the same landscape; none should be
	// wildly off the best (each must improve far beyond the start, and
	// the evolution strategy must stay within 2x of the winner — the
	// precise ranking at equal budgets is an empirical result recorded
	// in EXPERIMENTS.md, not an invariant).
	best := rows[0].FinalCost
	for _, r := range rows {
		if r.FinalCost < best {
			best = r.FinalCost
		}
	}
	if byName["evolution"].FinalCost > 2*best {
		t.Errorf("evolution %.6g more than 2x the best optimizer %.6g",
			byName["evolution"].FinalCost, best)
	}
	out := FormatOptimizers(rows)
	if !strings.Contains(out, "evolution") || !strings.Contains(out, "annealing") {
		t.Errorf("format:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestSensorVariantsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sensor variants in short mode")
	}
	rows, err := SensorVariants(context.Background(), "c432", fastEvolution())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	suitable := map[bic.Technology]bool{}
	for _, r := range rows {
		suitable[r.Technology] = r.Suitable
		if r.Area <= 0 {
			t.Errorf("%v: non-positive area", r.Technology)
		}
	}
	// The paper's design point: bypass-MOS (and the proportional sensor)
	// meet the stringent limit, junction drops do not.
	if !suitable[bic.BypassMOS] || !suitable[bic.Proportional] {
		t.Error("regulated sensors must be suitable at r* = 200 mV")
	}
	if suitable[bic.PNJunction] || suitable[bic.Bipolar] {
		t.Error("junction sensors must violate r* = 200 mV")
	}
	t.Logf("\n%s", FormatVariants(rows))
}

func TestTechmapStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("techmap study in short mode")
	}
	chosen, rows, err := TechmapStudy(context.Background(), "c432", fastEvolution())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	costs := map[techmap.Style]float64{}
	for _, r := range rows {
		costs[r.Style] = r.Cost
		if r.Cost <= 0 || r.Gates <= 0 {
			t.Errorf("%v: degenerate row", r.Style)
		}
	}
	// The mapper's trial ranking should agree with the evolved outcome
	// to within noise: the chosen style must not be the worst of the
	// three after full evolution.
	worst := rows[0].Style
	for _, r := range rows {
		if costs[r.Style] > costs[worst] {
			worst = r.Style
		}
	}
	if chosen == worst && costs[chosen] > 1.05*minCost(costs) {
		t.Errorf("mapper chose %v, the worst evolved candidate (%v)", chosen, costs)
	}
	t.Logf("mapper chose %v; evolved costs %v", chosen, costs)
}

func minCost(m map[techmap.Style]float64) float64 {
	first := true
	var min float64
	for _, v := range m {
		if first || v < min {
			min = v
			first = false
		}
	}
	return min
}

func TestScheduleStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("schedule study in short mode")
	}
	rows, err := ScheduleStudy(context.Background(), "c432", fastEvolution())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byStrat := map[bic.Strategy]ScheduleRow{}
	for _, r := range rows {
		byStrat[r.Strategy] = r
	}
	if byStrat[bic.ReadSerial].SensorArea > byStrat[bic.ReadParallel].SensorArea {
		t.Error("serial readout must not cost more area than parallel")
	}
	if byStrat[bic.ReadParallel].TotalTime > byStrat[bic.ReadSerial].TotalTime {
		t.Error("parallel readout must not be slower than serial")
	}
	t.Logf("\n%s", FormatSchedules(rows))
}

func TestDeltaStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("delta study in short mode")
	}
	rows, err := DeltaStudy(context.Background(), "c432", fastEvolution(), []float64{0.3, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	low, high := rows[0], rows[1]
	// At era-typical spread both methods are clean.
	if low.FixedOverkill > 0.02 || low.DeltaOverkill > 0.02 {
		t.Errorf("σ=0.3 overkill: fixed %.3f delta %.3f", low.FixedOverkill, low.DeltaOverkill)
	}
	// At wide spread, the fixed threshold overkills (the leaky-good-die
	// tail crosses 1 µA) while signature analysis stays clean — the
	// robustness argument for delta-IDDQ.
	if high.FixedOverkill < 0.03 {
		t.Errorf("σ=2.0 fixed overkill %.3f should be substantial", high.FixedOverkill)
	}
	if high.DeltaOverkill > high.FixedOverkill/2 {
		t.Errorf("σ=2.0 delta overkill %.3f should undercut fixed %.3f",
			high.DeltaOverkill, high.FixedOverkill)
	}
	// Escape floors: both bounded by the ATPG excitation coverage, and
	// the delta detector must not be wildly worse than fixed.
	if high.DeltaEscape > low.DeltaEscape+0.1 {
		t.Errorf("delta escape degraded with spread: %.3f -> %.3f", low.DeltaEscape, high.DeltaEscape)
	}
	t.Logf("\n%s", FormatDelta(rows))
}
