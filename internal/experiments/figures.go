package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"iddqsyn/internal/bic"
	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuit"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/partition"
	"iddqsyn/internal/standard"
)

// Figure1Result demonstrates the BIC sensor architecture of figure 1: a
// sized sensor guarding a module, the fault-free measurement passing, and
// a defect-excited measurement failing.
type Figure1Result struct {
	Sensor        bic.Sensor
	FaultFreeIDDQ float64
	FaultFreePass bool
	DefectIDDQ    float64
	DefectPass    bool
}

// Figure1Demo sizes a sensor for C17's first module, applies a vector
// without and with an injected bridging defect, and records the sensor's
// decisions.
func Figure1Demo() (*Figure1Result, error) {
	c := circuits.C17()
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		return nil, err
	}
	e := estimate.New(a, estimate.DefaultParams())
	groups := [][]int{mustIDs(c, "g1", "g3", "g5"), mustIDs(c, "g2", "g4", "g6")}
	chip, err := bic.NewChip(a, groups, e)
	if err != nil {
		return nil, err
	}
	// Vector exciting a g1-g2 bridge: I1=1, I3=1 (g1=0), I4=0 (g2=1).
	vec := []bool{true, false, true, false, false}
	clean, err := chip.ApplyVector(vec, nil)
	if err != nil {
		return nil, err
	}
	bridge := faults.Fault{
		Kind: faults.Bridge,
		A:    mustIDs(c, "g1")[0], B: mustIDs(c, "g2")[0],
		Current: 1e-3,
	}
	bad, err := chip.ApplyVector(vec, []faults.Fault{bridge})
	if err != nil {
		return nil, err
	}
	return &Figure1Result{
		Sensor:        chip.Sensors[0],
		FaultFreeIDDQ: clean[0].IDDQ,
		FaultFreePass: clean[0].Pass,
		DefectIDDQ:    bad[0].IDDQ,
		DefectPass:    bad[0].Pass,
	}, nil
}

func mustIDs(c *circuit.Circuit, names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		g, ok := c.GateByName(n)
		if !ok {
			panic("experiments: unknown gate " + n)
		}
		out[i] = g.ID
	}
	return out
}

// Figure2Result compares the two partitions of the paper's figure 2 on a
// two-dimensional cell array: partition 1 groups one cell of every type
// per module (a row — the cells never switch in parallel), partition 2
// groups same-type cells (a column — all switching simultaneously).
type Figure2Result struct {
	Rows, Cols int

	RowModules    int
	RowMaxIDD     float64 // worst module îDD,max under the row partition, A
	RowSensorArea float64

	ColModules    int
	ColMaxIDD     float64
	ColSensorArea float64

	// AreaRatio = column-partition area / row-partition area (> 1 means
	// the row partition wins, the paper's point).
	AreaRatio float64
}

// Figure2 runs the group-shape experiment on a rows×cols array with three
// cell types.
func Figure2(rows, cols int) (*Figure2Result, error) {
	types := []circuit.GateType{circuit.Nand, circuit.Nor, circuit.And}
	g, err := circuits.Grid2D(rows, cols, types)
	if err != nil {
		return nil, err
	}
	a, err := celllib.Annotate(g, celllib.Default())
	if err != nil {
		return nil, err
	}
	e := estimate.New(a, estimate.DefaultParams())

	eval := func(groups [][]int) (maxIDD, area float64) {
		for _, grp := range groups {
			m := e.EvalModule(grp)
			if m.IDDMax > maxIDD {
				maxIDD = m.IDDMax
			}
			area += m.SensorArea
		}
		return
	}
	rowGroups, err := circuits.GridRowPartition(g, rows, cols)
	if err != nil {
		return nil, err
	}
	colGroups, err := circuits.GridColumnPartition(g, rows, cols)
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{Rows: rows, Cols: cols,
		RowModules: len(rowGroups), ColModules: len(colGroups)}
	res.RowMaxIDD, res.RowSensorArea = eval(rowGroups)
	res.ColMaxIDD, res.ColSensorArea = eval(colGroups)
	// Compare per-module area so different module counts don't distort
	// the shape effect the figure illustrates.
	res.AreaRatio = (res.ColSensorArea / float64(res.ColModules)) /
		(res.RowSensorArea / float64(res.RowModules))
	return res, nil
}

// C17Step is one generation of the C17 running example (figures 3-5).
type C17Step struct {
	Generation int
	Modules    [][]string // gate names per module
	Cost       float64
}

// C17TraceResult reproduces the §4.3 example: the evolution run on C17
// and whether it reached the published optimum {(1,3,5), (2,4,6)}.
type C17TraceResult struct {
	Steps        []C17Step
	Final        [][]string
	FinalCost    float64
	OptimumCost  float64 // cost of the published optimum partition
	ReachedKnown bool    // final cost ≤ published optimum's cost
}

// C17Trace runs the evolution algorithm on C17 with a trace hook.
func C17Trace(ctx context.Context, seed int64) (*C17TraceResult, error) {
	c := circuits.C17()
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		return nil, err
	}
	e := estimate.New(a, estimate.DefaultParams())
	w := partition.PaperWeights()
	cons := partition.DefaultConstraints()

	// The §4.3 example works at the two-module granularity.
	prm := evolution.DefaultParams()
	prm.Seed = seed
	prm.MaxGenerations = 60
	prm.StallGenerations = 20

	res := &C17TraceResult{}
	trace := func(gen int, best *partition.Partition, bestCost float64) {
		res.Steps = append(res.Steps, C17Step{
			Generation: gen,
			Modules:    groupNames(c, best.Groups()),
			Cost:       bestCost,
		})
	}
	size := 3 // two modules of three gates, the example's granularity
	rng := rand.New(rand.NewSource(seed))
	var starts []*partition.Partition
	for i := 0; i < prm.Mu; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := partition.New(e, standard.ChainStartPartition(c, size, rng), w, cons)
		if err != nil {
			return nil, err
		}
		starts = append(starts, p)
	}
	er, err := evolution.OptimizeContext(ctx, starts, prm, trace)
	if err != nil {
		return nil, err
	}
	res.Final = groupNames(c, er.Best.Groups())
	res.FinalCost = er.BestCost

	opt, err := partition.New(e, [][]int{
		mustIDs(c, "g1", "g3", "g5"),
		mustIDs(c, "g2", "g4", "g6"),
	}, w, cons)
	if err != nil {
		return nil, err
	}
	res.OptimumCost = opt.Cost()
	res.ReachedKnown = res.FinalCost <= res.OptimumCost+1e-9
	return res, nil
}

func groupNames(c *circuit.Circuit, groups [][]int) [][]string {
	out := make([][]string, len(groups))
	for i, grp := range groups {
		for _, g := range grp {
			out[i] = append(out[i], c.Gates[g].Name)
		}
	}
	return out
}

// FormatC17Trace renders the generation-by-generation partitions like the
// paper's figures 3-5.
func FormatC17Trace(res *C17TraceResult) string {
	var sb strings.Builder
	for _, s := range res.Steps {
		fmt.Fprintf(&sb, "generation %2d: C=%.6g  %v\n", s.Generation, s.Cost, s.Modules)
	}
	fmt.Fprintf(&sb, "final: %v (C=%.6g, published optimum C=%.6g, reached=%v)\n",
		res.Final, res.FinalCost, res.OptimumCost, res.ReachedKnown)
	return sb.String()
}
