package experiments

import (
	"fmt"

	"iddqsyn/internal/core"
	"iddqsyn/internal/partcheck"
)

// verifyFinal audits a synthesis result before its numbers enter a
// published table: the partition must pass the full static check —
// exact cover, netlist consistency, estimate-cache agreement — and meet
// the discriminability constraint the run was configured with. The
// returned error names the violated constraint, so a bad run fails
// loudly instead of quietly skewing a regenerated paper table.
func verifyFinal(what string, res *core.Result) error {
	lim := partcheck.Feasibility(res.Partition.Cons.MinDiscriminability)
	if err := partcheck.VerifyPartition(res.Partition, lim).Err(); err != nil {
		return fmt.Errorf("experiments: %s: %w", what, err)
	}
	return nil
}
