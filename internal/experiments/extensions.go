package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"iddqsyn/internal/anneal"
	"iddqsyn/internal/atpg"
	"iddqsyn/internal/bic"
	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/partition"
	"iddqsyn/internal/standard"
	"iddqsyn/internal/techmap"
)

// OptimizerRow compares the optimization algorithms the paper lists for
// PART-IDDQ ("force-driven, simulated annealing, Monte Carlo, genetic,
// e.g.") from identical start partitions and comparable evaluation
// budgets.
type OptimizerRow struct {
	Algorithm   string
	FinalCost   float64
	Evaluations int
	Modules     int
	Feasible    bool
}

// OptimizerComparison runs the evolution strategy, simulated annealing
// and greedy hill climbing on the named circuit from the same §4.2 start
// population (the ES uses all μ starts; SA and HC start from the best).
// startSize sets the start-partition granularity; pass a size well below
// the optimum module size so the optimizers have real merging and
// refinement work to differentiate on (0 uses the §4.2 estimate).
func OptimizerComparison(ctx context.Context, name string, startSize int, eprm evolution.Params) ([]OptimizerRow, error) {
	c, err := circuits.ISCAS85Like(name)
	if err != nil {
		return nil, err
	}
	a, err := celllib.Annotate(c, celllib.Default())
	if err != nil {
		return nil, err
	}
	e := estimate.New(a, estimate.DefaultParams())
	w := partition.PaperWeights()
	cons := partition.DefaultConstraints()
	size := startSize
	if size <= 0 {
		size = standard.EstimateModuleSize(e, w, cons)
	}
	rng := rand.New(rand.NewSource(eprm.Seed))
	var starts []*partition.Partition
	for i := 0; i < eprm.Mu; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := partition.New(e, standard.ChainStartPartition(c, size, rng), w, cons)
		if err != nil {
			return nil, err
		}
		starts = append(starts, p)
	}
	best := starts[0]
	//lint:ignore ctxloop cached-cost scan over mu individuals, microseconds
	for _, s := range starts[1:] {
		if s.Cost() < best.Cost() {
			best = s
		}
	}

	es, err := evolution.OptimizeContext(ctx, starts, eprm, nil)
	if err != nil {
		return nil, err
	}
	budget := es.Evaluations // give the others the same evaluation budget

	saPrm := anneal.DefaultParams()
	saPrm.Seed = eprm.Seed
	saPrm.MaxMoves = budget
	// Scale the cooling schedule so annealing completes within the
	// budget (~80 epochs) instead of being cut off while still hot.
	if saPrm.MovesPerEpoch = budget / 80; saPrm.MovesPerEpoch < 1 {
		saPrm.MovesPerEpoch = 1
	}
	sa, err := anneal.AnnealContext(ctx, best, saPrm)
	if err != nil {
		return nil, err
	}
	hc, err := anneal.HillClimbContext(ctx, best, budget, budget/4+1, eprm.Seed)
	if err != nil {
		return nil, err
	}

	return []OptimizerRow{
		{"evolution", es.BestCost, es.Evaluations, es.Best.NumModules(), es.Best.Feasible()},
		{"annealing", sa.BestCost, sa.Moves, sa.Best.NumModules(), sa.Best.Feasible()},
		{"hill-climb", hc.BestCost, hc.Moves, hc.Best.NumModules(), hc.Best.Feasible()},
	}, nil
}

// FormatOptimizers renders the comparison.
func FormatOptimizers(rows []OptimizerRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %12s %12s %8s %9s\n", "algorithm", "final cost", "evaluations", "modules", "feasible")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %12.6g %12d %8d %9v\n",
			r.Algorithm, r.FinalCost, r.Evaluations, r.Modules, r.Feasible)
	}
	return sb.String()
}

// VariantRow sizes every sensor technology for the worst module of an
// evolved partition, quantifying the paper's argument for the bypass-MOS
// class under stringent rail limits.
type VariantRow struct {
	Technology   bic.Technology
	Area         float64
	Perturbation float64
	Settle       float64
	Suitable     bool
}

// SensorVariants evaluates the sensing-device classes on the named
// circuit's largest-current module.
func SensorVariants(ctx context.Context, name string, eprm evolution.Params) ([]VariantRow, error) {
	c, err := circuits.ISCAS85Like(name)
	if err != nil {
		return nil, err
	}
	res, err := core.SynthesizeContext(ctx, c, core.Options{Evolution: &eprm})
	if err != nil {
		return nil, err
	}
	worst := 0
	//lint:ignore ctxloop cached module-estimate scan, microseconds
	for mi := 0; mi < res.Partition.NumModules(); mi++ {
		if res.Partition.ModuleEstimate(mi).IDDMax > res.Partition.ModuleEstimate(worst).IDDMax {
			worst = mi
		}
	}
	m := res.Partition.ModuleEstimate(worst)
	var rows []VariantRow
	//lint:ignore ctxloop fixed four-entry technology table, no real work
	for _, tech := range bic.Technologies() {
		v := bic.SizeVariant(tech, worst, m, res.Estimator.P)
		rows = append(rows, VariantRow{
			Technology:   tech,
			Area:         v.Area,
			Perturbation: v.Perturbation,
			Settle:       v.Settle,
			Suitable:     v.Suitable,
		})
	}
	return rows, nil
}

// FormatVariants renders the sensor-technology table.
func FormatVariants(rows []VariantRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s %14s %12s %9s\n", "technology", "area", "perturbation", "settle", "suitable")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12.4g %13.3gV %11.3gs %9v\n",
			r.Technology, r.Area, r.Perturbation, r.Settle, r.Suitable)
	}
	return sb.String()
}

// TechmapRow is one candidate mapping's end-to-end result: the mapping
// style, its gate count, and the evolved partition cost on that netlist.
type TechmapRow struct {
	Style techmap.Style
	Gates int
	Cost  float64
}

// TechmapStudy runs the paper's future-work flow: map the circuit in each
// style, evolve a partition on each, and compare the final costs against
// the mapper's choice.
func TechmapStudy(ctx context.Context, name string, eprm evolution.Params) (chosen techmap.Style, rows []TechmapRow, err error) {
	c, err := circuits.ISCAS85Like(name)
	if err != nil {
		return 0, nil, err
	}
	lib := celllib.Default()
	p := estimate.DefaultParams()
	w := partition.PaperWeights()
	cons := partition.DefaultConstraints()
	mres, err := techmap.MapForIDDQ(c, lib, p, w, cons)
	if err != nil {
		return 0, nil, err
	}
	for _, cand := range mres.Candidates {
		res, err := core.SynthesizeContext(ctx, cand.Circuit, core.Options{Evolution: &eprm})
		if err != nil {
			return 0, nil, err
		}
		rows = append(rows, TechmapRow{
			Style: cand.Style,
			Gates: cand.Gates,
			Cost:  res.Partition.Cost(),
		})
	}
	return mres.Chosen.Style, rows, nil
}

// ScheduleRow is one readout strategy's area/time point for an evolved
// design and its generated test set.
type ScheduleRow struct {
	Strategy     bic.Strategy
	Groups       int
	SensorArea   float64
	TotalTime    float64
	VectorPeriod float64
}

// ScheduleStudy sizes the sensors of an evolved partition, generates the
// IDDQ test set, and evaluates the three readout strategies — the
// area-vs-test-time trade-off behind the paper's c₅ routing cost.
func ScheduleStudy(ctx context.Context, name string, eprm evolution.Params) ([]ScheduleRow, error) {
	c, err := circuits.ISCAS85Like(name)
	if err != nil {
		return nil, err
	}
	res, err := core.SynthesizeContext(ctx, c, core.Options{Evolution: &eprm})
	if err != nil {
		return nil, err
	}
	cfg := faults.DefaultConfig()
	cfg.MaxBridges = 500
	list := faults.Universe(c, cfg, rand.New(rand.NewSource(eprm.Seed)))
	gen, err := atpg.Generate(c, list, atpg.DefaultOptions())
	if err != nil {
		return nil, err
	}
	nVec := len(gen.Vectors)
	if nVec == 0 {
		nVec = 1
	}
	var rows []ScheduleRow
	groups := res.Partition.NumModules()/2 + 1
	//lint:ignore ctxloop fixed three-strategy table, planning is closed-form
	for _, strat := range []bic.Strategy{bic.ReadParallel, bic.ReadSerial, bic.ReadGrouped} {
		s, err := bic.PlanSchedule(strat, res.Chip.Sensors, nVec,
			res.Costs.DBIc, res.Estimator.P.AreaA0, groups)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScheduleRow{
			Strategy:     strat,
			Groups:       s.Groups,
			SensorArea:   s.SensorArea,
			TotalTime:    s.TotalTime,
			VectorPeriod: s.VectorPeriod,
		})
	}
	return rows, nil
}

// FormatSchedules renders the readout-strategy table.
func FormatSchedules(rows []ScheduleRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %7s %12s %14s %14s\n", "strategy", "groups", "sensor area", "vector period", "total time")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7d %12.4g %13.3gs %13.3gs\n",
			r.Strategy, r.Groups, r.SensorArea, r.VectorPeriod, r.TotalTime)
	}
	return sb.String()
}
