package experiments

import (
	"context"
	"strings"
	"testing"

	"iddqsyn/internal/evolution"
)

// fastEvolution returns evolution parameters small enough for unit tests;
// the real Table 1 runs use Table1DefaultEvolution.
func fastEvolution() evolution.Params {
	p := evolution.DefaultParams()
	p.Mu = 4
	p.Lambda = 3
	p.Chi = 1
	p.MaxGenerations = 40
	p.StallGenerations = 15
	return p
}

func TestTable1SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 in short mode")
	}
	prm := fastEvolution()
	rows, err := Table1(context.Background(), Table1Config{Circuits: []string{"c1908"}, Evolution: &prm})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Gates != 880 {
		t.Errorf("gates = %d, want 880", r.Gates)
	}
	if r.Modules < 2 || r.Modules > 8 {
		t.Errorf("modules = %d, want the Table 1 range (small)", r.Modules)
	}
	// The headline result: standard needs more sensor area at the same
	// module count (paper: 14.5%-30.6% more).
	if r.AreaOverhead <= 0 {
		t.Errorf("standard should need more area, overhead = %.1f%%", r.AreaOverhead)
	}
	// Delay and test-time overheads are small for both methods.
	for _, v := range []float64{r.DelayEvolution, r.DelayStandard, r.TestEvolution, r.TestStandard} {
		if v < 0 || v > 25 {
			t.Errorf("overhead %v%% out of the small range", v)
		}
	}
	if r.CostStandard < r.CostEvolution {
		t.Errorf("standard cost %.6g beats evolution %.6g", r.CostStandard, r.CostEvolution)
	}
	t.Logf("\n%s", FormatTable1(rows))
}

func TestFormatTable1(t *testing.T) {
	rows := []Table1Row{{
		Circuit: "cX", Gates: 10, Modules: 2,
		AreaEvolution: 1e5, AreaStandard: 1.2e5, AreaOverhead: 20,
	}}
	out := FormatTable1(rows)
	if !strings.Contains(out, "cX") || !strings.Contains(out, "20.0%") {
		t.Errorf("format:\n%s", out)
	}
}

func TestFigure1Demo(t *testing.T) {
	res, err := Figure1Demo()
	if err != nil {
		t.Fatal(err)
	}
	if !res.FaultFreePass {
		t.Error("fault-free measurement must PASS")
	}
	if res.DefectPass {
		t.Error("defect measurement must FAIL")
	}
	if res.DefectIDDQ <= res.FaultFreeIDDQ {
		t.Error("defect must raise IDDQ")
	}
	if res.DefectIDDQ < 1000*res.FaultFreeIDDQ {
		t.Errorf("defect current should dominate leakage by orders of magnitude: %g vs %g",
			res.DefectIDDQ, res.FaultFreeIDDQ)
	}
	if res.Sensor.ROn <= 0 || res.Sensor.Area <= 0 {
		t.Error("sensor must be sized")
	}
}

func TestFigure2ShapeEffect(t *testing.T) {
	res, err := Figure2(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: same-type columns switch in parallel, so the
	// column partition sees a larger worst-module current and needs
	// bigger switching devices (more area per sensor).
	if res.ColMaxIDD <= res.RowMaxIDD {
		t.Errorf("column partition must have larger îDD: col %g vs row %g",
			res.ColMaxIDD, res.RowMaxIDD)
	}
	if res.AreaRatio <= 1 {
		t.Errorf("per-sensor area ratio = %.3f, want > 1 (partition 1 preferred)", res.AreaRatio)
	}
	t.Logf("figure 2: row îDD=%.3gmA area/sensor=%.4g | col îDD=%.3gmA area/sensor=%.4g | ratio %.2f",
		1e3*res.RowMaxIDD, res.RowSensorArea/float64(res.RowModules),
		1e3*res.ColMaxIDD, res.ColSensorArea/float64(res.ColModules), res.AreaRatio)
}

func TestFigure2LargerArrays(t *testing.T) {
	for _, dims := range [][2]int{{3, 9}, {6, 6}, {4, 12}} {
		res, err := Figure2(dims[0], dims[1])
		if err != nil {
			t.Fatal(err)
		}
		if res.AreaRatio <= 1 {
			t.Errorf("%dx%d: ratio %.3f, want > 1", dims[0], dims[1], res.AreaRatio)
		}
	}
}

func TestC17TraceReachesOptimum(t *testing.T) {
	res, err := C17Trace(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedKnown {
		t.Errorf("C17 evolution did not reach the published optimum:\n%s", FormatC17Trace(res))
	}
	if len(res.Steps) == 0 {
		t.Error("no trace steps recorded")
	}
	// The optimum has two modules of three gates.
	if len(res.Final) != 2 {
		t.Errorf("final partition has %d modules, want 2", len(res.Final))
	}
	out := FormatC17Trace(res)
	if !strings.Contains(out, "final:") {
		t.Errorf("trace format:\n%s", out)
	}
}

func TestConvergenceHistoryDecreases(t *testing.T) {
	res, err := Convergence(context.Background(), "c432", fastEvolution())
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCost > res.StartCost {
		t.Errorf("diverged: %g -> %g", res.StartCost, res.FinalCost)
	}
	if res.Generations == 0 || res.Evaluations == 0 {
		t.Error("no work recorded")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in short mode")
	}
	mc, err := AblateMonteCarlo(context.Background(), "c432", fastEvolution())
	if err != nil {
		t.Fatal(err)
	}
	if mc.Baseline <= 0 || mc.Variant <= 0 {
		t.Error("ablation costs must be positive")
	}
	lt, err := AblateLifetime(context.Background(), "c432", fastEvolution())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("χ ablation: base %.6g vs %.6g | ω ablation: base %.6g vs %.6g",
		mc.Baseline, mc.Variant, lt.Baseline, lt.Variant)
}

func TestWeightSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("weight sweep in short mode")
	}
	points, err := WeightSweep(context.Background(), "c432", fastEvolution())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	byLabel := map[string]WeightSweepPoint{}
	for _, p := range points {
		byLabel[p.Label] = p
		if p.Modules < 1 || p.SensorArea <= 0 {
			t.Errorf("%s: degenerate point %+v", p.Label, p)
		}
	}
	// Prioritising module count cannot yield more modules than the paper
	// weighting.
	if byLabel["few-modules"].Modules > byLabel["paper"].Modules {
		t.Errorf("few-modules yielded %d modules vs paper %d",
			byLabel["few-modules"].Modules, byLabel["paper"].Modules)
	}
	t.Logf("\n%s", FormatWeightSweep(points))
}

func TestPessimismBound(t *testing.T) {
	if testing.Short() {
		t.Skip("pessimism study in short mode")
	}
	points, err := Pessimism(context.Background(), "c432", fastEvolution())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no modules evaluated")
	}
	for _, p := range points {
		if p.Ratio < 1 {
			t.Errorf("module %d: estimate %.4g below grid-aligned peak %.4g — the §3.1 bound broke",
				p.Module, p.Estimate, p.Simulated)
		}
		// The timing-simulated reference includes hazard multiplication
		// and may exceed the single-transition estimate, but never by an
		// order of magnitude on these circuits.
		if p.Timing <= 0 {
			t.Errorf("module %d: no timing-simulated activity", p.Module)
		}
		if p.TimingRatio < 0.2 {
			t.Errorf("module %d: timing peak %.4g dwarfs the estimate %.4g",
				p.Module, p.Timing, p.Estimate)
		}
	}
}

func TestTable1UnknownCircuit(t *testing.T) {
	prm := fastEvolution()
	if _, err := Table1(context.Background(), Table1Config{Circuits: []string{"c9999"}, Evolution: &prm}); err == nil {
		t.Error("want error for unknown circuit")
	}
}
