package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"iddqsyn/internal/celllib"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/electrical"
	"iddqsyn/internal/estimate"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/logicsim"
	"iddqsyn/internal/partition"
)

// ConvergenceResult records the §5 convergence claim for one circuit:
// "even for the largest circuit convergence was obtained within a few
// hours" — here measured in generations and evaluations.
type ConvergenceResult struct {
	Circuit     string
	Gates       int
	Generations int
	Evaluations int
	StartCost   float64 // best start-population cost
	FinalCost   float64
	History     []float64
}

// Convergence runs the evolution flow on one circuit and records the
// best-cost trajectory.
func Convergence(ctx context.Context, name string, prm evolution.Params) (*ConvergenceResult, error) {
	return ConvergenceFrom(ctx, name, 0, prm)
}

// ConvergenceFrom is Convergence with an explicit start-partition module
// size (0 = the §4.2 estimate). A deliberately fine start shows the full
// merge-and-refine trajectory even on circuits whose optimum is coarse.
func ConvergenceFrom(ctx context.Context, name string, startSize int, prm evolution.Params) (*ConvergenceResult, error) {
	c, err := circuits.ISCAS85Like(name)
	if err != nil {
		return nil, err
	}
	res, err := core.SynthesizeContext(ctx, c, core.Options{Evolution: &prm, ModuleSize: startSize})
	if err != nil {
		return nil, err
	}
	if err := verifyFinal(name+" convergence", res); err != nil {
		return nil, err
	}
	er := res.Evolution
	out := &ConvergenceResult{
		Circuit:     name,
		Gates:       c.NumLogicGates(),
		Generations: er.Generations,
		Evaluations: er.Evaluations,
		FinalCost:   er.BestCost,
		History:     er.History,
	}
	if len(er.History) > 0 {
		out.StartCost = er.History[0]
	}
	return out, nil
}

// AblationResult compares evolution variants that disable one design
// choice of §4, isolating its contribution.
type AblationResult struct {
	Circuit  string
	Baseline float64 // final cost with the full §4 scheme
	Variant  float64 // final cost with the feature disabled
	Feature  string
}

// AblateMonteCarlo measures the contribution of the χ Monte-Carlo
// descendants (the mechanism against local minima), from deliberately
// fine starts so the optimizer has a full trajectory to differ on.
func AblateMonteCarlo(ctx context.Context, name string, prm evolution.Params) (*AblationResult, error) {
	base, err := ConvergenceFrom(ctx, name, ablationStartSize, prm)
	if err != nil {
		return nil, err
	}
	noMC := prm
	noMC.Chi = 0
	variant, err := ConvergenceFrom(ctx, name, ablationStartSize, noMC)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Circuit: name, Feature: "monte-carlo (χ=0)",
		Baseline: base.FinalCost, Variant: variant.FinalCost,
	}, nil
}

// ablationStartSize is the fine start-partition granularity the ablation
// and optimizer studies share.
const ablationStartSize = 8

// AblateLifetime measures the contribution of the maximum lifetime ω
// (deleting stale elites) by making parents immortal.
func AblateLifetime(ctx context.Context, name string, prm evolution.Params) (*AblationResult, error) {
	base, err := ConvergenceFrom(ctx, name, ablationStartSize, prm)
	if err != nil {
		return nil, err
	}
	immortal := prm
	immortal.Omega = 1 << 30
	variant, err := ConvergenceFrom(ctx, name, ablationStartSize, immortal)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Circuit: name, Feature: "lifetime (ω=∞)",
		Baseline: base.FinalCost, Variant: variant.FinalCost,
	}, nil
}

// WeightSweepPoint is one setting of the Speed-Area-Testability priority
// sweep: the §2 design space exploration the weight factors αᵢ enable.
type WeightSweepPoint struct {
	Label      string
	Weights    partition.Weights
	Modules    int
	SensorArea float64
	DelayPct   float64
	TestPct    float64
	WorstDisc  float64
}

// WeightSweep synthesizes one circuit under different weight priorities
// (area-focused, delay-focused, testability-focused) and reports how the
// design moves through the Speed-Area-Testability space.
func WeightSweep(ctx context.Context, name string, prm evolution.Params) ([]WeightSweepPoint, error) {
	c, err := circuits.ISCAS85Like(name)
	if err != nil {
		return nil, err
	}
	paper := partition.PaperWeights()
	areaW := paper
	areaW.Area *= 100
	delayW := paper
	delayW.Delay *= 100
	modW := paper
	modW.Modules *= 1e5
	points := []WeightSweepPoint{
		{Label: "paper", Weights: paper},
		{Label: "area-focused", Weights: areaW},
		{Label: "delay-focused", Weights: delayW},
		{Label: "few-modules", Weights: modW},
	}
	for i := range points {
		res, err := core.SynthesizeContext(ctx, c, core.Options{
			Weights:   &points[i].Weights,
			Evolution: &prm,
		})
		if err != nil {
			return nil, err
		}
		cv := res.Costs
		points[i].Modules = res.Partition.NumModules()
		points[i].SensorArea = cv.SensorArea
		points[i].DelayPct = 100 * cv.DelayOverhead
		points[i].TestPct = 100 * cv.TestTime
		points[i].WorstDisc = res.Partition.WorstDiscriminability()
	}
	return points, nil
}

// FormatWeightSweep renders the sweep as a table.
func FormatWeightSweep(points []WeightSweepPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %8s %12s %10s %10s %8s\n",
		"priority", "modules", "sensor area", "delay", "test", "worst d")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-14s %8d %12.3e %9.2f%% %9.2f%% %8.1f\n",
			p.Label, p.Modules, p.SensorArea, p.DelayPct, p.TestPct, p.WorstDisc)
	}
	return sb.String()
}

// EstimatorPessimism quantifies the §3.1 claim that the logic-level
// îDD,max estimate is a safe upper bound. Two references: a grid-aligned
// worst case (every gate switches once at its latest transition time),
// and a timing-simulated workload (event-driven transport-delay
// simulation of random vector pairs, hazards included, each switch a
// triangular current pulse).
type EstimatorPessimism struct {
	Circuit   string
	Module    int
	Estimate  float64 // îDD,max from the §3.1 estimator, A
	Simulated float64 // peak of the grid-aligned pulse sum, A
	Timing    float64 // worst timing-simulated peak over random vector pairs, A

	// Ratio is Estimate/Simulated — the §3.1 single-transition bound the
	// estimator guarantees (always ≥ 1).
	Ratio float64
	// TimingRatio is Estimate/Timing. Hazard pulses under loaded,
	// non-uniform delays can multiply the real transient beyond the
	// single-transition model, so this can drop below 1 — an empirical
	// limit of the paper's estimator that EXPERIMENTS.md discusses.
	TimingRatio float64
}

// Pessimism evaluates the estimator bound on every module of an evolved
// partition of the named circuit.
func Pessimism(ctx context.Context, name string, prm evolution.Params) ([]EstimatorPessimism, error) {
	c, err := circuits.ISCAS85Like(name)
	if err != nil {
		return nil, err
	}
	res, err := core.SynthesizeContext(ctx, c, core.Options{Evolution: &prm})
	if err != nil {
		return nil, err
	}
	return pessimismOf(res)
}

func pessimismOf(res *core.Result) ([]EstimatorPessimism, error) {
	e := res.Estimator
	timing, err := timingPeaks(res, 24, 1)
	if err != nil {
		return nil, err
	}
	var out []EstimatorPessimism
	for mi := 0; mi < res.Partition.NumModules(); mi++ {
		gates := res.Partition.ModuleGates(mi)
		m := res.Partition.ModuleEstimate(mi)
		sim := simulatedPeak(e, res.Annotated, gates)
		p := EstimatorPessimism{
			Circuit:   res.Circuit.Name,
			Module:    mi,
			Estimate:  m.IDDMax,
			Simulated: sim,
			Timing:    timing[mi],
			Ratio:     m.IDDMax / sim,
		}
		if timing[mi] > 0 {
			p.TimingRatio = m.IDDMax / timing[mi]
		}
		out = append(out, p)
	}
	return out, nil
}

// timingPeaks runs the event-driven timing simulator over random vector
// pairs and returns, per module, the worst observed peak of the summed
// triangular switching-current pulses.
func timingPeaks(res *core.Result, pairs int, seed int64) ([]float64, error) {
	c := res.Circuit
	a := res.Annotated
	ts, err := logicsim.NewTiming(c, a.Delay)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	peaks := make([]float64, res.Partition.NumModules())
	from := make([]bool, len(c.Inputs))
	to := make([]bool, len(c.Inputs))
	for p := 0; p < pairs; p++ {
		for i := range from {
			from[i] = rng.Intn(2) == 1
			to[i] = rng.Intn(2) == 1
		}
		events, err := ts.Run(from, to)
		if err != nil {
			return nil, err
		}
		// Per-module pulse lists.
		pulses := make([][]electrical.Pulse, len(peaks))
		for _, ev := range events {
			mi := res.Chip.ModuleOf(ev.Gate)
			if mi < 0 {
				continue
			}
			pulses[mi] = append(pulses[mi], electrical.Pulse{
				Start:    ev.Time,
				Duration: a.Delay[ev.Gate],
				Peak:     a.Peak[ev.Gate],
			})
		}
		for mi, ps := range pulses {
			v, err := pulsePeak(ps)
			if err != nil {
				return nil, err
			}
			if v > peaks[mi] {
				peaks[mi] = v
			}
		}
	}
	return peaks, nil
}

// pulsePeak returns the maximum of a summed triangular pulse train,
// sampled at sub-pulse resolution.
func pulsePeak(pulses []electrical.Pulse) (float64, error) {
	if len(pulses) == 0 {
		return 0, nil
	}
	end := 0.0
	minDur := pulses[0].Duration
	for _, p := range pulses {
		if t := p.Start + p.Duration; t > end {
			end = t
		}
		if p.Duration < minDur {
			minDur = p.Duration
		}
	}
	res, err := electrical.SimulateRail(pulses, 1, 0, minDur/8, end)
	if err != nil {
		return 0, err
	}
	return res.PeakCurrent, nil
}

// simulatedPeak sums triangular pulses: each gate switches once at its
// *latest* transition time (one concrete, realisable alignment) and the
// peak of the summed waveform is measured on a fine grid.
func simulatedPeak(e *estimate.Estimator, a *celllib.Annotated, gates []int) float64 {
	const steps = 8 // sub-grid resolution per unit delay
	depth := e.TS.Depth()
	wave := make([]float64, (depth+2)*steps)
	for _, g := range gates {
		times := e.TS.Times(g)
		if len(times) == 0 {
			continue
		}
		t0 := times[len(times)-1] * steps
		peak := a.Peak[g]
		// Triangular pulse spanning one grid unit.
		for k := 0; k < steps; k++ {
			frac := float64(k) / float64(steps)
			var v float64
			if frac < 0.5 {
				v = peak * 2 * frac
			} else {
				v = peak * 2 * (1 - frac)
			}
			wave[t0+k] += v
		}
	}
	var max float64
	for _, v := range wave {
		if v > max {
			max = v
		}
	}
	return max
}
