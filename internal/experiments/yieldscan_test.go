package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestYieldStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("yield study in short mode")
	}
	points, zero, err := YieldStudy(context.Background(), "c432", fastEvolution())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("points = %d", len(points))
	}
	// The paper's 1 µA operating point must sit in the zero-overkill
	// window, and the window must start below it.
	if zero >= 1e-6 {
		t.Errorf("zero-overkill threshold %g above the 1 µA operating point", zero)
	}
	var at1uA, atLow, atHigh *struct{ escape, overkill float64 }
	for i := range points {
		p := points[i]
		v := &struct{ escape, overkill float64 }{p.Escape, p.Overkill}
		switch {
		case p.Threshold >= 1e-6 && at1uA == nil:
			at1uA = v
		case p.Threshold <= 2e-9 && atLow == nil:
			atLow = v
		}
		if p.Threshold >= 5e-3 {
			atHigh = v
		}
	}
	if at1uA == nil || atLow == nil || atHigh == nil {
		t.Fatal("sweep did not cover the expected decades")
	}
	if at1uA.overkill > 0.01 {
		t.Errorf("overkill at 1 µA = %.3f", at1uA.overkill)
	}
	if atLow.overkill < 0.9 {
		t.Errorf("overkill at 2 nA = %.3f, want ~1", atLow.overkill)
	}
	if atHigh.escape < 0.9 {
		t.Errorf("escape at 5 mA = %.3f, want ~1", atHigh.escape)
	}
	out := FormatYield(points)
	if !strings.Contains(out, "IDDQ,th") {
		t.Errorf("format:\n%s", out)
	}
}

func TestScanStudy(t *testing.T) {
	rows, err := ScanStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want all ISCAS89 profiles", len(rows))
	}
	improved := 0
	for _, r := range rows {
		if r.OrderedLen > r.DeclaredLen {
			t.Errorf("%s: ordering made wiring worse (%d > %d)",
				r.Circuit, r.OrderedLen, r.DeclaredLen)
		}
		if r.OrderedLen < r.DeclaredLen {
			improved++
		}
		if r.TestTime <= 0 {
			t.Errorf("%s: degenerate test time", r.Circuit)
		}
	}
	if improved < 3 {
		t.Errorf("ordering improved only %d/6 chains", improved)
	}
	out := FormatScan(rows)
	if !strings.Contains(out, "s5378") {
		t.Errorf("format:\n%s", out)
	}
}
