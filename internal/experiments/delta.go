package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"iddqsyn/internal/atpg"
	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/deltaiddq"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/faults"
	"iddqsyn/internal/yield"
)

// DeltaRow compares the fixed-threshold decision (the paper's detection
// circuitry) against current-signature analysis at one die-to-die leakage
// spread.
type DeltaRow struct {
	SigmaDie float64

	FixedEscape   float64 // fixed threshold at 1 µA
	FixedOverkill float64
	DeltaEscape   float64 // signature analysis
	DeltaOverkill float64
}

// DeltaStudy simulates die populations at increasing process spread and
// scores both detection methods on identical dies. The fixed threshold is
// the paper's 1 µA; the signature detector is deltaiddq.DefaultDetector.
//
// Expected shape: at the paper's era-typical spread (σ ≈ 0.3) both
// methods are clean; as the spread grows, the good-die leakage tail
// crosses the fixed threshold (overkill explodes) while the signature
// detector — which keys on the defect's step, not the absolute level —
// stays near the ATPG escape floor.
func DeltaStudy(ctx context.Context, name string, eprm evolution.Params, sigmas []float64) ([]DeltaRow, error) {
	if len(sigmas) == 0 {
		sigmas = []float64{0.3, 0.8, 1.5}
	}
	c, err := circuits.ISCAS85Like(name)
	if err != nil {
		return nil, err
	}
	res, err := core.SynthesizeContext(ctx, c, core.Options{Evolution: &eprm})
	if err != nil {
		return nil, err
	}
	fcfg := faults.DefaultConfig()
	fcfg.MaxBridges = 300
	list := faults.Universe(c, fcfg, rand.New(rand.NewSource(eprm.Seed)))
	gen, err := atpg.Generate(c, list, atpg.DefaultOptions())
	if err != nil {
		return nil, err
	}
	mx, err := yield.BuildMatrix(res.Chip, gen.Vectors, list)
	if err != nil {
		return nil, err
	}

	const (
		goodDies = 400
		badDies  = 400
	)
	threshold := res.Estimator.P.IDDQth
	det := deltaiddq.DefaultDetector()
	if err := det.Validate(); err != nil {
		return nil, err
	}

	var rows []DeltaRow
	for _, sigma := range sigmas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(eprm.Seed + int64(1000*sigma)))
		row := DeltaRow{SigmaDie: sigma}
		lognormal := func(s float64) float64 {
			if s <= 0 {
				return 1
			}
			return math.Exp(rng.NormFloat64() * s)
		}
		// signatures fills sigs[m][v] for one die; defectFi < 0 means a
		// fault-free die.
		sigs := make([]deltaiddq.Signature, mx.Modules)
		for m := range sigs {
			sigs[m] = make(deltaiddq.Signature, len(mx.Base))
		}
		buildDie := func(defectFi int, defect float64) (maxMeasure float64) {
			die := lognormal(sigma)
			for m := 0; m < mx.Modules; m++ {
				mod := die * lognormal(0.1)
				for v := range mx.Base {
					sigs[m][v] = mx.Base[v][m] * mod
				}
			}
			if defectFi >= 0 {
				for _, h := range mx.Excited[defectFi] {
					sigs[h.Module][h.Vector] += defect
				}
			}
			for m := range sigs {
				for _, x := range sigs[m] {
					if x > maxMeasure {
						maxMeasure = x
					}
				}
			}
			return maxMeasure
		}

		for d := 0; d < goodDies; d++ {
			maxMeasure := buildDie(-1, 0)
			if maxMeasure >= threshold {
				row.FixedOverkill++
			}
			if det.Detect(sigs) {
				row.DeltaOverkill++
			}
		}
		for d := 0; d < badDies; d++ {
			fi := rng.Intn(len(list))
			defect := list[fi].Current * lognormal(0.5)
			maxMeasure := buildDie(fi, defect)
			if maxMeasure < threshold {
				row.FixedEscape++
			}
			if !det.Detect(sigs) {
				row.DeltaEscape++
			}
		}
		row.FixedEscape /= badDies
		row.FixedOverkill /= goodDies
		row.DeltaEscape /= badDies
		row.DeltaOverkill /= goodDies
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatDelta renders the comparison.
func FormatDelta(rows []DeltaRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s | %12s %12s | %12s %12s\n",
		"σ(die)", "fixed esc", "fixed ovk", "delta esc", "delta ovk")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8.2f | %11.2f%% %11.2f%% | %11.2f%% %11.2f%%\n",
			r.SigmaDie, 100*r.FixedEscape, 100*r.FixedOverkill,
			100*r.DeltaEscape, 100*r.DeltaOverkill)
	}
	return sb.String()
}
