// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (standard vs evolution partitioning over the ISCAS85
// benchmark set), figure 1 (the BIC sensor's PASS/FAIL behaviour),
// figure 2 (the impact of group shape on sensor area in a 2-D cell array),
// and the C17 evolution trace of figures 3-5 — plus the convergence and
// ablation studies behind the §4-§5 claims. DESIGN.md maps each experiment
// to the modules it exercises; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"iddqsyn/internal/circuits"
	"iddqsyn/internal/core"
	"iddqsyn/internal/evolution"
	"iddqsyn/internal/obs"
)

// Table1Circuits lists the benchmark circuits of the paper's Table 1 with
// their published module counts.
var Table1Circuits = []struct {
	Name    string
	PaperK  int     // #modules in Table 1
	PaperOv float64 // sensor area overhead of standard over evolution, %
}{
	{"c1908", 2, 30.6},
	{"c2670", 3, 14.5},
	{"c3540", 4, 22.9},
	{"c5315", 6, 25.3},
	{"c6288", 5, 25.9},
	{"c7552", 6, 19.7},
}

// Table1Row is one circuit's comparison between the two methods.
type Table1Row struct {
	Circuit string
	Gates   int
	Modules int // module count of the evolution result (standard uses the same)

	AreaEvolution float64
	AreaStandard  float64
	AreaOverhead  float64 // (standard - evolution) / evolution, %

	DelayEvolution float64 // delay overhead, %
	DelayStandard  float64
	TestEvolution  float64 // test-time overhead, %
	TestStandard   float64

	CostEvolution float64
	CostStandard  float64

	Generations int
	Evaluations int
}

// Table1Config tunes the experiment's runtime.
type Table1Config struct {
	Circuits  []string          // subset of Table1Circuits names; nil = all
	Evolution *evolution.Params // nil = tuned defaults (see Table1DefaultEvolution)
}

// Table1DefaultEvolution returns the evolution parameters used for the
// Table 1 runs: the §4.2 scheme with a generation budget that converges on
// every benchmark in minutes of CPU (the paper reports "a few hours on a
// Sun Sparc workstation" for the same process).
func Table1DefaultEvolution() evolution.Params {
	p := evolution.DefaultParams()
	p.MaxGenerations = 250
	p.StallGenerations = 50
	return p
}

// Table1 regenerates the paper's Table 1: for every circuit, the
// evolution-based partitioning, then the standard partitioning at the same
// module count, and the comparison of sensor area, delay and test time.
func Table1(ctx context.Context, cfg Table1Config) ([]Table1Row, error) {
	names := cfg.Circuits
	if names == nil {
		for _, c := range Table1Circuits {
			names = append(names, c.Name)
		}
	}
	eprm := Table1DefaultEvolution()
	if cfg.Evolution != nil {
		eprm = *cfg.Evolution
	}
	o := obs.FromContext(ctx)
	var rows []Table1Row
	for _, name := range names {
		sp := o.StartSpan("experiments.table1.circuit", "circuit", name)
		row, err := table1Circuit(ctx, name, eprm)
		sp.End()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// table1Circuit runs both methods on one circuit and builds its row.
func table1Circuit(ctx context.Context, name string, eprm evolution.Params) (Table1Row, error) {
	c, err := circuits.ISCAS85Like(name)
	if err != nil {
		return Table1Row{}, err
	}
	evo, err := core.SynthesizeContext(ctx, c, core.Options{Evolution: &eprm})
	if err != nil {
		return Table1Row{}, fmt.Errorf("experiments: %s evolution: %w", name, err)
	}
	std, err := core.SynthesizeContext(ctx, c, core.Options{
		Method:  core.MethodStandard,
		Modules: evo.Partition.NumModules(),
	})
	if err != nil {
		return Table1Row{}, fmt.Errorf("experiments: %s standard: %w", name, err)
	}
	if err := verifyFinal(name+" evolution", evo); err != nil {
		return Table1Row{}, err
	}
	if err := verifyFinal(name+" standard", std); err != nil {
		return Table1Row{}, err
	}
	ecv, scv := evo.Costs, std.Costs
	return Table1Row{
		Circuit:        name,
		Gates:          c.NumLogicGates(),
		Modules:        evo.Partition.NumModules(),
		AreaEvolution:  ecv.SensorArea,
		AreaStandard:   scv.SensorArea,
		AreaOverhead:   100 * (scv.SensorArea - ecv.SensorArea) / ecv.SensorArea,
		DelayEvolution: 100 * ecv.DelayOverhead,
		DelayStandard:  100 * scv.DelayOverhead,
		TestEvolution:  100 * ecv.TestTime,
		TestStandard:   100 * scv.TestTime,
		CostEvolution:  evo.Partition.Cost(),
		CostStandard:   std.Partition.Cost(),
		Generations:    evo.Evolution.Generations,
		Evaluations:    evo.Evolution.Evaluations,
	}, nil
}

// FormatTable1 renders rows in the layout of the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %6s %8s | %12s %12s %9s | %9s %9s | %9s %9s\n",
		"circuit", "gates", "#modules",
		"area(std)", "area(evo)", "overhead",
		"delay(std)", "delay(evo)", "test(std)", "test(evo)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %6d %8d | %12.3e %12.3e %8.1f%% | %8.2f%% %8.2f%% | %8.2f%% %8.2f%%\n",
			r.Circuit, r.Gates, r.Modules,
			r.AreaStandard, r.AreaEvolution, r.AreaOverhead,
			r.DelayStandard, r.DelayEvolution,
			r.TestStandard, r.TestEvolution)
	}
	return sb.String()
}
