package seq

import (
	"fmt"
	"sort"

	"iddqsyn/internal/circuits"
)

// Spec describes a synthetic full-scan sequential circuit.
type Spec struct {
	Name    string
	Inputs  int // true primary inputs
	Outputs int // true primary outputs (lower bound)
	FFs     int // scan flip-flops
	Gates   int // combinational gates
	Depth   int // combinational depth
	Seed    int64
}

// Generate builds a deterministic synthetic sequential circuit: a
// reconvergent combinational core (package circuits) whose last FFs
// inputs are pseudo-primary inputs and whose deepest FFs outputs feed the
// flip-flops.
func Generate(spec Spec) (*Sequential, error) {
	if spec.FFs < 1 {
		return nil, fmt.Errorf("seq: need at least one flip-flop")
	}
	core, err := circuits.RandomLogic(circuits.Spec{
		Name:    spec.Name,
		Inputs:  spec.Inputs + spec.FFs,
		Outputs: spec.Outputs + spec.FFs,
		Gates:   spec.Gates,
		Depth:   spec.Depth,
		Seed:    spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	if len(core.Outputs) < spec.Outputs+spec.FFs {
		return nil, fmt.Errorf("seq: core has %d outputs, need %d", len(core.Outputs), spec.Outputs+spec.FFs)
	}
	// The last FFs inputs become PPIs; the deepest FFs outputs become
	// PPOs (state tends to live deep in the cone).
	ppis := core.Inputs[spec.Inputs:]
	levels := core.Levels()
	outs := append([]int(nil), core.Outputs...)
	sort.Slice(outs, func(i, j int) bool {
		if levels[outs[i]] != levels[outs[j]] {
			return levels[outs[i]] > levels[outs[j]]
		}
		return outs[i] < outs[j]
	})
	ffs := make([]FF, spec.FFs)
	for i := 0; i < spec.FFs; i++ {
		ffs[i] = FF{
			Name: fmt.Sprintf("ff%d", i),
			PPI:  ppis[i],
			PPO:  outs[i],
		}
	}
	return New(spec.Name, core, ffs)
}

// iscas89Profiles lists published structural statistics of ISCAS89
// benchmark circuits [Brglez, Bryan, Kozminski 1989] used as synthetic
// stand-ins, like the ISCAS85 profiles in package circuits.
var iscas89Profiles = map[string]Spec{
	"s27":   {Name: "s27", Inputs: 4, Outputs: 1, FFs: 3, Gates: 10, Depth: 4},
	"s298":  {Name: "s298", Inputs: 3, Outputs: 6, FFs: 14, Gates: 119, Depth: 9},
	"s344":  {Name: "s344", Inputs: 9, Outputs: 11, FFs: 15, Gates: 160, Depth: 14},
	"s641":  {Name: "s641", Inputs: 35, Outputs: 24, FFs: 19, Gates: 379, Depth: 23},
	"s1196": {Name: "s1196", Inputs: 14, Outputs: 14, FFs: 18, Gates: 529, Depth: 24},
	"s5378": {Name: "s5378", Inputs: 35, Outputs: 49, FFs: 164, Gates: 2779, Depth: 25},
}

// ISCAS89Like returns a synthetic stand-in for a named ISCAS89 benchmark,
// matching its published primary-I/O, flip-flop, gate and depth counts.
func ISCAS89Like(name string) (*Sequential, error) {
	spec, ok := iscas89Profiles[name]
	if !ok {
		return nil, fmt.Errorf("seq: unknown ISCAS89 profile %q (have %v)", name, Names89())
	}
	var seed int64
	for _, r := range name {
		seed = seed*137 + int64(r)
	}
	spec.Seed = seed
	return Generate(spec)
}

// Names89 lists the known ISCAS89 profiles in ascending gate count.
func Names89() []string {
	out := make([]string, 0, len(iscas89Profiles))
	for n := range iscas89Profiles {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		return iscas89Profiles[out[i]].Gates < iscas89Profiles[out[j]].Gates
	})
	return out
}
